//! Observability coverage: a traced delta scenario emits every `delta.*`
//! metric declared in `names::ALL`, and the built-in pulse rule fires when
//! the dirty-chunk ratio collapses (deltas no longer save anything).

use std::sync::Arc;

use drms_chaos::{ChaosCtl, FaultPlan};
use drms_core::segment::DataSegment;
use drms_core::{Drms, DrmsConfig, EnableFlag};
use drms_darray::{DistArray, Distribution};
use drms_delta::{delta_checkpoint, DeltaChain, DeltaConfig};
use drms_msg::{run_spmd_chaos, CostModel};
use drms_obs::{names, Recorder, TraceRecorder};
use drms_piofs::{Piofs, PiofsConfig};
use drms_pulse::{Pulse, PulseConfig};
use drms_slices::{Order, Slice};

const N: i64 = 2048;

fn domain() -> Slice {
    Slice::boxed(&[(1, N)])
}

/// Two delta checkpoints under `recorder`: a full rewrite, then a delta in
/// which *every* chunk is dirty (the collapse case — carrying nothing
/// forward, dirty ratio 1.0).
fn collapse_scenario(recorder: Arc<dyn Recorder>) {
    let f = Piofs::new(PiofsConfig::test_tiny(4), 7);
    let ctl = ChaosCtl::new(FaultPlan::seeded(1));
    run_spmd_chaos(2, CostModel::default(), recorder, ctl, |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, &f, DrmsConfig::new("cov"), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| (p[0] * 11) as f64);
        let mut chain = DeltaChain::new();
        let dc = DeltaConfig { chunk_bytes: 1024, full_every: 8, compress: true };
        let seg = DataSegment::new();
        delta_checkpoint(&mut drms, &mut chain, &dc, ctx, &f, "ck/n1", &seg, &[&u]).unwrap();
        // Touch every element: every chunk of the next delta is dirty.
        let region = u.assigned().clone();
        region.points(Order::ColumnMajor).for_each(|p| {
            let v = u.get(p).unwrap();
            u.set(p, v + 1.0).unwrap();
        });
        let r =
            delta_checkpoint(&mut drms, &mut chain, &dc, ctx, &f, "ck/n2", &seg, &[&u]).unwrap();
        if ctx.rank() == 0 {
            assert!(!r.full);
            assert_eq!(r.clean_chunks, 0);
            assert_eq!(r.dirty_ratio(), 1.0);
        }
    })
    .unwrap();
}

#[test]
fn traced_delta_scenario_covers_every_delta_metric() {
    let rec = Arc::new(TraceRecorder::default());
    collapse_scenario(rec.clone());
    let metrics = rec.metrics();
    let counters: std::collections::BTreeSet<&str> =
        metrics.counters().into_iter().map(|(k, _)| k.name).collect();
    let gauges: std::collections::BTreeSet<&str> =
        metrics.gauges().into_iter().map(|((name, _), _)| name).collect();
    let delta_names: Vec<&str> =
        names::ALL.iter().copied().filter(|n| n.starts_with("delta.")).collect();
    assert!(!delta_names.is_empty(), "no delta metrics declared");
    for name in delta_names {
        assert!(
            counters.contains(name) || gauges.contains(name),
            "declared metric {name:?} was not emitted by the traced delta scenario \
             (counters: {counters:?}, gauges: {gauges:?})"
        );
    }
    // Spot-check the load-bearing ones.
    assert!(metrics.counter_total(names::DELTA_FULL_REWRITES) >= 1);
    assert!(metrics.counter_total(names::DELTA_BYTES_WRITTEN) > 0);
    assert_eq!(metrics.gauge(names::DELTA_DIRTY_RATIO, 0), Some(1.0));
    assert_eq!(metrics.gauge(names::DELTA_CHAIN_DEPTH, 0), Some(1.0));
}

#[test]
fn builtin_pulse_rule_fires_on_delta_ratio_collapse() {
    // The default rule set watches `delta.dirty_ratio` with a 0.9 ceiling;
    // the collapse scenario drives it to 1.0 through the real pipeline.
    let pulse = Pulse::new(PulseConfig { ntasks: 2, window: 1e-4, ..PulseConfig::default() });
    collapse_scenario(pulse.recorder());
    let report = pulse.finish();
    assert!(
        report.alerts.iter().any(|a| a.rule == names::ALERT_DELTA_COLLAPSE),
        "delta-collapse alert did not fire: {:?}",
        report.alerts
    );
    // One continuous breach fires exactly once.
    let fired = report.alerts.iter().filter(|a| a.rule == names::ALERT_DELTA_COLLAPSE).count();
    assert_eq!(fired, 1, "collapse alert fired {fired} times for one breach");
}
