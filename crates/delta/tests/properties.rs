//! Property tests for the incremental checkpoint path, all driven through
//! the full public API (checkpoint → manifest → materialize/sweep), not
//! unit internals:
//!
//! * whatever the stream contents, a chain of delta checkpoints always
//!   materializes each state bitwise (dedup/compression are lossless);
//! * a single-element mutation dirties exactly one chunk;
//! * garbage collection never touches a chunk reachable from a surviving
//!   manifest, and reclaims everything unreachable.

use std::sync::{Arc, Mutex};

use drms_core::manifest::{delta_path, manifest_path};
use drms_core::segment::DataSegment;
use drms_core::{
    checkpoint_is_valid, find_checkpoints, sweep_orphans, Drms, DrmsConfig, EnableFlag,
};
use drms_darray::{DistArray, Distribution};
use drms_delta::{delta_checkpoint, materialize_stream, DeltaChain, DeltaConfig, DeltaReport};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};
use proptest::prelude::*;

const N: i64 = 1024; // elements; 8192 stream bytes = 8 chunks of 1024
const CHUNK: u64 = 1024;

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(4), 5)
}

fn dcfg() -> DeltaConfig {
    DeltaConfig { chunk_bytes: CHUNK, full_every: 64, compress: true }
}

fn domain() -> Slice {
    Slice::boxed(&[(0, N - 1)])
}

/// Writes a chain of delta checkpoints, one per state in `states` (each a
/// full array image), to prefixes `ck/p0..`, on one task. Returns rank 0's
/// reports.
fn write_chain(f: &Arc<Piofs>, states: &[Vec<f64>]) -> Vec<DeltaReport> {
    let reports = Mutex::new(Vec::new());
    run_spmd(1, CostModel::default(), |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, f, DrmsConfig::new("prop"), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), 1, 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut chain = DeltaChain::new();
        for (i, state) in states.iter().enumerate() {
            u.fill_assigned(|p| state[p[0] as usize]);
            let r = delta_checkpoint(
                &mut drms,
                &mut chain,
                &dcfg(),
                ctx,
                f,
                &format!("ck/p{i}"),
                &DataSegment::new(),
                &[&u],
            )
            .unwrap();
            reports.lock().unwrap().push(r);
        }
    })
    .unwrap();
    reports.into_inner().unwrap()
}

/// The canonical stream of a state: elements little-endian in order.
fn stream_of(state: &[f64]) -> Vec<u8> {
    state.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// A state drawn on an integer lattice (the vendored proptest shim only
/// generates integer ranges); few distinct values make cross-chunk dedup
/// and compression actually fire.
fn states() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..4, N as usize..N as usize + 1), 1..4)
        .prop_map(|raw| {
            raw.into_iter().map(|s| s.into_iter().map(|v| v as f64 * 0.25).collect()).collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Dedup and compression are lossless: every link of any chain
    /// materializes its recorded state bitwise.
    #[test]
    fn every_link_materializes_bitwise(states in states()) {
        let f = fs();
        write_chain(&f, &states);
        let found = find_checkpoints(&f, Some("prop"));
        prop_assert_eq!(found.len(), states.len());
        for (i, state) in states.iter().enumerate() {
            let prefix = format!("ck/p{i}");
            let (_, m) = found.iter().find(|(p, _)| *p == prefix).expect("committed");
            let got = materialize_stream(&f, &prefix, m, "u").unwrap();
            prop_assert_eq!(&got, &stream_of(state), "link {} diverged", i);
            prop_assert!(checkpoint_is_valid(&f, &prefix), "link {} invalid", i);
        }
    }

    /// Mutating a single element between checkpoints dirties exactly the
    /// chunk holding it — every other chunk is carried forward by
    /// reference, and the delta stores at most that one chunk.
    #[test]
    fn single_element_mutation_dirties_exactly_one_chunk(k in 0i64..N) {
        let f = fs();
        // Distinct per-chunk contents so the mutated chunk cannot dedup.
        let base: Vec<f64> = (0..N).map(|i| i as f64 * 1.5 + 1.0).collect();
        let mut mutated = base.clone();
        mutated[k as usize] += 0.125;
        let reports = write_chain(&f, &[base, mutated]);
        let r = &reports[1];
        prop_assert!(!r.full);
        prop_assert_eq!(r.dirty_chunks, 1, "one mutation, {} dirty chunks", r.dirty_chunks);
        let nchunks = (N as u64 * 8).div_ceil(CHUNK);
        prop_assert_eq!(r.clean_chunks, nchunks - 1);
        prop_assert_eq!(r.dedup_hits, 0);
        prop_assert!(r.pack_bytes <= CHUNK, "delta stored {} bytes", r.pack_bytes);
    }

    /// Mark-and-sweep over the chunk graph: after uncommitting an arbitrary
    /// subset of the chain's links, the sweep reclaims only files no
    /// surviving manifest reaches — every survivor still materializes
    /// bitwise, and nothing unreachable outlives the sweep.
    #[test]
    fn sweep_never_collects_reachable_chunks(
        states in states(),
        drop_mask in 0u8..8,
    ) {
        let f = fs();
        write_chain(&f, &states);
        // Uncommit the links selected by the mask (the newest link always
        // survives so at least one chain remains).
        let mut dropped = Vec::new();
        for i in 0..states.len().saturating_sub(1) {
            if drop_mask & (1 << i) != 0 {
                f.delete(&manifest_path(&format!("ck/p{i}")));
                dropped.push(i);
            }
        }
        sweep_orphans(&f);
        // Reachable: every surviving link is still valid and bitwise.
        let found = find_checkpoints(&f, Some("prop"));
        for (i, state) in states.iter().enumerate() {
            if dropped.contains(&i) { continue; }
            let prefix = format!("ck/p{i}");
            let (_, m) = found.iter().find(|(p, _)| *p == prefix).expect("survivor");
            prop_assert!(checkpoint_is_valid(&f, &prefix), "sweep broke link {}", i);
            prop_assert_eq!(
                materialize_stream(&f, &prefix, m, "u").unwrap(),
                stream_of(state),
                "sweep corrupted link {}", i
            );
        }
        // Unreachable: a dropped link's pack survives only if some
        // surviving manifest references into it.
        let referenced: std::collections::BTreeSet<String> =
            found.iter().flat_map(|(_, m)| m.referenced_packs()).collect();
        for i in dropped {
            let pack = delta_path(&format!("ck/p{i}"), "u");
            prop_assert_eq!(
                f.exists(&pack),
                referenced.contains(&pack),
                "pack {} vs reachability", i
            );
        }
    }
}
