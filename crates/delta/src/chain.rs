//! Delta-chain state: what the writer remembers between incremental
//! checkpoints, with two-phase semantics mirroring the checkpoint commit.

use std::collections::HashMap;

use drms_core::manifest::{delta_path, manifest_path, ArrayDelta, ChunkSource, CkptKind, Manifest};
use drms_core::{CoreError, Result};
use drms_darray::chunks::{
    clamp_chunk, ChunkDigest, ChunkDigests, ChunkParams, Codec, DirtyTracker,
};
use drms_piofs::Piofs;

/// Tunables of the incremental checkpoint path.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Chunk size in bytes (clamped to the supported range); `0` means
    /// "use [`drms_core::integrity_chunk`]", so delta chunks line up
    /// one-to-one with the integrity CRC chunks by default.
    pub chunk_bytes: u64,
    /// Full-rewrite epoch: at most `full_every - 1` incremental
    /// checkpoints are taken between full rewrites, bounding the restore
    /// chain length. `0` or `1` makes every checkpoint a full rewrite.
    pub full_every: u64,
    /// Whether to try per-chunk compression (a chunk is stored compressed
    /// only when the codec output is strictly smaller).
    pub compress: bool,
}

impl Default for DeltaConfig {
    fn default() -> DeltaConfig {
        DeltaConfig { chunk_bytes: 0, full_every: 8, compress: true }
    }
}

impl DeltaConfig {
    /// The defaults: integrity-aligned chunks, a full rewrite every 8th
    /// checkpoint, compression on.
    pub fn new() -> DeltaConfig {
        DeltaConfig::default()
    }

    /// Resolves the chunk geometry against the file system (the `0`
    /// default follows the integrity chunk size, so one chunking
    /// definition serves both subsystems).
    pub fn params(&self, fs: &Piofs) -> ChunkParams {
        let bytes = if self.chunk_bytes == 0 {
            drms_core::integrity_chunk(fs)
        } else {
            clamp_chunk(self.chunk_bytes)
        };
        ChunkParams::new(bytes)
    }
}

/// Fully resolved location of a committed chunk's stored bytes. Always one
/// hop: the prefix named here stores the chunk in its own pack file, so a
/// chain of any depth materializes with a single lookup per chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChunkLoc {
    pub prefix: String,
    pub array: String,
    pub offset: u64,
    pub stored_len: u32,
    pub codec: Codec,
}

impl ChunkLoc {
    /// Whether the referenced incarnation is still a committed checkpoint
    /// and its pack file still exists. A reference that fails this check is
    /// escalated to a local write — a delta must never commit pointing at
    /// history that is already gone.
    fn available(&self, fs: &Piofs) -> bool {
        fs.exists(&manifest_path(&self.prefix)) && fs.exists(&delta_path(&self.prefix, &self.array))
    }
}

/// Per-chunk staging statistics of one array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Chunks whose content changed since the last committed checkpoint
    /// (escalated references count here too — they must be re-stored).
    pub dirty: u64,
    /// Chunks carried forward by reference, unwritten.
    pub clean: u64,
    /// Dirty chunks satisfied by content-hash dedup instead of a write.
    pub dedup: u64,
    /// Pack bytes written for this array.
    pub pack_bytes: u64,
    /// Bytes saved by compression (raw minus stored, over compressed
    /// chunks).
    pub saved: u64,
}

impl StageStats {
    /// Accumulates another array's staging statistics into this total.
    pub fn add(&mut self, o: StageStats) {
        self.dirty += o.dirty;
        self.clean += o.clean;
        self.dedup += o.dedup;
        self.pack_bytes += o.pack_bytes;
        self.saved += o.saved;
    }
}

/// The writer-side state of a delta chain: committed chunk digests per
/// array, a content-addressed index of every committed chunk, and the
/// resolved location records needed to carry clean chunks forward.
///
/// All mutations are two-phase — [`DeltaChain::stage_array`] stages,
/// [`DeltaChain::commit`] promotes, [`DeltaChain::abort`] discards — so a
/// crashed checkpoint can never mark chunks clean or index chunks that were
/// never published. Chunk content lives only on the representative task
/// (rank 0, which gathers the canonical streams); the epoch counters are
/// maintained identically on every rank so the full-rewrite decision is
/// collective-deterministic.
#[derive(Debug, Default)]
pub struct DeltaChain {
    tracker: DirtyTracker,
    /// Committed content-addressed index: hash → where those bytes live.
    index: HashMap<u128, ChunkLoc>,
    staged_index: Vec<(u128, ChunkLoc)>,
    /// Committed per-array resolved records, in stream order.
    records: HashMap<String, Vec<ChunkLoc>>,
    staged_records: HashMap<String, Vec<ChunkLoc>>,
    /// Committed incremental checkpoints since the last full rewrite.
    since_full: u64,
    /// Whether the checkpoint currently being staged is a full rewrite.
    staged_full: Option<bool>,
    /// Prefix of the newest committed checkpoint of this chain.
    last_committed: Option<String>,
    /// Whether any checkpoint of this chain has committed.
    has_committed: bool,
}

impl DeltaChain {
    /// A fresh chain: the first checkpoint will be a full rewrite.
    pub fn new() -> DeltaChain {
        DeltaChain::default()
    }

    /// Committed chain depth: incremental checkpoints since the last full
    /// rewrite.
    pub fn depth(&self) -> u64 {
        self.since_full
    }

    /// Prefix of the newest committed checkpoint of this chain, if any.
    pub fn last_committed(&self) -> Option<&str> {
        self.last_committed.as_deref()
    }

    /// Opens a checkpoint attempt: decides (deterministically from the
    /// epoch counters, so every rank agrees) whether this one must be a
    /// full rewrite, and stages that decision. Must be called on every
    /// rank before any [`DeltaChain::stage_array`].
    pub fn begin(&mut self, cfg: &DeltaConfig) -> bool {
        let full = !self.has_committed || self.since_full + 1 >= cfg.full_every.max(1);
        self.staged_full = Some(full);
        full
    }

    /// Promotes everything staged: the checkpoint written to `prefix` has
    /// passed its commit point (manifest renamed into place). Every rank
    /// calls this so the epoch counters stay in lockstep.
    pub fn commit(&mut self, prefix: &str) {
        self.tracker.commit();
        for (h, loc) in self.staged_index.drain(..) {
            self.index.insert(h, loc);
        }
        for (k, v) in self.staged_records.drain() {
            self.records.insert(k, v);
        }
        match self.staged_full.take() {
            Some(true) => self.since_full = 0,
            Some(false) => self.since_full += 1,
            None => {}
        }
        self.last_committed = Some(prefix.to_string());
        self.has_committed = true;
    }

    /// Discards everything staged: the checkpoint attempt failed before
    /// its commit point, so the committed state still describes what is
    /// discoverable on the file system.
    pub fn abort(&mut self) {
        self.tracker.abort();
        self.staged_index.clear();
        self.staged_records.clear();
        self.staged_full = None;
    }

    /// Rebuilds chain state from a committed delta manifest (restart: the
    /// in-memory chain died with the previous incarnation). The manifest's
    /// chunk tables carry everything needed — digests, geometry, and
    /// resolved locations — because records are self-contained. The depth
    /// counter is recovered conservatively as the number of distinct prior
    /// incarnations referenced (a freshly full checkpoint references none).
    pub fn recover(prefix: &str, manifest: &Manifest) -> Result<DeltaChain> {
        if manifest.kind != CkptKind::DrmsDelta {
            return Err(CoreError::ManifestMismatch(format!(
                "{prefix:?} is not an incremental checkpoint; the delta chain resumes only \
                 from CkptKind::DrmsDelta manifests"
            )));
        }
        let mut chain = DeltaChain::new();
        let mut ref_prefixes = std::collections::BTreeSet::new();
        for d in &manifest.deltas {
            let params = d.params();
            let mut digests = Vec::with_capacity(d.chunks.len());
            let mut locs = Vec::with_capacity(d.chunks.len());
            for c in &d.chunks {
                digests.push(ChunkDigest { hash: c.hash, len: c.len });
                let loc = match &c.source {
                    ChunkSource::Local => ChunkLoc {
                        prefix: prefix.to_string(),
                        array: d.name.clone(),
                        offset: c.offset,
                        stored_len: c.stored_len,
                        codec: c.codec,
                    },
                    ChunkSource::Ref { prefix: rp, array: ra } => {
                        ref_prefixes.insert(rp.clone());
                        ChunkLoc {
                            prefix: rp.clone(),
                            array: ra.clone(),
                            offset: c.offset,
                            stored_len: c.stored_len,
                            codec: c.codec,
                        }
                    }
                };
                chain.index.entry(c.hash).or_insert_with(|| loc.clone());
                locs.push(loc);
            }
            chain.tracker.seed_committed(
                &d.name,
                ChunkDigests { params, stream_len: d.stream_len, digests },
            );
            chain.records.insert(d.name.clone(), locs);
        }
        chain.since_full = ref_prefixes.len() as u64;
        chain.last_committed = Some(prefix.to_string());
        chain.has_committed = true;
        Ok(chain)
    }

    /// Chunks, digests, and packs one array's canonical stream (rank 0
    /// only: the caller gathered the stream there). Returns the manifest
    /// chunk table, the pack bytes to stage, and the staging statistics.
    ///
    /// Sourcing order per chunk: carried forward by reference when clean
    /// and its stored copy is still available; deduplicated against a chunk
    /// already packed by *this* checkpoint (always, even in full mode —
    /// intra-pack dedup keeps the checkpoint self-contained); deduplicated
    /// against the committed index (delta mode only — a full rewrite must
    /// not reference prior incarnations, that is the point of the epoch
    /// bound); otherwise encoded and appended to the pack.
    #[allow(clippy::too_many_arguments)]
    pub fn stage_array(
        &mut self,
        fs: &Piofs,
        own_prefix: &str,
        array: &str,
        stream: &[u8],
        params: ChunkParams,
        full: bool,
        compress: bool,
    ) -> (ArrayDelta, Vec<u8>, StageStats) {
        use drms_core::manifest::ChunkRecord;
        use drms_darray::chunks::{digest_stream, encode_chunk};

        let digests = digest_stream(stream, params);
        let dirty: std::collections::HashSet<usize> =
            self.tracker.stage(array, digests.clone()).into_iter().collect();
        let prev = self.records.get(array).cloned();

        let mut stats = StageStats::default();
        let mut pack: Vec<u8> = Vec::new();
        let mut local_by_hash: HashMap<u128, ChunkLoc> = HashMap::new();
        let mut new_locs: Vec<ChunkLoc> = Vec::with_capacity(digests.digests.len());
        let mut chunks: Vec<ChunkRecord> = Vec::with_capacity(digests.digests.len());

        for (i, d) in digests.digests.iter().enumerate() {
            // Clean carry-forward: same content as the committed stream and
            // the stored copy is still reachable.
            if !full && !dirty.contains(&i) {
                if let Some(loc) = prev.as_ref().and_then(|p| p.get(i)) {
                    if loc.available(fs) {
                        stats.clean += 1;
                        chunks.push(record_for(d, loc, false));
                        new_locs.push(loc.clone());
                        continue;
                    }
                }
                // The committed copy vanished (retention plus sweep got
                // ahead of us): escalate to a local write.
            }
            stats.dirty += 1;
            // Intra-pack dedup: this checkpoint already stored these bytes.
            if let Some(loc) = local_by_hash.get(&d.hash) {
                stats.dedup += 1;
                chunks.push(record_for(d, loc, true));
                new_locs.push(loc.clone());
                continue;
            }
            // Cross-incarnation dedup (delta mode only).
            if !full {
                if let Some(loc) = self.index.get(&d.hash) {
                    if loc.available(fs) {
                        stats.dedup += 1;
                        chunks.push(record_for(d, loc, false));
                        new_locs.push(loc.clone());
                        continue;
                    }
                }
            }
            // Store locally.
            let (s, e) = params.range(digests.stream_len, i);
            let (codec, stored) = encode_chunk(&stream[s as usize..e as usize], compress);
            let loc = ChunkLoc {
                prefix: own_prefix.to_string(),
                array: array.to_string(),
                offset: pack.len() as u64,
                stored_len: stored.len() as u32,
                codec,
            };
            stats.pack_bytes += stored.len() as u64;
            if codec == Codec::Rle {
                stats.saved += d.len as u64 - stored.len() as u64;
            }
            pack.extend_from_slice(&stored);
            chunks.push(record_for(d, &loc, true));
            local_by_hash.insert(d.hash, loc.clone());
            self.staged_index.push((d.hash, loc.clone()));
            new_locs.push(loc);
        }
        self.staged_records.insert(array.to_string(), new_locs);

        let table = ArrayDelta {
            name: array.to_string(),
            chunk_bytes: params.chunk_bytes(),
            stream_len: digests.stream_len,
            chunks,
        };
        (table, pack, stats)
    }
}

/// Builds the manifest record for a chunk at `loc`. `local` marks chunks
/// stored in the checkpoint's own pack (the manifest's `Local` source);
/// everything else is a one-hop reference to the incarnation that stores
/// the bytes.
fn record_for(d: &ChunkDigest, loc: &ChunkLoc, local: bool) -> drms_core::manifest::ChunkRecord {
    drms_core::manifest::ChunkRecord {
        hash: d.hash,
        len: d.len,
        stored_len: loc.stored_len,
        codec: loc.codec,
        offset: loc.offset,
        source: if local {
            ChunkSource::Local
        } else {
            ChunkSource::Ref { prefix: loc.prefix.clone(), array: loc.array.clone() }
        },
    }
}
