//! PIOFS — a simulated striped parallel file system with real byte storage.
//!
//! The paper's experiments ran on the IBM PIOFS parallel file system,
//! installed on all 16 nodes of an RS/6000 SP, each node acting as both a
//! client and a server (files striped across all 16 nodes). This crate
//! substitutes for that hardware:
//!
//! * **Data** is real: logical files store actual bytes, striped (logically)
//!   across `n_servers` server nodes; reads return exactly what was written.
//! * **Time** is simulated: every I/O phase is priced by a cost model
//!   ([`config::PiofsConfig`]) with the three mechanisms the paper uses to
//!   explain its measurements (Section 5):
//!   1. **server-limited writes** — per-server streaming bandwidth, degraded
//!      by co-location interference when application tasks share the node,
//!      plus per-chunk overhead that penalizes small strided pieces;
//!   2. **client-limited reads** — prefetch makes sequential reads cheap on
//!      the server side (cached bytes are served once per unique byte), so
//!      restart scales with the number of reading clients;
//!   3. **a buffer-memory threshold** — each node has a memory ledger
//!      (OS + resident application task + server buffers); when concurrent
//!      read/write streams need more buffer than a node has left, that
//!      node's efficiency collapses, which is what makes large conventional
//!      SPMD restarts fall off a cliff (BT going 8→16 processors, LU
//!      already over the edge at 8).
//!
//! Collective I/O phases are scheduled deterministically: all tasks deposit
//! request descriptors on the exchange board, rank 0 prices the phase under
//! the file-system lock, and every task adopts its computed completion time.
//! A seeded Gaussian jitter on phase times produces the run-to-run variance
//! reported in Table 5 of the paper.

#![deny(missing_docs)]

pub mod config;
pub mod parity;
pub mod phase;
pub mod rng;
pub mod stripe;

mod fs;
mod store;

pub use config::PiofsConfig;
pub use fs::{FileInfo, Piofs, PiofsError};
pub use parity::ParityGeom;
pub use phase::{ReadAccess, ReadReq, WriteReq};
