//! Asynchronous checkpoint pipeline: COW snapshot at the SOP, background
//! flush through the memory tier and PIOFS.
//!
//! A blocking `drms_reconfig_checkpoint` holds the whole region inside the
//! checkpoint collective until the manifest rename commits — the entire
//! I/O time sits on the compute critical path. This crate splits that call
//! in two along the line the paper's SOP definition already draws: at an
//! SOP the application state **is** the data segment plus the canonical
//! array streams, so once those bytes are captured, compute may proceed
//! while durability catches up.
//!
//! * **Snapshot** ([`Snapshot::capture`]): at the SOP every task copies its
//!   pieces of the canonical streams (and rank 0 encodes the data
//!   segment). The copy is priced at memory bandwidth — this is the only
//!   checkpoint cost left on the critical path.
//! * **Flush** ([`AsyncCheckpointer`]): a background flusher drains the
//!   snapshot through the optional in-memory replica tier and down to
//!   PIOFS using the same two-phase `{prefix}.tmp` staging protocol as the
//!   blocking path, so a committed asynchronous checkpoint is **bitwise
//!   identical** to a blocking one and restores through unmodified
//!   [`drms_core::Drms::initialize`].
//! * **Backpressure**: at most [`AsyncConfig::budget`] snapshots may be in
//!   flight. A new SOP arriving while the budget is exhausted stalls until
//!   the oldest flush commits; only that residual wait is charged to
//!   compute ([`drms_obs::names::ASYNC_STALL_US`]).
//!
//! **Determinism.** There are no wall-clock races anywhere in the
//! pipeline. The flush body runs *eagerly* inside a detached virtual-time
//! region ([`drms_msg::Ctx::run_detached`]): its side effects (PIOFS
//! pricing, chaos weather, torn writes, crash points) happen in program
//! order under the run's seed, its duration `d` is measured on the
//! detached clock, and the flusher timeline is then reconstructed
//! analytically — `finish = max(t_snap, flusher_free) + d` — identically
//! on every task. Replaying a seed replays the exact interleaving.

#![deny(missing_docs)]

mod error;
mod pipeline;
mod snapshot;

pub use error::AsyncError;
pub use pipeline::{AsyncCheckpointer, AsyncConfig, AsyncReport, DeltaSummary, Flight};
pub use snapshot::{ArraySnapshot, Snapshot};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AsyncError>;

/// Seconds to whole microseconds, the unit the `async.*_us` counters use.
pub(crate) fn micros(seconds: f64) -> u64 {
    (seconds * 1e6).round() as u64
}
