use std::fmt;

use drms_darray::DarrayError;
use drms_piofs::PiofsError;

use crate::wire::WireError;

/// Errors from checkpoint and restart operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Distributed-array failure.
    Darray(DarrayError),
    /// File-system failure.
    Piofs(PiofsError),
    /// Malformed checkpoint file.
    Wire(WireError),
    /// No checkpoint exists under the given prefix.
    NoCheckpoint(
        /// The prefix searched.
        String,
    ),
    /// A conventional SPMD checkpoint was restarted with a different number
    /// of tasks — the defining limitation of the baseline scheme.
    TaskCountFixed {
        /// Tasks at checkpoint time.
        checkpointed: usize,
        /// Tasks at restart time.
        restarting: usize,
    },
    /// The checkpoint manifest disagrees with the application's declaration
    /// (array missing, element type or domain mismatch).
    ManifestMismatch(
        /// Human-readable description.
        String,
    ),
    /// Checkpoint data failed checksum verification against its manifest.
    Integrity(
        /// Human-readable description.
        String,
    ),
    /// The operation was cut short by an injected crash point (robustness
    /// campaigns): the region dies here as a unit, exactly as if the node
    /// hosting it failed, and recovery proceeds from the last committed
    /// checkpoint.
    Interrupted(
        /// The crash-point name that fired.
        String,
    ),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Darray(e) => write!(f, "distributed array: {e}"),
            CoreError::Piofs(e) => write!(f, "file system: {e}"),
            CoreError::Wire(e) => write!(f, "checkpoint format: {e}"),
            CoreError::NoCheckpoint(p) => write!(f, "no checkpoint under prefix {p:?}"),
            CoreError::TaskCountFixed { checkpointed, restarting } => write!(
                f,
                "SPMD checkpoint taken with {checkpointed} tasks cannot restart with \
                 {restarting}; only DRMS checkpoints are reconfigurable"
            ),
            CoreError::ManifestMismatch(m) => write!(f, "manifest mismatch: {m}"),
            CoreError::Integrity(m) => write!(f, "integrity failure: {m}"),
            CoreError::Interrupted(p) => write!(f, "interrupted at crash point {p:?}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DarrayError> for CoreError {
    fn from(e: DarrayError) -> Self {
        CoreError::Darray(e)
    }
}

impl From<PiofsError> for CoreError {
    fn from(e: PiofsError) -> Self {
        CoreError::Piofs(e)
    }
}

impl From<WireError> for CoreError {
    fn from(e: WireError) -> Self {
        CoreError::Wire(e)
    }
}
