//! Critical-path extraction.
//!
//! The operation window `[t0, t1]` spans the earliest span start to the
//! latest span end in the trace (control-plane instants are stamped with
//! sequence numbers, not simulated time, so only spans define the
//! window). The path is a sweep over rank 0's spans — rank 0 drives every
//! collective operation, so its timeline covers the operation — that
//! attributes **every** instant of the window to the deepest rank-0 span
//! covering it; instants no span covers become synthetic `idle/sync`
//! segments (time rank 0 spent waiting on other ranks or on collective
//! skew). By construction the segment durations sum exactly to the wall
//! time of the window.
//!
//! Each segment is then refined with its cross-task/cross-server
//! bottleneck: a `StreamWave` segment names the straggling task of that
//! wave (the rank whose same-wave span finished last), and an `IoPhase`
//! segment names the PIOFS server whose busy interval overlapping the
//! segment finished last.

use drms_obs::{Phase, ServerInterval};

use crate::spans::{deepest_covering, Span};

/// One segment of the critical path. `phase == None` marks synthetic
/// idle/sync time not covered by any rank-0 span.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Segment start in simulated seconds.
    pub start: f64,
    /// Segment end in simulated seconds.
    pub end: f64,
    /// Owning span's phase; `None` for idle/sync gaps.
    pub phase: Option<Phase>,
    /// Owning span's name; `"idle/sync"` for gaps.
    pub name: String,
    /// Id of the owning span in the span table, if any.
    pub span: Option<usize>,
    /// The task gating this segment, where the refinement found one (the
    /// straggler of a stream wave).
    pub task: Option<usize>,
    /// The PIOFS server gating this segment, where the refinement found
    /// one (last-finishing busy interval overlapping an I/O segment).
    pub server: Option<usize>,
}

impl Segment {
    /// Segment length in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Attribution label: the phase name, or `"idle/sync"` for gaps.
    pub fn phase_label(&self) -> &str {
        match self.phase {
            Some(p) => p.as_str(),
            None => "idle/sync",
        }
    }
}

/// The critical path of one traced operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Window start (earliest span start).
    pub t0: f64,
    /// Window end (latest span end).
    pub t1: f64,
    /// Contiguous segments covering `[t0, t1]` exactly.
    pub segments: Vec<Segment>,
}

impl CriticalPath {
    /// Window wall time.
    pub fn wall(&self) -> f64 {
        self.t1 - self.t0
    }

    /// Sum of segment durations. Equal to [`CriticalPath::wall`] up to
    /// floating-point rounding, by construction.
    pub fn length(&self) -> f64 {
        self.segments.iter().map(Segment::duration).sum()
    }

    /// Total attributed time per phase label, sorted by descending time
    /// then label (deterministic).
    pub fn by_phase(&self) -> Vec<(String, f64)> {
        let mut totals: Vec<(String, f64)> = Vec::new();
        for seg in &self.segments {
            let label = seg.phase_label();
            match totals.iter_mut().find(|(l, _)| l == label) {
                Some((_, t)) => *t += seg.duration(),
                None => totals.push((label.to_owned(), seg.duration())),
            }
        }
        totals.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        totals
    }

    /// The gating PIOFS server of the longest I/O segment on the path,
    /// if the path has any refined I/O segment.
    pub fn slowest_io_server(&self) -> Option<usize> {
        self.segments
            .iter()
            .filter(|s| s.server.is_some())
            .max_by(|a, b| a.duration().total_cmp(&b.duration()))
            .and_then(|s| s.server)
    }
}

/// Occurrence index of each `StreamWave` span within its `(rank, name)`
/// stream: the checkpoint pipeline emits one span per wave in time order,
/// so the k-th occurrence is wave k.
pub(crate) fn wave_index(spans: &[Span], target: &Span) -> usize {
    spans
        .iter()
        .filter(|s| {
            s.phase == Phase::StreamWave
                && s.rank == target.rank
                && s.name == target.name
                && (s.start < target.start || (s.start == target.start && s.id < target.id))
        })
        .count()
}

/// The straggler of wave `wave` of array `name`: the rank whose wave-k
/// span ends last (ties to the lower rank).
fn wave_straggler(spans: &[Span], name: &str, wave: usize) -> Option<usize> {
    spans
        .iter()
        .filter(|s| s.phase == Phase::StreamWave && s.name == name && wave_index(spans, s) == wave)
        .max_by(|a, b| a.end.total_cmp(&b.end).then(b.rank.cmp(&a.rank)))
        .map(|s| s.rank)
}

/// The PIOFS server whose busy interval overlapping `[a, b]` ends last
/// (ties to the lower server index).
fn gating_server(servers: &[ServerInterval], a: f64, b: f64) -> Option<usize> {
    servers
        .iter()
        .filter(|iv| iv.start < b && a < iv.end)
        .max_by(|x, y| x.end.total_cmp(&y.end).then(y.server.cmp(&x.server)))
        .map(|iv| iv.server)
}

/// Extracts the critical path from the span table and server intervals.
/// Returns an empty path when the trace holds no spans.
pub fn critical_path(spans: &[Span], servers: &[ServerInterval]) -> CriticalPath {
    let (Some(t0), Some(t1)) = (
        spans.iter().map(|s| s.start).min_by(f64::total_cmp),
        spans.iter().map(|s| s.end).max_by(f64::total_cmp),
    ) else {
        return CriticalPath { t0: 0.0, t1: 0.0, segments: Vec::new() };
    };

    // Elementary intervals: window bounds plus every rank-0 span boundary
    // inside the window.
    let mut cuts: Vec<f64> = vec![t0, t1];
    for s in spans.iter().filter(|s| s.rank == 0) {
        for t in [s.start, s.end] {
            if t0 < t && t < t1 {
                cuts.push(t);
            }
        }
    }
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();

    // Attribute each elementary interval, merging runs owned by the same
    // span (or equally idle).
    let mut segments: Vec<Segment> = Vec::new();
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b {
            continue;
        }
        let owner = deepest_covering(spans, 0, a, b);
        let owner_id = owner.map(|s| s.id);
        if let Some(last) = segments.last_mut() {
            if last.span == owner_id && last.end == a {
                last.end = b;
                continue;
            }
        }
        segments.push(match owner {
            Some(s) => Segment {
                start: a,
                end: b,
                phase: Some(s.phase),
                name: s.name.clone(),
                span: Some(s.id),
                task: None,
                server: None,
            },
            None => Segment {
                start: a,
                end: b,
                phase: None,
                name: "idle/sync".to_owned(),
                span: None,
                task: None,
                server: None,
            },
        });
    }

    // Bottleneck refinement.
    for seg in &mut segments {
        match seg.phase {
            Some(Phase::StreamWave) => {
                if let Some(owner) = seg.span.map(|id| &spans[id]) {
                    let wave = wave_index(spans, owner);
                    seg.task = wave_straggler(spans, &owner.name, wave);
                }
            }
            Some(Phase::IoPhase) => {
                seg.server = gating_server(servers, seg.start, seg.end);
            }
            _ => {}
        }
    }

    CriticalPath { t0, t1, segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::build_spans;
    use drms_obs::{EventKind, TraceEvent};

    fn ev(t: f64, rank: usize, phase: Phase, name: &str, kind: EventKind) -> TraceEvent {
        TraceEvent { t, rank, phase, name: name.to_owned(), kind, corr: None }
    }

    fn span_pair(out: &mut Vec<TraceEvent>, t0: f64, t1: f64, rank: usize, p: Phase, n: &str) {
        out.push(ev(t0, rank, p, n, EventKind::Begin));
        out.push(ev(t1, rank, p, n, EventKind::End));
    }

    fn sorted(mut events: Vec<TraceEvent>) -> Vec<TraceEvent> {
        events.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.rank.cmp(&b.rank)));
        events
    }

    #[test]
    fn segments_tile_the_window_exactly() {
        let mut events = Vec::new();
        span_pair(&mut events, 0.0, 1.0, 0, Phase::Init, "load");
        span_pair(&mut events, 1.0, 3.0, 0, Phase::Segment, "write");
        span_pair(&mut events, 1.5, 2.5, 0, Phase::IoPhase, "collective");
        // Gap [3, 4): rank 1 still streaming; rank 0 idle.
        span_pair(&mut events, 3.0, 4.0, 1, Phase::StreamWave, "a");
        span_pair(&mut events, 4.0, 6.0, 0, Phase::Arrays, "stream");
        let spans = build_spans(&sorted(events));
        let path = critical_path(&spans, &[]);

        assert_eq!((path.t0, path.t1), (0.0, 6.0));
        let labels: Vec<(&str, f64, f64)> =
            path.segments.iter().map(|s| (s.phase_label(), s.start, s.end)).collect();
        assert_eq!(
            labels,
            vec![
                ("init", 0.0, 1.0),
                ("segment", 1.0, 1.5),
                ("io_phase", 1.5, 2.5),
                ("segment", 2.5, 3.0),
                ("idle/sync", 3.0, 4.0),
                ("arrays", 4.0, 6.0),
            ]
        );
        assert!((path.length() - path.wall()).abs() < 1e-12);
        let by_phase = path.by_phase();
        let total: f64 = by_phase.iter().map(|(_, t)| t).sum();
        assert!((total - 6.0).abs() < 1e-12);
        assert_eq!(by_phase[0].0, "arrays");
    }

    #[test]
    fn stream_wave_segments_name_the_straggling_task() {
        let mut events = Vec::new();
        span_pair(&mut events, 0.0, 4.0, 0, Phase::Arrays, "stream");
        // Wave 0 of array "a" on three ranks; rank 2 is slowest.
        span_pair(&mut events, 0.0, 1.0, 0, Phase::StreamWave, "a");
        span_pair(&mut events, 0.0, 1.5, 1, Phase::StreamWave, "a");
        span_pair(&mut events, 0.0, 2.0, 2, Phase::StreamWave, "a");
        // Wave 1: rank 0 is slowest.
        span_pair(&mut events, 2.0, 4.0, 0, Phase::StreamWave, "a");
        span_pair(&mut events, 2.0, 3.0, 1, Phase::StreamWave, "a");
        span_pair(&mut events, 2.5, 3.5, 2, Phase::StreamWave, "a");
        let spans = build_spans(&sorted(events));
        let path = critical_path(&spans, &[]);

        let waves: Vec<&Segment> =
            path.segments.iter().filter(|s| s.phase == Some(Phase::StreamWave)).collect();
        assert_eq!(waves.len(), 2);
        assert_eq!(waves[0].task, Some(2), "wave 0 gated by rank 2");
        assert_eq!(waves[1].task, Some(0), "wave 1 gated by rank 0");
    }

    #[test]
    fn io_segments_name_the_last_finishing_server() {
        let mut events = Vec::new();
        span_pair(&mut events, 0.0, 3.0, 0, Phase::IoPhase, "collective");
        let spans = build_spans(&sorted(events));
        let servers = vec![
            ServerInterval { server: 0, name: "collective".into(), start: 0.0, end: 2.0 },
            ServerInterval { server: 1, name: "collective".into(), start: 0.0, end: 3.0 },
            ServerInterval { server: 2, name: "collective".into(), start: 5.0, end: 6.0 },
        ];
        let path = critical_path(&spans, &servers);
        assert_eq!(path.segments.len(), 1);
        assert_eq!(path.segments[0].server, Some(1), "server 2's interval is outside the segment");
        assert_eq!(path.slowest_io_server(), Some(1));
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let path = critical_path(&[], &[]);
        assert_eq!(path.segments.len(), 0);
        assert_eq!(path.wall(), 0.0);
    }
}
