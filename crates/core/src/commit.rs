//! Crash-consistent two-phase checkpoint commit.
//!
//! A checkpoint interrupted mid-write must never be mistaken for a
//! restartable state. The commit protocol makes the manifest rename the
//! single atomic commit point:
//!
//! 1. **Stage.** All checkpoint data (segment, array streams) is written
//!    under the *staging prefix* `{prefix}.tmp`, and the manifest is staged
//!    as `{prefix}.tmp/manifest.tmp`. Nothing under a staging prefix is a
//!    committed checkpoint: discovery ([`crate::find_checkpoints`]) keys on
//!    `{prefix}/manifest` paths, and `manifest.tmp` never matches.
//! 2. **Publish data.** Any previously committed manifest at `prefix` is
//!    deleted first — an explicit *uncommit*, required because
//!    [`Piofs::rename`] refuses to clobber a committed manifest — then the
//!    staged data files are renamed into the final prefix. A crash in this
//!    window leaves data without a manifest: invisible to discovery,
//!    reclaimed by [`crate::sweep_orphans`].
//! 3. **Commit.** The staged manifest is renamed to `{prefix}/manifest`.
//!    Renames are atomic namespace operations, so the checkpoint flips from
//!    "does not exist" to "complete and verified-able" in one step.
//!
//! Every helper here is a rank-0 control-plane operation (no clock): the
//! data movement was already priced while staging, and the paper's PIOFS
//! charges nothing for metadata renames.

use drms_piofs::Piofs;

use crate::drms::integrity_chunk;
use crate::manifest::{manifest_path, FileIntegrity};

/// The staging prefix for checkpoints being written to `prefix`. Chosen so
/// no staged file can collide with a committed checkpoint path and so
/// `{staging}/manifest` is never created (the staged manifest is
/// `manifest.tmp`).
pub fn staging_prefix(prefix: &str) -> String {
    format!("{prefix}.tmp")
}

/// Where a checkpoint to `prefix` stages its manifest. The `.tmp` name
/// keeps it invisible to checkpoint discovery and excluded from integrity
/// records (which skip `manifest.*`).
pub fn staged_manifest_path(prefix: &str) -> String {
    format!("{}/manifest.tmp", staging_prefix(prefix))
}

/// Computes integrity records for the checkpoint as it will exist *after*
/// publication: the union of data files staged under `{prefix}.tmp` and
/// files already committed under `prefix` (incremental checkpoints leave
/// unchanged arrays in place), with staged files winning name collisions.
/// Sorted by name so the encoded manifest is deterministic.
pub fn compute_integrity_staged(fs: &Piofs, prefix: &str) -> Vec<FileIntegrity> {
    let chunk = integrity_chunk(fs);
    let staged_dir = format!("{}/", staging_prefix(prefix));
    let final_dir = format!("{prefix}/");
    let mut by_name: std::collections::BTreeMap<String, String> = Default::default();
    for info in fs.list(&final_dir) {
        by_name.insert(info.path[final_dir.len()..].to_string(), info.path);
    }
    for info in fs.list(&staged_dir) {
        by_name.insert(info.path[staged_dir.len()..].to_string(), info.path);
    }
    by_name
        .into_iter()
        .filter_map(|(name, path)| {
            if name == "manifest" || name.starts_with("manifest.") {
                return None;
            }
            fs.peek(&path).map(|bytes| FileIntegrity::compute(&name, &bytes, chunk))
        })
        .collect()
}

/// Publishes the staged data files of a checkpoint into their final prefix.
/// Deletes any previously committed manifest at `prefix` first (the
/// explicit uncommit), so a crash between here and [`publish_manifest`]
/// leaves only manifest-less data for the orphan sweep. Returns the number
/// of files moved. Rank-0 control-plane operation.
pub fn publish_data(fs: &Piofs, prefix: &str) -> usize {
    fs.delete(&manifest_path(prefix));
    let staged_dir = format!("{}/", staging_prefix(prefix));
    let mut moved = 0;
    for info in fs.list(&staged_dir) {
        let name = &info.path[staged_dir.len()..];
        if name == "manifest.tmp" {
            continue;
        }
        if fs.rename(&info.path, &format!("{prefix}/{name}")) {
            moved += 1;
        }
    }
    moved
}

/// The commit point: renames the staged manifest to `{prefix}/manifest`,
/// atomically flipping the checkpoint to committed. Returns `false` when
/// there is no staged manifest or a committed manifest still occupies the
/// target (i.e. [`publish_data`] did not run). Rank-0 control-plane
/// operation.
pub fn publish_manifest(fs: &Piofs, prefix: &str) -> bool {
    fs.rename(&staged_manifest_path(prefix), &manifest_path(prefix))
}

/// Abandons a staged checkpoint: deletes everything under its staging
/// prefix. Crashed attempts that never get this courtesy are reclaimed by
/// [`crate::sweep_orphans`] instead. Returns the number of files removed.
pub fn abort_staged(fs: &Piofs, prefix: &str) -> usize {
    let staged_dir = format!("{}/", staging_prefix(prefix));
    let mut removed = 0;
    for info in fs.list(&staged_dir) {
        if fs.delete(&info.path) {
            removed += 1;
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_piofs::PiofsConfig;

    #[test]
    fn staging_paths_never_look_committed() {
        assert_eq!(staging_prefix("ck/1"), "ck/1.tmp");
        assert_eq!(staged_manifest_path("ck/1"), "ck/1.tmp/manifest.tmp");
        assert!(!staged_manifest_path("ck/1").ends_with("/manifest"));
    }

    #[test]
    fn publish_moves_data_then_commits_manifest() {
        let fs = Piofs::new(PiofsConfig::test_tiny(2), 1);
        fs.preload("ck/1.tmp/segment", vec![1; 10]);
        fs.preload("ck/1.tmp/array-u", vec![2; 10]);
        fs.preload("ck/1.tmp/manifest.tmp", vec![3; 10]);
        assert_eq!(publish_data(&fs, "ck/1"), 2);
        assert!(fs.exists("ck/1/segment"));
        assert!(fs.exists("ck/1/array-u"));
        assert!(!fs.exists("ck/1/manifest"), "not committed yet");
        assert!(publish_manifest(&fs, "ck/1"));
        assert!(fs.exists("ck/1/manifest"));
        assert!(fs.list("ck/1.tmp/").is_empty(), "staging fully drained");
    }

    #[test]
    fn publish_data_uncommits_a_previous_checkpoint_in_place() {
        let fs = Piofs::new(PiofsConfig::test_tiny(2), 1);
        fs.preload("ck/1/manifest", vec![9]);
        fs.preload("ck/1/segment", vec![9; 4]);
        fs.preload("ck/1.tmp/segment", vec![1; 4]);
        fs.preload("ck/1.tmp/manifest.tmp", vec![2]);
        publish_data(&fs, "ck/1");
        // The old manifest is gone (uncommitted) and the new data is in
        // place; only the manifest rename remains.
        assert!(!fs.exists("ck/1/manifest"));
        assert_eq!(fs.peek("ck/1/segment").unwrap(), vec![1; 4]);
        assert!(publish_manifest(&fs, "ck/1"));
        assert_eq!(fs.peek("ck/1/manifest").unwrap(), vec![2]);
    }

    #[test]
    fn staged_integrity_unions_committed_and_staged_files() {
        let fs = Piofs::new(PiofsConfig::test_tiny(2), 1);
        fs.preload("ck/1/array-old", vec![1; 8]);
        fs.preload("ck/1/segment", vec![2; 8]);
        fs.preload("ck/1/manifest", vec![0]);
        fs.preload("ck/1.tmp/segment", vec![3; 8]); // staged wins
        fs.preload("ck/1.tmp/manifest.tmp", vec![0]);
        let fi = compute_integrity_staged(&fs, "ck/1");
        let names: Vec<&str> = fi.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["array-old", "segment"]);
        let seg = fi.iter().find(|f| f.name == "segment").unwrap();
        assert!(seg.matches(&[3; 8]), "staged copy must win the collision");
    }

    #[test]
    fn abort_staged_drains_staging_only() {
        let fs = Piofs::new(PiofsConfig::test_tiny(2), 1);
        fs.preload("ck/1/segment", vec![1]);
        fs.preload("ck/1.tmp/segment", vec![2]);
        fs.preload("ck/1.tmp/manifest.tmp", vec![3]);
        assert_eq!(abort_staged(&fs, "ck/1"), 2);
        assert!(fs.list("ck/1.tmp/").is_empty());
        assert!(fs.exists("ck/1/segment"));
    }
}
