//! The collecting recorder.

use crate::metrics::MetricsRegistry;
use crate::recorder::Recorder;
use crate::summary::PhaseSummary;
use crate::Phase;
use parking_lot::Mutex;

/// What a [`TraceEvent`] marks: a span boundary or an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening.
    Begin,
    /// Span closing.
    End,
    /// Instantaneous event.
    Instant,
}

/// One recorded event, timestamped in simulated seconds.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub t: f64,
    /// Reporting task rank.
    pub rank: usize,
    /// Pipeline phase (export category).
    pub phase: Phase,
    /// Span or event name.
    pub name: String,
    /// Boundary kind.
    pub kind: EventKind,
}

/// Recorder that appends events to a vector under one short-lived mutex
/// and aggregates counters/gauges into a [`MetricsRegistry`]. Event order
/// is append order; consumers sort by time where needed.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
    metrics: MetricsRegistry,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, sorted by (time, rank). The rank
    /// tiebreak matters for determinism: ranks append concurrently, so at
    /// equal timestamps the raw append order races across runs. Within one
    /// (time, rank) group the stable sort keeps that rank's own append
    /// order, which preserves Begin-before-End at equal timestamps.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut ev = self.events.lock().clone();
        ev.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.rank.cmp(&b.rank)));
        ev
    }

    /// The aggregated counters and gauges.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Per-phase summary derived from the recorded rank-0 spans.
    pub fn phase_summary(&self) -> PhaseSummary {
        PhaseSummary::from_events(&self.events())
    }

    fn push(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.push(TraceEvent { t, rank, phase, name: name.to_owned(), kind: EventKind::Begin });
    }

    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.push(TraceEvent { t, rank, phase, name: name.to_owned(), kind: EventKind::End });
    }

    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.push(TraceEvent { t, rank, phase, name: name.to_owned(), kind: EventKind::Instant });
    }

    fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {
        self.metrics.counter_add(rank, name, array, delta);
    }

    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {
        self.metrics.gauge_set(name, index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_events_and_metrics() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.span_start(1.0, 0, Phase::Segment, "write");
        r.event(1.5, 1, Phase::Control, "mark");
        r.span_end(2.0, 0, Phase::Segment, "write");
        r.counter_add(0, crate::names::SEGMENT_BYTES, None, 64);
        r.gauge_set(crate::names::SERVER_BUSY, 3, 0.25);
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, EventKind::Begin);
        assert_eq!(ev[1].kind, EventKind::Instant);
        assert_eq!(ev[2].kind, EventKind::End);
        assert_eq!(r.metrics().counter_total(crate::names::SEGMENT_BYTES), 64);
        assert_eq!(r.metrics().gauge(crate::names::SERVER_BUSY, 3), Some(0.25));
    }

    #[test]
    fn events_sorted_by_simulated_time() {
        let r = TraceRecorder::new();
        r.event(5.0, 0, Phase::Control, "late");
        r.event(1.0, 1, Phase::Control, "early");
        let ev = r.events();
        assert_eq!(ev[0].name, "early");
        assert_eq!(ev[1].name, "late");
    }
}
