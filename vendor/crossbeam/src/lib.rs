//! Offline stand-in for the `crossbeam` crate (channel module only).
//!
//! Backed by `std::sync::mpsc::sync_channel`; covers `bounded`, `Sender`,
//! `Receiver`, and the error enums with the semantics the workspace relies
//! on: disconnection detection via `recv`/`try_recv`, non-blocking failed
//! sends to a dropped receiver.

/// Multi-producer single-consumer bounded channels.
pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while the buffer is full. Errors if the
        /// receiving side has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }

        /// Attempts to send without blocking.
        pub fn try_send(&self, value: T) -> Result<(), mpsc::TrySendError<T>> {
            self.0.try_send(value)
        }
    }

    /// Receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates a bounded channel with the given capacity (0 = rendezvous).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(7).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
