//! Minimal command-line parsing shared by the table binaries.

use std::path::PathBuf;

use drms_apps::Class;

/// Options common to the experiment binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Problem class (default A, the paper's setting).
    pub class: Class,
    /// Seeded repetitions per configuration (the paper uses 10).
    pub runs: usize,
    /// Processor counts to measure.
    pub pes: Vec<usize>,
    /// Directory to write a stable `BENCH_<name>.json` result into
    /// (`--json DIR`); `None` prints tables only.
    pub json: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options { class: Class::A, runs: 10, pes: vec![8, 16], json: None }
    }
}

impl Options {
    /// Parses `--class X`, `--runs N`, `--pes a,b,...` from `args`.
    /// Unknown flags abort with a usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut opts = Options::default();
        let mut it = args.peekable();
        while let Some(flag) = it.next() {
            let mut value =
                |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
            match flag.as_str() {
                "--class" => {
                    let v = value("--class");
                    opts.class =
                        Class::parse(&v).unwrap_or_else(|| usage(&format!("unknown class {v:?}")));
                }
                "--runs" => {
                    let v = value("--runs");
                    opts.runs = v
                        .parse()
                        .ok()
                        .filter(|&n| n > 0)
                        .unwrap_or_else(|| usage(&format!("bad run count {v:?}")));
                }
                "--pes" => {
                    let v = value("--pes");
                    opts.pes = v
                        .split(',')
                        .map(|s| {
                            s.trim()
                                .parse()
                                .ok()
                                .filter(|p| (1..=16).contains(p))
                                .unwrap_or_else(|| usage(&format!("bad PE count {s:?}")))
                        })
                        .collect();
                }
                "--json" => opts.json = Some(PathBuf::from(value("--json"))),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        opts
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Options {
        Options::parse(std::env::args().skip(1))
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <table-binary> [--class T|S|W|A] [--runs N] [--pes 8,16] [--json DIR]\n\
         Class A is the paper's setting (64^3 grids, full-size segments);\n\
         smaller classes scale every byte-denominated parameter together,\n\
         preserving the threshold crossings at a fraction of the wall time."
    );
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Options {
        Options::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]);
        assert_eq!(o.class, Class::A);
        assert_eq!(o.runs, 10);
        assert_eq!(o.pes, vec![8, 16]);
    }

    #[test]
    fn overrides() {
        let o = parse(&["--class", "W", "--runs", "3", "--pes", "4,8", "--json", "out"]);
        assert_eq!(o.class, Class::W);
        assert_eq!(o.runs, 3);
        assert_eq!(o.pes, vec![4, 8]);
        assert_eq!(o.json, Some(PathBuf::from("out")));
    }
}
