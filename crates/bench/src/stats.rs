//! Run statistics: the paper reports mean ± standard deviation of 10 runs.

/// Summary statistics over repeated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for a single run).
    pub sd: f64,
    /// Number of runs.
    pub n: usize,
}

impl Summary {
    /// Summarizes a set of measurements.
    pub fn of(values: &[f64]) -> Summary {
        let n = values.len();
        assert!(n > 0, "no measurements");
        let mean = values.iter().sum::<f64>() / n as f64;
        let sd = if n > 1 {
            (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
        } else {
            0.0
        };
        Summary { mean, sd, n }
    }

    /// Renders as the paper's `mean ± sd` with sensible precision.
    pub fn pm(&self) -> String {
        if self.mean >= 100.0 {
            format!("{:>5.0} ± {:>2.0}", self.mean, self.sd)
        } else {
            format!("{:>5.1} ± {:>4.1}", self.mean, self.sd)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_sd() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.sd - 2.138).abs() < 1e-3);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_run_has_zero_sd() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.sd, 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        Summary::of(&[]);
    }
}
