//! Striping arithmetic and byte-interval bookkeeping.
//!
//! A logical file is striped round-robin across `n_servers` servers in units
//! of `stripe_unit` bytes: byte `b` lives on server `(b / stripe_unit) mod
//! n_servers`. The cost model needs, for any byte interval of a request, how
//! many of its bytes land on each server; and, for shared-file phases, the
//! number of *unique* bytes touched per server (prefetched once, then served
//! from buffer).

/// Number of bytes of `[start, end)` that fall on server `k` under the given
/// striping.
pub fn striped_bytes(stripe_unit: u64, n_servers: usize, start: u64, end: u64, k: usize) -> u64 {
    if end <= start || n_servers == 0 {
        return 0;
    }
    let s = stripe_unit;
    let p = n_servers as u64;
    let cycle = s * p; // bytes per full round-robin cycle
    let k = k as u64;

    // Count bytes of [start, end) with (b / s) % p == k, i.e. bytes in
    // [c*cycle + k*s, c*cycle + (k+1)*s) for integer c.
    let count_below = |x: u64| -> u64 {
        // bytes in [0, x) on server k
        let full_cycles = x / cycle;
        let rem = x % cycle;
        let in_rem = rem.saturating_sub(k * s).min(s);
        full_cycles * s + in_rem
    };
    count_below(end) - count_below(start)
}

/// A set of disjoint, sorted byte intervals; used to count unique bytes per
/// file within one collective phase.
#[derive(Debug, Default, Clone)]
pub struct IntervalSet {
    /// Disjoint, sorted `(start, end)` half-open intervals.
    ivs: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// An empty set.
    pub fn new() -> IntervalSet {
        IntervalSet::default()
    }

    /// Inserts `[start, end)`, merging overlaps.
    pub fn insert(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let mut merged = (start, end);
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        for &(a, b) in &self.ivs {
            if b < merged.0 || a > merged.1 {
                out.push((a, b));
            } else {
                merged = (merged.0.min(a), merged.1.max(b));
            }
        }
        let pos = out.partition_point(|&(a, _)| a < merged.0);
        out.insert(pos, merged);
        self.ivs = out;
    }

    /// Total bytes covered.
    pub fn total(&self) -> u64 {
        self.ivs.iter().map(|&(a, b)| b - a).sum()
    }

    /// Bytes covered that land on server `k`.
    pub fn striped_total(&self, stripe_unit: u64, n_servers: usize, k: usize) -> u64 {
        self.ivs.iter().map(|&(a, b)| striped_bytes(stripe_unit, n_servers, a, b, k)).sum()
    }

    /// The disjoint intervals, sorted.
    pub fn intervals(&self) -> &[(u64, u64)] {
        &self.ivs
    }

    /// Whether any covered byte falls in `[start, end)`.
    pub fn overlaps(&self, start: u64, end: u64) -> bool {
        self.ivs.iter().any(|&(a, b)| a < end && b > start)
    }

    /// The covered sub-intervals of `[start, end)`, clipped to it.
    pub fn clipped(&self, start: u64, end: u64) -> Vec<(u64, u64)> {
        self.ivs
            .iter()
            .filter(|&&(a, b)| a < end && b > start)
            .map(|&(a, b)| (a.max(start), b.min(end)))
            .collect()
    }

    /// Removes `[start, end)` from the covered set, splitting intervals.
    pub fn remove(&mut self, start: u64, end: u64) {
        if end <= start {
            return;
        }
        let mut out = Vec::with_capacity(self.ivs.len() + 1);
        for &(a, b) in &self.ivs {
            if b <= start || a >= end {
                out.push((a, b));
                continue;
            }
            if a < start {
                out.push((a, start));
            }
            if b > end {
                out.push((end, b));
            }
        }
        self.ivs = out;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn striped_bytes_partition_the_interval() {
        // Any interval's bytes must be fully accounted for across servers.
        for &(s, p) in &[(4u64, 3usize), (64, 16), (1, 2), (7, 5)] {
            for &(a, b) in &[(0u64, 100u64), (13, 257), (5, 5), (999, 1024)] {
                let sum: u64 = (0..p).map(|k| striped_bytes(s, p, a, b, k)).sum();
                assert_eq!(sum, b.saturating_sub(a), "s={s} p={p} [{a},{b})");
            }
        }
    }

    #[test]
    fn striped_bytes_matches_naive() {
        let (s, p) = (4u64, 3usize);
        for a in 0..40u64 {
            for b in a..60u64 {
                for k in 0..p {
                    let naive = (a..b).filter(|&x| ((x / s) as usize % p) == k).count() as u64;
                    assert_eq!(striped_bytes(s, p, a, b, k), naive, "[{a},{b}) k={k}");
                }
            }
        }
    }

    #[test]
    fn striped_bytes_degenerate() {
        assert_eq!(striped_bytes(64, 0, 0, 100, 0), 0);
        assert_eq!(striped_bytes(64, 4, 100, 100, 2), 0);
        assert_eq!(striped_bytes(64, 4, 200, 100, 2), 0);
    }

    #[test]
    fn single_server_gets_everything() {
        assert_eq!(striped_bytes(64, 1, 10, 1000, 0), 990);
    }

    #[test]
    fn interval_set_merges() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert_eq!(s.total(), 20);
        s.insert(15, 35); // bridges the gap
        assert_eq!(s.intervals(), &[(10, 40)]);
        assert_eq!(s.total(), 30);
        s.insert(0, 5);
        assert_eq!(s.intervals(), &[(0, 5), (10, 40)]);
        s.insert(5, 10); // adjacent intervals merge
        assert_eq!(s.intervals(), &[(0, 40)]);
    }

    #[test]
    fn interval_set_ignores_empty() {
        let mut s = IntervalSet::new();
        s.insert(5, 5);
        s.insert(9, 3);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn interval_set_overlap_clip_remove() {
        let mut s = IntervalSet::new();
        s.insert(10, 20);
        s.insert(30, 40);
        assert!(s.overlaps(0, 11));
        assert!(!s.overlaps(20, 30));
        assert!(s.overlaps(35, 36));
        assert_eq!(s.clipped(15, 35), vec![(15, 20), (30, 35)]);
        assert_eq!(s.clipped(20, 30), Vec::<(u64, u64)>::new());

        s.remove(12, 35); // splits the first, truncates the second
        assert_eq!(s.intervals(), &[(10, 12), (35, 40)]);
        s.remove(0, 100);
        assert_eq!(s.total(), 0);
        s.remove(5, 5); // no-op on empty/degenerate
    }

    #[test]
    fn duplicate_inserts_count_once() {
        let mut s = IntervalSet::new();
        for _ in 0..8 {
            s.insert(0, 1000);
        }
        assert_eq!(s.total(), 1000);
        assert_eq!(
            s.striped_total(64, 4, 0)
                + s.striped_total(64, 4, 1)
                + s.striped_total(64, 4, 2)
                + s.striped_total(64, 4, 3),
            1000
        );
    }
}
