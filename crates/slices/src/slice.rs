use std::fmt;

use crate::{Order, PointCursor, Range, Result, SliceError};

/// An ordered set of `d` ranges describing a rank-`d` array section.
///
/// `|s|` (the rank) is the number of ranges; the size is the product of the
/// range sizes. Slices describe both regular sections (`l:u:s` per axis) and
/// irregular ones (index lists per axis), per Section 3.1 of the paper.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Slice {
    ranges: Vec<Range>,
}

impl Slice {
    /// A slice from per-axis ranges.
    pub fn new(ranges: Vec<Range>) -> Slice {
        Slice { ranges }
    }

    /// A rank-`d` slice covering a dense box: axis `i` spans
    /// `bounds[i].0 ..= bounds[i].1`.
    pub fn boxed(bounds: &[(i64, i64)]) -> Slice {
        Slice { ranges: bounds.iter().map(|&(l, u)| Range::contiguous(l, u)).collect() }
    }

    /// A slice that is empty along every axis of rank `rank`.
    pub fn empty(rank: usize) -> Slice {
        Slice { ranges: (0..rank).map(|_| Range::empty()).collect() }
    }

    /// The rank (number of axes) of the slice.
    pub fn rank(&self) -> usize {
        self.ranges.len()
    }

    /// The range along axis `ax`.
    pub fn range(&self, ax: usize) -> &Range {
        &self.ranges[ax]
    }

    /// All ranges, in axis order.
    pub fn ranges(&self) -> &[Range] {
        &self.ranges
    }

    /// Number of elements: the product of the per-axis range sizes.
    pub fn size(&self) -> usize {
        self.ranges.iter().map(Range::len).product()
    }

    /// Whether the slice contains no points.
    ///
    /// A rank-0 slice contains exactly one (empty) point and is *not* empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().any(Range::is_empty)
    }

    /// Per-axis extents (number of elements along each axis).
    pub fn extents(&self) -> Vec<usize> {
        self.ranges.iter().map(Range::len).collect()
    }

    /// Intersection of two slices (`s * t` in the paper): the slice of the
    /// axis-wise range intersections. Fails on rank mismatch.
    pub fn intersect(&self, other: &Slice) -> Result<Slice> {
        if self.rank() != other.rank() {
            return Err(SliceError::RankMismatch { left: self.rank(), right: other.rank() });
        }
        Ok(Slice {
            ranges: self.ranges.iter().zip(&other.ranges).map(|(a, b)| a.intersect(b)).collect(),
        })
    }

    /// Whether the point `p` lies inside the slice.
    pub fn contains(&self, p: &[i64]) -> Result<bool> {
        if p.len() != self.rank() {
            return Err(SliceError::PointRankMismatch { rank: self.rank(), point: p.len() });
        }
        Ok(self.ranges.iter().zip(p).all(|(r, &v)| r.contains(v)))
    }

    /// Whether every point of `self` is contained in `other`.
    pub fn is_subset_of(&self, other: &Slice) -> bool {
        if self.rank() != other.rank() {
            return false;
        }
        if self.is_empty() {
            return true;
        }
        self.ranges.iter().zip(&other.ranges).all(|(a, b)| a.is_subset_of(b))
    }

    /// The position of point `p` in the stream linearization of this slice
    /// under `order`: the number of slice points that are streamed before it.
    pub fn stream_position(&self, p: &[i64], order: Order) -> Result<Option<usize>> {
        if p.len() != self.rank() {
            return Err(SliceError::PointRankMismatch { rank: self.rank(), point: p.len() });
        }
        let mut pos = 0usize;
        let mut stride = 1usize;
        for ax in order.axes_fast_to_slow(self.rank()) {
            let r = &self.ranges[ax];
            match r.position(p[ax]) {
                Some(k) => pos += k * stride,
                None => return Ok(None),
            }
            stride *= r.len();
        }
        Ok(Some(pos))
    }

    /// Cursor over the points of the slice in stream order under `order`.
    pub fn points(&self, order: Order) -> PointCursor<'_> {
        PointCursor::new(self, order)
    }

    /// Splits the slice into stream-order lower and upper halves.
    ///
    /// The split happens along the slowest-varying axis with more than one
    /// element (so the two streams concatenate to the original stream). When
    /// the slice holds at most one point, the "upper half" is empty.
    pub fn split_half(&self, order: Order) -> (Slice, Slice) {
        match order.split_axis(self) {
            Some(ax) => {
                let (lo, hi) = self.ranges[ax].split_half();
                let mut lo_s = self.clone();
                let mut hi_s = self.clone();
                lo_s.ranges[ax] = lo;
                hi_s.ranges[ax] = hi;
                (lo_s, hi_s)
            }
            None => (self.clone(), Slice::empty(self.rank())),
        }
    }

    /// Replaces the range along axis `ax`, returning a new slice.
    pub fn with_range(&self, ax: usize, r: Range) -> Slice {
        let mut s = self.clone();
        s.ranges[ax] = r;
        s
    }
}

impl fmt::Debug for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Slice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_rank() {
        let s = Slice::boxed(&[(0, 3), (0, 4)]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.size(), 20);
        assert_eq!(s.extents(), vec![4, 5]);
    }

    #[test]
    fn paper_figure2_slice() {
        // s = ((8, 9, 10, 12), (16, 18, 19, 20, 22))
        let s = Slice::new(vec![
            Range::from_indices(&[8, 9, 10, 12]).unwrap(),
            Range::from_indices(&[16, 18, 19, 20, 22]).unwrap(),
        ]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.size(), 20);
        assert!(s.contains(&[10, 19]).unwrap());
        assert!(!s.contains(&[11, 19]).unwrap());
    }

    #[test]
    fn intersection_axiswise() {
        let a = Slice::boxed(&[(0, 10), (0, 10)]);
        let b = Slice::boxed(&[(5, 15), (8, 9)]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, Slice::boxed(&[(5, 10), (8, 9)]));
        let c = Slice::boxed(&[(11, 12), (0, 10)]);
        assert!(a.intersect(&c).unwrap().is_empty());
    }

    #[test]
    fn intersection_rank_mismatch() {
        let a = Slice::boxed(&[(0, 1)]);
        let b = Slice::boxed(&[(0, 1), (0, 1)]);
        assert!(matches!(a.intersect(&b), Err(SliceError::RankMismatch { .. })));
    }

    #[test]
    fn empty_detection() {
        assert!(Slice::boxed(&[(3, 2), (0, 5)]).is_empty());
        assert!(!Slice::boxed(&[(0, 0)]).is_empty());
        assert!(!Slice::new(vec![]).is_empty(), "rank-0 slice holds one point");
        assert_eq!(Slice::new(vec![]).size(), 1);
    }

    #[test]
    fn subset_relation() {
        let inner = Slice::boxed(&[(2, 3), (2, 3)]);
        let outer = Slice::boxed(&[(0, 5), (0, 5)]);
        assert!(inner.is_subset_of(&outer));
        assert!(!outer.is_subset_of(&inner));
        assert!(Slice::empty(2).is_subset_of(&inner));
    }

    #[test]
    fn stream_position_column_major() {
        let s = Slice::boxed(&[(0, 2), (0, 1)]); // 3 x 2
                                                 // Column-major order: (0,0) (1,0) (2,0) (0,1) (1,1) (2,1)
        assert_eq!(s.stream_position(&[0, 0], Order::ColumnMajor).unwrap(), Some(0));
        assert_eq!(s.stream_position(&[2, 0], Order::ColumnMajor).unwrap(), Some(2));
        assert_eq!(s.stream_position(&[0, 1], Order::ColumnMajor).unwrap(), Some(3));
        assert_eq!(s.stream_position(&[2, 1], Order::ColumnMajor).unwrap(), Some(5));
        assert_eq!(s.stream_position(&[3, 0], Order::ColumnMajor).unwrap(), None);
    }

    #[test]
    fn stream_position_row_major() {
        let s = Slice::boxed(&[(0, 2), (0, 1)]);
        assert_eq!(s.stream_position(&[0, 0], Order::RowMajor).unwrap(), Some(0));
        assert_eq!(s.stream_position(&[0, 1], Order::RowMajor).unwrap(), Some(1));
        assert_eq!(s.stream_position(&[1, 0], Order::RowMajor).unwrap(), Some(2));
    }

    #[test]
    fn stream_position_matches_cursor_enumeration() {
        let s = Slice::new(vec![
            Range::from_indices(&[1, 4, 5]).unwrap(),
            Range::strided(0, 8, 2).unwrap(),
            Range::contiguous(7, 8),
        ]);
        for order in [Order::ColumnMajor, Order::RowMajor] {
            let mut expected = 0usize;
            s.points(order).for_each(|p| {
                assert_eq!(s.stream_position(p, order).unwrap(), Some(expected));
                expected += 1;
            });
            assert_eq!(expected, s.size());
        }
    }

    #[test]
    fn split_half_stream_concatenation() {
        let s = Slice::boxed(&[(0, 4), (0, 3)]);
        for order in [Order::ColumnMajor, Order::RowMajor] {
            let (lo, hi) = s.split_half(order);
            assert_eq!(lo.size() + hi.size(), s.size());
            let mut cat = Vec::new();
            lo.points(order).for_each(|p| cat.push(p.to_vec()));
            hi.points(order).for_each(|p| cat.push(p.to_vec()));
            let mut full = Vec::new();
            s.points(order).for_each(|p| full.push(p.to_vec()));
            assert_eq!(cat, full, "order {order:?}");
        }
    }

    #[test]
    fn split_half_single_point() {
        let s = Slice::boxed(&[(3, 3), (4, 4)]);
        let (lo, hi) = s.split_half(Order::ColumnMajor);
        assert_eq!(lo, s);
        assert!(hi.is_empty());
    }

    #[test]
    fn display_formats() {
        let s = Slice::new(vec![
            Range::contiguous(0, 4),
            Range::strided(0, 8, 2).unwrap(),
            Range::from_indices(&[1, 5, 6]).unwrap(),
        ]);
        assert_eq!(format!("{s}"), "(0:4, 0:8:2, [1, 5, 6])");
    }
}
