//! Timing and size reports for checkpoint/restart operations — the raw
//! material of Tables 5 and 6 of the paper.

use drms_obs::{names, MetricsRegistry, Phase, PhaseSummary};

/// Breakdown of one checkpoint or restart operation, in simulated seconds
/// and bytes. All times are synchronized maxima across tasks (the paper
/// reports blocking operations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpBreakdown {
    /// Initialization time (restart only: loading the application text).
    pub init: f64,
    /// Data-segment phase time.
    pub segment: f64,
    /// Distributed-arrays phase time.
    pub arrays: f64,
    /// Bytes in the data-segment component.
    pub segment_bytes: u64,
    /// Bytes in the array streams component.
    pub array_bytes: u64,
}

impl OpBreakdown {
    /// Rebuilds a breakdown from a recorded trace: phase times come from the
    /// rank-0 spans in `summary`, byte totals from the metrics registry. The
    /// run-time emits those spans with the very timestamps that build its
    /// returned `OpBreakdown`, so for a trace covering exactly one operation
    /// this reconstruction is equal to the returned value — the report and
    /// the trace cannot disagree.
    pub fn from_trace(summary: &PhaseSummary, metrics: &MetricsRegistry) -> OpBreakdown {
        OpBreakdown {
            init: summary.total(Phase::Init),
            segment: summary.total(Phase::Segment),
            arrays: summary.total(Phase::Arrays),
            segment_bytes: metrics.counter_total(names::SEGMENT_BYTES),
            array_bytes: metrics.counter_total(names::ARRAY_BYTES),
        }
    }

    /// Total operation time.
    pub fn total(&self) -> f64 {
        self.init + self.segment + self.arrays
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.segment_bytes + self.array_bytes
    }

    /// Aggregate rate in MB/s (SI megabytes, matching the paper's tables:
    /// its byte counts in Table 4 divided by its MB figures give 10^6).
    /// Zero when no time elapsed (an empty operation moves no data).
    pub fn rate_mb_s(&self) -> f64 {
        ratio(mb(self.total_bytes()), self.total())
    }

    /// Segment-phase rate in MB/s. Zero when the phase took no time.
    pub fn segment_rate_mb_s(&self) -> f64 {
        ratio(mb(self.segment_bytes), self.segment)
    }

    /// Array-phase rate in MB/s. Zero when the phase took no time.
    pub fn array_rate_mb_s(&self) -> f64 {
        ratio(mb(self.array_bytes), self.arrays)
    }

    /// Segment phase as a percentage of total time (zero for an empty
    /// operation).
    pub fn segment_pct(&self) -> f64 {
        ratio(100.0 * self.segment, self.total())
    }

    /// Array phase as a percentage of total time (zero for an empty
    /// operation).
    pub fn arrays_pct(&self) -> f64 {
        ratio(100.0 * self.arrays, self.total())
    }
}

/// `num / den`, defined as 0.0 when `den` is zero so that degenerate
/// breakdowns report zero rates instead of NaN/inf.
fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Bytes as the paper's (SI) MBytes.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let b = OpBreakdown {
            init: 1.0,
            segment: 4.0,
            arrays: 5.0,
            segment_bytes: 40_000_000,
            array_bytes: 60_000_000,
        };
        assert_eq!(b.total(), 10.0);
        assert_eq!(b.total_bytes(), 100_000_000);
        assert!((b.rate_mb_s() - 10.0).abs() < 1e-12);
        assert!((b.segment_rate_mb_s() - 10.0).abs() < 1e-12);
        assert!((b.array_rate_mb_s() - 12.0).abs() < 1e-12);
        assert!((b.segment_pct() - 40.0).abs() < 1e-12);
        assert!((b.arrays_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mb_uses_si_megabytes() {
        assert_eq!(mb(1_000_000), 1.0);
        assert_eq!(mb(0), 0.0);
    }

    #[test]
    fn zero_duration_breakdown_reports_zero_rates_not_nan() {
        let b = OpBreakdown::default();
        assert_eq!(b.rate_mb_s(), 0.0);
        assert_eq!(b.segment_rate_mb_s(), 0.0);
        assert_eq!(b.array_rate_mb_s(), 0.0);
        assert_eq!(b.segment_pct(), 0.0);
        assert_eq!(b.arrays_pct(), 0.0);

        // Bytes without time (free cost model) must not yield infinities.
        let b = OpBreakdown { segment_bytes: 1_000_000, ..OpBreakdown::default() };
        assert_eq!(b.rate_mb_s(), 0.0);
        assert_eq!(b.segment_rate_mb_s(), 0.0);
    }

    #[test]
    fn from_trace_rebuilds_breakdown_from_spans_and_counters() {
        use drms_obs::{EventKind, TraceEvent};

        let events = vec![
            TraceEvent {
                t: 0.0,
                rank: 0,
                phase: Phase::Segment,
                name: "s".into(),
                kind: EventKind::Begin,
                corr: None,
            },
            TraceEvent {
                t: 4.0,
                rank: 0,
                phase: Phase::Segment,
                name: "s".into(),
                kind: EventKind::End,
                corr: None,
            },
            TraceEvent {
                t: 4.0,
                rank: 0,
                phase: Phase::Arrays,
                name: "a".into(),
                kind: EventKind::Begin,
                corr: None,
            },
            TraceEvent {
                t: 9.0,
                rank: 0,
                phase: Phase::Arrays,
                name: "a".into(),
                kind: EventKind::End,
                corr: None,
            },
        ];
        let summary = PhaseSummary::from_events(&events);
        let metrics = MetricsRegistry::default();
        metrics.counter_add(0, names::SEGMENT_BYTES, None, 40_000_000);
        metrics.counter_add(0, names::ARRAY_BYTES, None, 60_000_000);

        let b = OpBreakdown::from_trace(&summary, &metrics);
        let want = OpBreakdown {
            init: 0.0,
            segment: 4.0,
            arrays: 5.0,
            segment_bytes: 40_000_000,
            array_bytes: 60_000_000,
        };
        assert_eq!(b, want);
    }
}
