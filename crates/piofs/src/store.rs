//! In-memory byte store for logical files.

/// Contents and identity of one logical file.
#[derive(Debug)]
pub(crate) struct FileData {
    /// Interned identity, stable for the life of the namespace entry.
    pub id: u64,
    /// The file's bytes, contiguous. Striping is a property of the cost
    /// model, not of the storage representation.
    pub bytes: Vec<u8>,
}

impl FileData {
    pub fn new(id: u64) -> FileData {
        FileData { id, bytes: Vec::new() }
    }

    /// Writes `data` at `offset`, zero-extending the file as needed.
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let offset = offset as usize;
        let end = offset + data.len();
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset..end].copy_from_slice(data);
    }

    /// Reads `len` bytes at `offset`; `None` if out of bounds.
    pub fn read_at(&self, offset: u64, len: u64) -> Option<Vec<u8>> {
        let offset = offset as usize;
        let len = len as usize;
        let end = offset.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        Some(self.bytes[offset..end].to_vec())
    }

    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_extends_with_zeros() {
        let mut f = FileData::new(0);
        f.write_at(4, &[1, 2]);
        assert_eq!(f.len(), 6);
        assert_eq!(f.read_at(0, 6).unwrap(), vec![0, 0, 0, 0, 1, 2]);
    }

    #[test]
    fn overwrite_in_place() {
        let mut f = FileData::new(0);
        f.write_at(0, &[1, 2, 3, 4]);
        f.write_at(1, &[9, 9]);
        assert_eq!(f.read_at(0, 4).unwrap(), vec![1, 9, 9, 4]);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn read_out_of_bounds_is_none() {
        let mut f = FileData::new(0);
        f.write_at(0, &[1, 2, 3]);
        assert!(f.read_at(1, 3).is_none());
        assert!(f.read_at(3, 1).is_none());
        assert_eq!(f.read_at(3, 0).unwrap(), Vec::<u8>::new());
        assert!(f.read_at(u64::MAX, 2).is_none());
    }
}
