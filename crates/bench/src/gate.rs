//! Gate conventions for the bench binaries.
//!
//! Every bench binary that asserts invariants is a CI gate. The two rules
//! (the `failure_campaign` convention): a failing gate exits with a
//! **non-zero status the runner can distinguish from a crash** (1, not the
//! panic runtime's 101), and it prints a **one-command repro line** so the
//! failure can be rerun without digging through CI definitions.
//!
//! * [`run_gated`] wraps a binary's body: any assertion failure or panic
//!   inside it prints the repro line and exits 1.
//! * [`Gate`] collects soft check failures across a run and reports them
//!   all at the end, instead of stopping at the first.
//! * [`baseline_gate`] is the bench-baseline regression check: compare a
//!   [`BenchResult`](crate::json::BenchResult) against a committed
//!   baseline file with a relative tolerance, with `--bless` rewriting
//!   the baseline.

use std::path::Path;

use crate::json::{compare, BenchResult};

/// Runs `body`, turning any panic (failed `assert!`, `expect`, ...) into
/// a clean gate failure: the panic message has already been printed by
/// the panic hook; this adds the repro line and exits with status 1.
pub fn run_gated(label: &str, repro: &str, body: impl FnOnce() + std::panic::UnwindSafe) {
    if std::panic::catch_unwind(body).is_err() {
        eprintln!("\n{label}: FAILED (assertion above)");
        eprintln!("reproduce with: {repro}");
        std::process::exit(1);
    }
}

/// Collects check failures across a run; reports them together.
#[derive(Debug)]
pub struct Gate {
    label: String,
    repro: String,
    failures: Vec<String>,
}

impl Gate {
    /// A gate named `label`, reproducible with the one-liner `repro`.
    pub fn new(label: &str, repro: &str) -> Gate {
        Gate { label: label.to_owned(), repro: repro.to_owned(), failures: Vec::new() }
    }

    /// Records a failure unless `ok` holds.
    pub fn check(&mut self, ok: bool, msg: impl ToString) {
        if !ok {
            self.failures.push(msg.to_string());
        }
    }

    /// Records an unconditional failure.
    pub fn fail(&mut self, msg: impl ToString) {
        self.failures.push(msg.to_string());
    }

    /// Whether every check so far passed.
    pub fn is_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Prints the verdict; on any failure prints every message plus the
    /// repro line and exits 1.
    pub fn finish(self) {
        if self.failures.is_empty() {
            println!("{}: PASS", self.label);
            return;
        }
        eprintln!("\n{}: FAILED ({} check(s))", self.label, self.failures.len());
        for f in &self.failures {
            eprintln!("  - {f}");
        }
        eprintln!("reproduce with: {}", self.repro);
        std::process::exit(1);
    }
}

/// The bench-baseline regression gate. Compares `result` against the
/// baseline file at `path` with relative tolerance `tol`:
///
/// * `bless` — (re)writes the baseline from `result` and passes;
/// * no baseline file — fails, telling the operator to `--bless`;
/// * otherwise — every baseline metric must exist in `result` within
///   `±tol` relative, parameters must match, and `result` must not have
///   grown metrics the baseline lacks. Failures all print, then the
///   repro line, then exit 1.
pub fn baseline_gate(result: &BenchResult, path: &Path, tol: f64, bless: bool, repro: &str) {
    let label = format!("baseline gate [{}]", path.display());
    if bless {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).expect("create baseline directory");
        }
        std::fs::write(path, result.to_json()).expect("write baseline");
        println!("{label}: blessed from current run");
        return;
    }
    let mut gate = Gate::new(&label, repro);
    match std::fs::read_to_string(path) {
        Err(e) => gate.fail(format!("no baseline at {} ({e}); rerun with --bless", path.display())),
        Ok(text) => match BenchResult::parse(&text) {
            Err(e) => gate.fail(format!("unparseable baseline: {e}; rerun with --bless")),
            Ok(baseline) => {
                for f in compare(result, &baseline, tol) {
                    gate.fail(f);
                }
            }
        },
    }
    if gate.is_ok() {
        println!("{label}: PASS (tolerance ±{:.1}%)", 100.0 * tol);
    }
    gate.finish();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_collects_failures() {
        let mut g = Gate::new("t", "cargo run");
        g.check(true, "fine");
        assert!(g.is_ok());
        g.check(false, "broken");
        g.fail("also broken");
        assert!(!g.is_ok());
        // finish() would exit(1); the exit path is covered by the CI
        // perturbation check on the committed baselines.
    }

    #[test]
    fn baseline_gate_blesses_and_passes() {
        let dir = std::env::temp_dir().join(format!("drms-gate-{}", std::process::id()));
        let path = dir.join("BENCH_t.json");
        let mut r = BenchResult::new("t");
        r.metric("x", 1.0);
        baseline_gate(&r, &path, 0.05, true, "cargo run");
        // Within tolerance: passes without exiting.
        let mut near = BenchResult::new("t");
        near.metric("x", 1.04);
        baseline_gate(&near, &path, 0.05, false, "cargo run");
        std::fs::remove_dir_all(&dir).ok();
    }
}
