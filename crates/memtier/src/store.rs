//! Collective store into the memory tier and verified spill to PIOFS.
//!
//! `store_checkpoint` is the diskless sibling of
//! `Drms::reconfig_checkpoint`: the same SOP numbering, the same canonical
//! stream pieces, the same manifest encoding — but the pieces land in node
//! memory (owner copy plus `r` replicas scattered over the interconnect)
//! instead of PIOFS files. `spill_checkpoint` later writes the resident
//! pieces out to the same files the direct checkpoint path would have
//! produced, stamps the manifest with file-integrity records, and verifies
//! the result end-to-end before calling the checkpoint durable — so a
//! spilled checkpoint is bitwise indistinguishable from one written through
//! PIOFS directly.
//!
//! All replication traffic moves through [`drms_msg::Ctx::alltoallv`], so
//! its virtual-time price follows the same deterministic cost model as
//! every other message in the simulation.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use drms_core::manifest::{manifest_path, ArrayEntry, CkptKind, Manifest};
use drms_core::segment::{DataSegment, Region, RegionKind};
use drms_core::wire::{crc32, Reader, Writer};
use drms_core::{compute_integrity, encode_locals, CheckpointArray, CoreError, Drms};
use drms_msg::Ctx;
use drms_obs::{names, Phase};
use drms_piofs::{Piofs, WriteReq};

use crate::placement;
use crate::tier::MemTier;
use crate::{MemTierError, Result};

/// Name of the data-segment stream within a tier entry (matches the
/// `{prefix}/segment` file of the PIOFS layout).
pub const SEGMENT_FILE: &str = "segment";

/// What one memory-tier store did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreReport {
    /// Wall-clock (simulated) seconds from first to last barrier.
    pub seconds: f64,
    /// SOP number the checkpoint was taken at.
    pub sop: u64,
    /// Unique stream bytes captured (segment plus all arrays).
    pub bytes: u64,
    /// Bytes scattered to replica nodes over the interconnect.
    pub replica_bytes: u64,
    /// Stream pieces captured across all tasks.
    pub pieces: u64,
}

/// What one spill to PIOFS did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpillReport {
    /// Wall-clock (simulated) seconds from first to last barrier.
    pub seconds: f64,
    /// Data bytes written to PIOFS (manifest excluded).
    pub bytes: u64,
}

/// Stream-file name of a checkpoint array within a tier entry.
pub fn array_file(name: &str) -> String {
    format!("array-{name}")
}

/// One pre-captured stream piece handed to [`store_captured`]: the tier
/// file it belongs to, its stream offset, its bytes and their CRC. The
/// asynchronous checkpoint pipeline captures these at the SOP (pricing the
/// copy there) and replicates them into the tier from its background
/// flusher.
#[derive(Debug, Clone)]
pub struct CapturedPiece {
    /// Tier stream file ([`SEGMENT_FILE`] or [`array_file`]).
    pub file: String,
    /// Byte offset within the stream.
    pub offset: u64,
    /// The piece's bytes (shared — the tier never duplicates per holder).
    pub data: Arc<Vec<u8>>,
    /// CRC32 of `data`.
    pub crc: u32,
}

/// Whether a store into `tier` can satisfy its replication factor on the
/// calling region's node set. A pure function of the region topology every
/// task shares — no communication — so jobs can agree to degrade to a
/// direct PIOFS checkpoint when the region has shrunk below `replicas + 1`
/// distinct nodes.
pub fn store_feasible(ctx: &Ctx, tier: &MemTier) -> bool {
    let (_, nodes) = node_map(ctx);
    placement::replication_feasible(nodes.len(), tier.replicas())
}

fn node_map(ctx: &Ctx) -> (BTreeMap<usize, usize>, Vec<usize>) {
    // Lowest rank per node does the tier's node-level work (receiving
    // replicas, writing spill pieces).
    let mut rank_of_node = BTreeMap::new();
    for r in 0..ctx.ntasks() {
        rank_of_node.entry(ctx.node_of(r)).or_insert(r);
    }
    let nodes = rank_of_node.keys().copied().collect();
    (rank_of_node, nodes)
}

/// `drms_reconfig_checkpoint` into the memory tier (collective): advances
/// the SOP, captures the representative data segment (rank 0) and every
/// array's canonical stream pieces, keeps the owner copy on each piece's
/// node, and scatters `tier.replicas()` additional copies to distinct other
/// nodes in one priced `alltoallv`. The entry is sealed under `prefix` with
/// the same manifest a PIOFS checkpoint would carry (integrity records
/// empty — per-piece CRCs protect resident data).
///
/// Errors before any communication when the replication factor is not
/// satisfiable on the region's node set, identically on every task.
pub fn store_checkpoint(
    ctx: &mut Ctx,
    tier: &MemTier,
    prefix: &str,
    drms: &mut Drms,
    base_segment: &DataSegment,
    arrays: &[&dyn CheckpointArray],
) -> Result<StoreReport> {
    let sop = drms.advance_sop();
    let (rank_of_node, node_set) = node_map(ctx);
    if !placement::replication_feasible(node_set.len(), tier.replicas()) {
        return Err(MemTierError::ReplicationUnsatisfiable {
            replicas: tier.replicas(),
            nodes: node_set.len(),
        });
    }
    ctx.barrier();
    let t0 = ctx.now();
    // A fresh store replaces any previous entry under this prefix: a
    // different task count means a different piece plan, and plans must
    // never mix.
    if ctx.rank() == 0 {
        tier.begin(prefix);
    }
    ctx.barrier();

    // Capture this task's pieces: the representative segment on rank 0,
    // then every array's canonical stream pieces.
    let cfg = drms.cfg().clone();
    let io = cfg.io.resolve(ctx.ntasks());
    let mut local: Vec<(String, u64, Arc<Vec<u8>>, u32)> = Vec::new();
    let mut seg_len = 0u64;
    if ctx.rank() == 0 {
        let region = Region {
            name: "local-sections".to_string(),
            kind: RegionKind::LocalSections,
            bytes: encode_locals(arrays, cfg.fixed_local_bytes),
        };
        let bytes = base_segment.encode_with_region(Some(&region));
        seg_len = bytes.len() as u64;
        let mut off = 0u64;
        for chunk in bytes.chunks(tier.piece_bytes()) {
            let data = Arc::new(chunk.to_vec());
            let crc = crc32(&data);
            local.push((SEGMENT_FILE.to_string(), off, data, crc));
            off += chunk.len() as u64;
        }
    }
    for a in arrays {
        let file = array_file(a.array_name());
        for p in a.stream_pieces(ctx, io)? {
            let data = Arc::new(p.data);
            let crc = crc32(&data);
            local.push((file.clone(), p.offset, data, crc));
        }
    }
    // Capturing into tier memory is a local copy; price it as one.
    let my_bytes: u64 = local.iter().map(|(_, _, d, _)| d.len() as u64).sum();
    let memcpy_bw = ctx.cost().memcpy_bw;
    ctx.charge(my_bytes as f64 / memcpy_bw);

    let my_node = ctx.node();
    for (file, off, data, crc) in &local {
        tier.insert_piece(prefix, file, *off, data, *crc, my_node)?;
    }

    // Replication scatter: one priced alltoallv carrying every replica,
    // addressed to the lowest rank of each chosen node. Placement keys on
    // (file, offset) so the rotation spreads load across pieces.
    let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); ctx.ntasks()];
    let mut my_replica_bytes = 0u64;
    for (file, off, data, crc) in &local {
        let key = u64::from(crc32(file.as_bytes())).wrapping_add(*off);
        for node in placement::replica_nodes(my_node, &node_set, tier.replicas(), key)? {
            let dst = rank_of_node[&node];
            let mut w = Writer::new();
            w.string(file);
            w.u64(*off);
            w.u32(*crc);
            w.blob(data);
            outgoing[dst].extend(w.finish());
            my_replica_bytes += data.len() as u64;
        }
    }
    let incoming = ctx.alltoallv(outgoing);
    for src in 0..ctx.ntasks() {
        if src == ctx.rank() {
            continue;
        }
        let buf = incoming.from(src).to_vec();
        let mut r = Reader::new(&buf);
        while r.remaining() > 0 {
            let file = r.string().map_err(CoreError::from)?;
            let off = r.u64().map_err(CoreError::from)?;
            let crc = r.u32().map_err(CoreError::from)?;
            let data = Arc::new(r.blob().map_err(CoreError::from)?);
            tier.insert_piece(prefix, &file, off, &data, crc, my_node)?;
        }
    }

    // Free rendezvous for the report totals (deterministic, no clock cost).
    let (per_task, _) = ctx.exchange((my_bytes, my_replica_bytes, local.len() as u64));
    let bytes: u64 = per_task.iter().map(|x| x.0).sum();
    let replica_bytes: u64 = per_task.iter().map(|x| x.1).sum();
    let pieces: u64 = per_task.iter().map(|x| x.2).sum();

    // All inserts done: rank 0 seals (identity + coverage check) and the
    // outcome is shared so every task fails identically.
    ctx.barrier();
    let seal_err: Option<String> = if ctx.rank() == 0 {
        let manifest = Manifest {
            app: cfg.app.clone(),
            kind: CkptKind::Drms,
            ntasks: ctx.ntasks(),
            sop,
            arrays: arrays
                .iter()
                .map(|a| ArrayEntry {
                    name: a.array_name().to_string(),
                    elem_code: a.elem_code(),
                    domain: a.domain().clone(),
                    order: a.order(),
                })
                .collect(),
            integrity: Vec::new(),
            deltas: Vec::new(),
        };
        let mut file_lens = vec![(SEGMENT_FILE.to_string(), seg_len)];
        for a in arrays {
            file_lens.push((array_file(a.array_name()), a.stream_bytes()));
        }
        tier.seal(prefix, &cfg.app, sop, manifest.encode(), &file_lens).err().map(|e| e.to_string())
    } else {
        None
    };
    let (votes, t) = ctx.exchange(seal_err);
    ctx.advance_to(t);
    ctx.barrier();
    let t1 = ctx.now();

    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.span_start(t0, 0, Phase::MemTier, "store");
        rec.span_end(t1, 0, Phase::MemTier, "store");
        rec.event(t1, 0, Phase::MemTier, &format!("MemTierStore {prefix}"));
        rec.counter_add_at(t1, 0, names::MEMTIER_STORE_BYTES, None, bytes);
        rec.counter_add_at(t1, 0, names::MEMTIER_REPLICA_BYTES, None, replica_bytes);
        if let Some(r) = tier.min_replicas(prefix) {
            rec.gauge_set_at(t1, 0, names::MEMTIER_REPLICAS, 0, r as f64);
        }
    }
    if let Some(err) = votes[0].clone() {
        return Err(MemTierError::Incomplete(err));
    }
    Ok(StoreReport { seconds: t1 - t0, sop, bytes, replica_bytes, pieces })
}

/// Replicates **pre-captured** pieces into the tier and seals the entry
/// (collective): the capture itself — gathering canonical streams and
/// pricing the copy — already happened at the caller's snapshot point, so
/// this function only moves bytes: owner copies land on each piece's node,
/// `tier.replicas()` additional copies scatter over the interconnect in one
/// priced `alltoallv`, and rank 0 seals under the supplied manifest. This
/// is the tier half of the asynchronous flush pipeline; a blocking
/// [`store_checkpoint`] captures and replicates in one call instead.
///
/// Every task passes its own `local` pieces; `app`, `sop`, `manifest` and
/// `file_lens` are meaningful on rank 0 only. Errors identically on every
/// task when replication is not feasible or sealing fails.
#[allow(clippy::too_many_arguments)]
pub fn store_captured(
    ctx: &mut Ctx,
    tier: &MemTier,
    prefix: &str,
    app: &str,
    sop: u64,
    manifest: Vec<u8>,
    file_lens: &[(String, u64)],
    local: Vec<CapturedPiece>,
) -> Result<StoreReport> {
    let (rank_of_node, node_set) = node_map(ctx);
    if !placement::replication_feasible(node_set.len(), tier.replicas()) {
        return Err(MemTierError::ReplicationUnsatisfiable {
            replicas: tier.replicas(),
            nodes: node_set.len(),
        });
    }
    ctx.barrier();
    let t0 = ctx.now();
    if ctx.rank() == 0 {
        tier.begin(prefix);
    }
    ctx.barrier();

    let my_node = ctx.node();
    let my_bytes: u64 = local.iter().map(|p| p.data.len() as u64).sum();
    for p in &local {
        tier.insert_piece(prefix, &p.file, p.offset, &p.data, p.crc, my_node)?;
    }

    // Replication scatter, identical placement law to `store_checkpoint`:
    // keyed on (file, offset) so the rotation spreads load across pieces.
    let mut outgoing: Vec<Vec<u8>> = vec![Vec::new(); ctx.ntasks()];
    let mut my_replica_bytes = 0u64;
    for p in &local {
        let key = u64::from(crc32(p.file.as_bytes())).wrapping_add(p.offset);
        for node in placement::replica_nodes(my_node, &node_set, tier.replicas(), key)? {
            let dst = rank_of_node[&node];
            let mut w = Writer::new();
            w.string(&p.file);
            w.u64(p.offset);
            w.u32(p.crc);
            w.blob(&p.data);
            outgoing[dst].extend(w.finish());
            my_replica_bytes += p.data.len() as u64;
        }
    }
    let incoming = ctx.alltoallv(outgoing);
    for src in 0..ctx.ntasks() {
        if src == ctx.rank() {
            continue;
        }
        let buf = incoming.from(src).to_vec();
        let mut r = Reader::new(&buf);
        while r.remaining() > 0 {
            let file = r.string().map_err(CoreError::from)?;
            let off = r.u64().map_err(CoreError::from)?;
            let crc = r.u32().map_err(CoreError::from)?;
            let data = Arc::new(r.blob().map_err(CoreError::from)?);
            tier.insert_piece(prefix, &file, off, &data, crc, my_node)?;
        }
    }

    let (per_task, _) = ctx.exchange((my_bytes, my_replica_bytes, local.len() as u64));
    let bytes: u64 = per_task.iter().map(|x| x.0).sum();
    let replica_bytes: u64 = per_task.iter().map(|x| x.1).sum();
    let pieces: u64 = per_task.iter().map(|x| x.2).sum();

    ctx.barrier();
    let seal_err: Option<String> = if ctx.rank() == 0 {
        tier.seal(prefix, app, sop, manifest, file_lens).err().map(|e| e.to_string())
    } else {
        None
    };
    let (votes, t) = ctx.exchange(seal_err);
    ctx.advance_to(t);
    ctx.barrier();
    let t1 = ctx.now();

    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.span_start(t0, 0, Phase::MemTier, "store");
        rec.span_end(t1, 0, Phase::MemTier, "store");
        rec.event(t1, 0, Phase::MemTier, &format!("MemTierStore {prefix}"));
        rec.counter_add_at(t1, 0, names::MEMTIER_STORE_BYTES, None, bytes);
        rec.counter_add_at(t1, 0, names::MEMTIER_REPLICA_BYTES, None, replica_bytes);
        if let Some(r) = tier.min_replicas(prefix) {
            rec.gauge_set_at(t1, 0, names::MEMTIER_REPLICAS, 0, r as f64);
        }
    }
    if let Some(err) = votes[0].clone() {
        return Err(MemTierError::Incomplete(err));
    }
    Ok(StoreReport { seconds: t1 - t0, sop, bytes, replica_bytes, pieces })
}

/// Writes every resident piece of a sealed tier entry into the **staged**
/// PIOFS prefix (`{prefix}.tmp/...`) through the priced collective-write
/// path, without touching manifests: the asynchronous flusher owns the
/// two-phase publish tail (staged manifest → `publish_data` →
/// `publish_manifest`), so a crash mid-spill leaves only staged debris for
/// the orphan sweep. Each piece is written by the lowest rank on its first
/// holder node, exactly like [`spill_checkpoint`]. Returns data bytes
/// written across all tasks.
pub fn spill_to_staging(ctx: &mut Ctx, fs: &Piofs, tier: &MemTier, prefix: &str) -> Result<u64> {
    let staging = drms_core::commit::staging_prefix(prefix);
    let pieces = tier.pieces_for_spill(prefix)?;
    let (rank_of_node, _) = node_map(ctx);

    if ctx.rank() == 0 {
        let mut seen = BTreeSet::new();
        for p in &pieces {
            if seen.insert(p.file.clone()) {
                fs.create(&format!("{staging}/{}", p.file));
            }
        }
    }
    ctx.barrier();

    let my_reqs: Vec<WriteReq> = pieces
        .iter()
        .filter(|p| *rank_of_node.get(&p.primary).unwrap_or(&0) == ctx.rank())
        .map(|p| WriteReq {
            path: format!("{staging}/{}", p.file),
            offset: p.offset,
            data: (*p.data).clone(),
        })
        .collect();
    let my_bytes: u64 = my_reqs.iter().map(|r| r.data.len() as u64).sum();
    fs.collective_write(ctx, my_reqs);
    ctx.barrier();

    let (per_task, _) = ctx.exchange(my_bytes);
    Ok(per_task.iter().sum())
}

/// Persists a sealed tier entry to PIOFS (collective): every resident piece
/// is written to `{prefix}/{file}` by the lowest rank on its first holder
/// node through the priced collective-write path, the manifest — rewritten
/// with file-integrity records — lands last, and the result is verified
/// end-to-end ([`drms_resil::verify_checkpoint`]) before the entry is
/// marked spilled. On verification failure the manifest is deleted again
/// (the half-spilled data is orphaned, reclaimable by
/// [`drms_core::sweep_orphans`]) and every task gets the error.
pub fn spill_checkpoint(
    ctx: &mut Ctx,
    fs: &Piofs,
    tier: &MemTier,
    prefix: &str,
) -> Result<SpillReport> {
    ctx.barrier();
    let t0 = ctx.now();
    let pieces = tier.pieces_for_spill(prefix)?;
    let (rank_of_node, _) = node_map(ctx);

    if ctx.rank() == 0 {
        let mut seen = BTreeSet::new();
        for p in &pieces {
            if seen.insert(p.file.clone()) {
                fs.create(&format!("{prefix}/{}", p.file));
            }
        }
    }
    ctx.barrier();

    // Each piece is written by the node holding it (orphaned holders fall
    // to rank 0 — possible when the region shrank since the store).
    let my_reqs: Vec<WriteReq> = pieces
        .iter()
        .filter(|p| *rank_of_node.get(&p.primary).unwrap_or(&0) == ctx.rank())
        .map(|p| WriteReq {
            path: format!("{prefix}/{}", p.file),
            offset: p.offset,
            data: (*p.data).clone(),
        })
        .collect();
    let my_bytes: u64 = my_reqs.iter().map(|r| r.data.len() as u64).sum();
    fs.collective_write(ctx, my_reqs);
    ctx.barrier();

    // Manifest last — its arrival makes the checkpoint visible — then
    // verify end-to-end before trusting the spill.
    let verdict: Option<String> = if ctx.rank() == 0 {
        finish_spill(ctx, fs, tier, prefix).err().map(|e| e.to_string())
    } else {
        None
    };
    let (votes, t) = ctx.exchange(verdict);
    ctx.advance_to(t);
    ctx.barrier();
    let t1 = ctx.now();

    let (per_task, _) = ctx.exchange(my_bytes);
    let bytes: u64 = per_task.iter().sum();
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.span_start(t0, 0, Phase::Spill, "spill");
        rec.span_end(t1, 0, Phase::Spill, "spill");
        rec.counter_add_at(t1, 0, names::MEMTIER_SPILL_BYTES, None, bytes);
        rec.gauge_set_at(t1, 0, names::MEMTIER_SPILL_SECONDS, 0, t1 - t0);
    }
    if let Some(err) = votes[0].clone() {
        return Err(MemTierError::SpillVerify(err));
    }
    if ctx.rank() == 0 {
        tier.mark_spilled(prefix);
    }
    Ok(SpillReport { seconds: t1 - t0, bytes })
}

fn finish_spill(ctx: &mut Ctx, fs: &Piofs, tier: &MemTier, prefix: &str) -> Result<()> {
    let mut m = Manifest::decode(&tier.manifest_bytes(prefix)?).map_err(CoreError::from)?;
    m.integrity = compute_integrity(fs, prefix);
    let bytes = m.encode();
    // Two-phase: stage the manifest, then publish it by atomic rename, so
    // a spill interrupted mid-write never leaves a torn commit marker (the
    // manifest-less data files fall to the orphan sweep instead).
    let smp = drms_core::commit::staged_manifest_path(prefix);
    fs.create(&smp);
    fs.write_at(ctx, &smp, 0, &bytes);
    let mp = manifest_path(prefix);
    fs.delete(&mp);
    if !drms_core::commit::publish_manifest(fs, prefix) {
        return Err(MemTierError::SpillVerify(format!(
            "{prefix:?} spill could not publish its manifest"
        )));
    }
    if ctx.recorder().enabled() {
        ctx.recorder().counter_add_at(ctx.now(), ctx.rank(), names::COMMITS, None, 1);
    }
    let report = drms_resil::verify_checkpoint(fs, prefix, ctx.recorder(), ctx.now());
    if !report.is_valid() {
        fs.delete(&mp);
        return Err(MemTierError::SpillVerify(format!(
            "{prefix:?} failed end-to-end verification after spill"
        )));
    }
    Ok(())
}
