//! Timing and size reports for checkpoint/restart operations — the raw
//! material of Tables 5 and 6 of the paper.

/// Breakdown of one checkpoint or restart operation, in simulated seconds
/// and bytes. All times are synchronized maxima across tasks (the paper
/// reports blocking operations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpBreakdown {
    /// Initialization time (restart only: loading the application text).
    pub init: f64,
    /// Data-segment phase time.
    pub segment: f64,
    /// Distributed-arrays phase time.
    pub arrays: f64,
    /// Bytes in the data-segment component.
    pub segment_bytes: u64,
    /// Bytes in the array streams component.
    pub array_bytes: u64,
}

impl OpBreakdown {
    /// Total operation time.
    pub fn total(&self) -> f64 {
        self.init + self.segment + self.arrays
    }

    /// Total bytes moved.
    pub fn total_bytes(&self) -> u64 {
        self.segment_bytes + self.array_bytes
    }

    /// Aggregate rate in MB/s (SI megabytes, matching the paper's tables:
    /// its byte counts in Table 4 divided by its MB figures give 10^6).
    pub fn rate_mb_s(&self) -> f64 {
        mb(self.total_bytes()) / self.total()
    }

    /// Segment-phase rate in MB/s.
    pub fn segment_rate_mb_s(&self) -> f64 {
        mb(self.segment_bytes) / self.segment
    }

    /// Array-phase rate in MB/s.
    pub fn array_rate_mb_s(&self) -> f64 {
        mb(self.array_bytes) / self.arrays
    }

    /// Segment phase as a percentage of total time.
    pub fn segment_pct(&self) -> f64 {
        100.0 * self.segment / self.total()
    }

    /// Array phase as a percentage of total time.
    pub fn arrays_pct(&self) -> f64 {
        100.0 * self.arrays / self.total()
    }
}

/// Bytes as the paper's (SI) MBytes.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates() {
        let b = OpBreakdown {
            init: 1.0,
            segment: 4.0,
            arrays: 5.0,
            segment_bytes: 40_000_000,
            array_bytes: 60_000_000,
        };
        assert_eq!(b.total(), 10.0);
        assert_eq!(b.total_bytes(), 100_000_000);
        assert!((b.rate_mb_s() - 10.0).abs() < 1e-12);
        assert!((b.segment_rate_mb_s() - 10.0).abs() < 1e-12);
        assert!((b.array_rate_mb_s() - 12.0).abs() < 1e-12);
        assert!((b.segment_pct() - 40.0).abs() < 1e-12);
        assert!((b.arrays_pct() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn mb_uses_si_megabytes() {
        assert_eq!(mb(1_000_000), 1.0);
        assert_eq!(mb(0), 0.0);
    }
}
