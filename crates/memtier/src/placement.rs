//! Replica placement: which nodes hold the copies of a stream piece.
//!
//! The rule the whole tier's survivability argument rests on: the `r`
//! replicas of a piece are always `r` *distinct* nodes, none of which is the
//! piece's owner. A checkpoint therefore survives the loss of any `r` nodes
//! (owner plus `r - 1` replicas of some piece may die and one replica still
//! remains), and placement is a pure function of (owner, node set, piece
//! key) so every task computes the same assignment without communication.

use crate::{MemTierError, Result};

/// Whether a replication factor is satisfiable on `nodes` distinct nodes:
/// every piece needs `replicas >= 1` holders distinct from its owner.
pub fn replication_feasible(nodes: usize, replicas: usize) -> bool {
    replicas >= 1 && replicas < nodes
}

/// Deterministically chooses the `replicas` nodes holding copies of a piece
/// owned by node `owner`. `nodes` is the region's node set (must contain
/// `owner`; duplicates are ignored); `piece` is any stable per-piece key —
/// distinct keys rotate the placement so replica load spreads evenly.
///
/// Errors when `replicas == 0` or when fewer than `replicas` candidate
/// nodes exist (`replicas >= nodes` counted distinct), in which case no
/// placement that keeps replicas off the owner is possible.
pub fn replica_nodes(
    owner: usize,
    nodes: &[usize],
    replicas: usize,
    piece: u64,
) -> Result<Vec<usize>> {
    let mut candidates: Vec<usize> = nodes.iter().copied().filter(|&n| n != owner).collect();
    candidates.sort_unstable();
    candidates.dedup();
    let distinct = candidates.len() + nodes.contains(&owner) as usize;
    if replicas == 0 || replicas > candidates.len() {
        return Err(MemTierError::ReplicationUnsatisfiable { replicas, nodes: distinct });
    }
    let start = (piece % candidates.len() as u64) as usize;
    Ok((0..replicas).map(|i| candidates[(start + i) % candidates.len()]).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_are_distinct_and_never_owner() {
        let nodes: Vec<usize> = (0..8).collect();
        for owner in 0..8 {
            for piece in 0..40u64 {
                let got = replica_nodes(owner, &nodes, 3, piece).unwrap();
                assert_eq!(got.len(), 3);
                assert!(!got.contains(&owner));
                let mut uniq = got.clone();
                uniq.sort_unstable();
                uniq.dedup();
                assert_eq!(uniq.len(), 3, "duplicate replica in {got:?}");
            }
        }
    }

    #[test]
    fn infeasible_factors_error() {
        let nodes: Vec<usize> = (0..4).collect();
        assert!(matches!(
            replica_nodes(0, &nodes, 0, 7),
            Err(MemTierError::ReplicationUnsatisfiable { replicas: 0, nodes: 4 })
        ));
        assert!(matches!(
            replica_nodes(0, &nodes, 4, 7),
            Err(MemTierError::ReplicationUnsatisfiable { replicas: 4, nodes: 4 })
        ));
        assert!(replica_nodes(0, &nodes, 3, 7).is_ok());
        assert!(!replication_feasible(4, 4));
        assert!(replication_feasible(4, 3));
        assert!(!replication_feasible(4, 0));
    }

    #[test]
    fn rotation_spreads_load() {
        // With one replica over 5 nodes, consecutive piece keys land on
        // different nodes.
        let nodes: Vec<usize> = (0..5).collect();
        let picks: Vec<usize> =
            (0..4u64).map(|k| replica_nodes(2, &nodes, 1, k).unwrap()[0]).collect();
        let mut uniq = picks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 4, "rotation reused a node too eagerly: {picks:?}");
    }
}
