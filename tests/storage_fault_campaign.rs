//! Storage-fault campaigns: the resilience layer under fire. Processors die
//! *and* the storage beneath the checkpoints fails — PIOFS servers are
//! killed mid-run and checkpoints are silently corrupted by seeded
//! campaigns — yet the JSA must always drive the job to completion with the
//! final state bitwise equal to an uninterrupted run. The restart path
//! reads through parity reconstruction in degraded mode, scrubs repairable
//! corruption, and quarantines + falls back past checkpoints that stay
//! damaged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drms::core::segment::DataSegment;
use drms::core::{find_checkpoints, Drms, DrmsConfig, Start};
use drms::darray::{DistArray, Distribution};
use drms::memtier::{
    restore_arrays_from_tier, resume_from_tier, spill_checkpoint, store_checkpoint, store_feasible,
    MemTier, RestartTier,
};
use drms::msg::CostModel;
use drms::obs::{names, TraceRecorder};
use drms::piofs::{Piofs, PiofsConfig};
use drms::resil::CorruptionCampaign;
use drms::rtenv::{
    Event, EventLog, JobOutcome, JobSpec, Jsa, JsaPolicy, ProcessorState, ResourceCoordinator,
    RunSummary,
};
use drms::slices::{Order, Slice};
use parking_lot::Mutex;

const NITER: i64 = 10;
const CKPT_EVERY: i64 = 3;
const NPROCS: usize = 8;
const APP: &str = "storm";

fn domain() -> Slice {
    Slice::boxed(&[(1, 18), (1, 14)])
}

/// Repo-wide campaign seed convention (shared with the chaos and failure
/// campaigns): `FAULT_SEED` overrides the pinned seed of the
/// seed-parametric campaigns below, and every campaign assertion prints a
/// one-command repro naming its seed.
fn campaign_seed(default: u64) -> u64 {
    drms_bench::seed::fault_seed_or(default)
}

/// The one-command repro printed by campaign assertions.
fn repro_cmd(seed: u64) -> String {
    drms_bench::seed::test_repro("storage_fault_campaign", seed)
}

/// Checksum of the final state of an uninterrupted run (integer-valued
/// sums, so f64 addition is exact in any order).
fn expect_total() -> f64 {
    let mut s = 0.0;
    domain().points(Order::ColumnMajor).for_each(|p| {
        s += (p[0] * 13 + p[1] * 3) as f64 + NITER as f64 * 1.5;
    });
    s
}

/// A storage fault to inject at a scheduled iteration. Each one also kills
/// a processor, because a storage fault only matters once something has to
/// restart across it.
#[derive(Clone)]
enum Fault {
    /// Kill processor `victim` (the classic campaign, for mixing).
    Proc { victim: usize },
    /// Kill PIOFS server `server`, then processor `victim`: the restart
    /// must read every checkpoint stripe on that server through parity
    /// reconstruction.
    Server { server: usize, victim: usize },
    /// Run a seeded corruption campaign against the newest checkpoint,
    /// then kill `victim`: the restart must detect the damage and either
    /// scrub it from parity or fall back to an older checkpoint.
    Corrupt { seed: u64, victim: usize },
    /// Kill a whole set of processors at once — the schedule that crosses
    /// the memory tier's survivability threshold when it takes every
    /// resident copy of some checkpoint piece.
    Nodes { victims: Vec<usize> },
}

struct StormWorld {
    rc: Arc<ResourceCoordinator>,
    fs: Arc<Piofs>,
    log: EventLog,
    rec: Arc<TraceRecorder>,
    seed: u64,
}

fn build_world(seed: u64, parity: bool) -> StormWorld {
    let rec = Arc::new(TraceRecorder::default());
    let log = EventLog::with_recorder(rec.clone());
    let rc = Arc::new(ResourceCoordinator::new(NPROCS, log.clone()));
    let cfg = if parity {
        PiofsConfig::test_tiny(NPROCS).with_parity()
    } else {
        PiofsConfig::test_tiny(NPROCS)
    };
    let fs = Piofs::new(cfg, seed);
    Drms::install_binary(&fs, &DrmsConfig::new(APP));
    StormWorld { rc, fs, log, rec, seed }
}

/// Runs the storm job under a fault schedule; returns the global checksum
/// and the JSA's run summary. Reusing a world continues its checkpoint
/// chain (used by the fallback tests below).
fn run_storm(w: &StormWorld, faults: Vec<(i64, Fault)>) -> (f64, RunSummary) {
    run_storm_with(w, None, faults)
}

/// As [`run_storm`], optionally routing every checkpoint through an
/// in-memory replicated tier (with a verified spill, so the durable PIOFS
/// chain is identical either way) and restarts through the JSA's tiered
/// resolution.
fn run_storm_with(
    w: &StormWorld,
    tier: Option<Arc<MemTier>>,
    faults: Vec<(i64, Fault)>,
) -> (f64, RunSummary) {
    let mut jsa = Jsa::new(
        Arc::clone(&w.rc),
        Arc::clone(&w.fs),
        w.log.clone(),
        CostModel::default(),
        JsaPolicy { repair_when_starved: true, ..Default::default() },
    );
    if let Some(tier) = tier {
        jsa = jsa.with_memtier(tier);
    }

    let injected = Arc::new(AtomicUsize::new(0));
    let out = Arc::new(Mutex::new(Vec::new()));
    let rc2 = Arc::clone(&w.rc);
    let fs2 = Arc::clone(&w.fs);
    let injected2 = Arc::clone(&injected);
    let out2 = Arc::clone(&out);
    let faults = Arc::new(faults);

    let job = JobSpec::new(APP, (1, NPROCS), move |ctx, env| {
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        let mut drms = match (env.restart_from.as_deref(), env.restart_tier) {
            (Some(prefix), RestartTier::Memory) => {
                // Tiered resolution picked the resident checkpoint: resume
                // out of node memory, no checkpoint I/O.
                let tier = env.memtier.as_ref().expect("memory restart without a tier");
                let (drms, info) = resume_from_tier(
                    ctx,
                    &env.fs,
                    tier,
                    DrmsConfig::new(APP),
                    env.enable.clone(),
                    prefix,
                )
                .unwrap();
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                restore_arrays_from_tier(ctx, tier, &drms, prefix, &info.manifest, &mut [&mut u])
                    .unwrap();
                drms
            }
            _ => {
                let (drms, start) = Drms::initialize(
                    ctx,
                    &env.fs,
                    DrmsConfig::new(APP),
                    env.enable.clone(),
                    env.restart_from.as_deref(),
                )
                .unwrap();
                match start {
                    Start::Fresh => u.fill_assigned(|p| (p[0] * 13 + p[1] * 3) as f64),
                    Start::Restarted(info) => {
                        seg = info.segment.clone();
                        start_iter = seg.control("iter").unwrap() + 1;
                        drms.restore_arrays(
                            ctx,
                            &env.fs,
                            env.restart_from.as_deref().unwrap(),
                            &info.manifest,
                            &mut [&mut u],
                        )
                        .unwrap();
                    }
                }
                drms
            }
        };
        for iter in start_iter..=NITER {
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.5).unwrap();
            });
            seg.set_control("iter", iter);
            if iter % CKPT_EVERY == 0 {
                let prefix = format!("ck/storm/{iter}");
                match &env.memtier {
                    // Diskless checkpoint plus verified spill: the PIOFS
                    // chain ends up bitwise-identical to the direct path.
                    // A region too small for the replication factor (e.g.
                    // one surviving node) degrades to a direct checkpoint.
                    Some(tier) if store_feasible(ctx, tier) => {
                        store_checkpoint(ctx, tier, &prefix, &mut drms, &seg, &[&u]).unwrap();
                        spill_checkpoint(ctx, &env.fs, tier, &prefix).unwrap();
                    }
                    _ => {
                        drms.reconfig_checkpoint(ctx, &env.fs, &prefix, &seg, &[&u]).unwrap();
                    }
                }
            }
            // Injection: the next scheduled fault fires once its iteration
            // is reached.
            if ctx.rank() == 0 {
                let k = injected2.load(Ordering::SeqCst);
                if let Some((at, fault)) = faults.get(k) {
                    if iter >= *at {
                        injected2.store(k + 1, Ordering::SeqCst);
                        let victims = match fault {
                            Fault::Proc { victim } => vec![*victim],
                            Fault::Server { server, victim } => {
                                fs2.fail_server(*server);
                                vec![*victim]
                            }
                            Fault::Corrupt { seed, victim } => {
                                if let Some((prefix, _)) = find_checkpoints(&fs2, Some(APP)).first()
                                {
                                    CorruptionCampaign::new(*seed, 3).apply(&fs2, prefix);
                                }
                                vec![*victim]
                            }
                            Fault::Nodes { victims } => victims.clone(),
                        };
                        for victim in victims {
                            if rc2.state_of(victim) != ProcessorState::Failed {
                                rc2.fail_processor(victim);
                            }
                        }
                    }
                }
            }
        }
        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        out2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
        JobOutcome::Completed
    });

    let summary = jsa.run_job(&job);
    assert!(
        summary.completed,
        "storm (seed {}) did not complete: {summary:?}\nreproduce with: {}",
        w.seed,
        repro_cmd(w.seed)
    );
    let total: f64 = out.lock().iter().sum();
    (total, summary)
}

#[test]
fn server_loss_restarts_through_reconstruction() {
    let run = |seed| {
        let w = build_world(seed, true);
        let faults = vec![(4, Fault::Server { server: 2, victim: 3 })];
        let (total, summary) = run_storm(&w, faults);
        assert_eq!(total, expect_total(), "degraded restart diverged");
        assert!(summary.restarts() >= 1);
        // The newest checkpoint was healthy (just striped across a dead
        // server), so no fallback was needed…
        assert!(summary.incarnations.iter().all(|i| i.fallback_depth == 0));
        // …but restoring it really did rebuild lost stripes from parity.
        let reconstructed = w.rec.metrics().counter_total(names::RECONSTRUCTED_BYTES);
        assert!(reconstructed > 0, "restart never hit the reconstruction path");
        assert!(w.rec.metrics().counter_total(names::PARITY_BYTES) > 0);
        reconstructed
    };
    // Degraded-mode activity is deterministic per seed (override: FAULT_SEED).
    let seed = campaign_seed(11);
    assert_eq!(run(seed), run(seed));
}

#[test]
fn corruption_campaign_is_scrubbed_or_fallen_back() {
    let w = build_world(7, true);
    let faults = vec![(4, Fault::Corrupt { seed: 0xC0FFEE, victim: 1 })];
    let (total, summary) = run_storm(&w, faults);
    // Whether scrub repaired the damage in place or the restart fell back
    // to an older checkpoint, the recomputed final state is exact.
    assert_eq!(total, expect_total(), "corrupted restart diverged");
    assert!(summary.restarts() >= 1);
    let detected = w.rec.metrics().counter_total(names::CORRUPTIONS_DETECTED);
    assert!(detected > 0, "seeded corruption was never detected");
    let repaired = w.rec.metrics().counter_total(names::CORRUPTIONS_REPAIRED);
    let fell_back = summary.incarnations.iter().any(|i| i.fallback_depth > 0);
    assert!(repaired > 0 || fell_back, "damage neither scrubbed nor fallen back");
}

#[test]
fn mixed_storage_and_processor_faults_recover_exactly() {
    let w = build_world(3, true);
    let faults = vec![
        (2, Fault::Proc { victim: 5 }),
        (5, Fault::Server { server: 0, victim: 2 }),
        (8, Fault::Corrupt { seed: 99, victim: 6 }),
    ];
    let (total, summary) = run_storm(&w, faults);
    assert_eq!(total, expect_total(), "mixed campaign diverged");
    assert!(summary.restarts() >= 3);
}

#[test]
fn unrepairable_damage_falls_back_to_older_checkpoint() {
    // A clean run leaves checkpoints at iterations 3, 6, 9.
    let w = build_world(5, true);
    let (total, _) = run_storm(&w, Vec::new());
    assert_eq!(total, expect_total());

    // Destroy a data file of the newest checkpoint. Parity is per-file, so
    // a whole missing file is beyond any scrub.
    assert!(w.fs.delete("ck/storm/9/segment"));

    // A fresh scheduler run must quarantine ck/storm/9 and restart from
    // ck/storm/6 — then recompute the lost iterations exactly.
    let rec = Arc::new(TraceRecorder::default());
    let log = EventLog::with_recorder(rec.clone());
    let w2 = StormWorld {
        rc: Arc::new(ResourceCoordinator::new(NPROCS, log.clone())),
        fs: Arc::clone(&w.fs),
        log,
        rec,
        seed: w.seed,
    };
    let (total, summary) = run_storm(&w2, Vec::new());
    assert_eq!(total, expect_total(), "fallback restart diverged");

    let first = &summary.incarnations[0];
    assert_eq!(first.restart_from.as_deref(), Some("ck/storm/6"));
    assert_eq!(first.fallback_depth, 1, "one damaged checkpoint skipped");
    assert!(w2
        .log
        .any(|e| matches!(e, Event::CheckpointQuarantined { prefix } if prefix == "ck/storm/9")));
    assert!(w2.log.any(
        |e| matches!(e, Event::RestartFallback { depth, prefix, .. } if *depth == 1 && prefix == "ck/storm/6")
    ));
    // Quarantine renames the manifest aside; the data stays for diagnosis.
    assert!(w2.fs.exists("ck/storm/9/manifest.quarantined"));
    assert!(w2.fs.exists("ck/storm/9/array-u"));
}

#[test]
fn memory_tier_serves_restart_within_survivability() {
    // r = 2: every piece has three resident copies (owner + 2 replicas),
    // so one killed processor cannot take the tier down — the restart must
    // be a memory-tier hit with no fallback, and still recover exactly
    // across the task-count change (8 -> 7 tasks).
    let run = |seed| {
        let w = build_world(seed, true);
        let tier = MemTier::new(2);
        let faults = vec![(4, Fault::Proc { victim: 3 })];
        let (total, summary) = run_storm_with(&w, Some(Arc::clone(&tier)), faults);
        assert_eq!(total, expect_total(), "memory-tier restart diverged");
        assert!(summary.restarts() >= 1);

        let restarted = &summary.incarnations[1];
        assert_eq!(restarted.tier, RestartTier::Memory, "restart should hit the memory tier");
        assert_eq!(restarted.restart_from.as_deref(), Some("ck/storm/3"));
        assert_eq!(restarted.fallback_depth, 0);
        assert!(w.log.any(|e| matches!(e, Event::MemTierHit { prefix } if prefix == "ck/storm/3")));
        assert!(
            !w.log.any(|e| matches!(e, Event::MemTierInvalidated { .. })),
            "one kill must not cross the r=2 survivability threshold"
        );
        assert!(w.rec.metrics().counter_total(names::MEMTIER_HITS) >= 1);
        assert_eq!(w.rec.metrics().counter_total(names::MEMTIER_INVALIDATIONS), 0);
        assert!(w.rec.metrics().counter_total(names::MEMTIER_STORE_BYTES) > 0);
        assert!(w.rec.metrics().counter_total(names::MEMTIER_RESTORE_BYTES) > 0);
        total
    };
    // Deterministic per seed (override: FAULT_SEED).
    let seed = campaign_seed(21);
    assert_eq!(run(seed), run(seed));
}

#[test]
fn node_kills_crossing_threshold_fall_back_to_piofs_bitwise() {
    // r = 1: two resident copies per piece. A clean tier-checkpointed run
    // leaves spilled (durable, verified) checkpoints at 3, 6, 9 plus the
    // resident tier entries.
    let w = build_world(31, false);
    let tier = MemTier::new(1);
    let (total, _) = run_storm_with(&w, Some(Arc::clone(&tier)), Vec::new());
    assert_eq!(total, expect_total());
    assert!(tier.is_intact("ck/storm/9"));

    // The durable copy of the newest checkpoint is silently damaged (no
    // parity on this fs, so it stays damaged); the tier copy is fine.
    assert!(w.fs.corrupt_range("ck/storm/9/array-u", 0, 16, 13) > 0);

    // Second scheduler run over the same fs and tier: incarnation 0 is a
    // memory-tier hit on ck/storm/9 — then a node-kill schedule takes 7 of
    // the 8 processors, crossing the r=1 survivability threshold (every
    // copy of some piece is on a dead node).
    let rec = Arc::new(TraceRecorder::default());
    let log = EventLog::with_recorder(rec.clone());
    let w2 = StormWorld {
        rc: Arc::new(ResourceCoordinator::new(NPROCS, log.clone())),
        fs: Arc::clone(&w.fs),
        log,
        rec,
        seed: w.seed,
    };
    let faults = vec![(10, Fault::Nodes { victims: (0..=6).collect() })];
    let (total, summary) = run_storm_with(&w2, Some(Arc::clone(&tier)), faults);
    assert_eq!(total, expect_total(), "PIOFS fallback diverged from the clean run");

    // Incarnation 0: served out of the memory tier.
    let first = &summary.incarnations[0];
    assert_eq!(first.tier, RestartTier::Memory);
    assert_eq!(first.restart_from.as_deref(), Some("ck/storm/9"));
    assert_eq!(first.outcome, JobOutcome::Killed);
    assert!(w2.log.any(|e| matches!(e, Event::MemTierHit { prefix } if prefix == "ck/storm/9")));

    // Incarnation 1: the mass kill invalidated the tier, so the JSA fell
    // back to the durable chain — quarantining the damaged ck/storm/9 and
    // restarting from ck/storm/6 with the correct fallback depth, on the
    // single surviving processor.
    let second = &summary.incarnations[1];
    assert_eq!(second.tier, RestartTier::Piofs, "invalidated tier must fall back to PIOFS");
    assert_eq!(second.restart_from.as_deref(), Some("ck/storm/6"));
    assert_eq!(second.fallback_depth, 1, "one damaged durable checkpoint skipped");
    assert_eq!(second.ntasks, 1);
    assert_eq!(second.outcome, JobOutcome::Completed);

    assert!(!tier.is_intact("ck/storm/9"), "threshold-crossing kill must evict the entry");
    assert!(w2
        .log
        .any(|e| matches!(e, Event::MemTierInvalidated { prefix } if prefix == "ck/storm/9")));
    assert!(w2
        .log
        .any(|e| matches!(e, Event::CheckpointQuarantined { prefix } if prefix == "ck/storm/9")));
    assert!(w2.rec.metrics().counter_total(names::MEMTIER_INVALIDATIONS) >= 1);
    assert_eq!(w2.rec.metrics().counter_total(names::FALLBACK_DEPTH), 1);
}

#[test]
fn integrity_without_parity_detects_and_falls_back() {
    // Checksums without redundancy: corruption is detected but cannot be
    // scrubbed, so the restart must fall back.
    let w = build_world(9, false);
    let (total, _) = run_storm(&w, Vec::new());
    assert_eq!(total, expect_total());
    assert!(w.fs.corrupt_range("ck/storm/9/array-u", 0, 16, 13) > 0);

    let rec = Arc::new(TraceRecorder::default());
    let log = EventLog::with_recorder(rec.clone());
    let w2 = StormWorld {
        rc: Arc::new(ResourceCoordinator::new(NPROCS, log.clone())),
        fs: Arc::clone(&w.fs),
        log,
        rec,
        seed: w.seed,
    };
    let (total, summary) = run_storm(&w2, Vec::new());
    assert_eq!(total, expect_total(), "no-parity fallback diverged");

    let first = &summary.incarnations[0];
    assert_eq!(first.restart_from.as_deref(), Some("ck/storm/6"));
    assert_eq!(first.fallback_depth, 1);
    assert!(w2.rec.metrics().counter_total(names::CORRUPTIONS_DETECTED) > 0);
    assert_eq!(w2.rec.metrics().counter_total(names::CORRUPTIONS_REPAIRED), 0);
    assert_eq!(w2.rec.metrics().counter_total(names::CHECKPOINTS_QUARANTINED), 1);
    assert_eq!(w2.rec.metrics().counter_total(names::FALLBACK_DEPTH), 1);
}
