//! Checkpoint manifests and file-naming conventions.
//!
//! A checkpoint under prefix `P` consists of:
//! * `P/manifest` — this manifest;
//! * `P/segment` — the representative task's data segment (DRMS), or
//!   `P/task-{rank}` — one segment per task (conventional SPMD);
//! * `P/array-{name}` — one distribution-independent stream per distributed
//!   array (DRMS only).
//!
//! The manifest records everything a *reconfigured* restart needs that is
//! not derivable from the application source: the task count at checkpoint
//! time (for `delta`), and the identity (name, domain, element type, order)
//! of every array stream, so mismatched restarts fail loudly instead of
//! reading garbage.

use drms_slices::{Order, Range, Slice};

use crate::wire::{Reader, WireError, Writer};

const MAGIC: [u8; 4] = *b"DMFT";
const VERSION: u32 = 1;

/// Which checkpointing scheme produced the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptKind {
    /// Reconfigurable DRMS checkpoint (one segment + array streams).
    Drms,
    /// Conventional SPMD checkpoint (one segment per task).
    Spmd,
}

/// Identity of one array stream within a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayEntry {
    /// Array name.
    pub name: String,
    /// Element type code (see [`drms_darray::Element::CODE`]).
    pub elem_code: u8,
    /// Global index domain.
    pub domain: Slice,
    /// Stream/storage order.
    pub order: Order,
}

/// The checkpoint manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Application name.
    pub app: String,
    /// Scheme that produced the checkpoint.
    pub kind: CkptKind,
    /// Number of tasks at checkpoint time.
    pub ntasks: usize,
    /// SOP sequence number (which observable point this state belongs to).
    pub sop: u64,
    /// Array streams present.
    pub arrays: Vec<ArrayEntry>,
}

/// Path of the manifest file under `prefix`.
pub fn manifest_path(prefix: &str) -> String {
    format!("{prefix}/manifest")
}

/// Path of the DRMS representative segment under `prefix`.
pub fn segment_path(prefix: &str) -> String {
    format!("{prefix}/segment")
}

/// Path of task `rank`'s segment in an SPMD checkpoint.
pub fn task_segment_path(prefix: &str, rank: usize) -> String {
    format!("{prefix}/task-{rank}")
}

/// Path of the stream for array `name` under `prefix`.
pub fn array_path(prefix: &str, name: &str) -> String {
    format!("{prefix}/array-{name}")
}

fn write_range(w: &mut Writer, r: &Range) {
    match r {
        Range::Contiguous { lo, hi } => {
            w.u8(0);
            w.i64(*lo);
            w.i64(*hi);
        }
        Range::Strided { lo, hi, step } => {
            w.u8(1);
            w.i64(*lo);
            w.i64(*hi);
            w.i64(*step);
        }
        Range::Explicit(v) => {
            w.u8(2);
            w.u64(v.len() as u64);
            for x in v.iter() {
                w.i64(*x);
            }
        }
    }
}

fn read_range(r: &mut Reader<'_>) -> Result<Range, WireError> {
    match r.u8()? {
        0 => Ok(Range::contiguous(r.i64()?, r.i64()?)),
        1 => {
            let (lo, hi, step) = (r.i64()?, r.i64()?, r.i64()?);
            Range::strided(lo, hi, step).map_err(|_| WireError::Truncated { what: "range" })
        }
        2 => {
            let n = r.u64()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            Range::from_indices(&v).map_err(|_| WireError::Truncated { what: "range" })
        }
        _ => Err(WireError::Truncated { what: "range tag" }),
    }
}

/// Encodes a slice (exposed for segment/region metadata reuse).
pub fn write_slice(w: &mut Writer, s: &Slice) {
    w.u32(s.rank() as u32);
    for r in s.ranges() {
        write_range(w, r);
    }
}

/// Decodes a slice.
pub fn read_slice(r: &mut Reader<'_>) -> Result<Slice, WireError> {
    let rank = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(rank);
    for _ in 0..rank {
        ranges.push(read_range(r)?);
    }
    Ok(Slice::new(ranges))
}

impl Manifest {
    /// Encodes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.string(&self.app);
        w.u8(match self.kind {
            CkptKind::Drms => 0,
            CkptKind::Spmd => 1,
        });
        w.u64(self.ntasks as u64);
        w.u64(self.sop);
        w.u32(self.arrays.len() as u32);
        for a in &self.arrays {
            w.string(&a.name);
            w.u8(a.elem_code);
            w.u8(match a.order {
                Order::ColumnMajor => 0,
                Order::RowMajor => 1,
            });
            write_slice(&mut w, &a.domain);
        }
        w.finish()
    }

    /// Decodes a manifest.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, WireError> {
        let (mut r, version) = Reader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let app = r.string()?;
        let kind = match r.u8()? {
            0 => CkptKind::Drms,
            1 => CkptKind::Spmd,
            _ => return Err(WireError::Truncated { what: "checkpoint kind" }),
        };
        let ntasks = r.u64()? as usize;
        let sop = r.u64()?;
        let narrays = r.u32()?;
        let mut arrays = Vec::with_capacity(narrays as usize);
        for _ in 0..narrays {
            let name = r.string()?;
            let elem_code = r.u8()?;
            let order = match r.u8()? {
                0 => Order::ColumnMajor,
                1 => Order::RowMajor,
                _ => return Err(WireError::Truncated { what: "order tag" }),
            };
            let domain = read_slice(&mut r)?;
            arrays.push(ArrayEntry { name, elem_code, domain, order });
        }
        Ok(Manifest { app, kind, ntasks, sop, arrays })
    }

    /// Looks up an array entry by name.
    pub fn array(&self, name: &str) -> Option<&ArrayEntry> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            app: "bt".into(),
            kind: CkptKind::Drms,
            ntasks: 8,
            sop: 100,
            arrays: vec![
                ArrayEntry {
                    name: "u".into(),
                    elem_code: 1,
                    domain: Slice::boxed(&[(1, 64), (1, 64), (1, 64)]),
                    order: Order::ColumnMajor,
                },
                ArrayEntry {
                    name: "mask".into(),
                    elem_code: 7,
                    domain: Slice::new(vec![
                        Range::strided(0, 100, 3).unwrap(),
                        Range::from_indices(&[1, 5, 9]).unwrap(),
                    ]),
                    order: Order::RowMajor,
                },
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let d = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.array("u").unwrap().elem_code, 1);
        assert!(d.array("nope").is_none());
    }

    #[test]
    fn spmd_kind_roundtrip() {
        let mut m = sample();
        m.kind = CkptKind::Spmd;
        m.arrays.clear();
        assert_eq!(Manifest::decode(&m.encode()).unwrap().kind, CkptKind::Spmd);
    }

    #[test]
    fn paths_are_disjoint_per_prefix() {
        assert_eq!(manifest_path("ck/1"), "ck/1/manifest");
        assert_eq!(segment_path("ck/1"), "ck/1/segment");
        assert_eq!(task_segment_path("ck/1", 3), "ck/1/task-3");
        assert_eq!(array_path("ck/1", "u"), "ck/1/array-u");
        assert_ne!(array_path("a", "u"), array_path("b", "u"));
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let m = sample();
        let mut bytes = m.encode();
        bytes.truncate(10);
        assert!(Manifest::decode(&bytes).is_err());
    }
}
