use std::fmt;

use drms_slices::{Slice, SliceError};

/// Errors from distribution construction and distributed-array operations.
#[derive(Debug, Clone, PartialEq)]
pub enum DarrayError {
    /// An underlying range/slice error.
    Slice(SliceError),
    /// The number of per-task slices did not match the task count.
    TaskCountMismatch {
        /// Expected number of tasks.
        expected: usize,
        /// Number of slices supplied.
        got: usize,
    },
    /// Two assigned sections overlap (their values would be ambiguous).
    AssignedOverlap {
        /// First task.
        a: usize,
        /// Second task.
        b: usize,
        /// A witness region of the overlap.
        witness: Slice,
    },
    /// An assigned section is not contained in its mapped section.
    AssignedNotMapped {
        /// Offending task.
        task: usize,
    },
    /// A section lies (partly) outside the array domain.
    OutsideDomain {
        /// Offending task.
        task: usize,
    },
    /// Arrays with different domains were combined.
    DomainMismatch {
        /// Left domain.
        left: Slice,
        /// Right domain.
        right: Slice,
    },
    /// A block decomposition asked for more parts than elements, or a
    /// mismatched axis count.
    BadDecomposition {
        /// Human-readable reason.
        reason: String,
    },
    /// The distribution kind cannot be adjusted automatically to a new task
    /// count (irregular distributions need an explicit new specification).
    NotAdjustable,
    /// A point outside the task's mapped section was addressed.
    NotMapped {
        /// The offending point.
        point: Vec<i64>,
    },
    /// A file-system error during streaming.
    Io(
        /// Rendered error.
        String,
    ),
}

impl fmt::Display for DarrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DarrayError::Slice(e) => write!(f, "slice error: {e}"),
            DarrayError::TaskCountMismatch { expected, got } => {
                write!(f, "expected {expected} per-task slices, got {got}")
            }
            DarrayError::AssignedOverlap { a, b, witness } => {
                write!(f, "assigned sections of tasks {a} and {b} overlap at {witness}")
            }
            DarrayError::AssignedNotMapped { task } => {
                write!(f, "assigned section of task {task} is not within its mapped section")
            }
            DarrayError::OutsideDomain { task } => {
                write!(f, "section of task {task} lies outside the array domain")
            }
            DarrayError::DomainMismatch { left, right } => {
                write!(f, "array domain mismatch: {left} vs {right}")
            }
            DarrayError::BadDecomposition { reason } => {
                write!(f, "bad decomposition: {reason}")
            }
            DarrayError::NotAdjustable => {
                write!(f, "distribution kind cannot be adjusted automatically")
            }
            DarrayError::NotMapped { point } => {
                write!(f, "point {point:?} is not mapped to this task")
            }
            DarrayError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DarrayError {}

impl From<SliceError> for DarrayError {
    fn from(e: SliceError) -> Self {
        DarrayError::Slice(e)
    }
}
