use std::sync::Arc;

use drms_slices::{Range, Slice};

use crate::{DarrayError, Result};

/// How a distribution was constructed — retained so that `adjust` (the
/// paper's `drms_adjust`) can recompute an equivalent distribution for a
/// different number of tasks after a reconfigured restart.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DistKind {
    /// Block decomposition over a `parts[axis]` processor grid with a
    /// per-axis shadow width (in elements).
    BlockGrid { parts: Vec<usize>, shadow: Vec<usize> },
    /// Cyclic decomposition along one axis.
    CyclicAxis { axis: usize },
    /// Canonical per-piece distribution used by the streaming engine.
    Pieces,
    /// Arbitrary user-supplied sections.
    Irregular,
    /// Block decomposition over an *active subset* of the region's tasks;
    /// the remaining tasks hold empty sections but still participate in
    /// collectives. This is how localized recovery and online shrink/grow
    /// re-partition live arrays without changing the region's task count.
    ActiveBlock { active: Vec<usize>, shadow: Vec<usize> },
}

/// The mapping of array sections to tasks: one *assigned* and one *mapped*
/// slice per task (paper, Section 3.1).
///
/// Invariants, enforced at construction:
/// * assigned sections are pairwise disjoint (element values are unique);
/// * each assigned section is a subset of its mapped section;
/// * every section lies within the array domain.
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    domain: Slice,
    assigned: Vec<Slice>,
    mapped: Vec<Slice>,
    kind: DistKind,
}

impl Distribution {
    /// Block decomposition of `domain` over a `parts` grid of tasks (one
    /// entry per axis, product = task count), with `shadow[axis]` extra
    /// overlap elements mapped on each side of the assigned block.
    ///
    /// Task ranks traverse the part grid in column-major order (first axis
    /// fastest), matching the Fortran convention of the paper's benchmarks.
    pub fn block(domain: &Slice, parts: &[usize], shadow: &[usize]) -> Result<Arc<Distribution>> {
        let d = domain.rank();
        if parts.len() != d || shadow.len() != d {
            return Err(DarrayError::BadDecomposition {
                reason: format!(
                    "domain rank {d} but {} part counts / {} shadow widths",
                    parts.len(),
                    shadow.len()
                ),
            });
        }
        if parts.contains(&0) {
            return Err(DarrayError::BadDecomposition {
                reason: "zero parts along an axis".into(),
            });
        }
        let ntasks: usize = parts.iter().product();
        let mut assigned = Vec::with_capacity(ntasks);
        let mut mapped = Vec::with_capacity(ntasks);
        for task in 0..ntasks {
            // Column-major grid coordinates of this task.
            let mut rem = task;
            let mut a_ranges = Vec::with_capacity(d);
            let mut m_ranges = Vec::with_capacity(d);
            for ax in 0..d {
                let coord = rem % parts[ax];
                rem /= parts[ax];
                let r = domain.range(ax);
                let n = r.len();
                let lo = n * coord / parts[ax];
                let hi = n * (coord + 1) / parts[ax];
                a_ranges.push(r.subrange(lo, hi)?);
                let mlo = lo.saturating_sub(shadow[ax]);
                let mhi = (hi + shadow[ax]).min(n);
                m_ranges.push(r.subrange(mlo, mhi)?);
            }
            assigned.push(Slice::new(a_ranges));
            mapped.push(Slice::new(m_ranges));
        }
        let dist = Distribution {
            domain: domain.clone(),
            assigned,
            mapped,
            kind: DistKind::BlockGrid { parts: parts.to_vec(), shadow: shadow.to_vec() },
        };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// Block decomposition for `ntasks` tasks with a uniform shadow width,
    /// choosing the processor grid automatically (larger axes get more
    /// parts).
    pub fn block_auto(
        domain: &Slice,
        ntasks: usize,
        shadow_width: usize,
    ) -> Result<Arc<Distribution>> {
        let extents = domain.extents();
        let parts = factorize(ntasks, &extents);
        let shadow = vec![shadow_width; domain.rank()];
        Self::block(domain, &parts, &shadow)
    }

    /// Cyclic decomposition along `axis`: task `t` is assigned elements
    /// `t, t + P, t + 2P, ...` of that axis (mapped = assigned; cyclic codes
    /// carry no shadows).
    pub fn cyclic(domain: &Slice, ntasks: usize, axis: usize) -> Result<Arc<Distribution>> {
        if ntasks == 0 || axis >= domain.rank() {
            return Err(DarrayError::BadDecomposition {
                reason: format!("cyclic over {ntasks} tasks along axis {axis}"),
            });
        }
        let r = domain.range(axis);
        let idx = r.to_vec();
        let mut assigned = Vec::with_capacity(ntasks);
        for t in 0..ntasks {
            let mine: Vec<i64> = idx.iter().skip(t).step_by(ntasks).cloned().collect();
            let range = Range::from_indices(&mine)?;
            assigned.push(domain.with_range(axis, range));
        }
        let dist = Distribution {
            domain: domain.clone(),
            assigned: assigned.clone(),
            mapped: assigned,
            kind: DistKind::CyclicAxis { axis },
        };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// Canonical distribution for a streaming wave: task `t` is assigned
    /// (and mapped) exactly `pieces[t]`; tasks beyond the pieces get empty
    /// sections (they participate in redistribution but perform no I/O —
    /// paper, Section 3.2).
    pub fn pieces(domain: &Slice, ntasks: usize, pieces: &[Slice]) -> Result<Arc<Distribution>> {
        if pieces.len() > ntasks {
            return Err(DarrayError::TaskCountMismatch { expected: ntasks, got: pieces.len() });
        }
        let mut assigned: Vec<Slice> = pieces.to_vec();
        assigned.resize_with(ntasks, || Slice::empty(domain.rank()));
        let dist = Distribution {
            domain: domain.clone(),
            assigned: assigned.clone(),
            mapped: assigned,
            kind: DistKind::Pieces,
        };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// Arbitrary user-supplied assigned and mapped sections; validated
    /// against the distribution invariants. Supports the sparse and
    /// unstructured decompositions of Section 3.1.
    pub fn irregular(
        domain: &Slice,
        assigned: Vec<Slice>,
        mapped: Vec<Slice>,
    ) -> Result<Arc<Distribution>> {
        if assigned.len() != mapped.len() {
            return Err(DarrayError::TaskCountMismatch {
                expected: assigned.len(),
                got: mapped.len(),
            });
        }
        let dist =
            Distribution { domain: domain.clone(), assigned, mapped, kind: DistKind::Irregular };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// Block decomposition of `domain` over the `active` subset of a
    /// region's `ntasks` tasks, with a uniform shadow width. The domain is
    /// partitioned block-wise across `active.len()` parts (processor grid
    /// chosen automatically, as in [`Distribution::block_auto`]); part `i`
    /// is assigned to rank `active[i]` and every rank outside `active`
    /// gets an empty section. The active list must be strictly increasing
    /// and within `0..ntasks`.
    ///
    /// This is the distribution shape of survivor-driven recovery and of
    /// malleable shrink/grow: the SPMD region keeps all `ntasks` tasks (so
    /// collectives stay well-formed), but only the active subset owns data.
    pub fn block_active(
        domain: &Slice,
        active: &[usize],
        ntasks: usize,
        shadow_width: usize,
    ) -> Result<Arc<Distribution>> {
        if active.is_empty() || active.windows(2).any(|w| w[0] >= w[1]) {
            return Err(DarrayError::BadDecomposition {
                reason: format!("active task list {active:?} is empty or not strictly increasing"),
            });
        }
        if *active.last().expect("nonempty") >= ntasks {
            return Err(DarrayError::BadDecomposition {
                reason: format!(
                    "active task {} outside region of {ntasks}",
                    active.last().unwrap()
                ),
            });
        }
        let part = Distribution::block_auto(domain, active.len(), shadow_width)?;
        let d = domain.rank();
        let mut assigned = vec![Slice::empty(d); ntasks];
        let mut mapped = vec![Slice::empty(d); ntasks];
        for (i, &task) in active.iter().enumerate() {
            assigned[task] = part.assigned(i).clone();
            mapped[task] = part.mapped(i).clone();
        }
        let dist = Distribution {
            domain: domain.clone(),
            assigned,
            mapped,
            kind: DistKind::ActiveBlock { active: active.to_vec(), shadow: vec![shadow_width; d] },
        };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// A copy of this distribution with every task for which `keep` is
    /// false stripped to empty assigned *and* mapped sections. The result
    /// is what survivors still hold after a node loss: redistributing from
    /// a masked distribution moves only the survivors' data and leaves the
    /// lost sections as holes for the section-restore path to fill.
    pub fn masked(&self, keep: &[bool]) -> Result<Arc<Distribution>> {
        if keep.len() != self.ntasks() {
            return Err(DarrayError::TaskCountMismatch {
                expected: self.ntasks(),
                got: keep.len(),
            });
        }
        let d = self.domain.rank();
        let assigned = self
            .assigned
            .iter()
            .zip(keep)
            .map(|(s, &k)| if k { s.clone() } else { Slice::empty(d) })
            .collect();
        let mapped = self
            .mapped
            .iter()
            .zip(keep)
            .map(|(s, &k)| if k { s.clone() } else { Slice::empty(d) })
            .collect();
        let dist = Distribution {
            domain: self.domain.clone(),
            assigned,
            mapped,
            kind: DistKind::Irregular,
        };
        dist.validate()?;
        Ok(Arc::new(dist))
    }

    /// Per-axis shadow widths of a block-style distribution (`None` for
    /// cyclic, pieces, and irregular kinds, which carry no shadows). Used
    /// to re-derive an equivalent active-set distribution when recovery or
    /// shrink/grow re-partitions an array.
    pub fn shadow_widths(&self) -> Option<&[usize]> {
        match &self.kind {
            DistKind::BlockGrid { shadow, .. } | DistKind::ActiveBlock { shadow, .. } => {
                Some(shadow)
            }
            _ => None,
        }
    }

    /// The strictly increasing list of tasks with nonempty assigned
    /// sections — the *active set* a recovery or resize must preserve data
    /// for.
    pub fn active_tasks(&self) -> Vec<usize> {
        (0..self.ntasks()).filter(|&t| !self.assigned[t].is_empty()).collect()
    }

    /// Recomputes this distribution for a different task count — the
    /// `drms_adjust` operation invoked after a reconfigured restart with
    /// `delta != 0`. Block and cyclic distributions adjust automatically;
    /// irregular ones must be re-specified by the application.
    pub fn adjust(&self, new_ntasks: usize) -> Result<Arc<Distribution>> {
        match &self.kind {
            DistKind::BlockGrid { parts: _, shadow } => {
                let extents = self.domain.extents();
                let parts = factorize(new_ntasks, &extents);
                Distribution::block(&self.domain, &parts, shadow)
            }
            DistKind::CyclicAxis { axis } => Distribution::cyclic(&self.domain, new_ntasks, *axis),
            // A restart onto a fresh region activates every task again: the
            // active-set shape was a property of the old region's failures.
            DistKind::ActiveBlock { shadow, .. } => {
                Distribution::block_auto(&self.domain, new_ntasks, shadow[0])
            }
            DistKind::Pieces | DistKind::Irregular => Err(DarrayError::NotAdjustable),
        }
    }

    /// Whether [`Distribution::adjust`] can recompute this distribution.
    pub fn is_adjustable(&self) -> bool {
        matches!(
            self.kind,
            DistKind::BlockGrid { .. } | DistKind::CyclicAxis { .. } | DistKind::ActiveBlock { .. }
        )
    }

    /// The array domain.
    pub fn domain(&self) -> &Slice {
        &self.domain
    }

    /// Number of tasks the distribution spans.
    pub fn ntasks(&self) -> usize {
        self.assigned.len()
    }

    /// The section assigned to `task`.
    pub fn assigned(&self, task: usize) -> &Slice {
        &self.assigned[task]
    }

    /// The section mapped to `task`.
    pub fn mapped(&self, task: usize) -> &Slice {
        &self.mapped[task]
    }

    /// Total elements in mapped sections (the paper's "local sections"
    /// storage, which exceeds the domain size by the shadow overlap).
    pub fn mapped_elements(&self) -> usize {
        self.mapped.iter().map(Slice::size).sum()
    }

    /// Enforces the paper's distribution invariants.
    fn validate(&self) -> Result<()> {
        let p = self.assigned.len();
        if self.mapped.len() != p {
            return Err(DarrayError::TaskCountMismatch { expected: p, got: self.mapped.len() });
        }
        for t in 0..p {
            if !self.assigned[t].is_subset_of(&self.mapped[t]) {
                return Err(DarrayError::AssignedNotMapped { task: t });
            }
            if !self.mapped[t].is_subset_of(&self.domain) {
                return Err(DarrayError::OutsideDomain { task: t });
            }
        }
        for a in 0..p {
            if self.assigned[a].is_empty() {
                continue;
            }
            for b in (a + 1)..p {
                let overlap = self.assigned[a].intersect(&self.assigned[b])?;
                if !overlap.is_empty() {
                    return Err(DarrayError::AssignedOverlap { a, b, witness: overlap });
                }
            }
        }
        Ok(())
    }
}

/// Factorizes `p` into one factor per axis, giving larger factors to axes
/// with larger extents (the usual near-isotropic processor grid). The
/// result is deterministic.
pub fn factorize(p: usize, extents: &[usize]) -> Vec<usize> {
    let d = extents.len();
    if d == 0 {
        return Vec::new();
    }
    let mut parts = vec![1usize; d];
    // Prime-factor p, largest primes first.
    let mut primes = Vec::new();
    let mut n = p.max(1);
    let mut f = 2;
    while f * f <= n {
        while n.is_multiple_of(f) {
            primes.push(f);
            n /= f;
        }
        f += 1;
    }
    if n > 1 {
        primes.push(n);
    }
    primes.sort_unstable_by(|a, b| b.cmp(a));
    for prime in primes {
        // Assign to the axis where elements-per-part stays largest.
        let best = (0..d)
            .max_by(|&i, &j| {
                let ri = extents[i] as f64 / (parts[i] * prime) as f64;
                let rj = extents[j] as f64 / (parts[j] * prime) as f64;
                ri.partial_cmp(&rj).expect("finite").then(j.cmp(&i))
            })
            .expect("d > 0");
        parts[best] *= prime;
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain3(n: usize) -> Slice {
        Slice::boxed(&[(1, n as i64), (1, n as i64), (1, n as i64)])
    }

    #[test]
    fn block_covers_domain_disjointly() {
        let dom = domain3(8);
        let dist = Distribution::block(&dom, &[2, 2, 2], &[0, 0, 0]).unwrap();
        assert_eq!(dist.ntasks(), 8);
        let total: usize = (0..8).map(|t| dist.assigned(t).size()).sum();
        assert_eq!(total, dom.size());
        // Validation already rejects overlaps; spot-check coverage.
        for p in [[1i64, 1, 1], [8, 8, 8], [4, 5, 6]] {
            let owners = (0..8).filter(|&t| dist.assigned(t).contains(&p).unwrap()).count();
            assert_eq!(owners, 1, "point {p:?}");
        }
    }

    #[test]
    fn block_shadows_extend_mapped() {
        let dom = domain3(8);
        let dist = Distribution::block(&dom, &[2, 1, 1], &[1, 0, 0]).unwrap();
        // Task 0 assigned rows 1..=4, mapped extends one past: 1..=5.
        assert_eq!(dist.assigned(0).range(0), &Range::contiguous(1, 4));
        assert_eq!(dist.mapped(0).range(0), &Range::contiguous(1, 5));
        // Task 1 assigned 5..=8, mapped 4..=8 (clipped at domain edge).
        assert_eq!(dist.mapped(1).range(0), &Range::contiguous(4, 8));
        assert!(dist.mapped_elements() > dom.size());
    }

    #[test]
    fn block_remainder_split_is_balanced() {
        let dom = Slice::boxed(&[(0, 9)]); // 10 elements over 3 parts
        let dist = Distribution::block(&dom, &[3], &[0]).unwrap();
        let sizes: Vec<usize> = (0..3).map(|t| dist.assigned(t).size()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| s == 3 || s == 4), "{sizes:?}");
    }

    #[test]
    fn block_rank_ordering_is_column_major() {
        let dom = Slice::boxed(&[(0, 3), (0, 3)]);
        let dist = Distribution::block(&dom, &[2, 2], &[0, 0]).unwrap();
        // Rank 1 = grid coords (1, 0): second half of axis 0, first of axis 1.
        assert_eq!(dist.assigned(1), &Slice::boxed(&[(2, 3), (0, 1)]));
        // Rank 2 = grid coords (0, 1).
        assert_eq!(dist.assigned(2), &Slice::boxed(&[(0, 1), (2, 3)]));
    }

    #[test]
    fn block_rejects_bad_args() {
        let dom = domain3(4);
        assert!(Distribution::block(&dom, &[2, 2], &[0, 0, 0]).is_err());
        assert!(Distribution::block(&dom, &[0, 1, 1], &[0, 0, 0]).is_err());
    }

    #[test]
    fn cyclic_interleaves() {
        let dom = Slice::boxed(&[(0, 9)]);
        let dist = Distribution::cyclic(&dom, 3, 0).unwrap();
        assert_eq!(dist.assigned(0).range(0).to_vec(), vec![0, 3, 6, 9]);
        assert_eq!(dist.assigned(1).range(0).to_vec(), vec![1, 4, 7]);
        assert_eq!(dist.assigned(2).range(0).to_vec(), vec![2, 5, 8]);
    }

    #[test]
    fn irregular_validation_catches_overlap() {
        let dom = Slice::boxed(&[(0, 9)]);
        let a = vec![Slice::boxed(&[(0, 5)]), Slice::boxed(&[(5, 9)])];
        let err = Distribution::irregular(&dom, a.clone(), a).unwrap_err();
        assert!(matches!(err, DarrayError::AssignedOverlap { a: 0, b: 1, .. }));
    }

    #[test]
    fn irregular_validation_catches_unmapped_assigned() {
        let dom = Slice::boxed(&[(0, 9)]);
        let assigned = vec![Slice::boxed(&[(0, 5)])];
        let mapped = vec![Slice::boxed(&[(2, 9)])];
        let err = Distribution::irregular(&dom, assigned, mapped).unwrap_err();
        assert!(matches!(err, DarrayError::AssignedNotMapped { task: 0 }));
    }

    #[test]
    fn irregular_validation_catches_outside_domain() {
        let dom = Slice::boxed(&[(0, 9)]);
        let s = vec![Slice::boxed(&[(5, 12)])];
        let err = Distribution::irregular(&dom, s.clone(), s).unwrap_err();
        assert!(matches!(err, DarrayError::OutsideDomain { task: 0 }));
    }

    #[test]
    fn adjust_block_to_new_task_count() {
        let dom = domain3(12);
        let dist = Distribution::block(&dom, &[2, 2, 1], &[1, 1, 1]).unwrap();
        let adjusted = dist.adjust(6).unwrap();
        assert_eq!(adjusted.ntasks(), 6);
        let total: usize = (0..6).map(|t| adjusted.assigned(t).size()).sum();
        assert_eq!(total, dom.size());
        assert!(adjusted.is_adjustable());
    }

    #[test]
    fn adjust_preserves_shadow_width() {
        let dom = Slice::boxed(&[(0, 31)]);
        let dist = Distribution::block(&dom, &[4], &[2]).unwrap();
        let adjusted = dist.adjust(2).unwrap();
        // Interior boundary at element 16: mapped extends 2 each way.
        assert_eq!(adjusted.assigned(0).range(0), &Range::contiguous(0, 15));
        assert_eq!(adjusted.mapped(0).range(0), &Range::contiguous(0, 17));
    }

    #[test]
    fn adjust_irregular_fails() {
        let dom = Slice::boxed(&[(0, 9)]);
        let s = vec![Slice::boxed(&[(0, 9)])];
        let dist = Distribution::irregular(&dom, s.clone(), s).unwrap();
        assert!(matches!(dist.adjust(2), Err(DarrayError::NotAdjustable)));
        assert!(!dist.is_adjustable());
    }

    #[test]
    fn pieces_pads_with_empty() {
        let dom = Slice::boxed(&[(0, 9)]);
        let dist =
            Distribution::pieces(&dom, 4, &[Slice::boxed(&[(0, 4)]), Slice::boxed(&[(5, 9)])])
                .unwrap();
        assert_eq!(dist.ntasks(), 4);
        assert!(dist.assigned(2).is_empty());
        assert!(dist.assigned(3).is_empty());
    }

    #[test]
    fn factorize_prefers_long_axes() {
        assert_eq!(factorize(8, &[64, 64, 64]).iter().product::<usize>(), 8);
        let parts = factorize(4, &[1000, 10]);
        assert_eq!(parts, vec![4, 1]);
        let parts = factorize(6, &[100, 100]);
        assert_eq!(parts.iter().product::<usize>(), 6);
        assert_eq!(factorize(1, &[5, 5]), vec![1, 1]);
        assert_eq!(factorize(7, &[100]), vec![7]);
    }

    #[test]
    fn factorize_deterministic() {
        for _ in 0..5 {
            assert_eq!(factorize(12, &[30, 30, 30]), factorize(12, &[30, 30, 30]));
        }
    }
}
