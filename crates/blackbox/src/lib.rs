//! Crash-surviving flight recorder for DRMS runs.
//!
//! The observability stack (obs → insight → pulse) only ever sees one
//! incarnation: when a crash kills the job, the in-memory trace dies with
//! it, and the restarted incarnation begins a fresh recorder session. The
//! flight recorder closes that gap. A [`Blackbox`] sits in the ordinary
//! [`Recorder`] fan-out and captures rank-attributed events into bounded
//! per-rank [`FlightRing`]s; at every SOP each rank *seals* its ring — a
//! snapshot encoded by [`wire`] — into the checkpoint's two-phase staging
//! area, and when a chaos crash point fires the dying region salvages one
//! last seal straight to storage. After a restart, the JSA scans storage,
//! feeds every seal it finds into the [`SealArchive`], and hands the
//! reconstructed per-incarnation event streams to the insight stitcher,
//! which joins pre-crash and post-crash span DAGs into one cross-
//! incarnation timeline with exact recovery-cost attribution.
//!
//! Determinism: rings are single-writer — only rank *r*'s thread captures
//! into ring *r*, and seals are taken by each rank at its own program
//! point (after a barrier, or inside the collective crash vote), so seal
//! contents are bit-reproducible per `FAULT_SEED`. Seals are snapshots,
//! not drains: the newest recovered seal alone carries the rank's full
//! surviving history, and capture sequence numbers let overlapping seals
//! deduplicate exactly.

#![deny(missing_docs)]

mod archive;
mod ring;
/// Wire format for encoded seals (public for tests and tooling).
pub mod wire;

use std::sync::atomic::{AtomicU64, Ordering};

use drms_obs::{EventKind, FlightSeal, Phase, Recorder, TraceEvent};
use parking_lot::Mutex;

pub use archive::SealArchive;
pub use ring::{FlightRing, SealStats};
pub use wire::{decode_seal, encode_seal, DecodedSeal, SealHeader};

/// Event-name prefix of the rank-0 instant the core checkpoint paths emit
/// at each two-phase commit point (`commit:{prefix}`). The recovery-cost
/// attribution uses these markers as the durable-progress lattice.
pub const COMMIT_EVENT_PREFIX: &str = "commit:";

/// Event-name prefix of the `Phase::Control` instant the crash injector
/// emits when a crash point fires (`crash:{point}`). These carry real
/// simulated time (unlike other control-plane events) and mark where an
/// incarnation died.
pub const CRASH_EVENT_PREFIX: &str = "crash:";

/// Span names of the restart restore path, in execution order. The live
/// recovery estimate and the insight attribution both treat the latest
/// close of any of these as the end of an incarnation's restore window.
pub const RESTORE_SPAN_NAMES: [&str; 3] = ["load_text", "load_segment", "restore_arrays"];

/// Span name of a localized in-incarnation recovery window (rank 0,
/// `Phase::Recover`): survivors reinstated their retained sections and the
/// lost sections were fetched, all without tearing the incarnation down.
/// The recovery-cost attribution carves these windows out of useful work
/// as localized restore, mirroring how [`RESTORE_SPAN_NAMES`] mark a full
/// restart's restore window.
pub const LOCALIZED_SPAN_NAME: &str = "localized_recover";

/// File name of rank `rank`'s sealed ring under a checkpoint (or staging)
/// prefix directory.
pub fn ring_file_name(rank: usize) -> String {
    format!("blackbox-r{rank}")
}

/// Storage directory crash-point salvage seals land under (keyed by their
/// unique seal tag, so they never collide across incarnations).
pub const SALVAGE_DIR: &str = "bb";

/// Configuration of a [`Blackbox`].
#[derive(Debug, Clone)]
pub struct BlackboxConfig {
    /// Per-rank ring capacity in events; the oldest event is evicted first
    /// when a ring is full (evictions are counted and reported).
    pub capacity: usize,
    /// Simulated seconds the environment needs to detect a death and start
    /// the reincarnation — the stitcher inserts this gap between a crashed
    /// incarnation's end and its successor's start, and the recovery-cost
    /// report bills it as detection latency.
    pub detection_latency: f64,
}

impl Default for BlackboxConfig {
    fn default() -> BlackboxConfig {
        BlackboxConfig { capacity: 1 << 16, detection_latency: 1.0 }
    }
}

/// The flight recorder: a [`Recorder`] capturing into bounded per-rank
/// rings, plus the [`SealArchive`] of everything recovered so far.
///
/// Attach it to a run through a [`drms_obs::FanoutRecorder`] next to the
/// usual trace/pulse sinks, and hand the same `Arc` to the JSA (see
/// `Jsa::with_blackbox` in the rtenv crate) so incarnation lifecycles,
/// storage recovery, and the live recovery-budget gauge are driven for
/// you.
pub struct Blackbox {
    cfg: BlackboxConfig,
    rings: Vec<Mutex<FlightRing>>,
    incarnation: AtomicU64,
    archive: Mutex<SealArchive>,
}

impl Blackbox {
    /// A flight recorder with rings for ranks `0..max_ranks`. Events from
    /// ranks beyond `max_ranks` are ignored (size it to the largest task
    /// count the job may reincarnate with).
    pub fn new(cfg: BlackboxConfig, max_ranks: usize) -> Blackbox {
        let rings = (0..max_ranks).map(|_| Mutex::new(FlightRing::new(cfg.capacity))).collect();
        Blackbox {
            cfg,
            rings,
            incarnation: AtomicU64::new(0),
            archive: Mutex::new(SealArchive::new()),
        }
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &BlackboxConfig {
        &self.cfg
    }

    /// The incarnation currently being captured.
    pub fn incarnation(&self) -> u64 {
        self.incarnation.load(Ordering::SeqCst)
    }

    /// Starts capturing for incarnation `inc`: rings are reset (a restarted
    /// process begins with empty memory and fresh sequence counters).
    /// Call before the incarnation's SPMD region runs.
    pub fn begin_incarnation(&self, inc: u64) {
        self.incarnation.store(inc, Ordering::SeqCst);
        for ring in &self.rings {
            ring.lock().reset();
        }
    }

    /// Accounts an incarnation's death: returns how many captured events
    /// were never included in any seal — the loss that would have been
    /// silent before the flight recorder existed. The rings themselves are
    /// left for [`Blackbox::begin_incarnation`] to reset.
    pub fn incarnation_died(&self) -> u64 {
        self.rings.iter().map(|r| r.lock().unsealed()).sum()
    }

    /// Latest captured event time across all rings (0.0 when empty) — the
    /// natural timestamp for a final post-run seal.
    pub fn latest_time(&self) -> f64 {
        self.rings
            .iter()
            .map(|r| r.lock().contents().map(|(_, e)| e.t).fold(0.0, f64::max))
            .fold(0.0, f64::max)
    }

    /// Seals every ring that captured anything (the completed process is
    /// alive, so its in-memory tail is collectable directly — no storage
    /// round-trip). Call only when no rank threads are running.
    pub fn seal_all(&self, t: f64, reason: &str) -> Vec<FlightSeal> {
        (0..self.rings.len())
            .filter(|&rank| self.rings[rank].lock().captured() > 0)
            .filter_map(|rank| self.seal_rank(t, rank, reason))
            .collect()
    }

    /// Ingests one encoded seal into the archive. `Ok(true)` when new,
    /// `Ok(false)` when already ingested, `Err` for damaged bytes.
    pub fn ingest(&self, bytes: &[u8]) -> Result<bool, String> {
        self.archive.lock().ingest(bytes)
    }

    /// Runs `f` over the archive of recovered seals.
    pub fn with_archive<R>(&self, f: impl FnOnce(&SealArchive) -> R) -> R {
        f(&self.archive.lock())
    }

    /// Incarnations the archive holds seals for, ascending.
    pub fn incarnations(&self) -> Vec<u64> {
        self.archive.lock().incarnations()
    }

    /// The deduplicated recovered events of `incarnation`, sorted by
    /// (time, rank, capture sequence).
    pub fn events_for(&self, incarnation: u64) -> Vec<TraceEvent> {
        self.archive.lock().events_for(incarnation)
    }

    /// Live estimate of the cumulative recovery fraction: (detection +
    /// restore + re-computation + lost work) over the stitched wall clock,
    /// computed from the archive alone. `killed[k]` says whether
    /// incarnation `k` died (the JSA knows; the archive alone cannot).
    ///
    /// This drives the `blackbox.recovery_ratio` gauge and the pulse
    /// recovery-budget rule between incarnations; the offline insight
    /// report recomputes the same quantity with exact wall-clock tiling.
    pub fn live_recovery_fraction(&self, killed: &[bool]) -> f64 {
        let archive = self.archive.lock();
        let mut wall = 0.0;
        let mut cost = 0.0;
        for (i, inc) in archive.incarnations().into_iter().enumerate() {
            let events = archive.events_for(inc);
            let horizon = events.iter().map(|e| e.t).fold(0.0, f64::max);
            let restarted = i > 0;
            let restore_end = if restarted {
                events
                    .iter()
                    .filter(|e| {
                        e.kind == EventKind::End && RESTORE_SPAN_NAMES.contains(&e.name.as_str())
                    })
                    .map(|e| e.t)
                    .fold(0.0, f64::max)
            } else {
                0.0
            };
            let commits: Vec<f64> = events
                .iter()
                .filter(|e| e.kind == EventKind::Instant && e.name.starts_with(COMMIT_EVENT_PREFIX))
                .map(|e| e.t)
                .collect();
            let was_killed = killed.get(i).copied().unwrap_or(false);
            if restarted {
                cost += self.cfg.detection_latency + restore_end;
                if let Some(first) = commits.first() {
                    cost += (first - restore_end).max(0.0);
                } else if !was_killed {
                    cost += (horizon - restore_end).max(0.0);
                }
            }
            if was_killed {
                let last = commits.last().copied().unwrap_or(restore_end);
                cost += (horizon - last).max(0.0);
            }
            wall += horizon;
            if restarted {
                wall += self.cfg.detection_latency;
            }
        }
        if wall <= 0.0 {
            0.0
        } else {
            cost / wall
        }
    }

    fn seal_rank(&self, t: f64, rank: usize, reason: &str) -> Option<FlightSeal> {
        let inc = self.incarnation();
        let mut ring = self.rings.get(rank)?.lock();
        let stats = ring.mark_sealed();
        let header = SealHeader {
            incarnation: inc,
            rank,
            seal_seq: stats.seal_seq,
            t,
            reason: reason.to_string(),
            evicted_total: stats.evicted_total,
        };
        let count = ring.len();
        let bytes = encode_seal(&header, ring.contents(), count);
        Some(FlightSeal {
            tag: format!("inc{inc}-r{rank}-s{}", stats.seal_seq),
            bytes,
            events: stats.captured_delta,
            evicted: stats.evicted_delta,
        })
    }

    fn capture(
        &self,
        t: f64,
        rank: usize,
        phase: Phase,
        name: &str,
        kind: EventKind,
        corr: Option<u64>,
    ) {
        let Some(ring) = self.rings.get(rank) else { return };
        // Control-plane events carry sequence-number pseudo-times, not
        // simulated time — except the crash markers the injector stamps
        // with the real clock, which the stitcher needs.
        if phase == Phase::Control && !name.starts_with(CRASH_EVENT_PREFIX) {
            return;
        }
        ring.lock().push(TraceEvent { t, rank, phase, name: name.to_string(), kind, corr });
    }
}

impl Recorder for Blackbox {
    fn enabled(&self) -> bool {
        true
    }

    fn flight_enabled(&self) -> bool {
        true
    }

    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.capture(t, rank, phase, name, EventKind::Begin, None);
    }

    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.capture(t, rank, phase, name, EventKind::End, None);
    }

    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.capture(t, rank, phase, name, EventKind::Instant, None);
    }

    fn event_with_corr(&self, t: f64, rank: usize, phase: Phase, name: &str, corr: u64) {
        self.capture(t, rank, phase, name, EventKind::Instant, Some(corr));
    }

    fn flight_seal(&self, t: f64, rank: usize, reason: &str) -> Option<FlightSeal> {
        self.seal_rank(t, rank, reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::{FanoutRecorder, NullRecorder, Recorder};
    use std::sync::Arc;

    #[test]
    fn captures_rank_attributed_events_and_filters_control_pseudotimes() {
        let bb = Blackbox::new(BlackboxConfig::default(), 4);
        bb.span_start(1.0, 0, Phase::Segment, "write_segment");
        bb.span_end(2.0, 0, Phase::Segment, "write_segment");
        bb.event(3.0, 1, Phase::Manifest, "commit:ck/a");
        bb.event(4.0, 0, Phase::Control, "job bt started on 4 tasks"); // filtered
        bb.event(5.0, 0, Phase::Control, "crash:ckpt_mid_publish"); // kept
        bb.event(6.0, 99, Phase::Arrays, "out-of-range rank"); // ignored
        let seals = bb.seal_all(7.0, "final");
        assert_eq!(seals.len(), 2); // ranks 0 and 1 captured
        let mut archive = SealArchive::new();
        for s in &seals {
            assert!(archive.ingest(&s.bytes).unwrap());
        }
        let evs = archive.events_for(0);
        assert_eq!(evs.len(), 4);
        assert!(evs.iter().any(|e| e.name == "crash:ckpt_mid_publish"));
        assert!(!evs.iter().any(|e| e.name.contains("started")));
    }

    #[test]
    fn seal_through_fanout_returns_first_some() {
        let bb = Arc::new(Blackbox::new(BlackboxConfig::default(), 2));
        let fan =
            FanoutRecorder::new(vec![Arc::new(NullRecorder) as Arc<dyn Recorder>, bb.clone()]);
        assert!(fan.flight_enabled());
        fan.event(1.0, 1, Phase::Arrays, "x");
        let seal = fan.flight_seal(2.0, 1, "sop").expect("blackbox seals");
        assert_eq!(seal.tag, "inc0-r1-s0");
        assert_eq!(seal.events, 1);
        let next = fan.flight_seal(3.0, 1, "sop").expect("snapshot re-seals");
        assert_eq!(next.tag, "inc0-r1-s1");
        assert_eq!(next.events, 0); // nothing new since the last seal
    }

    #[test]
    fn death_counts_unsealed_events_and_incarnations_reset() {
        let bb = Blackbox::new(BlackboxConfig::default(), 2);
        bb.begin_incarnation(0);
        bb.event(1.0, 0, Phase::Arrays, "a");
        bb.event(2.0, 1, Phase::Arrays, "b");
        assert!(bb.flight_seal(2.5, 0, "sop").is_some());
        bb.event(3.0, 0, Phase::Arrays, "c");
        assert_eq!(bb.incarnation_died(), 2); // rank 0's "c" + rank 1's "b"
        bb.begin_incarnation(1);
        assert_eq!(bb.incarnation_died(), 0);
        assert_eq!(bb.incarnation(), 1);
    }

    #[test]
    fn live_recovery_fraction_accounts_lost_and_detection() {
        let cfg = BlackboxConfig { capacity: 1024, detection_latency: 2.0 };
        let bb = Blackbox::new(cfg, 1);
        // Incarnation 0: commit at t=4, horizon t=10 → 6s lost.
        bb.begin_incarnation(0);
        bb.event(4.0, 0, Phase::Manifest, "commit:ck/a");
        bb.event(10.0, 0, Phase::Arrays, "work");
        for s in bb.seal_all(10.0, "salvage") {
            bb.ingest(&s.bytes).unwrap();
        }
        // Incarnation 1: restore ends t=3, commit t=5, horizon t=8, completed.
        bb.begin_incarnation(1);
        bb.span_end(3.0, 0, Phase::Arrays, "restore_arrays");
        bb.event(5.0, 0, Phase::Manifest, "commit:ck/a");
        bb.event(8.0, 0, Phase::Arrays, "work");
        for s in bb.seal_all(8.0, "final") {
            bb.ingest(&s.bytes).unwrap();
        }
        // cost = lost(6) + detect(2) + restore(3) + recompute(2) = 13
        // wall = 10 + 2 + 8 = 20
        let frac = bb.live_recovery_fraction(&[true, false]);
        assert!((frac - 13.0 / 20.0).abs() < 1e-12, "got {frac}");
    }
}
