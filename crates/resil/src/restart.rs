//! Verified restart fallback: choose the newest checkpoint that can be
//! trusted, repairing or quarantining the damaged ones along the way.

use drms_core::find_checkpoints;
use drms_core::manifest::{manifest_path, Manifest};
use drms_obs::Recorder;
use drms_piofs::Piofs;

use crate::scrub::scrub_checkpoint;
use crate::verify::verify_checkpoint;

/// Outcome of a restart-time walk over the checkpoint chain.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartPlan {
    /// Newest checkpoint that verified (possibly after scrub repair), with
    /// its manifest; `None` when no checkpoint survives.
    pub chosen: Option<(String, Manifest)>,
    /// Newer checkpoints skipped before `chosen` was accepted.
    pub fallback_depth: usize,
    /// Prefixes quarantined by this walk (manifest renamed to
    /// `manifest.quarantined`; data preserved for diagnosis, checkpoint
    /// invisible to future discovery).
    pub quarantined: Vec<String>,
    /// Corrupt chunks repaired from parity across the walk.
    pub repaired: usize,
}

/// Takes the checkpoint under `prefix` out of circulation by renaming its
/// manifest to `manifest.quarantined`: discovery ([`find_checkpoints`])
/// no longer sees it, the orphan sweep will not reclaim its data, and a
/// human (or test) can still inspect every byte. Returns whether a manifest
/// was there to quarantine.
pub fn quarantine_checkpoint(fs: &Piofs, prefix: &str) -> bool {
    let m = manifest_path(prefix);
    fs.rename(&m, &format!("{m}.quarantined"))
}

/// Walks the checkpoints of `app` newest-first and returns the first one
/// that verifies end-to-end, scrubbing repairable corruption in place and
/// quarantining checkpoints that stay damaged. The returned
/// [`RestartPlan::fallback_depth`] is the number of newer checkpoints the
/// walk had to skip — 0 means the newest checkpoint was healthy (the
/// paper's assumed case). Control-plane operation (no clock); `t` stamps
/// the emitted verify/scrub telemetry.
pub fn choose_restart(fs: &Piofs, app: Option<&str>, rec: &dyn Recorder, t: f64) -> RestartPlan {
    let mut plan =
        RestartPlan { chosen: None, fallback_depth: 0, quarantined: Vec::new(), repaired: 0 };
    for (depth, (prefix, _)) in find_checkpoints(fs, app).into_iter().enumerate() {
        if verify_checkpoint(fs, &prefix, rec, t).is_valid() {
            plan.accept(fs, prefix, depth);
            return plan;
        }
        // Damaged: try to scrub it back to health before giving up on it.
        let scrub = scrub_checkpoint(fs, &prefix, rec, t);
        plan.repaired += scrub.repaired;
        if scrub.is_clean() && verify_checkpoint(fs, &prefix, rec, t).is_valid() {
            plan.accept(fs, prefix, depth);
            return plan;
        }
        quarantine_checkpoint(fs, &prefix);
        plan.quarantined.push(prefix);
    }
    plan
}

impl RestartPlan {
    fn accept(&mut self, fs: &Piofs, prefix: String, depth: usize) {
        self.fallback_depth = depth;
        let manifest = fs
            .peek(&manifest_path(&prefix))
            .and_then(|b| Manifest::decode(&b).ok())
            .expect("checkpoint just verified");
        self.chosen = Some((prefix, manifest));
    }
}
