//! Memory-tier restart experiment: what diskless checkpointing buys on the
//! restart path.
//!
//! ```text
//! cargo run --release -p drms-bench --bin memtier [--class T] [--pes 4] [--seed 42] [--json DIR]
//! ```
//!
//! For each of BT, LU and SP, takes one mid-point checkpoint through the
//! in-memory replicated tier (replication factor 1) with a verified spill
//! to the paper's 16-server PIOFS, then restarts the application three ways
//! at each measured task count (half the checkpoint region and the full
//! region):
//!
//! * **memory** — served out of resident replicated pieces
//!   ([`MiniApp::start_memtier`]): no checkpoint I/O, bytes move at
//!   memory-copy / interconnect speed;
//! * **clean** — the ordinary PIOFS restart from the spilled files (which
//!   are bitwise-identical to a direct checkpoint);
//! * **degraded** — the PIOFS restart after a parity-protected server is
//!   killed, reading lost stripes through XOR reconstruction.
//!
//! The binary *asserts* that the memory-tier restart is strictly faster
//! than the clean PIOFS restart for every app and task count, and that
//! every measurement is deterministic per seed — CI runs it as a gate.

use std::path::PathBuf;
use std::sync::Arc;

use drms_apps::{bt, lu, sp, AppSpec, AppVariant, Class, MiniApp};
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_core::{Drms, EnableFlag};
use drms_memtier::MemTier;
use drms_msg::{run_spmd_traced, CostModel};
use drms_obs::{names, NullRecorder, Recorder, TraceRecorder};
use drms_piofs::{Piofs, PiofsConfig};
use drms_resil::verify_checkpoint;

struct Opts {
    class: Class,
    pes: usize,
    seed: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts { class: Class::T, pes: 4, seed: 42, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--class" => {
                let v = value("--class");
                opts.class =
                    Class::parse(&v).unwrap_or_else(|| usage(&format!("unknown class {v:?}")));
            }
            "--pes" => {
                let v = value("--pes");
                opts.pes = v
                    .parse()
                    .ok()
                    .filter(|p| (1..=16).contains(p))
                    .unwrap_or_else(|| usage(&format!("bad PE count {v:?}")));
            }
            "--seed" => {
                let v = value("--seed");
                opts.seed = v.parse().unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
            }
            "--json" => opts.json = Some(PathBuf::from(value("--json"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: memtier [--class T|S|W|A] [--pes N] [--seed S] [--json DIR]");
    std::process::exit(2);
}

/// Runs the application to its mid-point on a fresh file system and takes
/// one checkpoint through the memory tier with a verified spill. Returns
/// the populated file system and tier plus the store/spill virtual times.
fn checkpoint_cycle(
    spec: &AppSpec,
    opts: &Opts,
    parity: bool,
) -> (Arc<Piofs>, Arc<MemTier>, f64, f64) {
    let mut cfg = PiofsConfig::sp_1997().scale_memory(spec.class.memory_scale());
    if parity {
        cfg = cfg.with_parity();
    }
    let fs = Piofs::new(cfg, opts.seed);
    Drms::install_binary(&fs, &spec.drms_config());
    let tier = MemTier::new(1);

    let spec_c = spec.clone();
    let fs_c = Arc::clone(&fs);
    let tier_c = Arc::clone(&tier);
    let reports = run_spmd_traced(
        opts.pes,
        CostModel::default(),
        Arc::new(NullRecorder) as Arc<dyn Recorder>,
        move |ctx| {
            let mut app = MiniApp::start(
                ctx,
                &fs_c,
                spec_c.clone(),
                AppVariant::Drms,
                EnableFlag::new(),
                None,
            )
            .expect("fresh start");
            app.step(ctx);
            app.checkpoint_memtier(ctx, &fs_c, &tier_c, "ck/mid", true).expect("tier checkpoint")
        },
    )
    .expect("checkpoint incarnation");
    let (store, spill) = &reports[0];
    (fs, tier, store.seconds, spill.as_ref().expect("spilled").seconds)
}

/// One restart incarnation served out of the memory tier at `ntasks`;
/// returns its virtual time and the tier bytes it moved.
fn restart_memory(
    spec: &AppSpec,
    fs: &Arc<Piofs>,
    tier: &Arc<MemTier>,
    ntasks: usize,
) -> (f64, u64) {
    fs.clear_residency();
    fs.reset_time();
    let rec = Arc::new(TraceRecorder::new());
    let spec_r = spec.clone();
    let fs_r = Arc::clone(fs);
    let tier_r = Arc::clone(tier);
    let restarts = run_spmd_traced(
        ntasks,
        CostModel::default(),
        Arc::clone(&rec) as Arc<dyn Recorder>,
        move |ctx| {
            let app = MiniApp::start_memtier(
                ctx,
                &fs_r,
                &tier_r,
                spec_r.clone(),
                EnableFlag::new(),
                "ck/mid",
            )
            .expect("tier restart");
            app.restart_report.expect("restarted")
        },
    )
    .expect("memory restart incarnation");
    (restarts[0].total(), rec.metrics().counter_total(names::MEMTIER_RESTORE_BYTES))
}

/// One ordinary PIOFS restart incarnation from the spilled checkpoint.
fn restart_piofs(spec: &AppSpec, fs: &Arc<Piofs>, ntasks: usize) -> f64 {
    fs.clear_residency();
    fs.reset_time();
    let spec_r = spec.clone();
    let fs_r = Arc::clone(fs);
    let restarts = run_spmd_traced(
        ntasks,
        CostModel::default(),
        Arc::new(NullRecorder) as Arc<dyn Recorder>,
        move |ctx| {
            let app = MiniApp::start(
                ctx,
                &fs_r,
                spec_r.clone(),
                AppVariant::Drms,
                EnableFlag::new(),
                Some("ck/mid"),
            )
            .expect("piofs restart");
            app.restart_report.expect("restarted")
        },
    )
    .expect("piofs restart incarnation");
    restarts[0].total()
}

const KILLED: usize = 3;

/// One measured restart comparison at a task count.
#[derive(Debug, Clone, PartialEq)]
struct Row {
    ntasks: usize,
    mem_s: f64,
    clean_s: f64,
    degraded_s: f64,
    tier_bytes: u64,
}

/// The full measurement for one application: checkpoint-cycle times plus
/// one [`Row`] per restart task count. Rebuilt from scratch (fresh seeded
/// file systems, fresh tier) each call, so two calls must agree
/// bit-for-bit.
fn measure(spec: &AppSpec, opts: &Opts, counts: &[usize]) -> (f64, f64, Vec<Row>) {
    // Clean cycle: plain striping, tier + verified spill.
    let (fs, tier, store_s, spill_s) = checkpoint_cycle(spec, opts, false);
    // Degraded cycle: parity striping, then a server dies; the spill must
    // still verify end-to-end through parity.
    let (fs_deg, _tier_deg, _, _) = checkpoint_cycle(spec, opts, true);
    fs_deg.fail_server(KILLED);
    let report = verify_checkpoint(&fs_deg, "ck/mid", &NullRecorder, 0.0);
    assert!(report.is_valid(), "{}: spill lost with server {KILLED}: {report:?}", spec.name);

    let rows = counts
        .iter()
        .map(|&n| {
            let (mem_s, tier_bytes) = restart_memory(spec, &fs, &tier, n);
            let clean_s = restart_piofs(spec, &fs, n);
            let degraded_s = restart_piofs(spec, &fs_deg, n);
            Row { ntasks: n, mem_s, clean_s, degraded_s, tier_bytes }
        })
        .collect();
    (store_s, spill_s, rows)
}

fn main() {
    let opts = parse_args();
    let repro = format!(
        "cargo run --release -p drms-bench --bin memtier -- --class {} --pes {} --seed {}",
        opts.class, opts.pes, opts.seed
    );
    run_gated("memtier", &repro, || body(&opts));
}

fn body(opts: &Opts) {
    println!(
        "Memory-tier restart latency (class {}, checkpoint on {} PEs, seed {}, r=1, server {KILLED} killed for degraded restart)",
        opts.class, opts.pes, opts.seed
    );
    println!(
        "{:<4} {:>5} {:>8} {:>9}  {:>8} {:>9} {:>11}  {:>8} {:>9}",
        "app",
        "tasks",
        "store(s)",
        "spill(s)",
        "mem(s)",
        "clean(s)",
        "degraded(s)",
        "speedup",
        "tier MB"
    );

    let mut result = BenchResult::new("memtier");
    result.param("class", opts.class);
    result.param("pes", opts.pes);
    result.param("seed", opts.seed);
    result.stamp_header(opts.seed, opts.pes);

    let mut counts = vec![(opts.pes / 2).max(1), opts.pes];
    counts.dedup();
    for spec in [bt(opts.class), lu(opts.class), sp(opts.class)] {
        let (store_s, spill_s, rows) = measure(&spec, opts, &counts);
        result.metric(&format!("{}.store_s", spec.name), store_s);
        result.metric(&format!("{}.spill_s", spec.name), spill_s);

        // Determinism check: the same seed must reproduce every virtual
        // time bit-for-bit from a fresh cycle.
        let repeat = measure(&spec, opts, &counts);
        assert_eq!(
            (store_s, spill_s, rows.clone()),
            repeat,
            "{}: measurement not deterministic per seed",
            spec.name
        );

        for row in &rows {
            let Row { ntasks, mem_s, clean_s, degraded_s, tier_bytes } = *row;
            assert!(tier_bytes > 0, "{}: memory restart moved no tier bytes", spec.name);
            let key = |m: &str| format!("{}.t{ntasks}.{m}", spec.name);
            result.metric(&key("mem_s"), mem_s);
            result.metric(&key("clean_s"), clean_s);
            result.metric(&key("degraded_s"), degraded_s);
            result.metric(&key("tier_mb"), tier_bytes as f64 / 1e6);

            // The CI gate: the diskless tier must beat the durable path in
            // virtual time, strictly, at every measured task count.
            assert!(
                mem_s < clean_s,
                "{} on {ntasks} tasks: memory restart {mem_s:.4}s not strictly faster than clean PIOFS {clean_s:.4}s",
                spec.name
            );
            assert!(
                mem_s < degraded_s,
                "{} on {ntasks} tasks: memory restart {mem_s:.4}s not strictly faster than degraded PIOFS {degraded_s:.4}s",
                spec.name
            );

            println!(
                "{:<4} {:>5} {:>8.3} {:>9.3}  {:>8.4} {:>9.3} {:>11.3}  {:>7.1}x {:>9.2}",
                spec.name,
                ntasks,
                store_s,
                spill_s,
                mem_s,
                clean_s,
                degraded_s,
                clean_s / mem_s,
                tier_bytes as f64 / 1e6,
            );
        }
    }
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_memtier.json");
        println!("wrote {}", path.display());
    }
    println!("\nAll memory-tier restarts strictly faster than clean and degraded PIOFS restarts; all measurements deterministic.");
}
