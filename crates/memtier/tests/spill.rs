//! Checkpoint hygiene against the tier's spill path when a spill is
//! interrupted mid-flight.
//!
//! The spill protocol writes data pieces first and the manifest last, so
//! dying partway always leaves a prefix with data files but no manifest —
//! simulated here by completing a spill and then dropping the manifest
//! (and, for the partial-data variant, some of the data too). Such a
//! half-spilled prefix must be:
//!
//! * invisible to `find_checkpoints` and to every restart walk,
//! * never counted as the protected newest-verified checkpoint by
//!   `retain_checkpoints`,
//! * reclaimed by `sweep_orphans` without touching healthy checkpoints.

use std::sync::Arc;

use drms_core::manifest::manifest_path;
use drms_core::segment::DataSegment;
use drms_core::{
    find_checkpoints, retain_checkpoints, sweep_orphans, Drms, DrmsConfig, EnableFlag,
};
use drms_darray::{DistArray, Distribution};
use drms_memtier::{spill_checkpoint, store_checkpoint, MemTier};
use drms_msg::{run_spmd, CostModel};
use drms_obs::NullRecorder;
use drms_piofs::{Piofs, PiofsConfig};
use drms_resil::{choose_restart, verify_checkpoint};
use drms_slices::{Order, Slice};

const APP: &str = "spillt";

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(8), 23)
}

/// Runs one SPMD incarnation that stores a checkpoint into the tier under
/// each prefix in turn (SOPs 1, 2, ...) and spills every one to PIOFS.
fn store_and_spill_all(fs: &Arc<Piofs>, tier: &Arc<MemTier>, ntasks: usize, prefixes: &[&str]) {
    let prefixes: Vec<String> = prefixes.iter().map(|p| p.to_string()).collect();
    run_spmd(ntasks, CostModel::default(), move |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, fs, DrmsConfig::new(APP), EnableFlag::new(), None).unwrap();
        let dom = Slice::boxed(&[(1, 24), (1, 18)]);
        let dist = Distribution::block_auto(&dom, ctx.ntasks(), 0).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| (p[0] * 31 + p[1] * 7) as f64);
        let mut seg = DataSegment::new();
        for (i, prefix) in prefixes.iter().enumerate() {
            seg.set_control("iter", i as i64 + 1);
            store_checkpoint(ctx, tier, prefix, &mut drms, &seg, &[&u]).unwrap();
            spill_checkpoint(ctx, fs, tier, prefix).unwrap();
        }
    })
    .unwrap();
}

#[test]
fn half_spilled_prefix_is_invisible_and_reclaimed() {
    let fs = fs();
    let tier = MemTier::new(1);
    store_and_spill_all(&fs, &tier, 4, &["ck/a", "ck/b"]);
    assert!(verify_checkpoint(&fs, "ck/a", &NullRecorder, 0.0).is_valid());
    assert!(verify_checkpoint(&fs, "ck/b", &NullRecorder, 0.0).is_valid());

    // Interrupt ck/b's spill mid-flight: the manifest (written last) never
    // landed, and one data file only partially arrived.
    assert!(fs.delete(&manifest_path("ck/b")));
    assert!(fs.delete("ck/b/array-u"));
    assert!(!fs.list("ck/b/").is_empty(), "half-spilled data should still be on PIOFS");

    // Invisible to discovery and to the restart walk.
    let found = find_checkpoints(&fs, Some(APP));
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].0, "ck/a");
    let plan = choose_restart(&fs, Some(APP), &NullRecorder, 0.0);
    assert_eq!(plan.chosen.as_ref().map(|(p, _)| p.as_str()), Some("ck/a"));
    assert_eq!(plan.fallback_depth, 0, "half-spilled prefix must not count as a fallback step");

    // Reclaimed by the orphan sweep, healthy checkpoint untouched.
    let swept = sweep_orphans(&fs);
    assert_eq!(swept, vec!["ck/b".to_string()]);
    assert!(fs.list("ck/b/").is_empty(), "orphaned spill data should be reclaimed");
    assert!(verify_checkpoint(&fs, "ck/a", &NullRecorder, 0.0).is_valid());
}

#[test]
fn half_spilled_prefix_never_counts_as_protected_newest_verified() {
    let fs = fs();
    let tier = MemTier::new(1);
    store_and_spill_all(&fs, &tier, 4, &["ck/1", "ck/2", "ck/3"]);

    // ck/2: fully spilled but silently corrupted afterwards (no parity on
    // this fs, so it stays damaged). ck/3: spill interrupted before the
    // manifest landed.
    assert!(fs.corrupt_range("ck/2/array-u", 64, 16, 0xD5) > 0);
    assert!(!verify_checkpoint(&fs, "ck/2", &NullRecorder, 0.0).is_valid());
    assert!(fs.delete(&manifest_path("ck/3")));

    // The newest *verified* checkpoint — what a restart falls back to and
    // what retention must protect — is ck/1: the half-spilled ck/3 must not
    // be counted, even though its data files are newer.
    let found: Vec<String> = find_checkpoints(&fs, Some(APP)).into_iter().map(|(p, _)| p).collect();
    assert_eq!(found, vec!["ck/2".to_string(), "ck/1".to_string()]);

    // keep=1 keeps the newest manifest (ck/2) and protects the verified
    // fallback ck/1 instead of deleting it; ck/3 is not part of retention
    // at all.
    let deleted = retain_checkpoints(&fs, APP, 1);
    assert!(deleted.is_empty(), "verified fallback must survive retention: {deleted:?}");
    assert!(fs.exists(&manifest_path("ck/1")));

    // The restart walk quarantines ck/2 and settles on ck/1 at depth 1 —
    // the half-spilled ck/3 contributes nothing to the depth.
    let plan = choose_restart(&fs, Some(APP), &NullRecorder, 0.0);
    assert_eq!(plan.chosen.as_ref().map(|(p, _)| p.as_str()), Some("ck/1"));
    assert_eq!(plan.fallback_depth, 1);
    assert_eq!(plan.quarantined, vec!["ck/2".to_string()]);

    // And the sweep reclaims exactly the half-spilled prefix.
    let swept = sweep_orphans(&fs);
    assert_eq!(swept, vec!["ck/3".to_string()]);
    assert!(fs.list("ck/3/").is_empty());
}
