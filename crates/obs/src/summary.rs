//! Per-phase summary derived from recorded spans.

use crate::trace::{EventKind, TraceEvent};
use crate::Phase;
use std::collections::HashMap;

/// Totals for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Matched rank-0 spans in this phase.
    pub spans: usize,
    /// Summed span duration in simulated seconds.
    pub total_s: f64,
}

/// Wall-clock time per phase, measured on rank 0.
///
/// The orchestration layer emits its phase spans on rank 0 only, with the
/// exact timestamps it also uses to build its operation report — so a
/// summary built here and the report can never disagree. Spans are matched
/// by `(phase, name)` with a stack per key, so nested spans of the same
/// name pair up innermost-first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PhaseSummary {
    rows: Vec<PhaseRow>,
}

impl PhaseSummary {
    /// Builds the summary from recorded events. Only rank-0 spans are
    /// counted (other ranks' spans serve the timeline view); unmatched
    /// span boundaries are ignored.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut open: HashMap<(Phase, &str), Vec<f64>> = HashMap::new();
        let mut spans: HashMap<Phase, (usize, f64)> = HashMap::new();
        for ev in events.iter().filter(|e| e.rank == 0) {
            match ev.kind {
                EventKind::Begin => {
                    open.entry((ev.phase, ev.name.as_str())).or_default().push(ev.t);
                }
                EventKind::End => {
                    if let Some(t0) = open.get_mut(&(ev.phase, ev.name.as_str())).and_then(Vec::pop)
                    {
                        let (n, total) = spans.entry(ev.phase).or_insert((0, 0.0));
                        *n += 1;
                        *total += ev.t - t0;
                    }
                }
                EventKind::Instant => {}
            }
        }
        let rows = Phase::ALL
            .iter()
            .filter_map(|&phase| {
                spans.get(&phase).map(|&(n, total_s)| PhaseRow { phase, spans: n, total_s })
            })
            .collect();
        PhaseSummary { rows }
    }

    /// Rows in [`Phase::ALL`] order; phases with no spans are omitted.
    pub fn rows(&self) -> &[PhaseRow] {
        &self.rows
    }

    /// Total simulated seconds spent in `phase` (0.0 when absent).
    pub fn total(&self, phase: Phase) -> f64 {
        self.rows.iter().find(|r| r.phase == phase).map_or(0.0, |r| r.total_s)
    }

    /// Renders the plain-text summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("phase         spans    total (s)\n");
        out.push_str("-----------  ------  -----------\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<11}  {:>6}  {:>11.6}\n",
                row.phase.as_str(),
                row.spans,
                row.total_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::trace::TraceRecorder;

    #[test]
    fn nested_spans_match_innermost_first() {
        let r = TraceRecorder::new();
        // Outer "arrays" span containing two nested waves, plus a
        // same-name nested pair to exercise the per-key stack.
        r.span_start(0.0, 0, Phase::Arrays, "arrays");
        r.span_start(1.0, 0, Phase::StreamWave, "wave");
        r.span_end(2.0, 0, Phase::StreamWave, "wave");
        r.span_start(2.0, 0, Phase::StreamWave, "wave");
        r.span_start(2.5, 0, Phase::StreamWave, "wave");
        r.span_end(3.0, 0, Phase::StreamWave, "wave");
        r.span_end(4.0, 0, Phase::StreamWave, "wave");
        r.span_end(5.0, 0, Phase::Arrays, "arrays");
        let s = r.phase_summary();
        assert_eq!(s.total(Phase::Arrays), 5.0);
        // Waves: 1s + 0.5s (inner) + 2s (outer of the nested pair).
        assert_eq!(s.total(Phase::StreamWave), 3.5);
        let wave_row = s.rows().iter().find(|r| r.phase == Phase::StreamWave).unwrap();
        assert_eq!(wave_row.spans, 3);
    }

    #[test]
    fn non_rank0_spans_do_not_count() {
        let r = TraceRecorder::new();
        r.span_start(0.0, 1, Phase::Segment, "s");
        r.span_end(9.0, 1, Phase::Segment, "s");
        r.span_start(0.0, 0, Phase::Segment, "s");
        r.span_end(2.0, 0, Phase::Segment, "s");
        assert_eq!(r.phase_summary().total(Phase::Segment), 2.0);
    }

    #[test]
    fn table_lists_phases_in_fixed_order() {
        let r = TraceRecorder::new();
        r.span_start(0.0, 0, Phase::Arrays, "a");
        r.span_end(1.0, 0, Phase::Arrays, "a");
        r.span_start(1.0, 0, Phase::Init, "i");
        r.span_end(3.0, 0, Phase::Init, "i");
        let table = r.phase_summary().render_table();
        let init_pos = table.find("init").unwrap();
        let arrays_pos = table.find("arrays").unwrap();
        assert!(init_pos < arrays_pos, "init row must precede arrays:\n{table}");
    }

    #[test]
    fn unmatched_ends_are_ignored() {
        let r = TraceRecorder::new();
        r.span_end(1.0, 0, Phase::Init, "never_opened");
        let s = r.phase_summary();
        assert!(s.rows().is_empty());
        assert_eq!(s.total(Phase::Init), 0.0);
    }
}
