//! MPMD applications: coordinated checkpointing of multiple SPMD components
//! (paper, Section 2.2).
//!
//! An MPMD computation is "a collection of multiple SPMD structures each
//! with its own distributed data set"; its globally consistent points are
//! *sets* of SOPs, one per component. This module provides the
//! cross-component rendezvous and the umbrella manifest:
//!
//! * each component runs as its own SPMD region (own task count, own
//!   distributed arrays, own segment) and checkpoints under its own
//!   sub-prefix;
//! * [`MpmdSession::coordinated_checkpoint`] lines the components up at a consistent
//!   cut: all components enter, each takes its component checkpoint, and
//!   the umbrella manifest is written only after every component has
//!   committed — so a restart never sees a torn MPMD state;
//! * on restart, components can be reconfigured **individually or
//!   collectively** (each reads its own sub-checkpoint with whatever task
//!   count it now has), exactly as the paper describes.

use std::sync::Arc;

use drms_msg::Ctx;
use drms_piofs::Piofs;
use parking_lot::{Condvar, Mutex};

use crate::handle::CheckpointArray;
use crate::report::OpBreakdown;
use crate::segment::DataSegment;
use crate::wire::{Reader, WireError, Writer};
use crate::{CoreError, Drms, Result};

const MAGIC: [u8; 4] = *b"DMPD";
const VERSION: u32 = 1;

/// A reusable rendezvous for one representative task per component.
struct Gate {
    n: usize,
    state: Mutex<(usize, u64)>, // (arrived, generation)
    cv: Condvar,
}

impl Gate {
    fn wait(&self) {
        let mut st = self.state.lock();
        let gen = st.1;
        st.0 += 1;
        if st.0 == self.n {
            st.0 = 0;
            st.1 += 1;
            self.cv.notify_all();
        } else {
            while st.1 == gen {
                self.cv.wait(&mut st);
            }
        }
    }
}

/// Shared coordinator for the components of one MPMD application.
///
/// Create one per application and hand a clone to every component's body.
#[derive(Clone)]
pub struct MpmdSession {
    app: String,
    ncomponents: usize,
    gate: Arc<Gate>,
}

/// One entry of the umbrella manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpmdComponent {
    /// Component name.
    pub name: String,
    /// Sub-prefix holding the component's own (reconfigurable) checkpoint.
    pub prefix: String,
    /// Task count of the component at checkpoint time.
    pub ntasks: usize,
}

/// The umbrella manifest of a coordinated MPMD checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpmdManifest {
    /// Application name.
    pub app: String,
    /// Components, in component-id order.
    pub components: Vec<MpmdComponent>,
}

impl MpmdSession {
    /// A session for `ncomponents` SPMD components of application `app`.
    pub fn new(app: &str, ncomponents: usize) -> MpmdSession {
        assert!(ncomponents > 0);
        MpmdSession {
            app: app.to_string(),
            ncomponents,
            gate: Arc::new(Gate { n: ncomponents, state: Mutex::new((0, 0)), cv: Condvar::new() }),
        }
    }

    /// Number of components in the application.
    pub fn ncomponents(&self) -> usize {
        self.ncomponents
    }

    /// Sub-prefix for component `id` under an umbrella `prefix`.
    pub fn component_prefix(prefix: &str, id: usize) -> String {
        format!("{prefix}/comp{id}")
    }

    /// Path of the umbrella manifest.
    pub fn manifest_path(prefix: &str) -> String {
        format!("{prefix}/mpmd-manifest")
    }

    /// Coordinated checkpoint: every task of every component calls this at
    /// its component's SOP. Component `id` checkpoints under
    /// `prefix/comp{id}`; after **all** components have committed, component
    /// 0's representative writes the umbrella manifest that makes the MPMD
    /// state restartable. Returns this component's breakdown.
    #[allow(clippy::too_many_arguments)]
    pub fn coordinated_checkpoint(
        &self,
        ctx: &mut Ctx,
        fs: &Piofs,
        component_id: usize,
        component_name: &str,
        drms: &mut Drms,
        prefix: &str,
        segment: &DataSegment,
        arrays: &[&dyn CheckpointArray],
    ) -> Result<OpBreakdown> {
        assert!(component_id < self.ncomponents);
        let sub = Self::component_prefix(prefix, component_id);
        let report = drms.reconfig_checkpoint(ctx, fs, &sub, segment, arrays)?;

        // Publish this component's entry, then rendezvous: the umbrella
        // manifest is written only after every component's data is durable.
        if ctx.rank() == 0 {
            let entry = MpmdComponent {
                name: component_name.to_string(),
                prefix: sub,
                ntasks: ctx.ntasks(),
            };
            fs.preload(&format!("{prefix}/.entry{component_id}"), encode_entry(&entry));
            self.gate.wait();
            if component_id == 0 {
                let mut components = Vec::with_capacity(self.ncomponents);
                for id in 0..self.ncomponents {
                    let path = format!("{prefix}/.entry{id}");
                    let bytes =
                        fs.peek(&path).ok_or_else(|| CoreError::NoCheckpoint(path.clone()))?;
                    components.push(decode_entry(&bytes)?);
                    fs.delete(&path);
                }
                let manifest = MpmdManifest { app: self.app.clone(), components };
                fs.preload(&Self::manifest_path(prefix), manifest.encode());
            }
            // Second rendezvous: nobody leaves before the manifest exists.
            self.gate.wait();
        }
        ctx.barrier();
        Ok(report)
    }
}

impl MpmdManifest {
    /// Encodes the umbrella manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.string(&self.app);
        w.u32(self.components.len() as u32);
        for c in &self.components {
            w.string(&c.name);
            w.string(&c.prefix);
            w.u64(c.ntasks as u64);
        }
        w.finish()
    }

    /// Decodes an umbrella manifest.
    pub fn decode(bytes: &[u8]) -> std::result::Result<MpmdManifest, WireError> {
        let (mut r, version) = Reader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let app = r.string()?;
        let n = r.u32()?;
        let mut components = Vec::with_capacity(n as usize);
        for _ in 0..n {
            components.push(MpmdComponent {
                name: r.string()?,
                prefix: r.string()?,
                ntasks: r.u64()? as usize,
            });
        }
        Ok(MpmdManifest { app, components })
    }

    /// Reads the umbrella manifest of an archived MPMD state.
    pub fn load(fs: &Piofs, prefix: &str) -> Result<MpmdManifest> {
        let path = MpmdSession::manifest_path(prefix);
        let bytes = fs.peek(&path).ok_or_else(|| CoreError::NoCheckpoint(prefix.to_string()))?;
        Ok(Self::decode(&bytes)?)
    }

    /// Entry for a named component.
    pub fn component(&self, name: &str) -> Option<&MpmdComponent> {
        self.components.iter().find(|c| c.name == name)
    }
}

fn encode_entry(e: &MpmdComponent) -> Vec<u8> {
    let mut w = Writer::new();
    w.string(&e.name);
    w.string(&e.prefix);
    w.u64(e.ntasks as u64);
    w.finish()
}

fn decode_entry(bytes: &[u8]) -> std::result::Result<MpmdComponent, WireError> {
    let mut r = Reader::new(bytes);
    Ok(MpmdComponent { name: r.string()?, prefix: r.string()?, ntasks: r.u64()? as usize })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = MpmdManifest {
            app: "coupled".into(),
            components: vec![
                MpmdComponent { name: "ocean".into(), prefix: "ck/m/comp0".into(), ntasks: 3 },
                MpmdComponent { name: "atmos".into(), prefix: "ck/m/comp1".into(), ntasks: 2 },
            ],
        };
        let d = MpmdManifest::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.component("atmos").unwrap().ntasks, 2);
        assert!(d.component("ice").is_none());
    }

    #[test]
    fn gate_synchronizes_components() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let gate = Arc::new(Gate { n: 3, state: Mutex::new((0, 0)), cv: Condvar::new() });
        let before = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..3 {
                let gate = Arc::clone(&gate);
                let before = Arc::clone(&before);
                s.spawn(move || {
                    for round in 0..20 {
                        before.fetch_add(1, Ordering::SeqCst);
                        gate.wait();
                        // After the gate, all three arrivals of this round
                        // must have happened.
                        assert!(before.load(Ordering::SeqCst) >= 3 * (round + 1));
                    }
                });
            }
        });
        assert_eq!(before.load(Ordering::SeqCst), 60);
    }
}
