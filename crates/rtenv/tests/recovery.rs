//! End-to-end scalable recovery: a DRMS application loses a processor
//! mid-run, the RC detects and kills it, and the JSA restarts it from its
//! latest checkpoint on the remaining processors — without waiting for the
//! failed processor to be repaired. The final answer must be bitwise
//! identical to an uninterrupted run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drms_core::segment::DataSegment;
use drms_core::{Drms, DrmsConfig, IoMode, Start};
use drms_darray::{DistArray, Distribution};
use drms_msg::CostModel;
use drms_piofs::{Piofs, PiofsConfig};
use drms_rtenv::{Event, EventLog, JobOutcome, JobSpec, Jsa, JsaPolicy, ResourceCoordinator, Uic};
use drms_slices::{Order, Slice};
use parking_lot::Mutex;

const NITER: i64 = 12;
const CKPT_EVERY: i64 = 4;

fn domain() -> Slice {
    Slice::boxed(&[(1, 20), (1, 16)])
}

fn cfg() -> DrmsConfig {
    let mut c = DrmsConfig::new("solver");
    c.text_bytes = 2048;
    c.io = IoMode::Parallel;
    c
}

/// Builds the solver job. `fail_at`: (incarnation 0 only) inject a failure
/// of `fail_proc` at that iteration. Returns per-run final sums via `out`.
fn solver_job(
    rc: Arc<ResourceCoordinator>,
    fail_at: Option<(i64, usize)>,
    out: Arc<Mutex<Vec<f64>>>,
) -> JobSpec {
    JobSpec::new("solver", (1, 8), move |ctx, env| {
        let (mut drms, start) =
            Drms::initialize(ctx, &env.fs, cfg(), env.enable.clone(), env.restart_from.as_deref())
                .unwrap();

        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;

        match start {
            Start::Fresh => u.fill_assigned(|p| (p[0] * 31 + p[1]) as f64),
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                drms.restore_arrays(
                    ctx,
                    &env.fs,
                    env.restart_from.as_deref().unwrap(),
                    &info.manifest,
                    &mut [&mut u],
                )
                .unwrap();
            }
        }

        for iter in start_iter..=NITER {
            // SOP: observe the kill token at the consistent point
            // (collective decision, so no task abandons a collective).
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }

            // One deterministic step.
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v * 1.0 + 2.0).unwrap();
            });
            seg.set_control("iter", iter);

            if iter % CKPT_EVERY == 0 {
                let prefix = format!("ck/solver/sop{iter}");
                drms.reconfig_checkpoint(ctx, &env.fs, &prefix, &seg, &[&u]).unwrap();
            }

            // Failure injection (first incarnation only): rank 0 crashes a
            // processor in the pool right after this iteration.
            if let Some((at, proc)) = fail_at {
                if env.incarnation == 0 && iter == at && ctx.rank() == 0 {
                    rc.fail_processor(proc);
                }
            }
        }

        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        let sum = u.fold_assigned(0.0, |acc, _, v| acc + v);
        out.lock().push(sum);
        JobOutcome::Completed
    })
}

fn run_cluster(fail_at: Option<(i64, usize)>) -> (f64, Vec<Event>, RunStats) {
    let log = EventLog::new();
    let rc = Arc::new(ResourceCoordinator::new(8, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(8), 5);
    Drms::install_binary(&fs, &cfg());
    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log.clone(),
        CostModel::default(),
        JsaPolicy::default(),
    );
    let out = Arc::new(Mutex::new(Vec::new()));
    let job = solver_job(Arc::clone(&rc), fail_at, Arc::clone(&out));
    let summary = jsa.run_job(&job);
    assert!(summary.completed, "job must complete: {summary:?}");
    let sums = out.lock();
    let total: f64 = sums.iter().sum();
    (
        total,
        log.snapshot(),
        RunStats {
            incarnations: summary.incarnations.len(),
            task_counts: summary.incarnations.iter().map(|i| i.ntasks).collect(),
            restart_prefixes: summary.incarnations.iter().map(|i| i.restart_from.clone()).collect(),
        },
    )
}

struct RunStats {
    incarnations: usize,
    task_counts: Vec<usize>,
    restart_prefixes: Vec<Option<String>>,
}

#[test]
fn recovery_from_processor_failure_is_exact_and_reconfigured() {
    // Reference: uninterrupted run on 8 processors.
    let (reference, _, ref_stats) = run_cluster(None);
    assert_eq!(ref_stats.incarnations, 1);
    assert_eq!(ref_stats.task_counts, vec![8]);

    // Faulty run: processor 3 dies at iteration 6 (after the SOP-4
    // checkpoint).
    let (recovered, events, stats) = run_cluster(Some((6, 3)));

    // Same answer, bit for bit.
    assert_eq!(recovered, reference);

    // Two incarnations: 8 tasks, then 7 (the failed processor is NOT
    // repaired before restart — scalable recovery).
    assert_eq!(stats.incarnations, 2);
    assert_eq!(stats.task_counts, vec![8, 7]);
    assert_eq!(stats.restart_prefixes[0], None);
    assert_eq!(stats.restart_prefixes[1].as_deref(), Some("ck/solver/sop4"));

    // Protocol events in order: failure -> lost connection -> app killed ->
    // user informed -> job restarted.
    let pos = |pred: &dyn Fn(&Event) -> bool| events.iter().position(pred).expect("event");
    let failed = pos(&|e| matches!(e, Event::ProcessorFailed { proc: 3 }));
    let lost = pos(&|e| matches!(e, Event::ConnectionLost { proc: 3 }));
    let killed = pos(&|e| matches!(e, Event::ApplicationKilled { .. }));
    let restarted = events
        .iter()
        .position(|e| matches!(e, Event::JobStarted { restart_from: Some(_), .. }))
        .unwrap();
    let completed = pos(&|e| matches!(e, Event::JobCompleted { .. }));
    assert!(failed < lost && lost < killed && killed < restarted && restarted < completed);
}

#[test]
fn multiple_cascading_failures() {
    // Two failures in successive incarnations; ends on 6 processors.
    let log = EventLog::new();
    let rc = Arc::new(ResourceCoordinator::new(8, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(8), 9);
    Drms::install_binary(&fs, &cfg());
    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log.clone(),
        CostModel::default(),
        JsaPolicy::default(),
    );
    let out = Arc::new(Mutex::new(Vec::new()));

    // Fail a processor at iteration 6 of EVERY incarnation until two have
    // died.
    let failures = Arc::new(AtomicUsize::new(0));
    let rc2 = Arc::clone(&rc);
    let failures2 = Arc::clone(&failures);
    let out2 = Arc::clone(&out);
    let job = JobSpec::new("solver", (1, 8), move |ctx, env| {
        let (mut drms, start) =
            Drms::initialize(ctx, &env.fs, cfg(), env.enable.clone(), env.restart_from.as_deref())
                .unwrap();
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        match start {
            Start::Fresh => u.fill_assigned(|p| (p[0] + p[1]) as f64),
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                drms.restore_arrays(
                    ctx,
                    &env.fs,
                    env.restart_from.as_deref().unwrap(),
                    &info.manifest,
                    &mut [&mut u],
                )
                .unwrap();
            }
        }
        for iter in start_iter..=NITER {
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.0).unwrap();
            });
            seg.set_control("iter", iter);
            if iter % CKPT_EVERY == 0 {
                let prefix = format!("ck/solver/sop{iter}");
                drms.reconfig_checkpoint(ctx, &env.fs, &prefix, &seg, &[&u]).unwrap();
            }
            if iter == 6 && ctx.rank() == 0 && failures2.load(Ordering::SeqCst) < 2 {
                let victim = failures2.fetch_add(1, Ordering::SeqCst);
                rc2.fail_processor(victim);
            }
        }
        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        out2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
        JobOutcome::Completed
    });

    let summary = jsa.run_job(&job);
    assert!(summary.completed);
    assert_eq!(summary.incarnations.len(), 3);
    let counts: Vec<usize> = summary.incarnations.iter().map(|i| i.ntasks).collect();
    assert_eq!(counts, vec![8, 7, 6]);

    // Ground truth: initial + NITER.
    let expect: f64 = {
        let mut s = 0.0;
        domain().points(Order::ColumnMajor).for_each(|p| {
            s += (p[0] + p[1]) as f64 + NITER as f64;
        });
        s
    };
    let total: f64 = out.lock().iter().sum();
    assert_eq!(total, expect);

    // UIC shows two failed processors awaiting repair.
    let uic = Uic::new(Arc::clone(&rc), fs, log);
    let failed_lines = uic.processor_status().iter().filter(|l| l.contains("FAILED")).count();
    assert_eq!(failed_lines, 2);
}

#[test]
fn job_queues_when_starved_and_runs_after_repair() {
    let log = EventLog::new();
    let rc = Arc::new(ResourceCoordinator::new(2, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(2), 1);
    Drms::install_binary(&fs, &cfg());
    rc.fail_processor(0);
    rc.fail_processor(1);

    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log.clone(),
        CostModel::default(),
        JsaPolicy::default(),
    );
    let job = JobSpec::new("noop", (1, 2), |_, _| JobOutcome::Completed);
    let summary = jsa.run_job(&job);
    assert!(!summary.completed, "no processors -> job stays queued");

    // With auto-repair the scheduler fixes the pool and runs the job.
    let jsa = Jsa::new(
        Arc::clone(&rc),
        fs,
        log,
        CostModel::default(),
        JsaPolicy { repair_when_starved: true, ..Default::default() },
    );
    let summary = jsa.run_job(&job);
    assert!(summary.completed);
    assert_eq!(summary.incarnations[0].ntasks, 2);
}
