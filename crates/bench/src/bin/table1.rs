//! Table 1: source-code cost of adopting the DRMS programming model.
//!
//! The paper reports ~1% added lines (about 100 per ~10,000-line NPB code).
//! The equivalent measure here: of the mini-application sources, how many
//! lines mention the DRMS checkpoint/restart API (the code a user adds to a
//! plain message-passing solver to make it reconfigurable), versus the total.
//!
//! ```text
//! cargo run --release -p drms-bench --bin table1 [--json DIR]
//! ```

use std::path::PathBuf;

use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_bench::table::render;

const SOURCES: &[(&str, &str)] = &[
    ("app.rs", include_str!("../../../apps/src/app.rs")),
    ("spec.rs", include_str!("../../../apps/src/spec.rs")),
    ("solver.rs", include_str!("../../../apps/src/solver.rs")),
    ("classes.rs", include_str!("../../../apps/src/classes.rs")),
];

/// Identifiers that exist only because of DRMS adoption — the analog of the
/// `drms_*` calls added to the Fortran benchmarks in Figure 1.
const DRMS_MARKERS: &[&str] = &[
    "Drms::initialize",
    "reconfig_checkpoint",
    "reconfig_chkenable",
    "checkpoint_if_enabled",
    "restore_arrays",
    "restart_report",
    "RestartInfo",
    "Start::Restarted",
    "Start::Fresh",
    "EnableFlag",
    "set_control",
    "install_binary",
    "decode_locals",
    "spmd::restart",
    "spmd::checkpoint",
];

fn code_lines(src: &str) -> usize {
    src.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with("//")).count()
}

fn drms_lines(src: &str) -> usize {
    let mut in_tests = false;
    src.lines()
        .filter(|l| {
            if l.contains("mod tests") {
                in_tests = true;
            }
            !in_tests
        })
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .filter(|l| DRMS_MARKERS.iter().any(|m| l.contains(m)))
        .count()
}

fn parse_args() -> Option<PathBuf> {
    let mut json = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => match it.next() {
                Some(dir) => json = Some(PathBuf::from(dir)),
                None => usage("--json needs a value"),
            },
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    json
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: table1 [--json DIR]");
    std::process::exit(2);
}

fn main() {
    let json = parse_args();
    run_gated("table1", "cargo run --release -p drms-bench --bin table1", || body(json.as_deref()));
}

fn body(json: Option<&std::path::Path>) {
    println!("Table 1 — source lines added to adopt the DRMS programming model\n");
    let header = vec!["file", "code lines", "DRMS-API lines", "share"];
    let mut rows = Vec::new();
    let mut total = 0usize;
    let mut drms = 0usize;
    let mut result = BenchResult::new("table1");
    result.stamp_header(drms_bench::seed::fault_seed_or(0), 0);
    for (name, src) in SOURCES {
        let t = code_lines(src);
        let d = drms_lines(src);
        total += t;
        drms += d;
        rows.push(vec![
            name.to_string(),
            t.to_string(),
            d.to_string(),
            format!("{:.1}%", 100.0 * d as f64 / t as f64),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        total.to_string(),
        drms.to_string(),
        format!("{:.1}%", 100.0 * drms as f64 / total as f64),
    ]);
    assert!(drms > 0 && drms * 4 < total, "DRMS-API share must stay a small fraction");
    result.metric("total_code_lines", total as f64);
    result.metric("drms_api_lines", drms as f64);
    result.metric("drms_share_pct", 100.0 * drms as f64 / total as f64);
    println!("{}", render(&header, &rows));
    if let Some(dir) = json {
        let path = result.write_to(dir).expect("write BENCH_table1.json");
        println!("wrote {}", path.display());
    }
    println!(
        "\nPaper (Fortran NPB): BT 107/10,973 = 1.0%; LU 85/9,641 = 0.9%;\n\
         SP 99/9,561 = 1.0%. The mini-apps are far smaller than the NPB codes, so\n\
         the share is higher, but the absolute count of DRMS-specific lines is the\n\
         comparable quantity: adopting the model costs tens of lines, not a rewrite."
    );
}
