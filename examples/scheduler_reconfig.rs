//! Dynamic resource management with system-initiated checkpoints
//! (paper, Section 4, usage 2): the scheduler raises the enabling-checkpoint
//! signal, the application checkpoints at its next SOP
//! (`drms_reconfig_chkenable`), and the JSA reincarnates it on a *larger*
//! processor pool as machines free up.
//!
//! ```text
//! cargo run --release --example scheduler_reconfig
//! ```

use std::sync::Arc;

use drms::core::segment::DataSegment;
use drms::core::{Drms, DrmsConfig, EnableFlag, Start};
use drms::darray::{DistArray, Distribution};
use drms::msg::CostModel;
use drms::piofs::{Piofs, PiofsConfig};
use drms::rtenv::{EventLog, JobOutcome, JobSpec, Jsa, JsaPolicy, KillToken, ResourceCoordinator};
use drms::slices::{Order, Slice};

fn main() {
    let log = EventLog::new();
    let rc = Arc::new(ResourceCoordinator::new(8, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(8), 3);
    let cfg = DrmsConfig::new("spectral");
    Drms::install_binary(&fs, &cfg);

    // Half the machine is busy with another job at submission time.
    let other = KillToken::new();
    rc.form_pool("other-job", &[4, 5, 6, 7], other.clone());

    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log.clone(),
        CostModel::default(),
        JsaPolicy::default(),
    );

    let domain = Slice::boxed(&[(0, 47), (0, 47)]);
    let rc2 = Arc::clone(&rc);
    let other2 = other.clone();
    let enable = EnableFlag::new();
    let enable_for_job = enable.clone();

    let job = JobSpec::new("spectral", (2, 8), move |ctx, env| {
        let (mut drms, start) = Drms::initialize(
            ctx,
            &env.fs,
            DrmsConfig::new("spectral"),
            env.enable.clone(),
            env.restart_from.as_deref(),
        )
        .unwrap();
        let dist = Distribution::block_auto(&domain, ctx.ntasks(), 0).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        match start {
            Start::Fresh => u.fill_assigned(|p| (p[0] - p[1]) as f64),
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                drms.restore_arrays(
                    ctx,
                    &env.fs,
                    env.restart_from.as_deref().unwrap(),
                    &info.manifest,
                    &mut [&mut u],
                )
                .unwrap();
            }
        }
        if ctx.rank() == 0 {
            println!(
                "  [app] incarnation {} on {} tasks, starting at iteration {start_iter}",
                env.incarnation,
                ctx.ntasks()
            );
        }

        for iter in start_iter..=10 {
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 0.25).unwrap();
            });
            seg.set_control("iter", iter);

            // SOP: offer the system a checkpoint opportunity. It is taken
            // only when the scheduler has raised the enable signal.
            let taken = drms
                .reconfig_chkenable(ctx, &env.fs, &format!("ck/spectral/{iter}"), &seg, &[&u])
                .unwrap();
            if taken.is_some() && ctx.rank() == 0 {
                println!("  [app] system-enabled checkpoint taken at iteration {iter}");
            }

            // At iteration 4 of the first incarnation, the other job ends
            // and the scheduler decides to grow this one: it raises the
            // enable signal, waits for the checkpoint, then preempts.
            if env.incarnation == 0 && ctx.rank() == 0 {
                if iter == 3 {
                    println!("  [jsa] other job finished; requesting enabling checkpoint");
                    other2.kill("completed");
                    rc2.release_pool("other-job");
                    env.enable.raise();
                } else if iter == 4 {
                    println!("  [jsa] preempting to relaunch on the full machine");
                    env.kill.kill("preempted for expansion");
                }
            }
        }
        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        JobOutcome::Completed
    });

    println!("submitting job; only 4 of 8 processors are free ...");
    let summary = jsa.run_job_with_enable(&job, enable_for_job);
    let _ = enable;

    println!("\nincarnation history:");
    for (i, inc) in summary.incarnations.iter().enumerate() {
        println!("  #{i}: {} tasks from {:?} -> {:?}", inc.ntasks, inc.restart_from, inc.outcome);
    }
    assert!(summary.completed);
    assert_eq!(summary.incarnations[0].ntasks, 4, "starts on the free half");
    assert_eq!(summary.incarnations[1].ntasks, 8, "expands to the full machine");
    println!("\nOK: the job grew from 4 to 8 processors through a checkpoint.");
}
