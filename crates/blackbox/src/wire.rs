//! Self-describing wire format for sealed flight rings.
//!
//! A seal must be decodable by a *later incarnation* that shares nothing
//! with the writer but this format, so everything is explicit: magic,
//! version, full header, and per-event records with the capture sequence
//! numbers that make overlapping snapshot seals deduplicate exactly.
//! Little-endian throughout. Decoding is total: corrupt or torn bytes
//! produce an `Err`, never a panic, so recovery can skip damaged seals.

use drms_obs::{EventKind, Phase, TraceEvent};

/// Wire magic, leading every encoded seal.
pub const MAGIC: [u8; 4] = *b"DRBB";
/// Current wire version.
pub const VERSION: u16 = 1;

/// Metadata identifying one seal.
#[derive(Debug, Clone, PartialEq)]
pub struct SealHeader {
    /// JSA incarnation the sealing process belonged to.
    pub incarnation: u64,
    /// Sealing rank.
    pub rank: usize,
    /// Per-(incarnation, rank) seal sequence number.
    pub seal_seq: u64,
    /// Simulated time the seal was taken.
    pub t: f64,
    /// Why the seal was taken (`"sop"`, a crash-point name, `"final"`).
    pub reason: String,
    /// Cumulative events evicted from the ring before this seal.
    pub evicted_total: u64,
}

/// A decoded seal: header plus the snapshot of `(capture seq, event)`
/// pairs that were buffered when it was taken.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedSeal {
    /// Seal identity and context.
    pub header: SealHeader,
    /// Buffered events, oldest first.
    pub events: Vec<(u64, TraceEvent)>,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Encodes a seal from a header and the ring's buffered events.
pub fn encode_seal<'a>(
    header: &SealHeader,
    events: impl Iterator<Item = &'a (u64, TraceEvent)>,
    count: usize,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + count * 48);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&header.incarnation.to_le_bytes());
    out.extend_from_slice(&(header.rank as u64).to_le_bytes());
    out.extend_from_slice(&header.seal_seq.to_le_bytes());
    out.extend_from_slice(&header.t.to_bits().to_le_bytes());
    out.extend_from_slice(&header.evicted_total.to_le_bytes());
    put_str(&mut out, &header.reason);
    out.extend_from_slice(&(count as u64).to_le_bytes());
    for (seq, ev) in events {
        out.extend_from_slice(&seq.to_le_bytes());
        out.extend_from_slice(&ev.t.to_bits().to_le_bytes());
        out.extend_from_slice(&(ev.rank as u64).to_le_bytes());
        out.push(match ev.kind {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
        });
        match ev.corr {
            Some(c) => {
                out.push(1);
                out.extend_from_slice(&c.to_le_bytes());
            }
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        put_str(&mut out, ev.phase.as_str());
        put_str(&mut out, &ev.name);
    }
    out
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err(format!("truncated seal: need {n} bytes at offset {}", self.pos));
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "invalid utf-8 in seal".to_string())
    }
}

fn phase_from_str(s: &str) -> Result<Phase, String> {
    Phase::ALL
        .iter()
        .copied()
        .find(|p| p.as_str() == s)
        .ok_or_else(|| format!("unknown phase {s:?} in seal"))
}

/// Decodes a seal; damaged bytes yield an `Err` describing the first
/// inconsistency, so recovery can skip the seal and keep going.
pub fn decode_seal(bytes: &[u8]) -> Result<DecodedSeal, String> {
    let mut c = Cursor { bytes, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err("bad magic: not a flight-recorder seal".to_string());
    }
    let version = c.u16()?;
    if version != VERSION {
        return Err(format!("unsupported seal version {version}"));
    }
    let incarnation = c.u64()?;
    let rank = c.u64()? as usize;
    let seal_seq = c.u64()?;
    let t = c.f64()?;
    let evicted_total = c.u64()?;
    let reason = c.str()?;
    let count = c.u64()? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let seq = c.u64()?;
        let t = c.f64()?;
        let rank = c.u64()? as usize;
        let kind = match c.u8()? {
            0 => EventKind::Begin,
            1 => EventKind::End,
            2 => EventKind::Instant,
            k => return Err(format!("unknown event kind {k} in seal")),
        };
        let has_corr = c.u8()?;
        let corr_raw = c.u64()?;
        let corr = match has_corr {
            0 => None,
            1 => Some(corr_raw),
            f => return Err(format!("bad corr flag {f} in seal")),
        };
        let phase = phase_from_str(&c.str()?)?;
        let name = c.str()?;
        events.push((seq, TraceEvent { t, rank, phase, name, kind, corr }));
    }
    if c.pos != bytes.len() {
        return Err(format!("{} trailing bytes after seal", bytes.len() - c.pos));
    }
    Ok(DecodedSeal {
        header: SealHeader { incarnation, rank, seal_seq, t, reason, evicted_total },
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<(u64, TraceEvent)> {
        vec![
            (
                3,
                TraceEvent {
                    t: 1.25,
                    rank: 2,
                    phase: Phase::Segment,
                    name: "write_segment".into(),
                    kind: EventKind::Begin,
                    corr: None,
                },
            ),
            (
                4,
                TraceEvent {
                    t: 2.5,
                    rank: 2,
                    phase: Phase::Control,
                    name: "crash:ckpt_mid_publish".into(),
                    kind: EventKind::Instant,
                    corr: Some(7),
                },
            ),
        ]
    }

    #[test]
    fn round_trips_bitwise() {
        let header = SealHeader {
            incarnation: 3,
            rank: 2,
            seal_seq: 5,
            t: 17.75,
            reason: "sop".into(),
            evicted_total: 9,
        };
        let events = sample_events();
        let bytes = encode_seal(&header, events.iter(), events.len());
        let d = decode_seal(&bytes).unwrap();
        assert_eq!(d.header, header);
        assert_eq!(d.events.len(), 2);
        assert_eq!(d.events[0].0, 3);
        assert_eq!(d.events[0].1.name, "write_segment");
        assert_eq!(d.events[1].1.corr, Some(7));
        assert_eq!(d.events[1].1.phase, Phase::Control);
        // Re-encoding the decode is byte-identical.
        let again = encode_seal(&d.header, d.events.iter(), d.events.len());
        assert_eq!(again, bytes);
    }

    #[test]
    fn truncated_and_corrupt_bytes_error_cleanly() {
        let header = SealHeader {
            incarnation: 0,
            rank: 0,
            seal_seq: 0,
            t: 0.0,
            reason: "sop".into(),
            evicted_total: 0,
        };
        let events = sample_events();
        let bytes = encode_seal(&header, events.iter(), events.len());
        for cut in [0, 3, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_seal(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
        let mut bad = bytes.clone();
        bad[0] ^= 0xff; // magic
        assert!(decode_seal(&bad).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_seal(&trailing).is_err());
    }
}
