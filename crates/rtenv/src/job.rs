//! Job abstraction: what the JSA schedules.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use drms_core::EnableFlag;
use drms_memtier::{MemTier, RestartTier};
use drms_msg::Ctx;
use drms_piofs::Piofs;
use parking_lot::Mutex;

/// Cooperative kill signal: the RC raises it when the application must die
/// (a processor in its pool failed); tasks observe it at their next SOP.
#[derive(Debug, Clone, Default)]
pub struct KillToken {
    flag: Arc<AtomicBool>,
    reason: Arc<Mutex<Option<String>>>,
}

impl KillToken {
    /// A cleared token.
    pub fn new() -> KillToken {
        KillToken::default()
    }

    /// Raises the token with a reason.
    pub fn kill(&self, reason: &str) {
        *self.reason.lock() = Some(reason.to_string());
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Whether the token is raised.
    pub fn is_killed(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The kill reason, if raised.
    pub fn reason(&self) -> Option<String> {
        self.reason.lock().clone()
    }

    /// Clears the token (before a new incarnation).
    pub fn reset(&self) {
        self.flag.store(false, Ordering::SeqCst);
        *self.reason.lock() = None;
    }
}

/// Environment handed to each incarnation of a job.
pub struct JobEnv {
    /// The shared parallel file system.
    pub fs: Arc<Piofs>,
    /// Checkpoint prefix to restart from, if this incarnation is a restart.
    pub restart_from: Option<String>,
    /// Cooperative kill signal (check at every SOP via
    /// [`JobEnv::sop_killed`]).
    pub kill: KillToken,
    /// Enable signal for system-initiated checkpoints.
    pub enable: EnableFlag,
    /// Incarnation number (0 = first start).
    pub incarnation: usize,
    /// The in-memory checkpoint tier the JSA manages for this job, when
    /// diskless checkpointing is on (see [`crate::Jsa::with_memtier`]).
    pub memtier: Option<Arc<MemTier>>,
    /// Which tier `restart_from` should be served out of. Always
    /// [`RestartTier::Piofs`] when `restart_from` is `None` or the memory
    /// tier is off.
    pub restart_tier: RestartTier,
    /// Whether the JSA permits localized recovery: on node loss the job
    /// body may restore only the lost ranks' sections in place instead of
    /// exiting [`JobOutcome::Killed`]. When false (the default policy),
    /// every node loss is handled by a full restart.
    pub localized: bool,
}

impl JobEnv {
    /// Collective SOP kill check: all tasks of the region agree on whether
    /// the application has been killed.
    ///
    /// The decision **must** be collective — a task observing the token
    /// alone could abandon a checkpoint collective its siblings have
    /// already entered, deadlocking the region. SOPs are globally
    /// consistent points precisely so that this agreement is possible.
    pub fn sop_killed(&self, ctx: &mut Ctx) -> bool {
        let (votes, _) = ctx.exchange(self.kill.is_killed());
        votes.iter().any(|&k| k)
    }
}

/// Outcome of one incarnation of a job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// Ran to completion.
    Completed,
    /// Observed the kill token at an SOP and exited.
    Killed,
    /// Application-level failure (bad state, unrecoverable error).
    Failed(
        /// Human-readable reason.
        String,
    ),
}

/// A schedulable DRMS application.
///
/// `run` executes one *incarnation* on the tasks of an SPMD region. The
/// resource section of the job's SOQs is expressed by `task_range`: the JSA
/// only launches the job on a task count within it.
pub struct JobSpec {
    /// Application name.
    pub app: String,
    /// Minimum and maximum tasks the job can run on (inclusive).
    pub task_range: (usize, usize),
    /// The SPMD body: every task of the region calls this once per
    /// incarnation.
    #[allow(clippy::type_complexity)]
    pub body: Arc<dyn Fn(&mut Ctx, &JobEnv) -> JobOutcome + Send + Sync>,
}

impl JobSpec {
    /// Builds a job from its parts.
    pub fn new(
        app: &str,
        task_range: (usize, usize),
        body: impl Fn(&mut Ctx, &JobEnv) -> JobOutcome + Send + Sync + 'static,
    ) -> JobSpec {
        assert!(task_range.0 >= 1 && task_range.0 <= task_range.1);
        JobSpec { app: app.to_string(), task_range, body: Arc::new(body) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_token_lifecycle() {
        let k = KillToken::new();
        assert!(!k.is_killed());
        assert_eq!(k.reason(), None);
        k.kill("processor 3 failed");
        assert!(k.is_killed());
        assert_eq!(k.reason().unwrap(), "processor 3 failed");
        k.reset();
        assert!(!k.is_killed());
        assert_eq!(k.reason(), None);
    }

    #[test]
    fn kill_token_shared_between_clones() {
        let k = KillToken::new();
        let k2 = k.clone();
        k.kill("x");
        assert!(k2.is_killed());
    }

    #[test]
    #[should_panic]
    fn job_spec_validates_range() {
        let _ = JobSpec::new("bad", (4, 2), |_, _| JobOutcome::Completed);
    }
}
