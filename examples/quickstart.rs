//! Quickstart: checkpoint a distributed array with 4 tasks, restart it with
//! 3, and keep computing — the core capability of the DRMS model.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use drms::core::segment::DataSegment;
use drms::core::{Drms, DrmsConfig, EnableFlag, Start};
use drms::darray::{DistArray, Distribution};
use drms::msg::{run_spmd, CostModel};
use drms::piofs::{Piofs, PiofsConfig};
use drms::slices::{Order, Slice};

fn main() {
    // A shared "parallel file system" and a 100 x 80 global array domain.
    let fs = Piofs::new(PiofsConfig::test_tiny(8), 1);
    let domain = Slice::boxed(&[(0, 99), (0, 79)]);
    let cfg = DrmsConfig::new("quickstart");
    Drms::install_binary(&fs, &cfg);

    // ---- incarnation 1: four tasks ------------------------------------
    println!("running with 4 tasks; checkpoint at iteration 5 ...");
    let fs1 = Arc::clone(&fs);
    let dom1 = domain.clone();
    let cfg1 = cfg.clone();
    run_spmd(4, CostModel::default(), move |ctx| {
        let (mut drms, _start) =
            Drms::initialize(ctx, &fs1, cfg1.clone(), EnableFlag::new(), None).unwrap();

        // Block distribution with a one-element shadow; fill u(x, y) = x + y.
        let dist = Distribution::block_auto(&dom1, ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| (p[0] + p[1]) as f64);

        let mut seg = DataSegment::new();
        for iter in 1..=5i64 {
            // "Solve": u += 1 everywhere, each iteration.
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.0).unwrap();
            });
            seg.set_control("iter", iter);
        }
        let report = drms.reconfig_checkpoint(ctx, &fs1, "ck/demo", &seg, &[&u]).unwrap();
        if ctx.rank() == 0 {
            println!(
                "  checkpointed {:.2} MB in {:.3} simulated seconds",
                report.total_bytes() as f64 / 1e6,
                report.total()
            );
        }
    })
    .unwrap();

    // ---- incarnation 2: three tasks ------------------------------------
    println!("restarting the SAME state with 3 tasks ...");
    let totals = run_spmd(3, CostModel::default(), move |ctx| {
        let (drms, start) =
            Drms::initialize(ctx, &fs, cfg.clone(), EnableFlag::new(), Some("ck/demo")).unwrap();
        let Start::Restarted(info) = start else { panic!("expected a restart") };
        if ctx.rank() == 0 {
            println!(
                "  delta = {} (checkpointed with {} tasks, restarting with {})",
                info.delta,
                info.manifest.ntasks,
                ctx.ntasks()
            );
        }

        // New task count -> new (adjusted) distribution, then reload.
        let dist = Distribution::block_auto(&domain, ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        drms.restore_arrays(ctx, &fs, "ck/demo", &info.manifest, &mut [&mut u]).unwrap();

        // Continue from the saved control state.
        let start_iter = info.segment.control("iter").unwrap() + 1;
        let region = u.assigned().clone();
        for _iter in start_iter..=10 {
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.0).unwrap();
            });
        }
        u.fold_assigned(0.0, |acc, _, v| acc + v)
    })
    .unwrap();

    let total: f64 = totals.iter().sum();
    // Ground truth: sum of (x + y + 10) over the domain.
    let expect: f64 = (0..100).flat_map(|x| (0..80).map(move |y| (x + y + 10) as f64)).sum();
    println!("  final sum = {total} (expected {expect})");
    assert_eq!(total, expect, "reconfigured restart must be exact");
    println!("OK: 4-task checkpoint resumed exactly on 3 tasks.");
}
