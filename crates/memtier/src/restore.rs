//! Restart served out of the memory tier.
//!
//! `resume_from_tier` mirrors `Drms::initialize` and
//! `restore_arrays_from_tier` mirrors `Drms::restore_arrays`, but segment
//! and array bytes come from resident tier pieces instead of PIOFS files.
//! Pricing is where the tier earns its keep: a piece held on the reading
//! task's own node moves at memory-copy bandwidth; a remote piece pays one
//! message latency plus wire time — both far ahead of PIOFS client read
//! bandwidth, which is the whole point of the tier.

use drms_core::manifest::Manifest;
use drms_core::{CheckpointArray, CoreError, Drms, DrmsConfig, EnableFlag, RestartInfo, Start};
use drms_msg::Ctx;
use drms_obs::{names, Phase};
use drms_piofs::Piofs;

use crate::store::{array_file, SEGMENT_FILE};
use crate::tier::MemTier;
use crate::{MemTierError, Result};

/// Charges the caller's clock for fetched tier pieces: local holders move
/// at memory-copy bandwidth, remote holders pay latency plus wire time.
/// Public so that recovery-time section fetches price identically to a
/// full tier restore.
pub fn price_fetch(ctx: &mut Ctx, sources: &[(usize, u64)]) {
    let cost = *ctx.cost();
    let my = ctx.node();
    let mut dt = 0.0;
    for &(node, bytes) in sources {
        if node == my {
            dt += bytes as f64 / cost.memcpy_bw;
        } else {
            dt += cost.latency + cost.wire_time(bytes as usize);
        }
    }
    ctx.charge(dt);
}

/// Fetches `[off, off + len)` of an array's checkpoint stream out of the
/// tier entry under `prefix`, priced like any other tier read and counted
/// against `memtier.restore_bytes`. A zero-length request returns an empty
/// buffer without touching the tier — the collective fetch convention for
/// ranks that have nothing to read this wave. This is the section-granular
/// read localized recovery uses: only the byte ranges of *lost* sections
/// are pulled, never the whole stream.
pub fn fetch_array_range(
    ctx: &mut Ctx,
    tier: &MemTier,
    prefix: &str,
    array: &str,
    off: u64,
    len: u64,
) -> Result<Vec<u8>> {
    if len == 0 {
        return Ok(Vec::new());
    }
    let f = tier.fetch(prefix, &array_file(array), off, len)?;
    price_fetch(ctx, &f.sources);
    if ctx.recorder().enabled() {
        ctx.recorder().counter_add(ctx.rank(), names::MEMTIER_RESTORE_BYTES, None, len);
    }
    Ok(f.data)
}

/// `drms_initialize` against the memory tier (collective): checks the entry
/// is intact for the surviving node set, reloads the application text from
/// the file system, and serves the representative data segment out of
/// resident pieces. Returns the run-time handle and the restart info —
/// a tier resume is always a restart, never a fresh start.
pub fn resume_from_tier(
    ctx: &mut Ctx,
    fs: &Piofs,
    tier: &MemTier,
    cfg: DrmsConfig,
    enable: EnableFlag,
    prefix: &str,
) -> Result<(Drms, Box<RestartInfo>)> {
    if !tier.is_intact(prefix) {
        return Err(MemTierError::NotIntact(format!("{prefix:?} cannot serve a restart")));
    }
    let manifest = tier.manifest(prefix)?;
    let seg_len = tier.file_len(prefix, SEGMENT_FILE)?;
    let mut tier_err: Option<MemTierError> = None;
    let res =
        Drms::initialize_external(ctx, fs, cfg, enable, manifest, &mut |ctx| match tier.fetch(
            prefix,
            SEGMENT_FILE,
            0,
            seg_len,
        ) {
            Ok(f) => {
                price_fetch(ctx, &f.sources);
                if ctx.recorder().enabled() {
                    ctx.recorder().counter_add(
                        ctx.rank(),
                        names::MEMTIER_RESTORE_BYTES,
                        None,
                        seg_len,
                    );
                }
                Ok(f.data)
            }
            Err(e) => {
                let msg = e.to_string();
                tier_err = Some(e);
                Err(CoreError::Integrity(msg))
            }
        });
    match res {
        Ok((drms, Start::Restarted(info))) => Ok((drms, info)),
        Ok((_, Start::Fresh)) => {
            unreachable!("initialize_external always resumes from the supplied manifest")
        }
        Err(e) => Err(tier_err.take().unwrap_or(MemTierError::Core(e))),
    }
}

/// Loads every array from the tier entry under `prefix` (collective), after
/// the application has re-created them under the current distributions.
/// Validates each array against the manifest exactly like
/// [`Drms::restore_arrays`] and returns the array-phase time.
pub fn restore_arrays_from_tier(
    ctx: &mut Ctx,
    tier: &MemTier,
    drms: &Drms,
    prefix: &str,
    manifest: &Manifest,
    arrays: &mut [&mut dyn CheckpointArray],
) -> Result<f64> {
    ctx.barrier();
    let t0 = ctx.now();
    let io = drms.cfg().io.resolve(ctx.ntasks());
    let mut total = 0u64;
    for a in arrays.iter_mut() {
        let entry = manifest.array(a.array_name()).ok_or_else(|| {
            CoreError::ManifestMismatch(format!("checkpoint has no array {:?}", a.array_name()))
        })?;
        if entry.elem_code != a.elem_code() {
            return Err(CoreError::ManifestMismatch(format!(
                "array {:?}: element code {} in checkpoint, {} in program",
                a.array_name(),
                entry.elem_code,
                a.elem_code()
            ))
            .into());
        }
        if &entry.domain != a.domain() {
            return Err(CoreError::ManifestMismatch(format!(
                "array {:?}: domain {} in checkpoint, {} in program",
                a.array_name(),
                entry.domain,
                a.domain()
            ))
            .into());
        }
        total += a.stream_bytes();
        let file = array_file(a.array_name());
        let mut fetch = |ctx: &mut Ctx, off: u64, len: u64| {
            if len == 0 {
                // Collective convention: ranks without a piece this wave
                // still call, asking for nothing (tier reads price locally,
                // so there is no phase to line up with).
                return Ok(Vec::new());
            }
            let f = tier.fetch(prefix, &file, off, len).map_err(|e| e.to_string())?;
            price_fetch(ctx, &f.sources);
            if ctx.recorder().enabled() {
                ctx.recorder().counter_add(ctx.rank(), names::MEMTIER_RESTORE_BYTES, None, len);
            }
            Ok(f.data)
        };
        a.read_stream_via(ctx, io, &mut fetch)?;
    }
    ctx.barrier();
    let t1 = ctx.now();
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.span_start(t0, 0, Phase::Arrays, "restore_arrays");
        rec.span_end(t1, 0, Phase::Arrays, "restore_arrays");
        rec.span_start(t0, 0, Phase::MemTier, "restore");
        rec.span_end(t1, 0, Phase::MemTier, "restore");
        rec.counter_add(0, names::ARRAY_BYTES, None, total);
    }
    Ok(t1 - t0)
}
