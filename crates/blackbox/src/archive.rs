//! Archive of recovered seals, deduplicated across overlapping snapshots.

use std::collections::{BTreeMap, BTreeSet};

use drms_obs::TraceEvent;

use crate::wire::decode_seal;

/// Collects every seal recovered from storage (or handed over directly at
/// job completion) and reconstructs, per incarnation, the deduplicated
/// event stream the rings captured.
///
/// Seals are snapshots, so the same `(rank, capture seq)` event appears in
/// every later seal of that rank until evicted; the archive keeps exactly
/// one copy. Whole seals are deduplicated by `(incarnation, rank, seal
/// seq)` so repeated recovery scans are idempotent.
#[derive(Debug, Default)]
pub struct SealArchive {
    /// Seals already ingested.
    seen: BTreeSet<(u64, usize, u64)>,
    /// Per incarnation: (rank, capture seq) → event.
    events: BTreeMap<u64, BTreeMap<(usize, u64), TraceEvent>>,
    /// Per (incarnation, rank): highest cumulative eviction count reported
    /// by any seal (the events irrecoverably lost to ring overflow).
    evicted: BTreeMap<(u64, usize), u64>,
}

impl SealArchive {
    /// An empty archive.
    pub fn new() -> SealArchive {
        SealArchive::default()
    }

    /// Decodes and ingests one encoded seal. Returns `Ok(true)` when the
    /// seal was new, `Ok(false)` when it (by `(incarnation, rank, seal
    /// seq)`) was already ingested, and `Err` when the bytes are damaged —
    /// the caller should skip the seal and keep recovering.
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<bool, String> {
        let seal = decode_seal(bytes)?;
        let key = (seal.header.incarnation, seal.header.rank, seal.header.seal_seq);
        if !self.seen.insert(key) {
            return Ok(false);
        }
        let inc = self.events.entry(seal.header.incarnation).or_default();
        for (seq, ev) in seal.events {
            inc.entry((seal.header.rank, seq)).or_insert(ev);
        }
        let e = self.evicted.entry((seal.header.incarnation, seal.header.rank)).or_default();
        *e = (*e).max(seal.header.evicted_total);
        Ok(true)
    }

    /// Incarnations at least one seal was recovered for, ascending.
    pub fn incarnations(&self) -> Vec<u64> {
        self.events.keys().copied().collect()
    }

    /// Ranks with at least one recovered seal in `incarnation`, ascending.
    pub fn ranks_recovered(&self, incarnation: u64) -> Vec<usize> {
        self.seen
            .iter()
            .filter(|(inc, _, _)| *inc == incarnation)
            .map(|(_, rank, _)| *rank)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// The deduplicated events of `incarnation`, sorted by (time, rank,
    /// capture sequence) — deterministic regardless of seal arrival order.
    pub fn events_for(&self, incarnation: u64) -> Vec<TraceEvent> {
        let Some(inc) = self.events.get(&incarnation) else { return Vec::new() };
        let mut keyed: Vec<(&(usize, u64), &TraceEvent)> = inc.iter().collect();
        keyed.sort_by(|((ra, sa), ea), ((rb, sb), eb)| {
            ea.t.total_cmp(&eb.t).then(ra.cmp(rb)).then(sa.cmp(sb))
        });
        keyed.into_iter().map(|(_, ev)| ev.clone()).collect()
    }

    /// Events known lost to ring overflow in `incarnation` (max cumulative
    /// eviction count reported by any seal, summed over ranks).
    pub fn evicted_total(&self, incarnation: u64) -> u64 {
        self.evicted.iter().filter(|((inc, _), _)| *inc == incarnation).map(|(_, v)| *v).sum()
    }

    /// Total distinct seals ingested.
    pub fn seal_count(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_seal, SealHeader};
    use drms_obs::{EventKind, Phase};

    fn ev(t: f64, rank: usize, name: &str) -> TraceEvent {
        TraceEvent {
            t,
            rank,
            phase: Phase::Arrays,
            name: name.to_string(),
            kind: EventKind::Instant,
            corr: None,
        }
    }

    fn seal(inc: u64, rank: usize, seq: u64, events: &[(u64, TraceEvent)]) -> Vec<u8> {
        let header = SealHeader {
            incarnation: inc,
            rank,
            seal_seq: seq,
            t: 0.0,
            reason: "sop".into(),
            evicted_total: 0,
        };
        encode_seal(&header, events.iter(), events.len())
    }

    #[test]
    fn overlapping_snapshot_seals_dedup_to_one_stream() {
        let mut a = SealArchive::new();
        let e0 = (0, ev(1.0, 0, "a"));
        let e1 = (1, ev(2.0, 0, "b"));
        let e2 = (2, ev(3.0, 0, "c"));
        // Seal 0 holds {a, b}; seal 1 (later snapshot) holds {a, b, c}.
        assert!(a.ingest(&seal(0, 0, 0, &[e0.clone(), e1.clone()])).unwrap());
        assert!(a.ingest(&seal(0, 0, 1, &[e0, e1, e2])).unwrap());
        let evs = a.events_for(0);
        assert_eq!(evs.len(), 3);
        assert_eq!(evs.iter().map(|e| e.name.as_str()).collect::<Vec<_>>(), vec!["a", "b", "c"]);
    }

    #[test]
    fn duplicate_seals_are_idempotent_and_damage_is_skippable() {
        let mut a = SealArchive::new();
        let bytes = seal(1, 2, 0, &[(0, ev(1.0, 2, "x"))]);
        assert!(a.ingest(&bytes).unwrap());
        assert!(!a.ingest(&bytes).unwrap());
        assert_eq!(a.seal_count(), 1);
        assert!(a.ingest(&bytes[..bytes.len() - 2]).is_err());
        assert_eq!(a.seal_count(), 1);
        assert_eq!(a.ranks_recovered(1), vec![2]);
        assert_eq!(a.incarnations(), vec![1]);
    }

    #[test]
    fn events_sorted_by_time_rank_seq() {
        let mut a = SealArchive::new();
        a.ingest(&seal(0, 1, 0, &[(0, ev(2.0, 1, "late"))])).unwrap();
        a.ingest(&seal(0, 0, 0, &[(0, ev(2.0, 0, "tie-lower-rank")), (1, ev(1.0, 0, "early"))]))
            .unwrap();
        let names: Vec<String> = a.events_for(0).into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["early", "tie-lower-rank", "late"]);
    }
}
