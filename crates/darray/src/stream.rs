//! Serial and parallel array-section streaming (paper, Section 3.2 and
//! Figure 5b).
//!
//! `write_section` produces the *distribution-independent* stream of an
//! array section: the section is partitioned into `m = 2^k` stream-contiguous
//! pieces of roughly 1 MB (at least one per I/O task), each wave of pieces is
//! redistributed to a *canonical* distribution (piece `j0 + p` lands wholly
//! in task `p`'s address space), and all I/O tasks then write their local
//! buffers at the piece's known stream offset, in parallel. `read_section`
//! runs the mirror image. With `io_tasks == 1` the operations degrade to the
//! serial streaming of reference \[12\] — a pure append stream that needs no seek
//! capability; with `io_tasks == P` they exploit the full parallelism of the
//! file system.
//!
//! Because the stream depends only on (section, element type, order) — never
//! on the distribution — a section written from 16 tasks reads back
//! correctly into 5, which is the property reconfigurable checkpointing is
//! built on.

use drms_msg::Ctx;
use drms_obs::{names, Phase};
use drms_piofs::{Piofs, ReadAccess, ReadReq, WriteReq};
use drms_slices::partition::{choose_piece_count, partition, stream_offsets};
use drms_slices::Slice;

use crate::assign::assign;
use crate::element::{decode, encode};
use crate::{DarrayError, DistArray, Distribution, Element, Result};

/// Target bytes per streamed piece (the paper chooses ~1 MB as the balance
/// between parallelism/buffer pressure and per-piece overhead).
pub const TARGET_PIECE_BYTES: usize = 1 << 20;

/// Collective: streams `section` of `array` into the file `path`.
///
/// `io_tasks` is the paper's `P`: how many tasks perform actual I/O
/// (1 = serial streaming; `ctx.ntasks()` = fully parallel). All tasks of the
/// region must call, regardless of `io_tasks` — they all hold pieces of the
/// section and must participate in the redistribution.
pub fn write_section<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &DistArray<T>,
    section: &Slice,
    path: &str,
    io_tasks: usize,
) -> Result<()> {
    write_section_with(ctx, fs, array, section, path, io_tasks, TARGET_PIECE_BYTES)
}

/// As [`write_section`], with an explicit per-piece byte target — exposed
/// for the piece-size ablation study (the paper reasons about this choice:
/// larger pieces mean less overhead, smaller pieces mean more parallelism
/// and less intermediate buffer pressure).
pub fn write_section_with<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &DistArray<T>,
    section: &Slice,
    path: &str,
    io_tasks: usize,
    target_piece_bytes: usize,
) -> Result<()> {
    let plan = Plan::new(
        ctx,
        array.domain(),
        section,
        io_tasks,
        T::SIZE,
        array.order(),
        target_piece_bytes,
    )?;
    if ctx.rank() == 0 {
        fs.create(path); // truncate: a stream fully defines the file
    }
    ctx.barrier();

    let traced = ctx.recorder().enabled();
    for wave in 0..plan.waves() {
        if traced {
            ctx.recorder().span_start(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
        let canonical = plan.canonical(wave, array.domain())?;
        let mut aux: DistArray<T> =
            DistArray::new(array.name(), array.order(), canonical, ctx.rank());
        assign(ctx, &mut aux, array)?;

        let mut reqs = Vec::new();
        let my_piece = plan.piece_for(wave, ctx.rank());
        if let Some(j) = my_piece {
            if plan.pieces[j].size() > 0 {
                reqs.push(WriteReq {
                    path: path.to_string(),
                    offset: (plan.offsets[j] * T::SIZE) as u64,
                    data: encode(aux.local()),
                });
            }
        }
        if traced {
            let bytes: usize = reqs.iter().map(|r| r.data.len()).sum();
            let rec = ctx.recorder();
            rec.counter_add_at(
                ctx.now(),
                ctx.rank(),
                names::PIECES_WRITTEN,
                Some(array.name()),
                reqs.len() as u64,
            );
            rec.counter_add_at(
                ctx.now(),
                ctx.rank(),
                names::BYTES_STREAMED,
                Some(array.name()),
                bytes as u64,
            );
        }
        fs.collective_write(ctx, reqs);
        if traced {
            ctx.recorder().span_end(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
    }
    Ok(())
}

/// Collective: fills `section` of `array` from the stream in `path`
/// (written by [`write_section`], possibly under a different distribution
/// and task count).
pub fn read_section<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &mut DistArray<T>,
    section: &Slice,
    path: &str,
    io_tasks: usize,
) -> Result<()> {
    read_section_with(ctx, fs, array, section, path, io_tasks, TARGET_PIECE_BYTES)
}

/// As [`read_section`], with an explicit per-piece byte target. Must match
/// the target the stream was written with only in that both describe the
/// same section — the stream bytes themselves are piece-size independent.
pub fn read_section_with<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &mut DistArray<T>,
    section: &Slice,
    path: &str,
    io_tasks: usize,
    target_piece_bytes: usize,
) -> Result<()> {
    let plan = Plan::new(
        ctx,
        array.domain(),
        section,
        io_tasks,
        T::SIZE,
        array.order(),
        target_piece_bytes,
    )?;
    let need = (section.size() * T::SIZE) as u64;
    let have = fs.size(path).map_err(|e| DarrayError::Io(e.to_string()))?;
    if have < need {
        return Err(DarrayError::Io(format!(
            "stream {path} holds {have} bytes but section needs {need}"
        )));
    }
    let access = if plan.io_tasks == 1 { ReadAccess::Sequential } else { ReadAccess::Strided };

    let traced = ctx.recorder().enabled();
    for wave in 0..plan.waves() {
        if traced {
            ctx.recorder().span_start(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
        let canonical = plan.canonical(wave, array.domain())?;
        let mut aux: DistArray<T> =
            DistArray::new(array.name(), array.order(), canonical, ctx.rank());

        let mut reqs = Vec::new();
        let my_piece = plan.piece_for(wave, ctx.rank());
        if let Some(j) = my_piece {
            if plan.pieces[j].size() > 0 {
                reqs.push(ReadReq {
                    path: path.to_string(),
                    offset: (plan.offsets[j] * T::SIZE) as u64,
                    len: (plan.pieces[j].size() * T::SIZE) as u64,
                    access,
                });
            }
        }
        if traced {
            let bytes: u64 = reqs.iter().map(|r| r.len).sum();
            ctx.recorder().counter_add_at(
                ctx.now(),
                ctx.rank(),
                names::BYTES_STREAMED,
                Some(array.name()),
                bytes,
            );
        }
        let mut got = fs.collective_read(ctx, reqs).map_err(|e| DarrayError::Io(e.to_string()))?;
        if let Some(bytes) = got.pop() {
            let vals = decode::<T>(&bytes);
            aux.local_mut().copy_from_slice(&vals);
        }
        assign(ctx, array, &aux)?;
    }
    Ok(())
}

/// One locally produced piece of a canonical stream: the piece's index in
/// the stream partition, its byte offset within the stream, and its encoded
/// bytes. This is what [`collect_section_pieces`] hands to callers that keep
/// the stream somewhere other than a PIOFS file (the in-memory checkpoint
/// tier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPiece {
    /// Index of the piece within the stream partition.
    pub index: usize,
    /// Byte offset of the piece within the stream.
    pub offset: u64,
    /// The piece's encoded bytes, in stream order.
    pub data: Vec<u8>,
}

/// Assembles a task's stream pieces into contiguous stream bytes: sorted
/// by offset and concatenated. When one task holds every piece of a stream
/// (serial gathering, `io_tasks == 1`) the result is bitwise identical to
/// the file [`write_section`] would have produced.
pub fn assemble_pieces(mut pieces: Vec<StreamPiece>) -> Vec<u8> {
    pieces.sort_by_key(|p| p.offset);
    let total: usize = pieces.iter().map(|p| p.data.len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in &pieces {
        out.extend_from_slice(&p.data);
    }
    out
}

/// Byte-range fetch callback for [`read_section_via`]: called as
/// `fetch(ctx, offset, len)` and must return exactly `len` bytes of the
/// stream starting at byte `offset`, pricing its own data movement against
/// the calling task's clock. The callback is invoked **collectively**:
/// every rank of the region calls it exactly once per wave, with `len == 0`
/// on ranks that hold no piece that wave (they must return an empty
/// buffer). That lets fetchers built on collective file-system phases line
/// their participants up, which keeps simulated pricing deterministic.
pub type PieceFetch<'a> =
    dyn FnMut(&mut Ctx, u64, u64) -> std::result::Result<Vec<u8>, String> + 'a;

/// Collective: runs the same redistribution waves as [`write_section`] but
/// returns this task's canonical stream pieces instead of writing them to a
/// file. The concatenation of all tasks' pieces (by offset) is bitwise
/// identical to the file [`write_section`] would have produced.
///
/// All tasks of the region must call — they all hold parts of the section
/// and must participate in every wave's redistribution — but only the first
/// `io_tasks` ranks receive pieces.
pub fn collect_section_pieces<T: Element>(
    ctx: &mut Ctx,
    array: &DistArray<T>,
    section: &Slice,
    io_tasks: usize,
) -> Result<Vec<StreamPiece>> {
    let plan = Plan::new(
        ctx,
        array.domain(),
        section,
        io_tasks,
        T::SIZE,
        array.order(),
        TARGET_PIECE_BYTES,
    )?;
    let traced = ctx.recorder().enabled();
    let mut out = Vec::new();
    for wave in 0..plan.waves() {
        if traced {
            ctx.recorder().span_start(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
        let canonical = plan.canonical(wave, array.domain())?;
        let mut aux: DistArray<T> =
            DistArray::new(array.name(), array.order(), canonical, ctx.rank());
        assign(ctx, &mut aux, array)?;

        if let Some(j) = plan.piece_for(wave, ctx.rank()) {
            if plan.pieces[j].size() > 0 {
                let data = encode(aux.local());
                if traced {
                    let rec = ctx.recorder();
                    rec.counter_add_at(
                        ctx.now(),
                        ctx.rank(),
                        names::PIECES_WRITTEN,
                        Some(array.name()),
                        1,
                    );
                    rec.counter_add_at(
                        ctx.now(),
                        ctx.rank(),
                        names::BYTES_STREAMED,
                        Some(array.name()),
                        data.len() as u64,
                    );
                }
                out.push(StreamPiece {
                    index: j,
                    offset: (plan.offsets[j] * T::SIZE) as u64,
                    data,
                });
            }
        }
        if traced {
            ctx.recorder().span_end(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
    }
    Ok(out)
}

/// Collective: fills `section` of `array` from its canonical stream,
/// fetching each piece's byte range through `fetch` instead of the file
/// system. The reader's piece plan need not match the writer's: `fetch` is
/// given arbitrary `(offset, len)` ranges of the stream and may assemble
/// them from whatever storage granularity it kept.
pub fn read_section_via<T: Element>(
    ctx: &mut Ctx,
    array: &mut DistArray<T>,
    section: &Slice,
    io_tasks: usize,
    fetch: &mut PieceFetch<'_>,
) -> Result<()> {
    let plan = Plan::new(
        ctx,
        array.domain(),
        section,
        io_tasks,
        T::SIZE,
        array.order(),
        TARGET_PIECE_BYTES,
    )?;
    let traced = ctx.recorder().enabled();
    for wave in 0..plan.waves() {
        if traced {
            ctx.recorder().span_start(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
        let canonical = plan.canonical(wave, array.domain())?;
        let mut aux: DistArray<T> =
            DistArray::new(array.name(), array.order(), canonical, ctx.rank());

        let (offset, len) = match plan.piece_for(wave, ctx.rank()) {
            Some(j) if plan.pieces[j].size() > 0 => {
                ((plan.offsets[j] * T::SIZE) as u64, (plan.pieces[j].size() * T::SIZE) as u64)
            }
            _ => (0, 0),
        };
        // Every rank fetches every wave (see [`PieceFetch`]) so collective
        // fetchers stay aligned; idle ranks ask for zero bytes.
        let bytes = fetch(ctx, offset, len).map_err(DarrayError::Io)?;
        if bytes.len() as u64 != len {
            return Err(DarrayError::Io(format!(
                "stream fetch at {offset} returned {} bytes, wanted {len}",
                bytes.len()
            )));
        }
        if len > 0 {
            if traced {
                ctx.recorder().counter_add_at(
                    ctx.now(),
                    ctx.rank(),
                    names::BYTES_STREAMED,
                    Some(array.name()),
                    len,
                );
            }
            let vals = decode::<T>(&bytes);
            aux.local_mut().copy_from_slice(&vals);
        }
        assign(ctx, array, &aux)?;
        if traced {
            ctx.recorder().span_end(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
    }
    Ok(())
}

/// Collective: collects the entire array's canonical stream pieces (the
/// diskless checkpoint path).
pub fn collect_array_pieces<T: Element>(
    ctx: &mut Ctx,
    array: &DistArray<T>,
    io_tasks: usize,
) -> Result<Vec<StreamPiece>> {
    let section = array.domain().clone();
    collect_section_pieces(ctx, array, &section, io_tasks)
}

/// Collective: fills the entire array from its canonical stream through a
/// byte-range fetch callback.
pub fn read_array_via<T: Element>(
    ctx: &mut Ctx,
    array: &mut DistArray<T>,
    io_tasks: usize,
    fetch: &mut PieceFetch<'_>,
) -> Result<()> {
    let section = array.domain().clone();
    read_section_via(ctx, array, &section, io_tasks, fetch)
}

/// Collective: fills only the parts of `array` that overlap one of the
/// `needed` sections from the array's *full-domain* canonical stream,
/// leaving everything else untouched. Fetch offsets are full-stream byte
/// offsets — exactly the layout of a checkpoint's `array-{name}` file or
/// its memory-tier replica — so a localized recovery can pull just the
/// lost ranks' section ranges out of an existing whole-array stream.
///
/// The piece plan is the same as [`read_array_via`]'s; a piece is fetched
/// iff its slice intersects some needed section, and the per-wave
/// redistribution is masked to the fetched pieces so unfetched pieces
/// never clobber live data. A fetched piece may extend past the needed
/// sections (pieces are stream-contiguous, sections are not); the extra
/// elements are overwritten with bytes from the same stream, which is
/// harmless by construction — everything restored is checkpoint state.
///
/// Every rank calls `fetch` once per wave (`len == 0` when it has nothing
/// to fetch), preserving the collective-fetcher convention of
/// [`PieceFetch`]. Returns the total bytes fetched.
pub fn read_overlapping_via<T: Element>(
    ctx: &mut Ctx,
    array: &mut DistArray<T>,
    needed: &[Slice],
    io_tasks: usize,
    fetch: &mut PieceFetch<'_>,
) -> Result<u64> {
    let domain = array.domain().clone();
    let plan =
        Plan::new(ctx, &domain, &domain, io_tasks, T::SIZE, array.order(), TARGET_PIECE_BYTES)?;
    let wanted: Vec<bool> = plan
        .pieces
        .iter()
        .map(|piece| {
            needed.iter().any(|n| {
                !n.is_empty() && piece.intersect(n).map(|s| !s.is_empty()).unwrap_or(false)
            })
        })
        .collect();
    let traced = ctx.recorder().enabled();
    let mut fetched_total = 0u64;
    for wave in 0..plan.waves() {
        if traced {
            ctx.recorder().span_start(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
        let canonical = plan.canonical(wave, &domain)?;
        // Mask the canonical wave distribution to the wanted pieces, so
        // assign() moves only fetched data into the array.
        let keep: Vec<bool> = (0..ctx.ntasks())
            .map(|r| plan.piece_for(wave, r).map(|j| wanted[j]).unwrap_or(false))
            .collect();
        let masked = canonical.masked(&keep)?;
        let mut aux: DistArray<T> = DistArray::new(array.name(), array.order(), masked, ctx.rank());

        let (offset, len) = match plan.piece_for(wave, ctx.rank()) {
            Some(j) if wanted[j] && plan.pieces[j].size() > 0 => {
                ((plan.offsets[j] * T::SIZE) as u64, (plan.pieces[j].size() * T::SIZE) as u64)
            }
            _ => (0, 0),
        };
        let bytes = fetch(ctx, offset, len).map_err(DarrayError::Io)?;
        if bytes.len() as u64 != len {
            return Err(DarrayError::Io(format!(
                "stream fetch at {offset} returned {} bytes, wanted {len}",
                bytes.len()
            )));
        }
        if len > 0 {
            fetched_total += len;
            if traced {
                ctx.recorder().counter_add_at(
                    ctx.now(),
                    ctx.rank(),
                    names::BYTES_STREAMED,
                    Some(array.name()),
                    len,
                );
            }
            let vals = decode::<T>(&bytes);
            aux.local_mut().copy_from_slice(&vals);
        }
        assign(ctx, array, &aux)?;
        if traced {
            ctx.recorder().span_end(ctx.now(), ctx.rank(), Phase::StreamWave, array.name());
        }
    }
    // Every rank fetched the same piece set, but only the fetching rank
    // counted its bytes; make the return value the collective total.
    let (per_rank, _) = ctx.exchange(fetched_total);
    Ok(per_rank.iter().sum())
}

/// Collective: streams the entire array (the checkpoint path).
pub fn write_array<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &DistArray<T>,
    path: &str,
    io_tasks: usize,
) -> Result<()> {
    let section = array.domain().clone();
    write_section(ctx, fs, array, &section, path, io_tasks)
}

/// Collective: fills the entire array from its stream file.
pub fn read_array<T: Element>(
    ctx: &mut Ctx,
    fs: &Piofs,
    array: &mut DistArray<T>,
    path: &str,
    io_tasks: usize,
) -> Result<()> {
    let section = array.domain().clone();
    read_section(ctx, fs, array, &section, path, io_tasks)
}

/// The streaming plan shared by write and read: pieces, offsets, waves.
struct Plan {
    pieces: Vec<Slice>,
    offsets: Vec<usize>,
    io_tasks: usize,
    ntasks: usize,
}

impl Plan {
    fn new(
        ctx: &Ctx,
        domain: &Slice,
        section: &Slice,
        io_tasks: usize,
        elem_size: usize,
        order: drms_slices::Order,
        target_piece_bytes: usize,
    ) -> Result<Plan> {
        if !section.is_subset_of(domain) {
            return Err(DarrayError::DomainMismatch {
                left: section.clone(),
                right: domain.clone(),
            });
        }
        let io_tasks = io_tasks.clamp(1, ctx.ntasks());
        let bytes = section.size() * elem_size;
        let m = choose_piece_count(bytes, io_tasks, target_piece_bytes);
        // The stream linearization is the array's storage order (the paper
        // supports both FORTRAN column-major and C row-major streams), so
        // the partition splits along that order's slowest axis and each
        // piece's local buffer is already stream-contiguous.
        let pieces = partition(section, m, order)?;
        let offsets = stream_offsets(&pieces);
        Ok(Plan { pieces, offsets, io_tasks, ntasks: ctx.ntasks() })
    }

    fn waves(&self) -> usize {
        self.pieces.len().div_ceil(self.io_tasks)
    }

    /// The piece index task `rank` handles in `wave`, if any.
    fn piece_for(&self, wave: usize, rank: usize) -> Option<usize> {
        if rank >= self.io_tasks {
            return None;
        }
        let j = wave * self.io_tasks + rank;
        (j < self.pieces.len()).then_some(j)
    }

    /// Canonical distribution of this wave's pieces onto tasks.
    fn canonical(&self, wave: usize, domain: &Slice) -> Result<std::sync::Arc<Distribution>> {
        let lo = wave * self.io_tasks;
        let hi = (lo + self.io_tasks).min(self.pieces.len());
        Distribution::pieces(domain, self.ntasks, &self.pieces[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_msg::{run_spmd, CostModel};
    use drms_piofs::PiofsConfig;
    use drms_slices::Order;
    use std::sync::Arc as StdArc;

    fn fs() -> StdArc<Piofs> {
        Piofs::new(PiofsConfig::test_tiny(4), 7)
    }

    fn value(p: &[i64]) -> f64 {
        p.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * x as f64).sum::<f64>() * 0.5 + 1.0
    }

    #[test]
    fn write_read_roundtrip_same_distribution() {
        let fs = fs();
        let dom = Slice::boxed(&[(0, 15), (0, 7)]);
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[2, 2], &[1, 1]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist.clone(), ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs, &a, "ck/u", 4).unwrap();

            let mut b = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            read_array(ctx, &fs, &mut b, "ck/u", 4).unwrap();
            b.fold_assigned((), |_, p, v| assert_eq!(v, value(p), "point {p:?}"));
        })
        .unwrap();
        // File holds exactly the dense section.
        assert_eq!(fs.size("ck/u").unwrap(), (16 * 8 * 8) as u64);
    }

    #[test]
    fn stream_is_distribution_independent() {
        // Write under a 4-task block-block distribution, then byte-compare
        // with a serial write from a 1-task run: identical streams.
        let dom = Slice::boxed(&[(1, 12), (1, 10)]);
        let fs1 = fs();
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[4, 1], &[2, 0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs1, &a, "s", 4).unwrap();
        })
        .unwrap();

        let fs2 = fs();
        run_spmd(1, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[1, 1], &[0, 0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs2, &a, "s", 1).unwrap();
        })
        .unwrap();

        assert_eq!(fs1.peek("s").unwrap(), fs2.peek("s").unwrap());
    }

    #[test]
    fn reconfigured_read_different_task_count() {
        let dom = Slice::boxed(&[(0, 19), (0, 11)]);
        let fs = fs();
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block_auto(&dom, 4, 1).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs, &a, "r", 4).unwrap();
        })
        .unwrap();

        // Restart with 3 tasks, different grid, different shadows.
        run_spmd(3, CostModel::default(), |ctx| {
            let dist = Distribution::block_auto(&dom, 3, 2).unwrap();
            let mut b = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            read_array(ctx, &fs, &mut b, "r", 3).unwrap();
            // Every mapped element (shadows included) restored.
            let mut checked = 0;
            b.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
                assert_eq!(b.get(p).unwrap(), value(p), "point {p:?}");
                checked += 1;
            });
            assert!(checked > 0);
        })
        .unwrap();
    }

    #[test]
    fn serial_streaming_matches_parallel() {
        let dom = Slice::boxed(&[(0, 30)]);
        let fs = fs();
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[4], &[0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs, &a, "par", 4).unwrap();
            write_array(ctx, &fs, &a, "ser", 1).unwrap();
        })
        .unwrap();
        assert_eq!(fs.peek("par").unwrap(), fs.peek("ser").unwrap());
    }

    #[test]
    fn section_streaming_subset() {
        let dom = Slice::boxed(&[(0, 9), (0, 9)]);
        let section = Slice::boxed(&[(2, 5), (3, 8)]);
        let fs = fs();
        run_spmd(2, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[2, 1], &[0, 0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist.clone(), ctx.rank());
            a.fill_assigned(value);
            write_section(ctx, &fs, &a, &section, "sec", 2).unwrap();

            let mut b = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            read_section(ctx, &fs, &mut b, &section, "sec", 2).unwrap();
            // Elements inside the section restored; outside untouched.
            b.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
                let expect = if section.contains(p).unwrap() { value(p) } else { 0.0 };
                // Only assigned values were written by fill_assigned, and the
                // section restore only defines in-section elements.
                if section.contains(p).unwrap() {
                    assert_eq!(b.get(p).unwrap(), expect, "point {p:?}");
                }
            });
        })
        .unwrap();
        assert_eq!(fs.size("sec").unwrap(), (section.size() * 8) as u64);
    }

    #[test]
    fn read_missing_or_short_file_errors() {
        let dom = Slice::boxed(&[(0, 9)]);
        let fs = fs();
        run_spmd(1, CostModel::free(), |ctx| {
            let dist = Distribution::block(&dom, &[1], &[0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            assert!(matches!(read_array(ctx, &fs, &mut a, "nope", 1), Err(DarrayError::Io(_))));
            fs.write_at(ctx, "short", 0, &[0u8; 8]);
            assert!(matches!(read_array(ctx, &fs, &mut a, "short", 1), Err(DarrayError::Io(_))));
        })
        .unwrap();
    }

    #[test]
    fn collected_pieces_match_file_stream_bitwise() {
        // The diskless capture must produce the same bytes the file path
        // writes — that is what makes spilled checkpoints bitwise identical.
        let dom = Slice::boxed(&[(0, 19), (0, 11)]);
        let fs = fs();
        let pieces = std::sync::Mutex::new(Vec::new());
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block_auto(&dom, 4, 1).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs, &a, "file", 4).unwrap();
            let mine = collect_array_pieces(ctx, &a, 4).unwrap();
            pieces.lock().unwrap().extend(mine);
        })
        .unwrap();

        let file = fs.peek("file").unwrap();
        let mut all = pieces.into_inner().unwrap();
        all.sort_by_key(|p| p.offset);
        let stream: Vec<u8> = all.iter().flat_map(|p| p.data.iter().copied()).collect();
        assert_eq!(all.iter().map(|p| p.offset as usize).collect::<Vec<_>>(), {
            let mut off = 0;
            all.iter()
                .map(|p| {
                    let o = off;
                    off += p.data.len();
                    o
                })
                .collect::<Vec<_>>()
        });
        assert_eq!(stream, file);
    }

    #[test]
    fn read_via_fetch_restores_under_different_task_count() {
        // Write the stream from 4 tasks into a plain byte buffer, then read
        // it back on 3 tasks through a fetch callback slicing that buffer.
        let dom = Slice::boxed(&[(0, 19), (0, 11)]);
        let fs = fs();
        run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block_auto(&dom, 4, 1).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            write_array(ctx, &fs, &a, "buf", 4).unwrap();
        })
        .unwrap();
        let stream = StdArc::new(fs.peek("buf").unwrap());

        run_spmd(3, CostModel::default(), |ctx| {
            let dist = Distribution::block_auto(&dom, 3, 2).unwrap();
            let mut b = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            let bytes = stream.clone();
            let mut fetch = |_ctx: &mut Ctx, off: u64, len: u64| {
                let (off, len) = (off as usize, len as usize);
                if off + len > bytes.len() {
                    return Err(format!("range {off}+{len} past {}", bytes.len()));
                }
                Ok(bytes[off..off + len].to_vec())
            };
            read_array_via(ctx, &mut b, 3, &mut fetch).unwrap();
            let mut checked = 0;
            b.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
                assert_eq!(b.get(p).unwrap(), value(p), "point {p:?}");
                checked += 1;
            });
            assert!(checked > 0);
        })
        .unwrap();
    }

    #[test]
    fn io_tasks_clamped() {
        let dom = Slice::boxed(&[(0, 9)]);
        let fs = fs();
        run_spmd(2, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[2], &[0]).unwrap();
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(value);
            // Requesting more I/O tasks than exist is fine.
            write_array(ctx, &fs, &a, "c", 64).unwrap();
        })
        .unwrap();
        assert_eq!(fs.size("c").unwrap(), 80);
    }
}
