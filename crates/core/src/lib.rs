//! The DRMS programming model: reconfigurable checkpoint and restart.
//!
//! This crate is the paper's primary contribution. It extends the SPMD model
//! with schedulable-and-observable points (SOPs) at which the state of a
//! parallel application is captured in a **task-count-independent** form:
//!
//! * the [`segment::DataSegment`] of *one* representative task — replicated
//!   variables, control variables, private data, system (message-buffer)
//!   residency, and the compile-time-fixed local-section storage;
//! * every distributed array, streamed through
//!   [`drms_darray::stream`] into its distribution-independent
//!   representation.
//!
//! [`Drms::reconfig_checkpoint`] implements the `drms_reconfig_checkpoint`
//! call of Table 2; [`Drms::initialize`] implements `drms_initialize`
//! (restart detection and state reload); [`Drms::reconfig_chkenable`] is the
//! system-enabled variant. A checkpoint taken on `t1` tasks restarts on `t2`
//! tasks: the application adjusts its distributions
//! ([`drms_darray::Distribution::adjust`]) and reloads each array under the
//! new distribution.
//!
//! The [`spmd`] module implements the paper's comparison baseline:
//! conventional SPMD checkpointing in which every task dumps its entire data
//! segment to a private file — simple, but the saved state grows linearly
//! with the task count and restart requires the identical task count.
//!
//! **Substitution note (execution context).** The original system restored a
//! Unix process image (stack, registers, heap) so execution resumed inside
//! the checkpoint call. Rust cannot (and should not) longjmp across task
//! frames; instead, restart returns the saved control variables and the
//! application re-enters its outer loop at the saved SOP — the same
//! structure as the paper's Figure 1 skeleton, where the loop body is
//! steered by control variables in the restored segment. At an SOP the DRMS
//! model defines the application state as exactly what we save, so no
//! information is lost by this substitution.

#![deny(missing_docs)]

pub mod commit;
pub mod manifest;
pub mod mpmd;
pub mod report;
pub mod segment;
pub mod spmd;
pub mod wire;

mod drms;
mod error;
mod handle;
mod inject;

pub use drms::{
    checkpoint_is_valid, compute_integrity, delete_checkpoint, find_checkpoints, integrity_chunk,
    phase_span, read_manifest_collective, record_bytes, retain_checkpoints, stage_flight_rings,
    sweep_orphans, Drms, DrmsConfig, EnableFlag, RestartInfo, Start,
};
pub use error::CoreError;
pub use inject::crash_point;

/// Re-export of the fault-injection crate, so campaign code can name
/// [`chaos::CrashPoint`] and fault plans through the core facade.
pub use drms_chaos as chaos;
pub use handle::{decode_locals, encode_locals, CheckpointArray};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Number of I/O tasks to use for array streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoMode {
    /// Every task performs I/O (fully parallel streaming).
    Parallel,
    /// One task performs I/O (serial streaming; works without seek support).
    Serial,
    /// A fixed number of I/O tasks.
    Tasks(usize),
}

impl IoMode {
    /// Resolves the mode to a task count for a region of `ntasks` tasks.
    pub fn resolve(self, ntasks: usize) -> usize {
        match self {
            IoMode::Parallel => ntasks,
            IoMode::Serial => 1,
            IoMode::Tasks(n) => n.clamp(1, ntasks),
        }
    }
}
