//! Collective crash-point injection for robustness campaigns.
//!
//! A crash must be a *collective* decision: if rank 0 alone vanished
//! mid-checkpoint, its siblings would hang in the next barrier until the
//! stall guard fired. Instead, rank 0 consults the chaos controller and the
//! vote is propagated through the exchange board, so every task returns
//! [`CoreError::Interrupted`] from the same point — the job-level analog of
//! a node death at that instant. The runtime environment treats the error
//! like any other kill and drives a restart from the last *committed*
//! checkpoint.

use drms_chaos::CrashPoint;
use drms_msg::Ctx;
use drms_obs::{names, Phase};
use drms_piofs::Piofs;

use crate::{CoreError, Result};

/// Fires the enumerated crash point when the region runs under a chaos
/// plan that armed it. Regions without a chaos controller pay nothing:
/// no exchange, no branch on plan contents, so virtual timing is
/// bit-identical to a build without injection.
///
/// `aborts_commit` marks points where a staged-but-uncommitted checkpoint
/// is abandoned, counted separately (as [`names::COMMIT_ABORTS`]) from
/// crashes that interrupt nothing in flight.
///
/// When a flight recorder is attached, every rank salvages one last seal
/// of its ring to `fs` before dying (see [`salvage_flight_ring`]), so the
/// post-crash restart can recover the incarnation's final moments.
pub fn crash_point(
    ctx: &mut Ctx,
    fs: &Piofs,
    point: CrashPoint,
    aborts_commit: bool,
) -> Result<()> {
    let Some(chaos) = ctx.chaos() else { return Ok(()) };
    let mine = ctx.rank() == 0 && chaos.should_crash(point);
    let (votes, _) = ctx.exchange(mine);
    if !votes[0] {
        return Ok(());
    }
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.counter_add(0, names::CRASHES_INJECTED, None, 1);
        if aborts_commit {
            rec.counter_add(0, names::COMMIT_ABORTS, None, 1);
        }
        rec.event(ctx.now(), 0, Phase::Control, &format!("crash:{point}"));
    }
    salvage_flight_ring(ctx, fs, point.as_str());
    Err(CoreError::Interrupted(point.as_str().to_string()))
}

/// The dying region's last words: seals a snapshot of the calling rank's
/// flight ring and dumps it straight into the salvage area. The dump is a
/// control-plane `preload` — a process that is about to die does not get
/// to price orderly collective I/O, it scribbles what it can — and the
/// file is keyed by the seal's unique tag, so salvages from different
/// incarnations and crash points never collide. No-op without a flight
/// recorder.
fn salvage_flight_ring(ctx: &Ctx, fs: &Piofs, reason: &str) {
    let rec = ctx.recorder();
    if !rec.flight_enabled() {
        return;
    }
    let Some(seal) = rec.flight_seal(ctx.now(), ctx.rank(), reason) else { return };
    fs.preload(&format!("{}/{}", drms_blackbox::SALVAGE_DIR, seal.tag), seal.bytes.clone());
    let (t, r) = (ctx.now(), ctx.rank());
    rec.counter_add_at(t, r, names::BLACKBOX_SALVAGES, None, 1);
    rec.counter_add_at(t, r, names::BLACKBOX_SEALS, None, 1);
    rec.counter_add_at(t, r, names::BLACKBOX_SEAL_BYTES, None, seal.bytes.len() as u64);
    rec.counter_add_at(t, r, names::BLACKBOX_EVENTS_CAPTURED, None, seal.events);
    rec.counter_add_at(t, r, names::BLACKBOX_EVENTS_EVICTED, None, seal.evicted);
}
