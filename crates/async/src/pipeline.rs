//! The asynchronous checkpointer: backpressure, detached flush, and the
//! deterministic flusher timeline.

use std::collections::VecDeque;

use drms_core::chaos::CrashPoint;
use drms_core::commit::{
    compute_integrity_staged, publish_data, publish_manifest, staged_manifest_path, staging_prefix,
};
use drms_core::crash_point;
use drms_core::manifest::{
    array_path, delta_path, manifest_path, segment_path, ArrayDelta, ArrayEntry, CkptKind, Manifest,
};
use drms_core::segment::DataSegment;
use drms_core::{CheckpointArray, CoreError, Drms};
use drms_darray::stream::assemble_pieces;
use drms_delta::{DeltaChain, DeltaConfig, StageStats};
use drms_memtier::{spill_to_staging, store_captured, MemTier};
use drms_msg::Ctx;
use drms_obs::{names, Phase};
use drms_piofs::{Piofs, WriteReq};

use crate::snapshot::Snapshot;
use crate::{micros, Result};

/// Tuning knobs of the asynchronous pipeline.
#[derive(Debug, Clone, Copy)]
pub struct AsyncConfig {
    /// Maximum snapshots in flight behind the flusher. An SOP arriving
    /// with the budget exhausted stalls until the oldest flush commits
    /// (clamped to at least 1).
    pub budget: usize,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig { budget: 2 }
    }
}

/// One armed snapshot moving through the background flusher.
#[derive(Debug, Clone, PartialEq)]
pub struct Flight {
    /// Checkpoint prefix the flush publishes to.
    pub prefix: String,
    /// SOP number of the snapshot.
    pub sop: u64,
    /// Virtual time the snapshot finished capturing (flush becomes
    /// eligible here).
    pub t_snap: f64,
    /// Virtual time the flusher actually started on it (after older
    /// flights drained).
    pub start: f64,
    /// Virtual time the flush commit becomes visible.
    pub finish: f64,
    /// Stream bytes the flush moves.
    pub bytes: u64,
    /// Critical-path seconds charged to this flight so far (backpressure
    /// and drain waits).
    pub stall: f64,
}

/// Delta-mode statistics of one asynchronous checkpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaSummary {
    /// Whether this checkpoint was a full rewrite (chain restart).
    pub full: bool,
    /// Chunk statistics of the staging pass (rank 0's view).
    pub stats: StageStats,
    /// Chain depth after the commit.
    pub chain_depth: u64,
}

/// What one asynchronous checkpoint did (foreground view).
#[derive(Debug, Clone, PartialEq)]
pub struct AsyncReport {
    /// SOP number of the snapshot.
    pub sop: u64,
    /// Critical-path seconds spent capturing the snapshot.
    pub snapshot_seconds: f64,
    /// Seconds of flusher work the checkpoint enqueued (measured on the
    /// detached clock).
    pub flush_seconds: f64,
    /// Seconds between arming and the commit becoming visible (queueing
    /// behind older flights included).
    pub lag: f64,
    /// Virtual time the commit becomes visible.
    pub finish: f64,
    /// Stream bytes captured across all tasks.
    pub bytes: u64,
    /// Backpressure seconds paid before this snapshot could arm.
    pub stalled: f64,
    /// Delta-mode statistics, when taken through
    /// [`AsyncCheckpointer::checkpoint_delta`].
    pub delta: Option<DeltaSummary>,
}

/// The pipeline state every task keeps in lockstep: armed flights and the
/// flusher's free horizon. All of it is computed from barrier-synchronized
/// timestamps and detached-clock durations, so every task holds the exact
/// same values without further communication.
#[derive(Debug, Default)]
pub struct AsyncCheckpointer {
    cfg: AsyncConfig,
    flights: VecDeque<Flight>,
    free_at: f64,
    stalls: u64,
    stall_seconds: f64,
}

impl AsyncCheckpointer {
    /// A fresh pipeline under `cfg`.
    pub fn new(cfg: AsyncConfig) -> AsyncCheckpointer {
        AsyncCheckpointer {
            cfg,
            flights: VecDeque::new(),
            free_at: 0.0,
            stalls: 0,
            stall_seconds: 0.0,
        }
    }

    /// Snapshots currently in flight (armed, commit not yet visible at the
    /// last synchronization point).
    pub fn inflight(&self) -> usize {
        self.flights.len()
    }

    /// Backpressure engagements so far.
    pub fn stalls(&self) -> u64 {
        self.stalls
    }

    /// Critical-path seconds lost to backpressure and drain waits so far.
    pub fn stall_seconds(&self) -> f64 {
        self.stall_seconds
    }

    /// Virtual time the flusher becomes idle (the newest flight's finish).
    pub fn free_at(&self) -> f64 {
        self.free_at
    }

    /// Retires every flight whose commit is visible at `now`, publishing
    /// its overlap ratio (fraction of the flush window hidden off the
    /// critical path).
    fn retire(&mut self, ctx: &Ctx, now: f64) {
        while let Some(f) = self.flights.front() {
            if f.finish > now {
                break;
            }
            let f = self.flights.pop_front().expect("front exists");
            if ctx.rank() == 0 && ctx.recorder().enabled() {
                let window = (f.finish - f.t_snap).max(0.0);
                let overlap =
                    if window > 0.0 { (1.0 - f.stall / window).clamp(0.0, 1.0) } else { 1.0 };
                let rec = ctx.recorder();
                rec.gauge_set_at(f.finish, 0, names::ASYNC_OVERLAP_RATIO, 0, overlap);
                rec.gauge_set_at(f.finish, 0, names::ASYNC_INFLIGHT, 0, self.flights.len() as f64);
            }
        }
    }

    /// Backpressure gate at an SOP: reconciles clocks, retires visible
    /// commits, and — while the in-flight count still meets the budget —
    /// waits for the oldest flush, charging exactly that residual wait to
    /// compute. Returns the seconds stalled.
    fn await_slot(&mut self, ctx: &mut Ctx) -> f64 {
        ctx.barrier();
        let mut stalled = 0.0;
        loop {
            let now = ctx.now();
            self.retire(ctx, now);
            if self.flights.len() < self.cfg.budget.max(1) {
                break;
            }
            let finish = self.flights.front().expect("budget > 0").finish;
            let wait = (finish - now).max(0.0);
            stalled += wait;
            self.flights.front_mut().expect("budget > 0").stall += wait;
            if ctx.rank() == 0 && ctx.recorder().enabled() {
                let rec = ctx.recorder();
                rec.counter_add_at(now, 0, names::ASYNC_BACKPRESSURE_STALLS, None, 1);
                rec.counter_add_at(now, 0, names::ASYNC_STALL_US, None, micros(wait));
            }
            ctx.advance_to(finish);
        }
        self.stalls += if stalled > 0.0 { 1 } else { 0 };
        self.stall_seconds += stalled;
        stalled
    }

    /// Waits until every armed flight's commit is visible (collective).
    /// Call before the application exits or measures final state — an
    /// asynchronous checkpoint is only durable once its flight retires.
    /// Returns the critical-path seconds the drain cost.
    pub fn drain(&mut self, ctx: &mut Ctx) -> f64 {
        ctx.barrier();
        let start = ctx.now();
        while let Some(f) = self.flights.front() {
            let finish = f.finish;
            let now = ctx.now();
            if finish > now {
                let wait = finish - now;
                self.flights.front_mut().expect("front exists").stall += wait;
                if ctx.rank() == 0 && ctx.recorder().enabled() {
                    ctx.recorder().counter_add_at(
                        now,
                        0,
                        names::ASYNC_STALL_US,
                        None,
                        micros(wait),
                    );
                }
                ctx.advance_to(finish);
            }
            self.retire(ctx, ctx.now());
        }
        let waited = ctx.now() - start;
        self.stall_seconds += waited;
        waited
    }

    /// Asynchronous `drms_reconfig_checkpoint`: waits out backpressure,
    /// advances the SOP, captures a COW snapshot (the only cost left on
    /// the critical path), then runs the flush in a detached virtual-time
    /// region — through the replica `tier` when given, directly to staged
    /// PIOFS files otherwise — and books the flight on the deterministic
    /// flusher timeline. The committed checkpoint is bitwise identical to
    /// a blocking [`Drms::reconfig_checkpoint`] of the same state.
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        drms: &mut Drms,
        prefix: &str,
        base_segment: &DataSegment,
        arrays: &[&dyn CheckpointArray],
        tier: Option<&MemTier>,
    ) -> Result<AsyncReport> {
        let stalled = self.await_slot(ctx);
        drms.advance_sop();
        ctx.barrier();
        crash_point(ctx, fs, CrashPoint::CkptEnter, false)?;
        let t_sop = ctx.now();

        let snap = Snapshot::capture(ctx, drms, base_segment, arrays)?;
        ctx.barrier();
        let t_snap = ctx.now();
        crash_point(ctx, fs, CrashPoint::FlushArmed, false)?;

        let prefix_owned = prefix.to_string();
        let (flushed, d) = ctx.run_detached(|ctx| flush_full(ctx, fs, tier, &prefix_owned, &snap));
        if let Err(e) = flushed {
            if ctx.rank() == 0 && ctx.recorder().enabled() {
                ctx.recorder().counter_add_at(t_snap, 0, names::ASYNC_FLUSH_ABORTS, None, 1);
            }
            return Err(e);
        }
        let report = self.arm(ctx, prefix, &snap, t_sop, t_snap, d, stalled, None);
        Ok(report)
    }

    /// Asynchronous incremental checkpoint: the chunk diff/dedup pass runs
    /// in the foreground at the SOP — content digests must describe the
    /// snapshot, not whatever the arrays mutate into — and only the
    /// surviving pack bytes ride the background flush. Composes with the
    /// same [`DeltaChain`] two-phase state as
    /// [`drms_delta::delta_checkpoint`]: the chain commits only after the
    /// flush's manifest rename, and aborts if the flush dies.
    #[allow(clippy::too_many_arguments)]
    pub fn checkpoint_delta(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        drms: &mut Drms,
        chain: &mut DeltaChain,
        dcfg: &DeltaConfig,
        prefix: &str,
        base_segment: &DataSegment,
        arrays: &[&dyn CheckpointArray],
    ) -> Result<AsyncReport> {
        if fs.exists(&manifest_path(prefix)) {
            return Err(CoreError::ManifestMismatch(format!(
                "delta checkpoints require a fresh prefix, but {prefix:?} already holds a \
                 committed checkpoint"
            ))
            .into());
        }
        let stalled = self.await_slot(ctx);
        drms.advance_sop();
        let full = chain.begin(dcfg);
        ctx.barrier();
        if let Err(e) = crash_point(ctx, fs, CrashPoint::CkptEnter, false) {
            chain.abort();
            return Err(e.into());
        }
        let t_sop = ctx.now();

        let plan =
            match capture_delta(ctx, fs, chain, dcfg, drms, prefix, base_segment, arrays, full) {
                Ok(p) => p,
                Err(e) => {
                    chain.abort();
                    return Err(e);
                }
            };
        ctx.barrier();
        let t_snap = ctx.now();
        emit_delta_obs(ctx, prefix, &plan, t_sop, t_snap, full);
        if let Err(e) = crash_point(ctx, fs, CrashPoint::FlushArmed, false) {
            chain.abort();
            return Err(e.into());
        }

        let prefix_owned = prefix.to_string();
        let (flushed, d) = ctx.run_detached(|ctx| flush_delta(ctx, fs, &prefix_owned, &plan));
        if let Err(e) = flushed {
            chain.abort();
            if ctx.rank() == 0 && ctx.recorder().enabled() {
                ctx.recorder().counter_add_at(t_snap, 0, names::ASYNC_FLUSH_ABORTS, None, 1);
            }
            return Err(e);
        }
        chain.commit(prefix);
        let summary = DeltaSummary { full, stats: plan.stats, chain_depth: chain.depth() };
        if ctx.rank() == 0 && ctx.recorder().enabled() {
            let rec = ctx.recorder();
            rec.gauge_set_at(t_snap, 0, names::DELTA_CHAIN_DEPTH, 0, summary.chain_depth as f64);
            let total = plan.stats.dirty + plan.stats.clean;
            let ratio = if total == 0 { 0.0 } else { plan.stats.dirty as f64 / total as f64 };
            rec.gauge_set_at(t_snap, 0, names::DELTA_DIRTY_RATIO, 0, ratio);
        }
        let mut report =
            self.arm(ctx, prefix, &delta_snapshot_view(&plan), t_sop, t_snap, d, stalled, None);
        report.delta = Some(summary);
        Ok(report)
    }

    /// Books a completed detached flush on the flusher timeline and emits
    /// the pipeline's observability: the snapshot span covers the
    /// critical-path capture, the flush span covers the full lag window
    /// `[t_snap, finish]` (so span seconds equal the lag counter), both
    /// under [`Phase::Async`].
    #[allow(clippy::too_many_arguments)]
    fn arm(
        &mut self,
        ctx: &Ctx,
        prefix: &str,
        snap: &Snapshot,
        t_sop: f64,
        t_snap: f64,
        d: f64,
        stalled: f64,
        delta: Option<DeltaSummary>,
    ) -> AsyncReport {
        let start = self.free_at.max(t_snap);
        let finish = start + d;
        self.free_at = finish;
        self.flights.push_back(Flight {
            prefix: prefix.to_string(),
            sop: snap.sop,
            t_snap,
            start,
            finish,
            bytes: snap.total_bytes,
            stall: 0.0,
        });
        if ctx.rank() == 0 && ctx.recorder().enabled() {
            let rec = ctx.recorder();
            rec.span_start(t_sop, 0, Phase::Async, "snapshot");
            rec.span_end(t_snap, 0, Phase::Async, "snapshot");
            rec.counter_add_at(t_snap, 0, names::ASYNC_SNAPSHOTS, None, 1);
            rec.counter_add_at(t_snap, 0, names::ASYNC_SNAPSHOT_BYTES, None, snap.total_bytes);
            rec.gauge_set_at(t_snap, 0, names::ASYNC_INFLIGHT, 0, self.flights.len() as f64);
            rec.span_start(t_snap, 0, Phase::Async, "flush");
            rec.span_end(finish, 0, Phase::Async, "flush");
            rec.counter_add_at(finish, 0, names::ASYNC_FLUSHES, None, 1);
            rec.counter_add_at(finish, 0, names::ASYNC_FLUSH_LAG_US, None, micros(finish - t_snap));
            rec.event(t_snap, 0, Phase::Async, &format!("AsyncArmed {prefix}"));
        }
        AsyncReport {
            sop: snap.sop,
            snapshot_seconds: t_snap - t_sop,
            flush_seconds: d,
            lag: finish - t_snap,
            finish,
            bytes: snap.total_bytes,
            stalled,
            delta,
        }
    }
}

/// The background flush of a full snapshot: through the replica tier when
/// one is attached (replicate, seal, spill resident pieces to staging),
/// directly to staged PIOFS files otherwise; then the two-phase publish
/// tail every checkpoint path shares. Runs inside a detached virtual-time
/// region; the crash points it consults are the `Flush*` family, so chaos
/// campaigns can cut the flush at every stage without perturbing blocking
/// checkpoints.
fn flush_full(
    ctx: &mut Ctx,
    fs: &Piofs,
    tier: Option<&MemTier>,
    prefix: &str,
    snap: &Snapshot,
) -> Result<u64> {
    let staging = staging_prefix(prefix);
    if let Some(tier) = tier {
        let manifest = snap.manifest(Vec::new()).encode();
        let file_lens = snap.file_lens();
        let pieces = snap.tier_pieces(tier.piece_bytes());
        store_captured(ctx, tier, prefix, &snap.app, snap.sop, manifest, &file_lens, pieces)?;
        crash_point(ctx, fs, CrashPoint::FlushAfterSegment, true)?;
        spill_to_staging(ctx, fs, tier, prefix)?;
        ctx.barrier();
        crash_point(ctx, fs, CrashPoint::FlushAfterArray, true)?;
    } else {
        if ctx.rank() == 0 {
            let seg = snap.segment.as_ref().expect("rank 0 captured the segment");
            let path = segment_path(&staging);
            fs.create(&path);
            fs.write_at(ctx, &path, 0, seg);
        }
        ctx.barrier();
        crash_point(ctx, fs, CrashPoint::FlushAfterSegment, true)?;
        for a in &snap.arrays {
            let path = array_path(&staging, &a.name);
            if ctx.rank() == 0 {
                fs.create(&path);
            }
            ctx.barrier();
            let reqs: Vec<WriteReq> = a
                .pieces
                .iter()
                .map(|p| WriteReq { path: path.clone(), offset: p.offset, data: p.data.clone() })
                .collect();
            fs.collective_write(ctx, reqs);
            crash_point(ctx, fs, CrashPoint::FlushAfterArray, true)?;
        }
        ctx.barrier();
    }

    drms_core::stage_flight_rings(ctx, fs, &staging);
    if ctx.rank() == 0 {
        let manifest = snap.manifest(compute_integrity_staged(fs, prefix));
        let smp = staged_manifest_path(prefix);
        fs.create(&smp);
        fs.write_at(ctx, &smp, 0, &manifest.encode());
    }
    crash_point(ctx, fs, CrashPoint::FlushStagedManifest, true)?;
    if ctx.rank() == 0 {
        publish_data(fs, prefix);
    }
    crash_point(ctx, fs, CrashPoint::FlushMidPublish, true)?;
    if ctx.rank() == 0 {
        let committed = publish_manifest(fs, prefix);
        debug_assert!(committed, "staged manifest must exist at the commit point");
        if ctx.recorder().enabled() {
            ctx.recorder().counter_add_at(ctx.now(), 0, names::COMMITS, None, 1);
        }
        if ctx.recorder().flight_enabled() {
            ctx.recorder().event(ctx.now(), 0, Phase::Manifest, &format!("commit:{prefix}"));
        }
        if let Some(tier) = tier {
            tier.mark_spilled(prefix);
        }
    }
    ctx.barrier();
    crash_point(ctx, fs, CrashPoint::FlushCommitted, false)?;
    Ok(snap.total_bytes)
}

/// Everything the delta flush writes, staged at the SOP: the chunk diff
/// runs in the foreground so the digests describe the snapshot.
struct DeltaPlan {
    app: String,
    sop: u64,
    ntasks: usize,
    /// Encoded segment without the local-sections region (rank 0).
    segment: Option<Vec<u8>>,
    entries: Vec<ArrayEntry>,
    /// Pack bytes per array, in declaration order (rank 0).
    packs: Vec<(String, Vec<u8>)>,
    deltas: Vec<ArrayDelta>,
    stats: StageStats,
    total_bytes: u64,
}

/// A snapshot-shaped view of a delta plan, for shared flight bookkeeping.
fn delta_snapshot_view(plan: &DeltaPlan) -> Snapshot {
    Snapshot {
        app: plan.app.clone(),
        sop: plan.sop,
        ntasks: plan.ntasks,
        segment: None,
        arrays: Vec::new(),
        local_bytes: 0,
        total_bytes: plan.total_bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn capture_delta(
    ctx: &mut Ctx,
    fs: &Piofs,
    chain: &mut DeltaChain,
    dcfg: &DeltaConfig,
    drms: &Drms,
    prefix: &str,
    base_segment: &DataSegment,
    arrays: &[&dyn CheckpointArray],
    full: bool,
) -> Result<DeltaPlan> {
    let cfg = drms.cfg();
    let params = dcfg.params(fs);
    let mut segment = None;
    let mut captured = 0u64;
    if ctx.rank() == 0 {
        let bytes = base_segment.encode_with_region(None);
        captured += bytes.len() as u64;
        segment = Some(bytes);
    }
    let mut entries = Vec::with_capacity(arrays.len());
    let mut packs = Vec::new();
    let mut deltas = Vec::new();
    let mut stats = StageStats::default();
    for a in arrays {
        entries.push(ArrayEntry {
            name: a.array_name().to_string(),
            elem_code: a.elem_code(),
            domain: a.domain().clone(),
            order: a.order(),
        });
        let pieces = a.stream_pieces(ctx, 1)?;
        if ctx.rank() == 0 {
            let stream = assemble_pieces(pieces);
            captured += stream.len() as u64;
            let (table, pack, s) =
                chain.stage_array(fs, prefix, a.array_name(), &stream, params, full, dcfg.compress);
            stats.add(s);
            packs.push((a.array_name().to_string(), pack));
            deltas.push(table);
        }
    }
    // The diff pass reads the full stream on the representative task:
    // price the pass at memory bandwidth like any snapshot copy.
    ctx.charge(captured as f64 / ctx.cost().memcpy_bw);
    let (per_task, _) = ctx.exchange(captured);
    let total_bytes = per_task.iter().sum();
    Ok(DeltaPlan {
        app: cfg.app.clone(),
        sop: drms.sop(),
        ntasks: ctx.ntasks(),
        segment,
        entries,
        packs,
        deltas,
        stats,
        total_bytes,
    })
}

/// Emits the delta staging observability the blocking
/// [`drms_delta::delta_checkpoint`] emits, anchored at the foreground
/// staging window (the diff really does run there).
fn emit_delta_obs(ctx: &Ctx, prefix: &str, plan: &DeltaPlan, t_sop: f64, t_snap: f64, full: bool) {
    if ctx.rank() != 0 || !ctx.recorder().enabled() {
        return;
    }
    let rec = ctx.recorder();
    rec.span_start(t_sop, 0, Phase::Delta, prefix);
    rec.counter_add_at(t_snap, 0, names::DELTA_DIRTY_CHUNKS, None, plan.stats.dirty);
    rec.counter_add_at(t_snap, 0, names::DELTA_CLEAN_CHUNKS, None, plan.stats.clean);
    rec.counter_add_at(t_snap, 0, names::DELTA_DEDUP_HITS, None, plan.stats.dedup);
    rec.counter_add_at(t_snap, 0, names::DELTA_BYTES_WRITTEN, None, plan.stats.pack_bytes);
    rec.counter_add_at(t_snap, 0, names::DELTA_COMPRESSED_BYTES, None, plan.stats.saved);
    if full {
        rec.counter_add_at(t_snap, 0, names::DELTA_FULL_REWRITES, None, 1);
    }
    rec.span_end(t_snap, 0, Phase::Delta, prefix);
}

/// The background flush of a staged delta plan: segment, pack files, v3
/// manifest, then the shared two-phase publish tail — the same `Flush*`
/// crash-point sequence as the full path.
fn flush_delta(ctx: &mut Ctx, fs: &Piofs, prefix: &str, plan: &DeltaPlan) -> Result<u64> {
    let staging = staging_prefix(prefix);
    if ctx.rank() == 0 {
        let seg = plan.segment.as_ref().expect("rank 0 captured the segment");
        let path = segment_path(&staging);
        fs.create(&path);
        fs.write_at(ctx, &path, 0, seg);
    }
    ctx.barrier();
    crash_point(ctx, fs, CrashPoint::FlushAfterSegment, true)?;
    for i in 0..plan.entries.len() {
        if ctx.rank() == 0 {
            let (name, pack) = &plan.packs[i];
            let path = delta_path(&staging, name);
            fs.create(&path);
            if !pack.is_empty() {
                fs.write_at(ctx, &path, 0, pack);
            }
        }
        crash_point(ctx, fs, CrashPoint::FlushAfterArray, true)?;
    }
    ctx.barrier();
    drms_core::stage_flight_rings(ctx, fs, &staging);
    if ctx.rank() == 0 {
        let manifest = Manifest {
            app: plan.app.clone(),
            kind: CkptKind::DrmsDelta,
            ntasks: plan.ntasks,
            sop: plan.sop,
            arrays: plan.entries.clone(),
            integrity: compute_integrity_staged(fs, prefix),
            deltas: plan.deltas.clone(),
        };
        let smp = staged_manifest_path(prefix);
        fs.create(&smp);
        fs.write_at(ctx, &smp, 0, &manifest.encode());
    }
    crash_point(ctx, fs, CrashPoint::FlushStagedManifest, true)?;
    if ctx.rank() == 0 {
        publish_data(fs, prefix);
    }
    crash_point(ctx, fs, CrashPoint::FlushMidPublish, true)?;
    if ctx.rank() == 0 {
        let committed = publish_manifest(fs, prefix);
        debug_assert!(committed, "staged manifest must exist at the commit point");
        if ctx.recorder().enabled() {
            ctx.recorder().counter_add_at(ctx.now(), 0, names::COMMITS, None, 1);
        }
        if ctx.recorder().flight_enabled() {
            ctx.recorder().event(ctx.now(), 0, Phase::Manifest, &format!("commit:{prefix}"));
        }
    }
    ctx.barrier();
    crash_point(ctx, fs, CrashPoint::FlushCommitted, false)?;
    Ok(plan.stats.pack_bytes)
}
