//! Registry of monotonic counters and indexed gauges.

use parking_lot::Mutex;
use std::collections::BTreeMap;

/// Label set identifying one counter series: metric name, reporting rank,
/// and optional array name. Ordered so exports are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CounterKey {
    /// Metric name (see [`crate::names`]).
    pub name: &'static str,
    /// Reporting task rank.
    pub rank: usize,
    /// Array the sample belongs to, when applicable.
    pub array: Option<String>,
}

/// Number of latency buckets: log-spaced at factor √2 from 1 µs, covering
/// about 1 µs to 2.3e3 s before the overflow bucket.
const NBUCKETS: usize = 64;

/// Upper bound (inclusive) of bucket `k`: `1e-6 · 2^(k/2)` seconds.
/// Computed from `powi` and the exact `SQRT_2` constant only, so bounds are
/// bit-identical across platforms (no `powf`).
fn bucket_bound(k: usize) -> f64 {
    let half = (k / 2) as i32;
    let base = 1e-6 * 2f64.powi(half);
    if k.is_multiple_of(2) {
        base
    } else {
        base * std::f64::consts::SQRT_2
    }
}

/// Fixed-bucket latency histogram with deterministic quantiles.
///
/// Buckets are log-spaced at factor √2 starting at 1 µs; a sample lands in
/// the first bucket whose upper bound is ≥ the sample (the last bucket
/// catches overflow). Quantiles report the upper bound of the bucket where
/// the cumulative count crosses the quantile point, clamped to the exact
/// observed maximum — a pure function of the recorded samples, independent
/// of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { counts: vec![0; NBUCKETS], count: 0, sum: 0.0, max: 0.0 }
    }
}

impl Histogram {
    /// Records one sample (negative samples clamp to zero).
    pub fn record(&mut self, value: f64) {
        let v = value.max(0.0);
        let idx = (0..NBUCKETS - 1).find(|&k| v <= bucket_bound(k)).unwrap_or(NBUCKETS - 1);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded samples (seconds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact maximum recorded sample (seconds); 0 when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Deterministic quantile estimate for `q` in `[0, 1]`: the upper bound
    /// of the bucket where the cumulative count reaches `ceil(q·count)`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                // The overflow bucket has no meaningful upper bound; report
                // the exact maximum instead.
                if k == NBUCKETS - 1 {
                    return self.max;
                }
                return bucket_bound(k).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`Histogram::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<CounterKey, u64>,
    gauges: BTreeMap<(&'static str, usize), f64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Thread-safe registry of monotonic counters (labelled by rank and
/// optional array name) and indexed gauges. One lock covers both maps;
/// instrumentation holds it only for a map update.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a counter series, creating it at zero first.
    pub fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {
        let key = CounterKey { name, rank, array: array.map(str::to_owned) };
        *self.inner.lock().counters.entry(key).or_insert(0) += delta;
    }

    /// Sum of a counter over all ranks and array labels.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.inner.lock().counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| *v).sum()
    }

    /// Every counter series, sorted by key.
    pub fn counters(&self) -> Vec<(CounterKey, u64)> {
        self.inner.lock().counters.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Sets gauge `name[index]`.
    pub fn gauge_set(&self, name: &'static str, index: usize, value: f64) {
        self.inner.lock().gauges.insert((name, index), value);
    }

    /// Reads gauge `name[index]`, if ever set.
    pub fn gauge(&self, name: &str, index: usize) -> Option<f64> {
        self.inner
            .lock()
            .gauges
            .iter()
            .find(|((n, i), _)| *n == name && *i == index)
            .map(|(_, v)| *v)
    }

    /// Every gauge, sorted by `(name, index)`.
    pub fn gauges(&self) -> Vec<((&'static str, usize), f64)> {
        self.inner.lock().gauges.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Records one latency sample (seconds) into histogram `name`.
    pub fn histogram_record(&self, name: &'static str, value: f64) {
        self.inner.lock().histograms.entry(name).or_default().record(value);
    }

    /// Snapshot of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().histograms.iter().find(|(n, _)| **n == name).map(|(_, h)| h.clone())
    }

    /// Every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, Histogram)> {
        self.inner.lock().histograms.iter().map(|(n, h)| (*n, h.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_across_ranks_and_labels() {
        let m = MetricsRegistry::new();
        m.counter_add(0, "stream.bytes", Some("u"), 100);
        m.counter_add(1, "stream.bytes", Some("u"), 50);
        m.counter_add(0, "stream.bytes", Some("v"), 7);
        m.counter_add(0, "stream.bytes", None, 1);
        m.counter_add(0, "other", None, 999);
        assert_eq!(m.counter_total("stream.bytes"), 158);
        assert_eq!(m.counter_total("other"), 999);
        assert_eq!(m.counter_total("missing"), 0);
        let series = m.counters();
        assert_eq!(series.len(), 5);
        // Sorted deterministically: by name, then rank, then array.
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn counter_is_monotonic_per_series() {
        let m = MetricsRegistry::new();
        m.counter_add(2, "msg.messages_sent", None, 1);
        m.counter_add(2, "msg.messages_sent", None, 1);
        m.counter_add(2, "msg.messages_sent", None, 3);
        assert_eq!(m.counter_total("msg.messages_sent"), 5);
    }

    #[test]
    fn histogram_buckets_are_log_spaced_and_quantiles_deterministic() {
        // Bounds grow by exactly √2 per bucket (up to float rounding).
        for k in 1..NBUCKETS {
            let ratio = bucket_bound(k) / bucket_bound(k - 1);
            assert!((ratio - std::f64::consts::SQRT_2).abs() < 1e-12, "k={k} ratio={ratio}");
        }
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        for v in [0.001, 0.002, 0.004, 0.100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 0.107).abs() < 1e-12);
        assert_eq!(h.max(), 0.100);
        // Quantiles never exceed the exact max, and p99 lands at it.
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!(h.p99() <= h.max());
        // Order independence: the same samples reversed give identical state.
        let mut r = Histogram::default();
        for v in [0.100, 0.004, 0.002, 0.001] {
            r.record(v);
        }
        assert_eq!(h, r);
    }

    #[test]
    fn histogram_overflow_and_negative_samples() {
        let mut h = Histogram::default();
        h.record(-1.0); // clamps to zero, lands in the first bucket
        h.record(1e9); // beyond the last bound: overflow bucket
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1e9);
        assert_eq!(h.quantile(1.0), 1e9);
        assert_eq!(h.quantile(0.0), bucket_bound(0).min(1e9));
    }

    #[test]
    fn registry_histograms_aggregate_by_name() {
        let m = MetricsRegistry::new();
        assert!(m.histogram("io_phase").is_none());
        m.histogram_record("io_phase", 0.5);
        m.histogram_record("io_phase", 1.5);
        m.histogram_record("stream_wave", 0.25);
        let h = m.histogram("io_phase").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 1.5);
        let all = m.histograms();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "io_phase");
        assert_eq!(all[1].0, "stream_wave");
    }

    #[test]
    fn gauges_overwrite_by_index() {
        let m = MetricsRegistry::new();
        m.gauge_set("piofs.server_busy", 0, 1.0);
        m.gauge_set("piofs.server_busy", 1, 2.0);
        m.gauge_set("piofs.server_busy", 0, 3.5);
        assert_eq!(m.gauge("piofs.server_busy", 0), Some(3.5));
        assert_eq!(m.gauge("piofs.server_busy", 1), Some(2.0));
        assert_eq!(m.gauge("piofs.server_busy", 9), None);
        assert_eq!(m.gauges().len(), 2);
    }
}
