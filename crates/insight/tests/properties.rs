//! Property tests for the causal analysis invariants:
//!
//! * the critical path tiles the operation window exactly — its length
//!   equals the wall time (so it can never exceed it) and is at least
//!   the duration of the longest single span;
//! * the analysis is a pure function of the recorded trace: feeding the
//!   same events in different interleavings (as racing ranks would)
//!   renders byte-identical reports.

use drms_insight::{stitch, Analysis, IncarnationInput, StitchOptions};
use drms_obs::{EventKind, Phase, Recorder, TraceEvent, TraceRecorder};
use proptest::prelude::*;

/// One generated span: rank, phase pick, name pick, start and duration
/// in microsecond-ish integer units (mapped to seconds).
#[derive(Debug, Clone)]
struct GenSpan {
    rank: usize,
    phase: Phase,
    name: &'static str,
    start: f64,
    dur: f64,
}

const PHASES: [Phase; 5] =
    [Phase::Segment, Phase::Arrays, Phase::StreamWave, Phase::IoPhase, Phase::Redistribute];
const NAMES: [&str; 4] = ["a", "b", "write", "collective"];

fn arb_span(nranks: usize) -> impl Strategy<Value = GenSpan> {
    (0usize..nranks, 0usize..PHASES.len(), 0usize..NAMES.len(), 0u32..1000, 1u32..500).prop_map(
        |(rank, p, n, start, dur)| GenSpan {
            rank,
            phase: PHASES[p],
            name: NAMES[n],
            start: start as f64 * 1e-3,
            dur: dur as f64 * 1e-3,
        },
    )
}

/// One recorder call in some rank's program order.
enum Call {
    Begin(f64, usize, Phase, &'static str),
    End(f64, usize, Phase, &'static str),
    Send { t: f64, src: usize, dst: usize, corr: u64 },
    Recv { t: f64, src: usize, dst: usize, corr: u64 },
    Server(usize, f64, f64),
}

/// Replays the generated spans (plus some messages and server intervals)
/// into a recorder under a chosen cross-rank schedule. Each rank's own
/// calls keep their program order, and a receive blocks until its send
/// has executed — exactly the orderings a real threaded run can produce;
/// only the interleaving across ranks varies.
fn record(spans: &[GenSpan], nranks: usize, reversed_schedule: bool) -> TraceRecorder {
    let mut queues: Vec<std::collections::VecDeque<Call>> =
        (0..nranks).map(|_| std::collections::VecDeque::new()).collect();
    for (i, s) in spans.iter().enumerate() {
        let (b, e) = (s.start, s.start + s.dur);
        queues[s.rank].push_back(Call::Begin(b, s.rank, s.phase, s.name));
        if i % 3 == 0 {
            let (src, dst, corr) = (s.rank, (s.rank + 1) % nranks, i as u64);
            queues[src].push_back(Call::Send { t: b, src, dst, corr });
            queues[dst].push_back(Call::Recv { t: e, src, dst, corr });
        }
        if i % 4 == 0 {
            queues[s.rank].push_back(Call::Server(i % 3, b, e));
        }
        queues[s.rank].push_back(Call::End(e, s.rank, s.phase, s.name));
    }

    let rec = TraceRecorder::new();
    let mut sent: std::collections::HashSet<u64> = std::collections::HashSet::new();
    let order: Vec<usize> =
        if reversed_schedule { (0..nranks).rev().collect() } else { (0..nranks).collect() };
    while queues.iter().any(|q| !q.is_empty()) {
        for &rank in &order {
            // A receive waiting on a message not yet sent blocks its rank
            // for this round, like a real blocked receiver.
            if let Some(Call::Recv { corr, .. }) = queues[rank].front() {
                if !sent.contains(corr) {
                    continue;
                }
            }
            match queues[rank].pop_front() {
                Some(Call::Begin(t, r, p, n)) => rec.span_start(t, r, p, n),
                Some(Call::End(t, r, p, n)) => rec.span_end(t, r, p, n),
                Some(Call::Send { t, src, dst, corr }) => {
                    rec.msg_sent(t, src, dst, 7, corr, 64);
                    sent.insert(corr);
                }
                Some(Call::Recv { t, src, dst, corr }) => rec.msg_received(t, src, dst, 7, corr),
                Some(Call::Server(server, b, e)) => rec.server_interval(server, "collective", b, e),
                None => {}
            }
        }
    }
    rec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn critical_path_length_bounded_by_wall_and_longest_span(
        nranks in 1usize..5,
        spans in proptest::collection::vec(arb_span(4), 1..40),
    ) {
        let spans: Vec<GenSpan> =
            spans.into_iter().map(|mut s| { s.rank %= nranks; s }).collect();
        let rec = record(&spans, nranks, false);
        let a = Analysis::from_recorder(&rec);

        let wall = a.wall();
        let eps = 1e-9 * wall.max(1.0);
        // Length == wall by construction, so it can never exceed it...
        prop_assert!((a.critical.length() - wall).abs() <= eps,
            "length {} != wall {}", a.critical.length(), wall);
        // ...and every span fits inside the window, so the longest single
        // span bounds it from below.
        let longest = a.spans.iter().map(|s| s.duration()).fold(0.0, f64::max);
        prop_assert!(a.critical.length() + eps >= longest,
            "length {} < longest span {}", a.critical.length(), longest);

        // Segments tile the window contiguously.
        if let (Some(first), Some(last)) = (a.critical.segments.first(), a.critical.segments.last()) {
            prop_assert_eq!(first.start, a.critical.t0);
            prop_assert_eq!(last.end, a.critical.t1);
        }
        for w in a.critical.segments.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }

        // Per-phase attribution sums to the wall time.
        let total: f64 = a.critical.by_phase().iter().map(|(_, t)| t).sum();
        prop_assert!((total - wall).abs() <= eps);
    }

    #[test]
    fn analysis_is_byte_identical_across_interleavings(
        nranks in 1usize..5,
        spans in proptest::collection::vec(arb_span(4), 1..40),
    ) {
        let spans: Vec<GenSpan> =
            spans.into_iter().map(|mut s| { s.rank %= nranks; s }).collect();
        let forward = Analysis::from_recorder(&record(&spans, nranks, false)).render();
        let backward = Analysis::from_recorder(&record(&spans, nranks, true)).render();
        prop_assert_eq!(forward, backward);
    }

    /// Stitch ordering invariant: for arbitrary incarnation event shapes,
    /// consecutive segments abut bit-exactly (`start == prev.end +
    /// detect`), starts and ends are monotone, the wall clock is the last
    /// end, and no event falls outside its incarnation's extent.
    #[test]
    fn stitch_segments_abut_exactly(
        detection_us in 0u64..2_000_000,
        shapes_us in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000_000, 0..16), 1..8),
    ) {
        let detection = detection_us as f64 * 1e-6;
        let shapes: Vec<Vec<f64>> = shapes_us
            .iter()
            .map(|v| v.iter().map(|&us| us as f64 * 1e-6).collect())
            .collect();
        let ev = |t: f64| TraceEvent {
            t,
            rank: 0,
            phase: Phase::Arrays,
            name: "e".to_string(),
            kind: EventKind::Instant,
            corr: None,
        };
        let inputs: Vec<IncarnationInput> = shapes
            .iter()
            .enumerate()
            .map(|(k, times)| {
                let mut times = times.clone();
                times.sort_by(f64::total_cmp);
                IncarnationInput {
                    incarnation: k as u64,
                    events: times.iter().map(|&t| ev(t)).collect(),
                    killed: k + 1 < shapes.len(),
                    restarted: k > 0,
                }
            })
            .collect();
        let tl = stitch(&inputs, &StitchOptions { detection_latency: detection });
        prop_assert_eq!(tl.segments.len(), inputs.len());
        prop_assert_eq!(tl.events.len(), shapes.iter().map(Vec::len).sum::<usize>());
        prop_assert_eq!(tl.segments[0].detect, 0.0);
        prop_assert_eq!(tl.segments[0].start, 0.0);
        for k in 1..tl.segments.len() {
            prop_assert_eq!(
                tl.segments[k].start.to_bits(),
                (tl.segments[k - 1].end + tl.segments[k].detect).to_bits()
            );
            prop_assert!(tl.segments[k].start >= tl.segments[k - 1].start);
            prop_assert!(tl.segments[k].end >= tl.segments[k - 1].end);
        }
        prop_assert_eq!(tl.wall(), tl.segments.last().unwrap().end);
        for (seg, inp) in tl.segments.iter().zip(&inputs) {
            prop_assert!(seg.end >= seg.start);
            for e in tl.events_of(seg.incarnation) {
                prop_assert!(e.t >= seg.start && e.t <= seg.end);
            }
            prop_assert_eq!(seg.killed, inp.killed);
            prop_assert_eq!(seg.restarted, inp.restarted);
        }
    }
}
