//! Golden-value regression tests for the solver numerics.
//!
//! The solvers are bitwise deterministic by construction; these constants
//! pin the numerics down so that any accidental change to the kernel, the
//! initial conditions, the shadow exchange, or the field inventory shows up
//! as a loud failure — the same role the NPB verification values play for
//! the real benchmarks.

use drms_apps::{bt, lu, sp, AppSpec, AppVariant, Class, MiniApp};
use drms_core::EnableFlag;
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};

/// Sum over all fields' assigned elements (in sorted global order) after
/// 3 iterations of class T, captured from the reference implementation.
const GOLDEN: &[(&str, f64)] =
    &[("bt", 76011.24000000159), ("lu", 31735.208000000064), ("sp", 44070.384000002836)];

fn checksum(spec: &AppSpec, ntasks: usize) -> f64 {
    let fs = Piofs::new(PiofsConfig::test_tiny(8), 1);
    let spec = spec.clone();
    let out = run_spmd(ntasks, CostModel::default(), move |ctx| {
        let mut app =
            MiniApp::start(ctx, &fs, spec.clone(), AppVariant::Drms, EnableFlag::new(), None)
                .unwrap();
        for _ in 0..3 {
            app.step(ctx);
        }
        app.snapshot_assigned()
    })
    .unwrap();
    let mut all: Vec<_> = out.into_iter().flatten().collect();
    // Fixed global order so the floating-point sum is identical for every
    // task count.
    all.sort_by(|a, b| a.0.cmp(&b.0));
    all.iter().map(|(_, v)| v).sum()
}

#[test]
fn solver_numerics_match_golden_values() {
    for spec_fn in [bt as fn(Class) -> AppSpec, lu, sp] {
        let spec = spec_fn(Class::T);
        let golden = GOLDEN.iter().find(|(n, _)| *n == spec.name).unwrap().1;
        let got = checksum(&spec, 2);
        assert!(got == golden, "{}: checksum {got:?} drifted from golden {golden:?}", spec.name);
    }
}

#[test]
fn golden_checksums_identical_for_any_task_count() {
    for spec_fn in [bt as fn(Class) -> AppSpec, lu, sp] {
        let spec = spec_fn(Class::T);
        let reference = checksum(&spec, 1);
        for p in [2usize, 3, 4, 6] {
            let got = checksum(&spec, p);
            assert!(
                got == reference,
                "{} on {p} tasks: {got:?} vs 1-task {reference:?}",
                spec.name
            );
        }
    }
}

#[test]
fn golden_values_distinguish_the_applications() {
    // A regression that collapsed the apps into the same field inventory
    // would make these collide.
    let vals: Vec<f64> = GOLDEN.iter().map(|(_, v)| *v).collect();
    assert!(vals[0] != vals[1] && vals[1] != vals[2] && vals[0] != vals[2]);
}
