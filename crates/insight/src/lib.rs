//! # drms-insight — causal analysis of DRMS traces
//!
//! Consumes a finished [`drms_obs::TraceRecorder`] session and derives,
//! deterministically:
//!
//! * a **span DAG**: `Begin`/`End` events paired into closed spans
//!   ([`spans::build_spans`]), parented by same-rank containment, with
//!   cross-task causal edges from the message layer's correlation ids
//!   (send → recv), PIOFS phase → server-busy intervals, and JSA
//!   incarnation links on control events;
//! * the **critical path** of the traced operation
//!   ([`critical::critical_path`]): every instant of the operation window
//!   attributed to the deepest covering rank-0 span (or synthetic
//!   idle/sync time), refined with the straggling task of each stream
//!   wave and the gating PIOFS server of each I/O segment — segment
//!   durations sum to the wall time by construction;
//! * **straggler detection** per stream wave ([`straggler::stragglers`])
//!   and a per-server utilization/Gantt report ([`servers::server_report`]).
//!
//! All outputs are deterministic for a given trace: inputs are the
//! recorder's sorted snapshots, every grouping is explicitly ordered, and
//! [`Analysis::render`] is byte-identical across runs of the same seed.

#![warn(missing_docs)]

pub mod critical;
pub mod recovery;
pub mod servers;
pub mod spans;
pub mod stitch;
pub mod straggler;

use std::fmt::Write as _;

use drms_obs::{EventKind, MsgRecord, Phase, TraceEvent, TraceRecorder};

pub use critical::{CriticalPath, Segment};
pub use recovery::{IncarnationCost, RecoveryReport};
pub use servers::{ServerReport, ServerRow};
pub use spans::Span;
pub use stitch::{stitch, IncarnationInput, StitchOptions, StitchSegment, StitchedTimeline};
pub use straggler::StragglerRow;

/// A cross-task causal edge: one point-to-point message, resolved to the
/// deepest span enclosing each endpoint (when the endpoint falls inside
/// a span).
#[derive(Debug, Clone, PartialEq)]
pub struct MsgEdge {
    /// Correlation id shared by both endpoints.
    pub corr: u64,
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u64,
    /// Sender completion time.
    pub send_t: f64,
    /// Receiver delivery time.
    pub recv_t: f64,
    /// Deepest span on `src` containing `send_t`.
    pub from_span: Option<usize>,
    /// Deepest span on `dst` containing `recv_t`.
    pub to_span: Option<usize>,
}

/// A JSA incarnation link: a control-plane event carrying an incarnation
/// number as its correlation id.
#[derive(Debug, Clone, PartialEq)]
pub struct IncarnationLink {
    /// Incarnation number.
    pub incarnation: u64,
    /// The control event's rendered description.
    pub event: String,
}

/// The full causal analysis of one traced operation.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Closed spans, deterministically ordered and parented.
    pub spans: Vec<Span>,
    /// The operation's critical path.
    pub critical: CriticalPath,
    /// Per-wave straggler table.
    pub stragglers: Vec<StragglerRow>,
    /// Per-server utilization report.
    pub servers: ServerReport,
    /// Paired message edges (send → recv).
    pub msg_edges: Vec<MsgEdge>,
    /// Messages sent but never received within the trace.
    pub unpaired_msgs: usize,
    /// JSA incarnation links found on control events.
    pub incarnations: Vec<IncarnationLink>,
}

impl Analysis {
    /// Analyzes a finished recorder session.
    pub fn from_recorder(rec: &TraceRecorder) -> Analysis {
        Analysis::from_parts(&rec.events(), &rec.msg_records(), &rec.server_intervals())
    }

    /// Analyzes raw snapshots: `events` must be time-sorted and `msgs` /
    /// `server_intervals` deterministically sorted, as the
    /// [`TraceRecorder`] accessors guarantee.
    pub fn from_parts(
        events: &[TraceEvent],
        msgs: &[MsgRecord],
        server_intervals: &[drms_obs::ServerInterval],
    ) -> Analysis {
        let spans = spans::build_spans(events);
        let critical = critical::critical_path(&spans, server_intervals);
        let stragglers = straggler::stragglers(&spans);
        let servers = servers::server_report(server_intervals);

        let mut msg_edges = Vec::new();
        let mut unpaired = 0usize;
        for m in msgs {
            match m.recv_t {
                Some(recv_t) => msg_edges.push(MsgEdge {
                    corr: m.corr,
                    src: m.src,
                    dst: m.dst,
                    bytes: m.bytes,
                    send_t: m.send_t,
                    recv_t,
                    from_span: spans::deepest_at(&spans, m.src, m.send_t).map(|s| s.id),
                    to_span: spans::deepest_at(&spans, m.dst, recv_t).map(|s| s.id),
                }),
                None => unpaired += 1,
            }
        }

        let incarnations = events
            .iter()
            .filter(|e| e.phase == Phase::Control && e.kind == EventKind::Instant)
            .filter_map(|e| {
                e.corr.map(|c| IncarnationLink { incarnation: c, event: e.name.clone() })
            })
            .collect();

        Analysis {
            spans,
            critical,
            stragglers,
            servers,
            msg_edges,
            unpaired_msgs: unpaired,
            incarnations,
        }
    }

    /// Operation wall time (the critical-path window).
    pub fn wall(&self) -> f64 {
        self.critical.wall()
    }

    /// Deterministic plain-text report: window and span counts, the
    /// critical path with per-segment bottlenecks, per-phase attribution,
    /// the top stragglers, and server utilization. Byte-identical across
    /// runs of the same traced seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let w = self.wall();
        writeln!(out, "== drms-insight causal analysis ==").unwrap();
        writeln!(
            out,
            "window [{:.6}, {:.6}] s  wall {:.6} s  spans {}  msg edges {} ({} unpaired)  incarnation links {}",
            self.critical.t0,
            self.critical.t1,
            w,
            self.spans.len(),
            self.msg_edges.len(),
            self.unpaired_msgs,
            self.incarnations.len(),
        )
        .unwrap();

        writeln!(out, "\n-- critical path: {} segments --", self.critical.segments.len()).unwrap();
        writeln!(
            out,
            "  {:>10} {:>10} {:>10}  {:<12} {:<24} bottleneck",
            "start", "end", "dur", "phase", "name"
        )
        .unwrap();
        for seg in &self.critical.segments {
            let bottleneck = match (seg.task, seg.server) {
                (Some(t), _) => format!("task {t}"),
                (None, Some(s)) => format!("server {s}"),
                (None, None) => "-".to_owned(),
            };
            writeln!(
                out,
                "  {:>10.6} {:>10.6} {:>10.6}  {:<12} {:<24} {}",
                seg.start,
                seg.end,
                seg.duration(),
                seg.phase_label(),
                seg.name,
                bottleneck
            )
            .unwrap();
        }

        writeln!(out, "\n-- attribution by phase --").unwrap();
        for (label, secs) in self.critical.by_phase() {
            let pct = if w > 0.0 { 100.0 * secs / w } else { 0.0 };
            writeln!(out, "  {label:<12} {secs:>10.6} s  {pct:>5.1}%").unwrap();
        }

        let mut by_gap: Vec<&StragglerRow> = self.stragglers.iter().collect();
        by_gap.sort_by(|a, b| {
            b.gap().total_cmp(&a.gap()).then(a.name.cmp(&b.name)).then(a.wave.cmp(&b.wave))
        });
        let top = by_gap.len().min(10);
        writeln!(
            out,
            "\n-- stream-wave stragglers: top {top} of {} (gap = slowest - median) --",
            by_gap.len()
        )
        .unwrap();
        writeln!(
            out,
            "  {:<10} {:>4} {:>5}  {:>8} {:>10} {:>10} {:>10}",
            "array", "wave", "ranks", "slowest", "max", "median", "gap"
        )
        .unwrap();
        for row in &by_gap[..top] {
            writeln!(
                out,
                "  {:<10} {:>4} {:>5}  {:>8} {:>10.6} {:>10.6} {:>10.6}",
                row.name,
                row.wave,
                row.ranks,
                row.slowest_rank,
                row.max,
                row.median,
                row.gap()
            )
            .unwrap();
        }

        writeln!(out, "\n-- PIOFS server utilization --").unwrap();
        writeln!(
            out,
            "  {:>6} {:>10} {:>6}  {:>9} {:>10}",
            "server", "busy", "util", "intervals", "finish"
        )
        .unwrap();
        for row in &self.servers.rows {
            writeln!(
                out,
                "  {:>6} {:>10.6} {:>5.1}%  {:>9} {:>10.6}",
                row.server,
                row.busy,
                100.0 * row.utilization(w),
                row.intervals,
                row.last
            )
            .unwrap();
        }
        match self.servers.slowest() {
            Some(s) => {
                writeln!(out, "  slowest server: {s}  (imbalance {:.3})", self.servers.imbalance())
                    .unwrap()
            }
            None => writeln!(out, "  no server activity recorded").unwrap(),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::Recorder;

    fn sample_recorder() -> TraceRecorder {
        let r = TraceRecorder::new();
        r.span_start(0.0, 0, Phase::Segment, "write");
        r.span_start(0.0, 1, Phase::StreamWave, "a");
        r.msg_sent(0.5, 1, 0, 7, 99, 4096);
        r.msg_received(0.75, 1, 0, 7, 99);
        r.msg_sent(0.8, 0, 1, 7, 100, 16);
        r.span_end(1.0, 1, Phase::StreamWave, "a");
        r.span_end(2.0, 0, Phase::Segment, "write");
        r.server_interval(0, "collective", 0.0, 1.5);
        r.server_interval(1, "collective", 0.0, 0.5);
        r.event_with_corr(0.0, 0, Phase::Control, "job bt started", 0);
        r
    }

    #[test]
    fn analysis_links_messages_and_incarnations() {
        let a = Analysis::from_recorder(&sample_recorder());
        assert_eq!(a.spans.len(), 2);
        assert_eq!(a.msg_edges.len(), 1);
        assert_eq!(a.unpaired_msgs, 1);
        let edge = &a.msg_edges[0];
        assert_eq!((edge.src, edge.dst, edge.corr), (1, 0, 99));
        // Send happened inside rank 1's stream wave, delivery inside
        // rank 0's segment span.
        let from = edge.from_span.map(|id| a.spans[id].phase);
        let to = edge.to_span.map(|id| a.spans[id].phase);
        assert_eq!(from, Some(Phase::StreamWave));
        assert_eq!(to, Some(Phase::Segment));
        assert_eq!(a.incarnations.len(), 1);
        assert_eq!(a.incarnations[0].incarnation, 0);
        assert_eq!(a.servers.slowest(), Some(0));
    }

    #[test]
    fn critical_path_tiles_the_window() {
        let a = Analysis::from_recorder(&sample_recorder());
        assert!((a.critical.length() - a.wall()).abs() < 1e-12);
        assert!(a.wall() >= a.spans.iter().map(Span::duration).fold(0.0, f64::max));
    }

    #[test]
    fn render_is_deterministic_and_complete() {
        let rec = sample_recorder();
        let one = Analysis::from_recorder(&rec).render();
        let two = Analysis::from_recorder(&rec).render();
        assert_eq!(one, two);
        assert!(one.contains("critical path"));
        assert!(one.contains("attribution by phase"));
        assert!(one.contains("slowest server: 0"));
        assert!(one.contains("incarnation links 1"));
    }
}
