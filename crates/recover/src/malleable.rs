//! Online shrink and grow: malleable jobs without storage.
//!
//! The paper reconfigures task counts *through a checkpoint*: write on
//! `t1` tasks, restart on `t2`. The localized-recovery machinery makes the
//! storage round-trip unnecessary when the tasks themselves are still
//! alive: at an SOP, every array re-partitions across the new active set
//! through the live redistribution path ([`drms_darray::assign`]) — the
//! same online membership transition a recovery performs, minus the
//! restore. Shrink leaves the vacated tasks running with empty sections
//! (ready to be re-grown or to serve as replacements); grow re-activates
//! them and spreads the arrays back out. Zero checkpoint I/O either way.

use drms_core::{CheckpointArray, CoreError};
use drms_msg::Ctx;
use drms_obs::names;

use crate::epoch::{recovery_barrier, Membership};
use crate::Result;

/// Collective: re-partitions every array onto `active` tasks and stamps
/// the membership transition with a fresh epoch. The active list must be
/// non-empty, strictly increasing, and within the region.
pub fn resize(
    ctx: &mut Ctx,
    prev: &Membership,
    active: &[usize],
    arrays: &mut [&mut dyn CheckpointArray],
) -> Result<Membership> {
    if active.is_empty() {
        return Err(CoreError::ManifestMismatch("cannot resize to zero tasks".into()).into());
    }
    for a in arrays.iter_mut() {
        a.repartition(ctx, active)?;
    }
    // The epoch barrier doubles as the SOP synchronization: every task
    // observes the same transition. Nothing failed, so no nodes are
    // reported lost; survivorship is simply the new active set.
    let agreed = recovery_barrier(ctx, prev, &[]);
    let survivors: Vec<bool> = (0..ctx.ntasks()).map(|r| active.contains(&r)).collect();
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        ctx.recorder().counter_add_at(ctx.now(), 0, names::RECOVER_RESIZES, None, 1);
    }
    Ok(Membership { epoch: agreed.epoch, survivors })
}

/// Collective: shrinks the job to its first `n` tasks at an SOP. The
/// remaining tasks keep running with empty sections.
pub fn shrink(
    ctx: &mut Ctx,
    prev: &Membership,
    n: usize,
    arrays: &mut [&mut dyn CheckpointArray],
) -> Result<Membership> {
    let active: Vec<usize> = (0..n.min(ctx.ntasks())).collect();
    resize(ctx, prev, &active, arrays)
}

/// Collective: grows the job back to its first `n` tasks at an SOP,
/// re-activating previously vacated tasks.
pub fn grow(
    ctx: &mut Ctx,
    prev: &Membership,
    n: usize,
    arrays: &mut [&mut dyn CheckpointArray],
) -> Result<Membership> {
    shrink(ctx, prev, n, arrays)
}
