//! The bounded per-rank flight ring.

use std::collections::VecDeque;

use drms_obs::TraceEvent;

/// Bounded event buffer for one rank. Events are stamped with a per-rank
/// monotone capture sequence number as they arrive; when the ring is full
/// the oldest event is evicted first. Seals are *snapshots* (the ring is
/// not drained), so every seal carries the rank's full surviving recent
/// history and the newest recovered seal alone suffices to reconstruct it;
/// the capture sequence numbers let overlapping seals deduplicate exactly.
#[derive(Debug)]
pub struct FlightRing {
    buf: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    /// Next capture sequence number (== events captured so far).
    next_seq: u64,
    /// Events evicted oldest-first over the ring's lifetime.
    evicted: u64,
    /// Capture high-water mark covered by the last seal: events with
    /// `seq >= sealed_hwm` have never been included in any seal.
    sealed_hwm: u64,
    /// Seals taken from this ring so far.
    seal_seq: u64,
    /// `next_seq` at the previous seal (for per-seal capture deltas).
    last_seal_captured: u64,
    /// `evicted` at the previous seal (for per-seal eviction deltas).
    last_seal_evicted: u64,
}

/// Bookkeeping deltas returned by [`FlightRing::mark_sealed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealStats {
    /// Sequence number of the seal just taken (0-based).
    pub seal_seq: u64,
    /// Events captured since the previous seal.
    pub captured_delta: u64,
    /// Events evicted since the previous seal.
    pub evicted_delta: u64,
    /// Cumulative evictions over the ring's lifetime.
    pub evicted_total: u64,
}

impl FlightRing {
    /// An empty ring holding at most `capacity` events (clamped to ≥ 1).
    pub fn new(capacity: usize) -> FlightRing {
        FlightRing {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            evicted: 0,
            sealed_hwm: 0,
            seal_seq: 0,
            last_seal_captured: 0,
            last_seal_evicted: 0,
        }
    }

    /// Captures one event, evicting the oldest if the ring is full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back((self.next_seq, ev));
        self.next_seq += 1;
    }

    /// Buffered events, oldest first, each with its capture sequence number.
    pub fn contents(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.buf.iter()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events captured over the ring's lifetime.
    pub fn captured(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted oldest-first over the ring's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events captured after the last seal — the count that dies with the
    /// process if it is killed right now.
    pub fn unsealed(&self) -> u64 {
        self.next_seq - self.sealed_hwm
    }

    /// Records that a seal snapshot of the current contents was just taken,
    /// returning the seal's sequence number and the capture/eviction deltas
    /// since the previous seal. Call after encoding [`FlightRing::contents`].
    pub fn mark_sealed(&mut self) -> SealStats {
        let stats = SealStats {
            seal_seq: self.seal_seq,
            captured_delta: self.next_seq - self.last_seal_captured,
            evicted_delta: self.evicted - self.last_seal_evicted,
            evicted_total: self.evicted,
        };
        self.seal_seq += 1;
        self.sealed_hwm = self.next_seq;
        self.last_seal_captured = self.next_seq;
        self.last_seal_evicted = self.evicted;
        stats
    }

    /// Resets the ring for a new incarnation (a restarted process begins
    /// with empty memory and fresh sequence counters).
    pub fn reset(&mut self) {
        *self = FlightRing::new(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::{EventKind, Phase};

    fn ev(t: f64, name: &str) -> TraceEvent {
        TraceEvent {
            t,
            rank: 0,
            phase: Phase::Arrays,
            name: name.to_string(),
            kind: EventKind::Instant,
            corr: None,
        }
    }

    #[test]
    fn evicts_oldest_first_at_capacity() {
        let mut r = FlightRing::new(3);
        for i in 0..5 {
            r.push(ev(i as f64, &format!("e{i}")));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.captured(), 5);
        assert_eq!(r.evicted(), 2);
        let seqs: Vec<u64> = r.contents().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn seal_deltas_and_unsealed_tracking() {
        let mut r = FlightRing::new(8);
        r.push(ev(0.0, "a"));
        r.push(ev(1.0, "b"));
        let s0 = r.mark_sealed();
        assert_eq!((s0.seal_seq, s0.captured_delta, s0.evicted_delta), (0, 2, 0));
        assert_eq!(r.unsealed(), 0);
        r.push(ev(2.0, "c"));
        assert_eq!(r.unsealed(), 1);
        let s1 = r.mark_sealed();
        assert_eq!((s1.seal_seq, s1.captured_delta), (1, 1));
        // Snapshot semantics: contents survive the seal.
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn reset_clears_everything_but_keeps_capacity() {
        let mut r = FlightRing::new(2);
        r.push(ev(0.0, "a"));
        r.push(ev(1.0, "b"));
        r.push(ev(2.0, "c"));
        r.mark_sealed();
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.captured(), 0);
        assert_eq!(r.evicted(), 0);
        assert_eq!(r.capacity(), 2);
    }
}
