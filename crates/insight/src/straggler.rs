//! Straggler detection over checkpoint stream waves.
//!
//! Every rank traces one `StreamWave` span per wave of each streamed
//! array, so grouping the k-th occurrence per `(array, rank)` recovers
//! the per-wave task timings. A wave's straggler gap is the slowest
//! task's duration minus the median duration — persistent gaps mark a
//! task (or its route to the I/O servers) as the wave bottleneck.

use drms_obs::Phase;

use crate::critical::wave_index;
use crate::spans::Span;

/// Per-wave straggler statistics for one array.
#[derive(Debug, Clone, PartialEq)]
pub struct StragglerRow {
    /// Streamed array name.
    pub name: String,
    /// Wave index within the array's stream.
    pub wave: usize,
    /// Number of ranks that traced this wave.
    pub ranks: usize,
    /// Rank with the longest wave duration (ties to the lower rank).
    pub slowest_rank: usize,
    /// Longest task duration in the wave.
    pub max: f64,
    /// Median task duration in the wave.
    pub median: f64,
}

impl StragglerRow {
    /// Slowest-task gap over the median.
    pub fn gap(&self) -> f64 {
        self.max - self.median
    }

    /// Whether the gap exceeds `frac` of the median (straggler flag).
    pub fn is_straggler(&self, frac: f64) -> bool {
        self.gap() > frac * self.median && self.gap() > 0.0
    }
}

/// Builds the per-wave straggler table from the span table, sorted by
/// `(name, wave)`.
pub fn stragglers(spans: &[Span]) -> Vec<StragglerRow> {
    // (name, wave, rank, duration), deterministically ordered.
    let mut waves: Vec<(&str, usize, usize, f64)> = spans
        .iter()
        .filter(|s| s.phase == Phase::StreamWave)
        .map(|s| (s.name.as_str(), wave_index(spans, s), s.rank, s.duration()))
        .collect();
    waves.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut rows: Vec<StragglerRow> = Vec::new();
    let mut i = 0;
    while i < waves.len() {
        let (name, wave, ..) = waves[i];
        let mut durations: Vec<f64> = Vec::new();
        let mut slowest = (waves[i].2, f64::NEG_INFINITY);
        let mut j = i;
        while j < waves.len() && waves[j].0 == name && waves[j].1 == wave {
            let (_, _, rank, d) = waves[j];
            durations.push(d);
            if d > slowest.1 {
                slowest = (rank, d);
            }
            j += 1;
        }
        durations.sort_by(f64::total_cmp);
        let n = durations.len();
        let median = if n % 2 == 1 {
            durations[n / 2]
        } else {
            (durations[n / 2 - 1] + durations[n / 2]) / 2.0
        };
        rows.push(StragglerRow {
            name: name.to_owned(),
            wave,
            ranks: n,
            slowest_rank: slowest.0,
            max: slowest.1,
            median,
        });
        i = j;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave(id: usize, rank: usize, name: &str, start: f64, end: f64) -> Span {
        Span { id, rank, phase: Phase::StreamWave, name: name.to_owned(), start, end, parent: None }
    }

    #[test]
    fn per_wave_stats_identify_the_slowest_rank() {
        let spans = vec![
            // Wave 0: durations 1.0 / 1.0 / 3.0 (rank 2 straggles).
            wave(0, 0, "a", 0.0, 1.0),
            wave(1, 1, "a", 0.0, 1.0),
            wave(2, 2, "a", 0.0, 3.0),
            // Wave 1: all equal.
            wave(3, 0, "a", 3.0, 4.0),
            wave(4, 1, "a", 3.0, 4.0),
            wave(5, 2, "a", 3.0, 4.0),
        ];
        let rows = stragglers(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].wave, rows[0].slowest_rank, rows[0].ranks), (0, 2, 3));
        assert_eq!(rows[0].max, 3.0);
        assert_eq!(rows[0].median, 1.0);
        assert_eq!(rows[0].gap(), 2.0);
        assert!(rows[0].is_straggler(0.5));
        assert_eq!(rows[1].gap(), 0.0);
        assert!(!rows[1].is_straggler(0.5));
    }

    #[test]
    fn arrays_are_kept_separate_and_sorted() {
        let spans = vec![
            wave(0, 0, "b", 0.0, 2.0),
            wave(1, 1, "b", 0.0, 1.0),
            wave(2, 0, "a", 0.0, 1.0),
            wave(3, 1, "a", 0.0, 4.0),
        ];
        let rows = stragglers(&spans);
        assert_eq!(rows.len(), 2);
        assert_eq!((rows[0].name.as_str(), rows[0].slowest_rank), ("a", 1));
        assert_eq!((rows[1].name.as_str(), rows[1].slowest_rank), ("b", 0));
        // Even rank counts use the midpoint median.
        assert_eq!(rows[0].median, 2.5);
    }
}
