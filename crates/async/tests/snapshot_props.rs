//! Property tests for the asynchronous checkpoint pipeline, all driven
//! through the public API (checkpoint → drain → committed files):
//!
//! * COW isolation — whatever the application mutates after an SOP, the
//!   committed checkpoint holds the snapshot bytes, not the mutations;
//! * backpressure bound — the in-flight count never exceeds the budget,
//!   for any budget and any checkpoint cadence;
//! * drain totality — after `drain` every armed snapshot has committed:
//!   nothing stays in flight, every prefix is valid, nothing is lost.

use std::sync::{Arc, Mutex};

use drms_async::{AsyncCheckpointer, AsyncConfig};
use drms_core::manifest::array_path;
use drms_core::segment::DataSegment;
use drms_core::{checkpoint_is_valid, find_checkpoints, Drms, DrmsConfig, EnableFlag};
use drms_darray::{DistArray, Distribution};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};
use proptest::prelude::*;

const N: i64 = 512; // elements; 4096 stream bytes
const NTASKS: usize = 2;
const APP: &str = "aprop";

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(4), 5)
}

fn domain() -> Slice {
    Slice::boxed(&[(0, N - 1)])
}

/// The canonical stream of a state: elements little-endian in order.
fn stream_of(state: &[f64]) -> Vec<u8> {
    state.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// States on an integer lattice (the vendored proptest shim only
/// generates integer ranges).
fn state() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u8..4, N as usize..N as usize + 1)
        .prop_map(|raw| raw.into_iter().map(|v| v as f64 * 0.25).collect())
}

/// Runs `n` asynchronous checkpoints of successive states to prefixes
/// `ck/p0..` under `budget`, mutating the array between arming and the
/// next SOP, then drains. Returns rank 0's in-flight count observed
/// after each arm.
fn run_pipeline(f: &Arc<Piofs>, states: &[Vec<f64>], budget: usize) -> Vec<usize> {
    let observed = Mutex::new(Vec::new());
    run_spmd(NTASKS, CostModel::default(), |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, f, DrmsConfig::new(APP), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut ck = AsyncCheckpointer::new(AsyncConfig { budget });
        for (i, state) in states.iter().enumerate() {
            u.fill_assigned(|p| state[p[0] as usize]);
            ck.checkpoint(ctx, f, &mut drms, &format!("ck/p{i}"), &DataSegment::new(), &[&u], None)
                .unwrap();
            if ctx.rank() == 0 {
                observed.lock().unwrap().push(ck.inflight());
            }
            // Scribble over the live array while the flush is (logically)
            // still in flight: the snapshot must not see this.
            u.fill_assigned(|p| -1.0 - p[0] as f64);
            ctx.charge(1e-4);
        }
        ck.drain(ctx);
        assert_eq!(ck.inflight(), 0, "drain left flights armed");
        assert!(ck.free_at() <= ctx.now() + 1e-12, "drain stopped short of the flusher horizon");
    })
    .unwrap();
    observed.into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// COW isolation: the committed checkpoint holds the bytes of the
    /// state at the SOP, bitwise, no matter what the application wrote
    /// into the live array after arming.
    #[test]
    fn snapshot_is_isolated_from_later_mutations(
        states in proptest::collection::vec(state(), 1..4),
        budget in 1usize..4,
    ) {
        let f = fs();
        run_pipeline(&f, &states, budget);
        for (i, state) in states.iter().enumerate() {
            let prefix = format!("ck/p{i}");
            prop_assert!(checkpoint_is_valid(&f, &prefix), "checkpoint {} invalid", i);
            let got = f.peek(&array_path(&prefix, "u")).expect("array file committed");
            prop_assert_eq!(&got, &stream_of(state), "checkpoint {} holds mutated bytes", i);
        }
    }

    /// Backpressure bound: right after arming — the in-flight high-water
    /// mark — the pipeline never holds more than `budget` snapshots.
    #[test]
    fn inflight_never_exceeds_budget(
        states in proptest::collection::vec(state(), 1..6),
        budget in 1usize..4,
    ) {
        let f = fs();
        let observed = run_pipeline(&f, &states, budget);
        prop_assert_eq!(observed.len(), states.len());
        for (i, inflight) in observed.iter().enumerate() {
            prop_assert!(
                *inflight <= budget,
                "after arm {}: {} in flight under budget {}", i, inflight, budget
            );
        }
    }

    /// Drain totality: every armed snapshot commits — the filesystem ends
    /// with exactly one valid checkpoint per SOP and no strays.
    #[test]
    fn drain_commits_every_armed_snapshot(
        states in proptest::collection::vec(state(), 1..6),
        budget in 1usize..4,
    ) {
        let f = fs();
        run_pipeline(&f, &states, budget);
        let found = find_checkpoints(&f, Some(APP));
        prop_assert_eq!(found.len(), states.len(), "commits vs SOPs");
        for i in 0..states.len() {
            let prefix = format!("ck/p{i}");
            prop_assert!(
                found.iter().any(|(p, _)| *p == prefix),
                "snapshot {} never committed", i
            );
        }
    }
}
