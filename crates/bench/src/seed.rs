//! The repo-wide fault-seed convention, in one place.
//!
//! Every fault campaign — the chaos, failure and storage-fault test
//! campaigns and the chaos/pulse bench binaries — pins its seeds in source
//! and accepts a `FAULT_SEED` override so a failing assertion reproduces
//! with one command. The environment lookup, the `--fault-seed` flag
//! spelling, and the repro-command formats all live here so the campaigns
//! cannot drift apart.

/// The environment variable every campaign honors.
pub const FAULT_SEED_VAR: &str = "FAULT_SEED";

/// Legacy spelling still honored by the failure campaign.
pub const LEGACY_FAULT_SEED_VAR: &str = "FAILURE_CAMPAIGN_SEED";

/// The command-line flag spelling used by bench binaries.
pub const FAULT_SEED_FLAG: &str = "--fault-seed";

/// The seed override from the environment (`FAULT_SEED`, falling back to
/// the legacy `FAILURE_CAMPAIGN_SEED`), if one parses.
pub fn fault_seed_env() -> Option<u64> {
    std::env::var(FAULT_SEED_VAR)
        .or_else(|_| std::env::var(LEGACY_FAULT_SEED_VAR))
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

/// The environment override, or `default` when none is set. Campaigns with
/// a pinned seed call this; campaigns sweeping many seeds use
/// [`fault_seed_env`] as a filter instead.
pub fn fault_seed_or(default: u64) -> u64 {
    fault_seed_env().unwrap_or(default)
}

/// The one-command repro for a seed-parametric test campaign:
/// `FAULT_SEED=<seed> cargo test --test <test> -- --nocapture`.
pub fn test_repro(test: &str, seed: u64) -> String {
    format!("{FAULT_SEED_VAR}={seed} cargo test --test {test} -- --nocapture")
}

/// The one-command repro for a bench binary:
/// `cargo run --release -p drms-bench --bin <bin> -- --fault-seed <seed>`.
pub fn bin_repro(bin: &str, seed: u64) -> String {
    format!("cargo run --release -p drms-bench --bin {bin} -- {FAULT_SEED_FLAG} {seed}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_commands_follow_the_convention() {
        assert_eq!(
            test_repro("chaos_campaign", 7),
            "FAULT_SEED=7 cargo test --test chaos_campaign -- --nocapture"
        );
        assert_eq!(
            bin_repro("pulse", 42),
            "cargo run --release -p drms-bench --bin pulse -- --fault-seed 42"
        );
    }
}
