//! Localized-recovery bench: survivor-driven section restore versus the
//! classical full-application restart, as a cost and determinism gate.
//!
//! ```text
//! cargo run --release -p drms-bench --bin recover -- [--fault-seed N] \
//!     [--json DIR] [--baseline PATH] [--tolerance 0.05] [--bless] \
//!     [--timeline-out PATH]
//! ```
//!
//! Four campaigns over the iterative checkpointing job, all at the same
//! `FAULT_SEED`, each with a [`Blackbox`] flight recorder riding the
//! recorder fan-out so the recovery cost lands in the attribution:
//!
//! 1. **Localized, memory tier** — checkpoints replicate into a memory
//!    tier; a node loss at the drill iteration recovers through replica
//!    fetches (`StreamSource::Replica`). The run must finish in a single
//!    incarnation with **zero PIOFS restore bytes**, and its attribution
//!    bills only the `localized` bucket (no detect, no restore).
//! 2. **Localized, PIOFS sections** — same drill against a durable
//!    checkpoint: only the lost ranks' sections stream back
//!    (`StreamSource::PiofsFull`), strictly less than the full state.
//! 3. **Full restart** — the classical path: a processor kill at the same
//!    iteration, a verified full restart from the newest checkpoint, the
//!    whole state re-read and the same iterations recomputed.
//! 4. **Shrink/grow** — the same machinery resizes a malleable job online:
//!    two membership transitions, bytes preserved bitwise, and **zero
//!    storage traffic** (no `piofs.*` or `stream.*` metric is emitted).
//!
//! The headline gate: at the same seed, both localized variants must carry
//! a **strictly lower recovery cost** (restore + recompute share of the
//! attributed wall clock) than the full restart. Campaigns 1 and 3 run
//! twice; checksums and rendered attributions must be bit-identical (the
//! per-`FAULT_SEED` determinism contract).
//!
//! With `--json DIR` the headline numbers land in `BENCH_recover.json`;
//! `--baseline PATH` compares against a committed baseline within
//! `--tolerance` (relative); `--bless` rewrites it. `--timeline-out`
//! writes the recovery-timeline artifact CI uploads: all three attribution
//! tables plus the stitched event stream of the full-restart campaign.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drms_bench::gate::{baseline_gate, run_gated};
use drms_bench::json::BenchResult;
use drms_blackbox::{Blackbox, BlackboxConfig};
use drms_chaos::{ChaosCtl, FaultPlan};
use drms_core::segment::DataSegment;
use drms_core::{CoreError, Drms, DrmsConfig, Start};
use drms_darray::{DistArray, Distribution};
use drms_insight::{stitch, IncarnationInput, RecoveryReport, StitchOptions, StitchedTimeline};
use drms_memtier::{store_checkpoint, MemTier};
use drms_msg::{run_spmd_traced, CostModel};
use drms_obs::{names, FanoutRecorder, Recorder, TraceRecorder};
use drms_piofs::{Piofs, PiofsConfig};
use drms_recover::{grow, recover, retain, shrink, Membership, RecoverReport, StreamSource};
use drms_rtenv::{
    EventLog, JobOutcome, JobSpec, Jsa, JsaPolicy, ProcessorState, ResourceCoordinator, RunSummary,
};
use drms_slices::{Order, Slice};
use parking_lot::Mutex;

const NITER: i64 = 12;
const CKPT_EVERY: i64 = 3;
const NPROCS: usize = 8;
const APP: &str = "recbench";
const DEFAULT_SEED: u64 = 42;
/// The iteration whose top-of-loop suffers the loss (both drills).
const RECOVER_AT: i64 = 5;
/// The node (== rank under identity placement) whose sections are lost.
const VICTIM: usize = 2;

struct Opts {
    seed: u64,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    bless: bool,
    timeline_out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        seed: drms_bench::seed::fault_seed_or(DEFAULT_SEED),
        json: None,
        baseline: None,
        tolerance: 0.05,
        bless: false,
        timeline_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--fault-seed" => {
                let v = value("--fault-seed");
                opts.seed = v.parse().unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
            }
            "--json" => opts.json = Some(PathBuf::from(value("--json"))),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline"))),
            "--tolerance" => {
                let v = value("--tolerance");
                opts.tolerance = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage(&format!("bad tolerance {v:?}")));
            }
            "--bless" => opts.bless = true,
            "--timeline-out" => opts.timeline_out = Some(PathBuf::from(value("--timeline-out"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: recover [--fault-seed N] [--json DIR] [--baseline PATH]\n\
         \x20              [--tolerance REL] [--bless] [--timeline-out PATH]"
    );
    std::process::exit(2);
}

fn domain() -> Slice {
    Slice::boxed(&[(1, 18), (1, 14)])
}

/// Checksum of the final state of an uninterrupted run.
fn reference() -> f64 {
    let mut s = 0.0;
    domain().points(Order::ColumnMajor).for_each(|p| {
        s += (p[0] * 13 + p[1] * 3) as f64 + NITER as f64 * 1.5;
    });
    s
}

/// How a campaign survives the loss at `RECOVER_AT`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Localized recovery served by memory-tier replicas.
    Tier,
    /// Localized recovery served by manifest-ranged PIOFS section reads.
    Piofs,
    /// The classical path: a processor kill and a verified full restart.
    Full,
}

/// One campaign run's observables, all deterministic per plan.
struct Run {
    checksum: f64,
    summary: RunSummary,
    rec: Arc<TraceRecorder>,
    bb: Arc<Blackbox>,
    /// Rank 0's protocol report for the localized drills.
    report: Option<RecoverReport>,
}

/// Runs the iterative checkpointing job with the loss drill selected by
/// `mode`, a flight recorder riding the recorder fan-out throughout. The
/// localized modes retain sections at each commit and recover in place at
/// `RECOVER_AT`; the full mode loses a processor there and pays the
/// classical kill → detect → restore → recompute sequence instead.
fn run_campaign(plan: FaultPlan, mode: Mode) -> Run {
    let rec = Arc::new(TraceRecorder::default());
    // Detection latency scaled to the workload, as in the blackbox bench:
    // the job spans a few simulated milliseconds.
    let bb = Arc::new(Blackbox::new(
        BlackboxConfig { detection_latency: 1e-4, ..BlackboxConfig::default() },
        NPROCS,
    ));
    let sinks: Vec<Arc<dyn Recorder>> = vec![rec.clone(), bb.clone()];
    let sink: Arc<dyn Recorder> = Arc::new(FanoutRecorder::new(sinks));
    let log = EventLog::with_recorder(sink.clone());
    let rc = Arc::new(ResourceCoordinator::new(NPROCS, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(NPROCS), plan.seed);
    fs.set_recorder(sink);
    Drms::install_binary(&fs, &DrmsConfig::new(APP));
    let ctl = ChaosCtl::new(plan);
    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log,
        CostModel::default(),
        JsaPolicy {
            localized_recovery: mode != Mode::Full,
            repair_when_starved: true,
            ..Default::default()
        },
    )
    .with_chaos(Arc::clone(&ctl))
    .with_blackbox(Arc::clone(&bb));

    let tier = Arc::new(MemTier::new(2));
    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let rep_slot = Arc::new(Mutex::new(None));
    let rep_slot2 = Arc::clone(&rep_slot);
    let injected = Arc::new(AtomicUsize::new(0));
    let rc2 = Arc::clone(&rc);

    let job = JobSpec::new(APP, (1, NPROCS), move |ctx, env| {
        let (mut drms, start) = match Drms::initialize(
            ctx,
            &env.fs,
            DrmsConfig::new(APP),
            env.enable.clone(),
            env.restart_from.as_deref(),
        ) {
            Ok(v) => v,
            Err(CoreError::Interrupted(_)) => return JobOutcome::Killed,
            Err(e) => return JobOutcome::Failed(e.to_string()),
        };
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        // Localized drills run only in the first incarnation; an escalated
        // incarnation would be the full-restart fallback. Derived from the
        // restart state so the collective branch is rank-consistent.
        let mut may_recover = matches!(start, Start::Fresh);
        match start {
            Start::Fresh => u.fill_assigned(|p| (p[0] * 13 + p[1] * 3) as f64),
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                match drms.restore_arrays(
                    ctx,
                    &env.fs,
                    env.restart_from.as_deref().unwrap(),
                    &info.manifest,
                    &mut [&mut u],
                ) {
                    Ok(_) => {}
                    Err(CoreError::Interrupted(_)) => return JobOutcome::Killed,
                    Err(e) => return JobOutcome::Failed(e.to_string()),
                }
            }
        }
        let mut membership = Membership::initial(ctx.ntasks());
        let mut retained = None;
        let mut iter = start_iter;
        while iter <= NITER {
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }
            if env.localized && iter == RECOVER_AT && may_recover {
                may_recover = false;
                if let Some((ret, sop)) = retained.take() {
                    if mode == Mode::Tier {
                        if ctx.rank() == 0 {
                            tier.fail_node(VICTIM);
                        }
                        ctx.barrier();
                    }
                    let src: Option<&MemTier> = if mode == Mode::Tier { Some(&tier) } else { None };
                    let got = recover(
                        ctx,
                        &env.fs,
                        src,
                        &ret,
                        &membership,
                        &[VICTIM],
                        &mut [&mut u],
                        ctx.ntasks(),
                    );
                    match got {
                        Ok((next, report)) => {
                            if ctx.rank() == 0 {
                                *rep_slot2.lock() = Some(report);
                            }
                            membership = next;
                            seg.set_control("iter", sop);
                            iter = sop + 1;
                            continue;
                        }
                        Err(e) if e.is_interrupted() => return JobOutcome::Killed,
                        Err(e) => return JobOutcome::Failed(e.to_string()),
                    }
                }
            }
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.5).unwrap();
            });
            seg.set_control("iter", iter);
            if iter % CKPT_EVERY == 0 {
                let prefix = format!("ck/rb/{iter}");
                let committed = match mode {
                    // The memory-tier drill replicates into the tier; the
                    // durable modes commit to PIOFS.
                    Mode::Tier => store_checkpoint(ctx, &tier, &prefix, &mut drms, &seg, &[&u])
                        .map(|_| ())
                        .map_err(|e| e.to_string()),
                    Mode::Piofs | Mode::Full => drms
                        .reconfig_checkpoint(ctx, &env.fs, &prefix, &seg, &[&u])
                        .map(|_| ())
                        .map_err(|e| e.to_string()),
                };
                if let Err(e) = committed {
                    return JobOutcome::Failed(e);
                }
                if env.localized {
                    retained = Some((retain(ctx, &prefix, iter as u64, &[&u]), iter));
                }
            }
            if mode == Mode::Full
                && ctx.rank() == 0
                && iter >= RECOVER_AT
                && injected.swap(1, Ordering::SeqCst) == 0
                && rc2.state_of(VICTIM) != ProcessorState::Failed
            {
                rc2.fail_processor(VICTIM);
            }
            iter += 1;
        }
        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        out2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
        JobOutcome::Completed
    });

    let summary = jsa.run_job(&job);
    let checksum: f64 = out.lock().iter().sum();
    let report = rep_slot.lock().take();
    Run { checksum, summary, rec, bb, report }
}

/// Stitched timeline and recovery-cost attribution, as in the blackbox
/// bench: the archive's recovered events plus the JSA's incarnation fates.
fn attribution(run: &Run) -> (StitchedTimeline, RecoveryReport) {
    let inputs: Vec<IncarnationInput> = run
        .summary
        .incarnations
        .iter()
        .enumerate()
        .map(|(i, inc)| IncarnationInput {
            incarnation: i as u64,
            events: run.bb.events_for(i as u64),
            killed: inc.outcome == JobOutcome::Killed,
            restarted: inc.restart_from.is_some(),
        })
        .collect();
    let tl = stitch(&inputs, &StitchOptions { detection_latency: run.bb.cfg().detection_latency });
    let report = RecoveryReport::from_timeline(&tl);
    (tl, report)
}

/// Shared contract: the run finished bitwise-correct and its attribution
/// buckets tile the stitched wall clock.
fn assert_sound(run: &Run, report: &RecoveryReport, what: &str) {
    assert!(run.summary.completed, "{what}: job did not complete: {:?}", run.summary);
    assert_eq!(run.checksum, reference(), "{what}: final state diverged");
    let budget = 1e-9 * report.wall.max(1.0);
    assert!(
        report.tiling_error() <= budget,
        "{what}: buckets do not tile the wall clock (error {})",
        report.tiling_error()
    );
}

fn bucket_total(rep: &RecoveryReport, f: impl Fn(&drms_insight::IncarnationCost) -> f64) -> f64 {
    rep.rows.iter().map(f).sum()
}

fn main() {
    let opts = parse_args();
    let repro_line = drms_bench::seed::bin_repro("recover", opts.seed);
    run_gated("recover", &repro_line, || {
        println!(
            "Localized-recovery bench: survivor-driven section restore vs full \
             restart (seed {}, {} iterations, {} PEs, loss at iteration {})\n",
            opts.seed, NITER, NPROCS, RECOVER_AT
        );
        let mut result = BenchResult::new("recover");
        result.param("seed", opts.seed);
        result.param("niter", NITER);
        result.param("nprocs", NPROCS);
        result.param("recover_at", RECOVER_AT);
        result.stamp_header(opts.seed, NPROCS);
        let state_bytes =
            domain().extents().iter().product::<usize>() as u64 * std::mem::size_of::<f64>() as u64;

        // Campaign 1 — localized recovery off memory-tier replicas: one
        // incarnation, zero PIOFS restore bytes, only `localized` billed.
        let tier_run = run_campaign(FaultPlan::seeded(opts.seed), Mode::Tier);
        let (_, tier_rep) = attribution(&tier_run);
        assert_sound(&tier_run, &tier_rep, "localized-tier");
        assert_eq!(
            tier_run.summary.incarnations.len(),
            1,
            "localized-tier: a localized recovery must not cost an incarnation"
        );
        let trep = tier_run.report.as_ref().expect("localized-tier: protocol report missing");
        assert_eq!(trep.source, StreamSource::Replica, "localized-tier: wrong ladder rung");
        assert_eq!(trep.piofs_bytes, 0, "localized-tier: replica hit touched PIOFS");
        assert_eq!(
            tier_run.rec.metrics().counter_total(names::RECOVER_PIOFS_BYTES),
            0,
            "localized-tier: PIOFS restore bytes recorded on a replica hit"
        );
        assert!(trep.replica_bytes > 0, "localized-tier: no replica bytes fetched");
        assert!(trep.survivor_bytes > 0, "localized-tier: survivors reinstated nothing");
        assert_eq!(
            tier_run.rec.metrics().counter_total(names::RECOVER_LOCALIZED),
            1,
            "localized-tier: localized-recovery counter"
        );
        let tier_localized = bucket_total(&tier_rep, |r| r.localized);
        assert!(tier_localized > 0.0, "localized-tier: attribution billed no localized time");
        assert_eq!(bucket_total(&tier_rep, |r| r.detect), 0.0, "localized-tier: detect billed");
        assert_eq!(bucket_total(&tier_rep, |r| r.restore), 0.0, "localized-tier: restore billed");
        println!(
            "localized-tier : cost {:.6} sim s ({:.1}% of wall), {} replica B, \
             {} survivor B, {} sections, 1 incarnation",
            tier_rep.recovery_cost(),
            tier_rep.recovery_fraction() * 100.0,
            trep.replica_bytes,
            trep.survivor_bytes,
            trep.sections
        );

        // Campaign 2 — localized recovery off PIOFS section reads: only
        // the lost ranks' sections stream back, strictly less than the
        // whole state.
        let piofs_run = run_campaign(FaultPlan::seeded(opts.seed), Mode::Piofs);
        let (_, piofs_rep) = attribution(&piofs_run);
        assert_sound(&piofs_run, &piofs_rep, "localized-piofs");
        assert_eq!(piofs_run.summary.incarnations.len(), 1, "localized-piofs: reincarnated");
        let prep = piofs_run.report.as_ref().expect("localized-piofs: protocol report missing");
        assert_eq!(prep.source, StreamSource::PiofsFull, "localized-piofs: wrong ladder rung");
        assert_eq!(prep.replica_bytes, 0, "localized-piofs: phantom replica bytes");
        assert!(prep.piofs_bytes > 0, "localized-piofs: no section bytes read");
        assert!(
            prep.piofs_bytes < state_bytes,
            "localized-piofs: section reads ({} B) not smaller than the full state ({state_bytes} B)",
            prep.piofs_bytes
        );
        let piofs_localized = bucket_total(&piofs_rep, |r| r.localized);
        assert!(piofs_localized > 0.0, "localized-piofs: no localized time billed");
        println!(
            "localized-piofs: cost {:.6} sim s ({:.1}% of wall), {} PIOFS B of {} B state, \
             {} survivor B, 1 incarnation",
            piofs_rep.recovery_cost(),
            piofs_rep.recovery_fraction() * 100.0,
            prep.piofs_bytes,
            state_bytes,
            prep.survivor_bytes
        );

        // Campaign 3 — the classical full restart at the same seed and the
        // same loss point: kill, detect, restore everything, recompute.
        let full_run = run_campaign(FaultPlan::seeded(opts.seed), Mode::Full);
        let (full_tl, full_rep) = attribution(&full_run);
        assert_sound(&full_run, &full_rep, "full-restart");
        assert!(
            full_run.summary.incarnations.len() >= 2,
            "full-restart: the kill never caused a restart"
        );
        let full_detect = bucket_total(&full_rep, |r| r.detect);
        let full_restore = bucket_total(&full_rep, |r| r.restore);
        let full_recompute = bucket_total(&full_rep, |r| r.recompute);
        assert!(
            full_detect + full_restore + full_recompute > 0.0,
            "full-restart: no recovery cost attributed"
        );
        assert_eq!(
            bucket_total(&full_rep, |r| r.localized),
            0.0,
            "full-restart: localized time billed on the classical path"
        );
        println!(
            "full-restart   : cost {:.6} sim s ({:.1}% of wall), detect {:.6} + restore {:.6} \
             + recompute {:.6}, {} incarnations",
            full_rep.recovery_cost(),
            full_rep.recovery_fraction() * 100.0,
            full_detect,
            full_restore,
            full_recompute,
            full_run.summary.incarnations.len()
        );

        // The headline gate: localized recovery is strictly cheaper than
        // the full restart at the same seed — in absolute attributed cost
        // and in share of the wall clock.
        for (what, rep) in [("localized-tier", &tier_rep), ("localized-piofs", &piofs_rep)] {
            assert!(
                rep.recovery_cost() < full_rep.recovery_cost(),
                "{what}: localized cost {:.6} not strictly below full-restart cost {:.6}",
                rep.recovery_cost(),
                full_rep.recovery_cost()
            );
            assert!(
                rep.recovery_fraction() < full_rep.recovery_fraction(),
                "{what}: localized share {:.4} not strictly below full-restart share {:.4}",
                rep.recovery_fraction(),
                full_rep.recovery_fraction()
            );
        }
        println!(
            "\nlocalized vs full: tier {:.1}x cheaper, piofs sections {:.1}x cheaper",
            full_rep.recovery_cost() / tier_rep.recovery_cost(),
            full_rep.recovery_cost() / piofs_rep.recovery_cost()
        );

        // Campaign 4 — online shrink/grow: two membership transitions,
        // bytes preserved, zero storage traffic.
        let resize_rec = Arc::new(TraceRecorder::default());
        let before = Arc::new(Mutex::new(Vec::new()));
        let after = Arc::new(Mutex::new(Vec::new()));
        let (b2, a2) = (Arc::clone(&before), Arc::clone(&after));
        run_spmd_traced(NPROCS, CostModel::default(), resize_rec.clone(), |ctx| {
            let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
            let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            u.fill_assigned(|p| (p[0] * 13 + p[1] * 3) as f64);
            b2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
            let m0 = Membership::initial(ctx.ntasks());
            let m1 = shrink(ctx, &m0, NPROCS - 3, &mut [&mut u]).unwrap();
            let m2 = grow(ctx, &m1, ctx.ntasks(), &mut [&mut u]).unwrap();
            assert!(m2.epoch > m1.epoch && m1.epoch > m0.epoch);
            a2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
        })
        .expect("shrink/grow region");
        let sum_before: f64 = before.lock().iter().sum();
        let sum_after: f64 = after.lock().iter().sum();
        assert_eq!(sum_before, sum_after, "shrink/grow: bytes not preserved");
        let resizes = resize_rec.metrics().counter_total(names::RECOVER_RESIZES);
        assert_eq!(resizes, 2, "shrink/grow: resize counter");
        for (key, _) in resize_rec.metrics().counters() {
            assert!(
                !key.name.starts_with("piofs.") && !key.name.starts_with("stream."),
                "shrink/grow: storage traffic ({}) during an online resize",
                key.name
            );
        }
        println!("shrink/grow    : {resizes} resizes, bytes preserved, zero storage I/O");

        // Determinism: the localized protocol and the escalated full
        // restart must both replay bit-identically per seed.
        let tier_again = run_campaign(FaultPlan::seeded(opts.seed), Mode::Tier);
        let (_, tier_again_rep) = attribution(&tier_again);
        assert_eq!(
            tier_again.checksum.to_bits(),
            tier_run.checksum.to_bits(),
            "localized campaign is nondeterministic"
        );
        assert_eq!(
            tier_again_rep.render(),
            tier_rep.render(),
            "localized attribution is nondeterministic"
        );
        let full_again = run_campaign(FaultPlan::seeded(opts.seed), Mode::Full);
        let (_, full_again_rep) = attribution(&full_again);
        assert_eq!(
            full_again.checksum.to_bits(),
            full_run.checksum.to_bits(),
            "full-restart campaign is nondeterministic"
        );
        assert_eq!(
            full_again_rep.recovery_cost().to_bits(),
            full_rep.recovery_cost().to_bits(),
            "full-restart cost drifted between identical runs"
        );

        result.metric("tier.recovery_cost_sim_s", tier_rep.recovery_cost());
        result.metric("tier.recovery_fraction", tier_rep.recovery_fraction());
        result.metric("tier.localized_sim_s", tier_localized);
        result.metric("tier.replica_bytes", trep.replica_bytes as f64);
        result.metric("tier.survivor_bytes", trep.survivor_bytes as f64);
        result.metric("tier.sections", trep.sections as f64);
        result.metric("piofs.recovery_cost_sim_s", piofs_rep.recovery_cost());
        result.metric("piofs.recovery_fraction", piofs_rep.recovery_fraction());
        result.metric("piofs.section_bytes", prep.piofs_bytes as f64);
        result.metric("piofs.state_bytes", state_bytes as f64);
        result.metric("full.recovery_cost_sim_s", full_rep.recovery_cost());
        result.metric("full.recovery_fraction", full_rep.recovery_fraction());
        result.metric("full.detect_sim_s", full_detect);
        result.metric("full.restore_sim_s", full_restore);
        result.metric("full.recompute_sim_s", full_recompute);
        result.metric("full.incarnations", full_run.summary.incarnations.len() as f64);
        result.metric("speedup.tier_vs_full", full_rep.recovery_cost() / tier_rep.recovery_cost());
        result
            .metric("speedup.piofs_vs_full", full_rep.recovery_cost() / piofs_rep.recovery_cost());
        result.metric("resize.count", resizes as f64);

        if let Some(path) = &opts.timeline_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).expect("create timeline-out dir");
            }
            let mut f = std::fs::File::create(path).expect("create timeline file");
            for (what, rep) in [
                ("localized recovery, memory-tier replicas", &tier_rep),
                ("localized recovery, PIOFS section reads", &piofs_rep),
                ("classical full restart", &full_rep),
            ] {
                writeln!(f, "== {what} ==").expect("write timeline header");
                f.write_all(rep.render().as_bytes()).expect("write attribution table");
                writeln!(f).expect("write timeline separator");
            }
            writeln!(f, "== stitched events, full-restart campaign ==")
                .expect("write timeline header");
            for e in &full_tl.events {
                writeln!(f, "{:.9}\t{}\t{:?}\t{:?}\t{}", e.t, e.rank, e.phase, e.kind, e.name)
                    .expect("write stitched trace line");
            }
            println!("wrote recovery timeline to {}", path.display());
        }
        if let Some(dir) = &opts.json {
            let path = result.write_to(dir).expect("write BENCH_recover.json");
            println!("wrote {}", path.display());
        }
        if let Some(baseline) = &opts.baseline {
            baseline_gate(&result, baseline, opts.tolerance, opts.bless, &repro_line);
        }
        println!(
            "\nAt the same FAULT_SEED, survivor-driven section restore beats the \
             full-application restart on attributed recovery cost through both \
             ladder rungs, resizes touch no storage, and every campaign replays \
             bit-identically."
        );
    });
}
