//! Stable JSON emission and baseline comparison for the bench binaries.
//!
//! Every binary can emit its headline numbers as `BENCH_<name>.json`
//! (`--json DIR`): one object with the bench name, the invocation
//! parameters, and a flat map of named metrics. The writer sorts keys and
//! uses Rust's shortest-roundtrip float formatting, so the file is
//! byte-stable for a deterministic run — committed baselines in
//! `results/baselines/` diff cleanly and the CI regression gate
//! ([`compare`]) checks relative tolerance per metric.
//!
//! The parser is a minimal hand-rolled reader for exactly this shape (the
//! build environment has no serde), tolerant of whitespace.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One bench invocation's result: name, parameters, flat metrics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchResult {
    /// Bench name (`BENCH_<name>.json`).
    pub bench: String,
    /// Run metadata (fault seed, bench binary, task count, ...): embedded
    /// so a result file is self-describing and reproducible without the
    /// command line that produced it. Compared exactly, like params.
    pub header: Vec<(String, String)>,
    /// Invocation parameters (class, PEs, seed, ...), as strings.
    pub params: Vec<(String, String)>,
    /// Named metrics. Values must be finite.
    pub metrics: Vec<(String, f64)>,
}

impl BenchResult {
    /// Creates an empty result for `bench`.
    pub fn new(bench: &str) -> BenchResult {
        BenchResult {
            bench: bench.to_owned(),
            header: Vec::new(),
            params: Vec::new(),
            metrics: Vec::new(),
        }
    }

    /// Records (or overwrites) a header metadata field.
    pub fn header_field(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        match self.header.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.header.push((key.to_owned(), value)),
        }
    }

    /// Stamps the standard run-metadata header every bench embeds: the
    /// fault seed the run derived its randomness from, the bench binary
    /// name, and the task count.
    pub fn stamp_header(&mut self, fault_seed: u64, ntasks: usize) {
        self.header_field("bench_bin", self.bench.clone());
        self.header_field("fault_seed", fault_seed);
        self.header_field("ntasks", ntasks);
    }

    /// Records (or overwrites) an invocation parameter.
    pub fn param(&mut self, key: &str, value: impl ToString) {
        let value = value.to_string();
        match self.params.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.params.push((key.to_owned(), value)),
        }
    }

    /// Records (or overwrites) a metric. Panics on non-finite values —
    /// they have no JSON representation and a NaN metric is a bug.
    pub fn metric(&mut self, key: &str, value: f64) {
        assert!(value.is_finite(), "metric {key:?} is not finite: {value}");
        match self.metrics.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.metrics.push((key.to_owned(), value)),
        }
    }

    /// Looks up a metric by name.
    pub fn metric_value(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// The conventional file name, `BENCH_<name>.json`.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.bench)
    }

    /// Stable JSON: sorted keys, one entry per line, shortest-roundtrip
    /// floats. Byte-identical for identical results.
    pub fn to_json(&self) -> String {
        let mut header = self.header.clone();
        header.sort();
        let mut params = self.params.clone();
        params.sort();
        let mut metrics = self.metrics.clone();
        metrics.sort_by(|a, b| a.0.cmp(&b.0));

        let mut out = String::new();
        out.push_str("{\n");
        writeln!(out, "  \"bench\": {},", quote(&self.bench)).unwrap();
        if !header.is_empty() {
            out.push_str("  \"header\": {");
            for (i, (k, v)) in header.iter().enumerate() {
                let sep = if i + 1 < header.len() { "," } else { "" };
                write!(out, "\n    {}: {}{sep}", quote(k), quote(v)).unwrap();
            }
            out.push_str("\n  },\n");
        }
        out.push_str("  \"params\": {");
        for (i, (k, v)) in params.iter().enumerate() {
            let sep = if i + 1 < params.len() { "," } else { "" };
            write!(out, "\n    {}: {}{sep}", quote(k), quote(v)).unwrap();
        }
        out.push_str(if params.is_empty() { "},\n" } else { "\n  },\n" });
        out.push_str("  \"metrics\": {");
        for (i, (k, v)) in metrics.iter().enumerate() {
            let sep = if i + 1 < metrics.len() { "," } else { "" };
            write!(out, "\n    {}: {}{sep}", quote(k), fmt_f64(*v)).unwrap();
        }
        out.push_str(if metrics.is_empty() { "}\n" } else { "\n  }\n" });
        out.push_str("}\n");
        out
    }

    /// Writes `BENCH_<name>.json` into `dir` (created if missing) and
    /// returns the path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Parses a `BENCH_*.json` file produced by [`BenchResult::to_json`]
    /// (whitespace-insensitive).
    pub fn parse(text: &str) -> Result<BenchResult, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let mut result = BenchResult::default();
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "bench" => result.bench = p.string()?,
                "header" => {
                    p.expect(b'{')?;
                    while !p.try_consume(b'}') {
                        let k = p.string()?;
                        p.expect(b':')?;
                        let v = p.string()?;
                        result.header.push((k, v));
                        p.try_consume(b',');
                    }
                }
                "params" => {
                    p.expect(b'{')?;
                    while !p.try_consume(b'}') {
                        let k = p.string()?;
                        p.expect(b':')?;
                        let v = p.string()?;
                        result.params.push((k, v));
                        p.try_consume(b',');
                    }
                }
                "metrics" => {
                    p.expect(b'{')?;
                    while !p.try_consume(b'}') {
                        let k = p.string()?;
                        p.expect(b':')?;
                        let v = p.number()?;
                        result.metrics.push((k, v));
                        p.try_consume(b',');
                    }
                }
                other => return Err(format!("unknown key {other:?}")),
            }
            if !p.try_consume(b',') {
                break;
            }
        }
        p.expect(b'}')?;
        if result.bench.is_empty() {
            return Err("missing \"bench\" name".into());
        }
        Ok(result)
    }
}

/// Shortest-roundtrip float, with `.0` forced onto integral values so the
/// output is unambiguously a JSON number with a fractional part.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.bytes.get(self.pos).map(|&c| c as char)
            ))
        }
    }

    fn try_consume(&mut self, b: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|&c| c.is_ascii_digit() || b"+-.eE".contains(&c))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        tok.parse().map_err(|_| format!("bad number {tok:?} at byte {start}"))
    }
}

/// Compares `current` against a committed `baseline` with relative
/// tolerance `tol` (e.g. `0.05` = ±5%). Returns one message per
/// regression: bench-name or parameter drift, a baseline metric that is
/// missing or out of band, or a new metric absent from the baseline
/// (which needs a re-bless). Empty means the gate passes.
pub fn compare(current: &BenchResult, baseline: &BenchResult, tol: f64) -> Vec<String> {
    let mut failures = Vec::new();
    if current.bench != baseline.bench {
        failures.push(format!("bench name {:?} != baseline {:?}", current.bench, baseline.bench));
    }
    let mut params = baseline.params.clone();
    params.sort();
    for (k, v) in &params {
        match current.params.iter().find(|(ck, _)| ck == k) {
            None => failures.push(format!("parameter {k:?} missing (baseline {v:?})")),
            Some((_, cv)) if cv != v => {
                failures.push(format!("parameter {k:?} = {cv:?} differs from baseline {v:?}"))
            }
            Some(_) => {}
        }
    }
    // Header fields are compared baseline-side only, like params: a
    // baseline blessed before headers existed keeps passing, and a
    // current run must reproduce whatever metadata the baseline pinned.
    let mut header = baseline.header.clone();
    header.sort();
    for (k, v) in &header {
        match current.header.iter().find(|(ck, _)| ck == k) {
            None => failures.push(format!("header field {k:?} missing (baseline {v:?})")),
            Some((_, cv)) if cv != v => {
                failures.push(format!("header field {k:?} = {cv:?} differs from baseline {v:?}"))
            }
            Some(_) => {}
        }
    }
    let mut metrics = baseline.metrics.clone();
    metrics.sort_by(|a, b| a.0.cmp(&b.0));
    for (k, base) in &metrics {
        match current.metric_value(k) {
            None => failures.push(format!("metric {k:?} missing (baseline {base})")),
            Some(cur) => {
                let rel = (cur - base).abs() / base.abs().max(1e-12);
                if rel > tol {
                    failures.push(format!(
                        "metric {k:?}: {cur} vs baseline {base} ({:+.1}% > ±{:.1}%)",
                        100.0 * (cur - base) / base.abs().max(1e-12),
                        100.0 * tol
                    ));
                }
            }
        }
    }
    for (k, v) in &current.metrics {
        if baseline.metric_value(k).is_none() {
            failures.push(format!("metric {k:?} = {v} not in baseline (re-bless needed)"));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchResult {
        let mut r = BenchResult::new("insight");
        r.param("class", "S");
        r.param("pes", 4);
        r.metric("bt.restart.wall_s", 12.25);
        r.metric("bt.restart.critical_path_s", 12.25);
        r.metric("servers", 16.0);
        r
    }

    #[test]
    fn json_round_trips_and_is_stable() {
        let r = sample();
        let text = r.to_json();
        assert_eq!(text, r.to_json());
        let parsed = BenchResult::parse(&text).unwrap();
        assert_eq!(parsed.bench, "insight");
        assert_eq!(parsed.metric_value("bt.restart.wall_s"), Some(12.25));
        assert_eq!(parsed.params.len(), 2);
        // Key order in the file is sorted regardless of insertion order.
        let mut reordered = BenchResult::new("insight");
        reordered.metric("servers", 16.0);
        reordered.metric("bt.restart.critical_path_s", 12.25);
        reordered.metric("bt.restart.wall_s", 12.25);
        reordered.param("pes", 4);
        reordered.param("class", "S");
        assert_eq!(reordered.to_json(), text);
    }

    #[test]
    fn header_round_trips_sorted_and_gates_exactly() {
        let mut r = sample();
        r.stamp_header(0xC0FFEE, 8);
        let text = r.to_json();
        // Sorted keys, before "params".
        let h = text.find("\"header\"").unwrap();
        assert!(h < text.find("\"params\"").unwrap());
        assert!(text.find("\"bench_bin\"").unwrap() < text.find("\"fault_seed\"").unwrap());
        let parsed = BenchResult::parse(&text).unwrap();
        assert_eq!(parsed.to_json(), text);
        assert_eq!(
            parsed.header.iter().find(|(k, _)| k == "fault_seed").map(|(_, v)| v.as_str()),
            Some("12648430")
        );
        // Exact comparison: a differing seed fails the gate, a baseline
        // without headers still passes against a stamped current.
        let mut drift = r.clone();
        drift.header_field("fault_seed", 1);
        assert!(compare(&drift, &r, 0.05).iter().any(|f| f.contains("fault_seed")));
        assert!(compare(&r, &sample(), 0.05).is_empty());
    }

    #[test]
    fn empty_sections_render_and_parse() {
        let r = BenchResult::new("empty");
        let parsed = BenchResult::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn float_formatting_keeps_a_fractional_point() {
        assert_eq!(fmt_f64(16.0), "16.0");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert_eq!(fmt_f64(1e-9), "0.000000001");
        assert_eq!(fmt_f64(1e22), "10000000000000000000000.0");
    }

    #[test]
    fn compare_passes_within_tolerance() {
        let base = sample();
        let mut cur = sample();
        cur.metric("bt.restart.wall_s", 12.25 * 1.04);
        assert!(compare(&cur, &base, 0.05).is_empty());
        assert!(!compare(&cur, &base, 0.01).is_empty());
    }

    #[test]
    fn compare_flags_missing_new_and_drifted_entries() {
        let base = sample();
        let mut cur = BenchResult::new("insight");
        cur.param("class", "W"); // drift
        cur.metric("bt.restart.wall_s", 12.25);
        cur.metric("brand.new", 1.0); // not in baseline
        let failures = compare(&cur, &base, 0.05);
        assert!(failures.iter().any(|f| f.contains("parameter \"class\"")));
        assert!(failures.iter().any(|f| f.contains("parameter \"pes\" missing")));
        assert!(failures.iter().any(|f| f.contains("\"bt.restart.critical_path_s\" missing")));
        assert!(failures.iter().any(|f| f.contains("\"servers\" missing")));
        assert!(failures.iter().any(|f| f.contains("re-bless")));
    }

    #[test]
    #[should_panic]
    fn non_finite_metrics_rejected() {
        sample().metric("bad", f64::NAN);
    }
}
