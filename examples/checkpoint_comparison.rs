//! DRMS vs conventional SPMD checkpointing on a mini NAS benchmark —
//! the paper's Section 5 comparison in miniature (class S, so it runs in
//! seconds).
//!
//! ```text
//! cargo run --release --example checkpoint_comparison
//! ```

use drms::apps::{bt, AppVariant, Class, MiniApp};
use drms::core::{Drms, EnableFlag};
use drms::msg::{run_spmd, CostModel};
use drms::piofs::{Piofs, PiofsConfig};

fn main() {
    let class = Class::S;
    let spec = bt(class);
    println!(
        "mini-BT, class {class} ({}^3 grid), {} distributed fields, \
         16-node PIOFS simulation\n",
        spec.grid(),
        spec.fields.len()
    );

    println!(
        "{:>6} {:>5} {:>14} {:>14} {:>14} {:>14}",
        "scheme", "tasks", "state (MB)", "ckpt (s)", "restart (s)", "reconfig?"
    );
    for (variant, label) in [(AppVariant::Drms, "DRMS"), (AppVariant::Spmd, "SPMD")] {
        for pes in [8usize, 16] {
            let cfg = PiofsConfig::sp_1997().scale_memory(class.memory_scale());
            let fs = Piofs::new(cfg, 11);
            Drms::install_binary(&fs, &spec.drms_config());

            // Run to mid-point and checkpoint.
            let spec_run = spec.clone();
            let fs_run = std::sync::Arc::clone(&fs);
            let reports = run_spmd(pes, CostModel::default(), move |ctx| {
                let mut app = MiniApp::start(
                    ctx,
                    &fs_run,
                    spec_run.clone(),
                    variant,
                    EnableFlag::new(),
                    None,
                )
                .unwrap();
                app.step(ctx);
                app.checkpoint(ctx, &fs_run, "ck/mid").unwrap()
            })
            .unwrap();
            let state_mb = fs.total_bytes("ck/mid/") as f64 / 1e6;

            // Restart from it.
            fs.clear_residency();
            fs.reset_time();
            let spec_run = spec.clone();
            let fs_run = std::sync::Arc::clone(&fs);
            let restarts = run_spmd(pes, CostModel::default(), move |ctx| {
                let app = MiniApp::start(
                    ctx,
                    &fs_run,
                    spec_run.clone(),
                    variant,
                    EnableFlag::new(),
                    Some("ck/mid"),
                )
                .unwrap();
                app.restart_report.unwrap()
            })
            .unwrap();

            println!(
                "{:>6} {:>5} {:>14.1} {:>14.2} {:>14.2} {:>14}",
                label,
                pes,
                state_mb,
                reports[0].total(),
                restarts[0].total(),
                if variant == AppVariant::Drms { "yes" } else { "no" }
            );
        }
    }
    println!(
        "\nWhat to notice (the paper's Table 3/5 shapes, at 1/64 scale):\n\
         - DRMS saved state is the same at 8 and 16 tasks; SPMD state doubles;\n\
         - DRMS checkpoints are several times faster than SPMD;\n\
         - only the DRMS checkpoint can restart on a different task count."
    );
}
