//! Recursive stream-order partitioning of array sections (paper, Figure 5a).
//!
//! `stream(A[x])` equals the concatenation `stream(A[lo(x)]) ++
//! stream(A[hi(x)])`, where `lo`/`hi` split the slice along its
//! slowest-varying non-trivial axis. Applying the split recursively yields a
//! vector of `m = 2^k` sub-slices whose streams concatenate, in order, to the
//! stream of `x`. Each sub-slice can then be written (or read) independently
//! at a known stream offset, which is what enables parallel I/O.

use crate::{Order, Result, Slice, SliceError};

/// Partitions `x` into `m` stream-contiguous sub-slices.
///
/// `m` must be a power of two (the recursion halves at every level, exactly
/// as in Figure 5a). When the slice runs out of splittable axes before
/// reaching depth `k`, the remaining pieces come back empty, so the result
/// always has exactly `m` entries and their streams concatenate to the
/// stream of `x`.
pub fn partition(x: &Slice, m: usize, order: Order) -> Result<Vec<Slice>> {
    if m == 0 || !m.is_power_of_two() {
        return Err(SliceError::NotPowerOfTwo { m });
    }
    let mut out = Vec::with_capacity(m);
    partition_rec(x, m, order, &mut out);
    Ok(out)
}

fn partition_rec(x: &Slice, m: usize, order: Order, out: &mut Vec<Slice>) {
    if m == 1 {
        out.push(x.clone());
        return;
    }
    let (lo, hi) = x.split_half(order);
    partition_rec(&lo, m / 2, order, out);
    partition_rec(&hi, m / 2, order, out);
}

/// Chooses the partition count for streaming a section of `total_bytes`
/// bytes across `tasks` tasks.
///
/// Per the paper: aim for roughly `target_bytes` (~1 MB) per piece — small
/// enough to bound intermediate buffer memory, large enough to keep per-piece
/// overhead low — but always use at least one piece per task so every task
/// can participate in parallel I/O. The result is the smallest power of two
/// satisfying both constraints.
pub fn choose_piece_count(total_bytes: usize, tasks: usize, target_bytes: usize) -> usize {
    let by_size = total_bytes.div_ceil(target_bytes.max(1)).max(1);
    let wanted = by_size.max(tasks.max(1));
    wanted.next_power_of_two()
}

/// Stream offsets (in elements) of each piece of a partition: entry `j` is
/// the number of elements streamed before piece `j`, i.e.
/// `sum(size(pieces[i]) for i < j)`.
pub fn stream_offsets(pieces: &[Slice]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(pieces.len());
    let mut acc = 0usize;
    for p in pieces {
        offsets.push(acc);
        acc += p.size();
    }
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Range;

    fn enumerate(s: &Slice, order: Order) -> Vec<Vec<i64>> {
        let mut v = Vec::new();
        s.points(order).for_each(|p| v.push(p.to_vec()));
        v
    }

    #[test]
    fn rejects_non_power_of_two() {
        let s = Slice::boxed(&[(0, 7)]);
        assert!(matches!(
            partition(&s, 3, Order::ColumnMajor),
            Err(SliceError::NotPowerOfTwo { m: 3 })
        ));
        assert!(partition(&s, 0, Order::ColumnMajor).is_err());
    }

    #[test]
    fn partition_one_is_identity() {
        let s = Slice::boxed(&[(0, 7), (2, 5)]);
        let p = partition(&s, 1, Order::ColumnMajor).unwrap();
        assert_eq!(p, vec![s]);
    }

    #[test]
    fn pieces_concatenate_to_original_stream() {
        let s = Slice::new(vec![
            Range::contiguous(0, 6),
            Range::strided(1, 9, 2).unwrap(),
            Range::from_indices(&[3, 4, 9]).unwrap(),
        ]);
        for order in [Order::ColumnMajor, Order::RowMajor] {
            for m in [1usize, 2, 4, 8, 16, 64] {
                let pieces = partition(&s, m, order).unwrap();
                assert_eq!(pieces.len(), m);
                let mut cat = Vec::new();
                for p in &pieces {
                    cat.extend(enumerate(p, order));
                }
                assert_eq!(cat, enumerate(&s, order), "m={m} order={order:?}");
            }
        }
    }

    #[test]
    fn oversized_m_gives_empty_tail_pieces() {
        let s = Slice::boxed(&[(0, 1)]); // two elements
        let pieces = partition(&s, 8, Order::ColumnMajor).unwrap();
        assert_eq!(pieces.len(), 8);
        let total: usize = pieces.iter().map(Slice::size).sum();
        assert_eq!(total, 2);
        assert_eq!(pieces.iter().filter(|p| !p.is_empty()).count(), 2);
    }

    #[test]
    fn pieces_are_balanced_for_dense_boxes() {
        let s = Slice::boxed(&[(0, 63), (0, 63)]);
        let pieces = partition(&s, 16, Order::ColumnMajor).unwrap();
        let sizes: Vec<usize> = pieces.iter().map(Slice::size).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert_eq!(sizes.iter().sum::<usize>(), 64 * 64);
        assert!(max - min <= 64, "sizes {sizes:?}");
    }

    #[test]
    fn column_major_splits_last_axis_first() {
        let s = Slice::boxed(&[(0, 9), (0, 9)]);
        let pieces = partition(&s, 2, Order::ColumnMajor).unwrap();
        assert_eq!(pieces[0], Slice::boxed(&[(0, 9), (0, 4)]));
        assert_eq!(pieces[1], Slice::boxed(&[(0, 9), (5, 9)]));
        let pieces = partition(&s, 2, Order::RowMajor).unwrap();
        assert_eq!(pieces[0], Slice::boxed(&[(0, 4), (0, 9)]));
        assert_eq!(pieces[1], Slice::boxed(&[(5, 9), (0, 9)]));
    }

    #[test]
    fn stream_offsets_accumulate() {
        let s = Slice::boxed(&[(0, 9)]);
        let pieces = partition(&s, 4, Order::ColumnMajor).unwrap();
        let offs = stream_offsets(&pieces);
        assert_eq!(offs[0], 0);
        for j in 1..pieces.len() {
            assert_eq!(offs[j], offs[j - 1] + pieces[j - 1].size());
        }
        assert_eq!(offs.last().unwrap() + pieces.last().unwrap().size(), s.size());
    }

    #[test]
    fn choose_piece_count_honours_both_constraints() {
        // ~1 MB target on an 8 MB section with 4 tasks -> 8 pieces.
        assert_eq!(choose_piece_count(8 << 20, 4, 1 << 20), 8);
        // Small section: at least one piece per task, rounded to a power of 2.
        assert_eq!(choose_piece_count(100, 5, 1 << 20), 8);
        // Degenerate inputs stay sane.
        assert_eq!(choose_piece_count(0, 0, 1 << 20), 1);
        assert_eq!(choose_piece_count(1, 1, 0), 1);
        // Exactly divisible.
        assert_eq!(choose_piece_count(4 << 20, 2, 1 << 20), 4);
    }
}
