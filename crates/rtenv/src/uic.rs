//! The user interface coordinator (UIC): the human-facing window into the
//! DRMS environment — processor status, event history, archived states.

use std::sync::Arc;

use drms_core::manifest::Manifest;
use drms_piofs::Piofs;

use crate::events::EventLog;
use crate::rc::{ProcessorState, ResourceCoordinator};

/// Read-only facade over the control plane for users and administrators.
pub struct Uic {
    rc: Arc<ResourceCoordinator>,
    fs: Arc<Piofs>,
    log: EventLog,
}

impl Uic {
    /// Builds the facade.
    pub fn new(rc: Arc<ResourceCoordinator>, fs: Arc<Piofs>, log: EventLog) -> Uic {
        Uic { rc, fs, log }
    }

    /// One status line per processor.
    pub fn processor_status(&self) -> Vec<String> {
        (0..self.rc.nprocs())
            .map(|p| {
                let s = match self.rc.state_of(p) {
                    ProcessorState::Available => "available".to_string(),
                    ProcessorState::InPool(app) => format!("running {app}"),
                    ProcessorState::Failed => "FAILED (awaiting repair)".to_string(),
                };
                format!("processor {p:>2}: {s}")
            })
            .collect()
    }

    /// The event history, rendered one line per event.
    pub fn event_history(&self) -> Vec<String> {
        self.log.snapshot().iter().map(|e| e.to_string()).collect()
    }

    /// Archived (checkpointed) states available for restart, newest first.
    pub fn archived_states(&self, app: Option<&str>) -> Vec<(String, Manifest)> {
        drms_core::find_checkpoints(&self.fs, app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::KillToken;
    use crate::Event;

    #[test]
    fn status_reflects_processor_states() {
        let log = EventLog::new();
        let rc = Arc::new(ResourceCoordinator::new(3, log.clone()));
        let fs = Piofs::new(drms_piofs::PiofsConfig::test_tiny(3), 1);
        rc.form_pool("bt", &[1], KillToken::new());
        rc.fail_processor(2);
        let uic = Uic::new(Arc::clone(&rc), fs, log.clone());
        let status = uic.processor_status();
        assert!(status[0].contains("available"));
        assert!(status[1].contains("running bt"));
        assert!(status[2].contains("FAILED"));
        assert!(!uic.event_history().is_empty());
        assert!(log.any(|e| matches!(e, Event::ProcessorFailed { proc: 2 })));
        assert!(uic.archived_states(None).is_empty());
    }
}
