//! End-to-end incremental checkpoint/restart: a sparse-update solver takes
//! a chain of delta checkpoints and restarts from any link, on any task
//! count, bitwise identical to the uninterrupted run.

use std::sync::{Arc, Mutex};

use drms_core::manifest::{delta_path, ChunkSource, CkptKind};
use drms_core::segment::DataSegment;
use drms_core::{
    checkpoint_is_valid, find_checkpoints, Drms, DrmsConfig, EnableFlag, IoMode, Start,
};
use drms_darray::chunks::Codec;
use drms_darray::{DistArray, Distribution};
use drms_delta::{
    delta_checkpoint, materialize_stream, restore_arrays_delta, resume, DeltaChain, DeltaConfig,
    DeltaReport,
};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};

const N: i64 = 4096; // elements of u
const CHUNK: u64 = 1024; // bytes; 128 elements per chunk, 32 chunks
const BAND: i64 = 512; // elements per update band: 4 chunks of the 32

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(8), 11)
}

fn cfg() -> DrmsConfig {
    let mut c = DrmsConfig::new("mini");
    c.text_bytes = 4096;
    c.io = IoMode::Parallel;
    c
}

fn dcfg() -> DeltaConfig {
    DeltaConfig { chunk_bytes: CHUNK, full_every: 8, compress: true }
}

fn domain() -> Slice {
    Slice::boxed(&[(1, N)])
}

/// Which band iteration `iter` updates (a moving contiguous window of the
/// canonical stream, 1/8 of the array).
fn touched(p: &[i64], iter: i64) -> bool {
    (p[0] - 1) / BAND == iter % (N / BAND)
}

/// Ground truth at `(p, iter)`: the initial fill plus 0.5 per iteration
/// whose band covered `p`.
fn truth(p: &[i64], iter: i64) -> f64 {
    let mut v = (p[0] * 3 + 1) as f64;
    for t in 1..=iter {
        if touched(p, t) {
            v += 0.5;
        }
    }
    v
}

/// The canonical stream of `u` at `iter` — domain points in array order,
/// little-endian — which delta restore must reproduce bitwise.
fn expected_stream(iter: i64) -> Vec<u8> {
    let mut out = Vec::with_capacity((N * 8) as usize);
    domain()
        .points(Order::ColumnMajor)
        .for_each(|p| out.extend_from_slice(&truth(p, iter).to_le_bytes()));
    out
}

/// Runs the sparse-update app for `end_iter` iterations on `ntasks`,
/// delta-checkpointing at every iteration in `ckpts` (prefix `ck/d{iter}`),
/// optionally restarting from a committed delta prefix. Returns per-task
/// final sums; rank 0's checkpoint reports land in `reports`.
fn run_app(
    fs: &Arc<Piofs>,
    ntasks: usize,
    restart_from: Option<&str>,
    ckpts: &[i64],
    end_iter: i64,
    dc: &DeltaConfig,
    reports: &Mutex<Vec<DeltaReport>>,
) -> Vec<f64> {
    run_spmd(ntasks, CostModel::default(), |ctx| {
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        let mut chain;
        let mut drms = match restart_from {
            None => {
                let (drms, start) =
                    Drms::initialize(ctx, fs, cfg(), EnableFlag::new(), None).unwrap();
                assert!(matches!(start, Start::Fresh));
                chain = DeltaChain::new();
                u.fill_assigned(|p| truth(p, 0));
                drms
            }
            Some(prefix) => {
                let (drms, start) = resume(ctx, fs, cfg(), EnableFlag::new(), prefix).unwrap();
                let Start::Restarted(info) = start else { panic!("expected restart") };
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                restore_arrays_delta(&drms, ctx, fs, prefix, &info.manifest, &mut [&mut u])
                    .unwrap();
                chain = DeltaChain::recover(prefix, &info.manifest).unwrap();
                drms
            }
        };
        for iter in start_iter..=end_iter {
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                if touched(p, iter) {
                    let v = u.get(p).unwrap();
                    u.set(p, v + 0.5).unwrap();
                }
            });
            seg.set_control("iter", iter);
            if ckpts.contains(&iter) {
                let r = delta_checkpoint(
                    &mut drms,
                    &mut chain,
                    dc,
                    ctx,
                    fs,
                    &format!("ck/d{iter}"),
                    &seg,
                    &[&u],
                )
                .unwrap();
                if ctx.rank() == 0 {
                    reports.lock().unwrap().push(r);
                }
            }
        }
        u.fold_assigned(0.0, |acc, _, v| acc + v)
    })
    .unwrap()
}

#[test]
fn delta_restart_is_bitwise_identical_on_any_task_count() {
    let reports = Mutex::new(Vec::new());
    let reference: f64 = run_app(&fs(), 4, None, &[], 10, &dcfg(), &reports).into_iter().sum();

    for restart_tasks in [2usize, 4, 6] {
        let f = fs();
        let reports = Mutex::new(Vec::new());
        run_app(&f, 4, None, &[3, 6], 6, &dcfg(), &reports);
        let total: f64 =
            run_app(&f, restart_tasks, Some("ck/d6"), &[], 10, &dcfg(), &reports).into_iter().sum();
        assert_eq!(
            total, reference,
            "delta restart with {restart_tasks} tasks diverged from uninterrupted run"
        );
    }
}

#[test]
fn deltas_shrink_and_materialize_bitwise() {
    let f = fs();
    let reports = Mutex::new(Vec::new());
    run_app(&f, 4, None, &[3, 6], 6, &dcfg(), &reports);
    let reports = reports.into_inner().unwrap();
    assert_eq!(reports.len(), 2);

    // First checkpoint of the chain is a full rewrite; the second is a
    // delta that carries clean chunks forward and writes far less.
    assert!(reports[0].full && !reports[1].full);
    assert_eq!(reports[0].clean_chunks, 0, "full rewrite carries nothing forward");
    assert!(reports[1].clean_chunks > 0, "delta carried nothing forward");
    assert!(
        reports[1].pack_bytes * 2 <= reports[0].pack_bytes,
        "delta wrote {} pack bytes vs {} full",
        reports[1].pack_bytes,
        reports[0].pack_bytes
    );
    assert_eq!(reports[1].chain_depth, 1);

    // Both links verify and materialize bitwise against ground truth.
    let found = find_checkpoints(&f, Some("mini"));
    for (prefix, iter) in [("ck/d3", 3i64), ("ck/d6", 6)] {
        let (_, m) = found.iter().find(|(p, _)| p == prefix).expect("committed");
        assert_eq!(m.kind, CkptKind::DrmsDelta);
        assert!(checkpoint_is_valid(&f, prefix), "{prefix} fails validation");
        assert_eq!(
            materialize_stream(&f, prefix, m, "u").unwrap(),
            expected_stream(iter),
            "{prefix} does not materialize bitwise"
        );
    }

    // The delta link references the full link's pack by prefix, one hop.
    let (_, m6) = found.iter().find(|(p, _)| p == "ck/d6").unwrap();
    let d = m6.delta("u").unwrap();
    assert_eq!(d.chunk_bytes, CHUNK);
    let mut refs = 0;
    for c in &d.chunks {
        if let ChunkSource::Ref { prefix, array } = &c.source {
            assert_eq!((prefix.as_str(), array.as_str()), ("ck/d3", "u"));
            refs += 1;
        }
    }
    assert!(refs > 0, "delta manifest holds no references");
}

#[test]
fn full_every_bounds_the_chain() {
    let f = fs();
    let reports = Mutex::new(Vec::new());
    let dc = DeltaConfig { full_every: 2, ..dcfg() };
    run_app(&f, 2, None, &[1, 2, 3, 4], 4, &dc, &reports);
    let fulls: Vec<bool> = reports.into_inner().unwrap().iter().map(|r| r.full).collect();
    // Epoch of 2: at most one incremental between full rewrites.
    assert_eq!(fulls, vec![true, false, true, false]);
    // A full rewrite is self-contained: no references out of its manifest.
    let found = find_checkpoints(&f, Some("mini"));
    let (_, m3) = found.iter().find(|(p, _)| p == "ck/d3").unwrap();
    assert!(m3.referenced_packs().is_empty(), "full rewrite references prior incarnations");
}

#[test]
fn constant_arrays_compress_and_round_trip() {
    let f = fs();
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, _) = Drms::initialize(ctx, &f, cfg(), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut flat = DistArray::<f64>::new("flat", Order::ColumnMajor, dist, ctx.rank());
        flat.fill_assigned(|_| 0.0);
        let mut chain = DeltaChain::new();
        let r = delta_checkpoint(
            &mut drms,
            &mut chain,
            &dcfg(),
            ctx,
            &f,
            "ck/flat",
            &DataSegment::new(),
            &[&flat],
        )
        .unwrap();
        if ctx.rank() == 0 {
            // An all-zero stream: one stored chunk (RLE-compressed), the
            // rest deduplicated against it inside the same pack.
            assert!(r.compressed_saved > 0, "constant chunks did not compress");
            assert!(r.dedup_hits >= 30, "constant chunks did not dedup: {}", r.dedup_hits);
            assert!(r.pack_bytes < CHUNK, "pack is {} bytes", r.pack_bytes);
        }
    })
    .unwrap();
    let (prefix, m) = find_checkpoints(&f, Some("mini")).remove(0);
    let d = m.delta("flat").unwrap();
    assert!(d.chunks.iter().any(|c| c.codec == Codec::Rle));
    assert_eq!(materialize_stream(&f, &prefix, &m, "flat").unwrap(), vec![0u8; (N * 8) as usize]);
    // Compression never leaks into pack size beyond what was stored.
    assert!(f.size(&delta_path(&prefix, "flat")).unwrap() < CHUNK);
}

#[test]
fn initialize_and_resume_reject_each_others_kind() {
    let f = fs();
    let reports = Mutex::new(Vec::new());
    run_app(&f, 2, None, &[2], 2, &dcfg(), &reports);
    run_spmd(2, CostModel::default(), |ctx| {
        // The classic entry point refuses a delta manifest...
        let err = Drms::initialize(ctx, &f, cfg(), EnableFlag::new(), Some("ck/d2"));
        assert!(err.is_err(), "initialize accepted a delta checkpoint");
        // ...and writes a classic checkpoint that `resume` refuses.
        let (mut drms, _) = Drms::initialize(ctx, &f, cfg(), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| truth(p, 0));
        drms.reconfig_checkpoint(ctx, &f, "ck/full", &DataSegment::new(), &[&u]).unwrap();
        let err = resume(ctx, &f, cfg(), EnableFlag::new(), "ck/full");
        assert!(err.is_err(), "resume accepted a full checkpoint");
    })
    .unwrap();
}

#[test]
fn fresh_prefix_is_required() {
    let f = fs();
    let reports = Mutex::new(Vec::new());
    run_app(&f, 2, None, &[2], 2, &dcfg(), &reports);
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, start) = resume(ctx, &f, cfg(), EnableFlag::new(), "ck/d2").unwrap();
        let Start::Restarted(info) = start else { panic!("expected restart") };
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        restore_arrays_delta(&drms, ctx, &f, "ck/d2", &info.manifest, &mut [&mut u]).unwrap();
        let mut chain = DeltaChain::recover("ck/d2", &info.manifest).unwrap();
        let err = delta_checkpoint(
            &mut drms,
            &mut chain,
            &dcfg(),
            ctx,
            &f,
            "ck/d2", // already committed: would clobber a referenced link
            &DataSegment::new(),
            &[&u],
        );
        assert!(err.is_err(), "delta checkpoint overwrote a committed prefix");
        // The chain aborted cleanly: the next checkpoint to a fresh prefix
        // still works and still carries clean chunks forward.
        let r = delta_checkpoint(
            &mut drms,
            &mut chain,
            &dcfg(),
            ctx,
            &f,
            "ck/d2b",
            &DataSegment::new(),
            &[&u],
        )
        .unwrap();
        if ctx.rank() == 0 {
            assert!(!r.full);
            assert_eq!(r.dirty_chunks, 0, "unchanged array re-stored chunks");
        }
    })
    .unwrap();
}
