//! Per-PIOFS-server utilization and Gantt report.
//!
//! The `piofs` crate exports one busy interval per server per priced I/O
//! phase (the later of the server's prior busy horizon and the phase
//! start, up to the server's new horizon), so per-server intervals never
//! overlap and utilization is a plain sum against the operation window.

use drms_obs::ServerInterval;

/// Aggregate utilization of one PIOFS server over an operation window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerRow {
    /// Server index.
    pub server: usize,
    /// Total busy time in simulated seconds.
    pub busy: f64,
    /// Number of busy intervals.
    pub intervals: usize,
    /// Earliest busy start.
    pub first: f64,
    /// Latest busy end — the server's finish horizon.
    pub last: f64,
}

impl ServerRow {
    /// Busy fraction of `wall` (0 when `wall` is 0).
    pub fn utilization(&self, wall: f64) -> f64 {
        if wall > 0.0 {
            self.busy / wall
        } else {
            0.0
        }
    }
}

/// Per-server utilization report plus the interval list for Gantt
/// rendering.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// One row per server that was ever busy, sorted by server index.
    pub rows: Vec<ServerRow>,
    /// All busy intervals, deterministically sorted (Gantt source).
    pub intervals: Vec<ServerInterval>,
}

impl ServerReport {
    /// The server gating the operation: latest finish horizon, ties to
    /// the larger busy total, then the lower index.
    pub fn slowest(&self) -> Option<usize> {
        self.rows
            .iter()
            .max_by(|a, b| {
                a.last
                    .total_cmp(&b.last)
                    .then(a.busy.total_cmp(&b.busy))
                    .then(b.server.cmp(&a.server))
            })
            .map(|r| r.server)
    }

    /// Busy-time imbalance: max busy over mean busy (1.0 = perfectly
    /// balanced, 0 when no server was busy).
    pub fn imbalance(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let max = self.rows.iter().map(|r| r.busy).fold(0.0, f64::max);
        let mean = self.rows.iter().map(|r| r.busy).sum::<f64>() / self.rows.len() as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    }
}

/// Aggregates deterministically sorted server intervals (as returned by
/// `TraceRecorder::server_intervals`) into the per-server report.
pub fn server_report(intervals: &[ServerInterval]) -> ServerReport {
    let mut rows: Vec<ServerRow> = Vec::new();
    for iv in intervals {
        match rows.iter_mut().find(|r| r.server == iv.server) {
            Some(r) => {
                r.busy += iv.end - iv.start;
                r.intervals += 1;
                r.first = r.first.min(iv.start);
                r.last = r.last.max(iv.end);
            }
            None => rows.push(ServerRow {
                server: iv.server,
                busy: iv.end - iv.start,
                intervals: 1,
                first: iv.start,
                last: iv.end,
            }),
        }
    }
    rows.sort_by_key(|r| r.server);
    ServerReport { rows, intervals: intervals.to_vec() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(server: usize, start: f64, end: f64) -> ServerInterval {
        ServerInterval { server, name: "collective".into(), start, end }
    }

    #[test]
    fn aggregates_busy_time_per_server() {
        let report = server_report(&[iv(0, 0.0, 1.0), iv(1, 0.0, 3.0), iv(0, 2.0, 2.5)]);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.rows[0].server, 0);
        assert!((report.rows[0].busy - 1.5).abs() < 1e-12);
        assert_eq!(report.rows[0].intervals, 2);
        assert_eq!(report.rows[0].last, 2.5);
        assert_eq!(report.slowest(), Some(1));
        assert!((report.rows[1].utilization(3.0) - 1.0).abs() < 1e-12);
        // max 3.0 over mean 2.25.
        assert!((report.imbalance() - 3.0 / 2.25).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_well_behaved() {
        let report = server_report(&[]);
        assert!(report.rows.is_empty());
        assert_eq!(report.slowest(), None);
        assert_eq!(report.imbalance(), 0.0);
    }
}
