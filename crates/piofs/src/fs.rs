use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use drms_msg::Ctx;
use drms_obs::{names, Phase, Recorder};

use crate::config::PiofsConfig;
use crate::phase::{price_phase, DescKind, Pricing, ReadAccess, ReadReq, ReqDesc, WriteReq};
use crate::rng::SplitMix64;
use crate::store::FileData;
use crate::stripe::striped_bytes;

/// Errors from file-system operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PiofsError {
    /// The path does not name a file.
    NotFound(
        /// Offending path.
        String,
    ),
    /// A read past the end of the file.
    OutOfBounds {
        /// Offending path.
        path: String,
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file size.
        size: u64,
    },
}

impl fmt::Display for PiofsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PiofsError::NotFound(p) => write!(f, "no such file: {p}"),
            PiofsError::OutOfBounds { path, offset, len, size } => write!(
                f,
                "read [{offset}, {}) out of bounds for {path} (size {size})",
                offset + len
            ),
        }
    }
}

impl std::error::Error for PiofsError {}

/// Metadata about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileInfo {
    /// Logical path.
    pub path: String,
    /// Size in bytes.
    pub size: u64,
}

struct State {
    files: HashMap<String, FileData>,
    next_id: u64,
    busy: Vec<f64>,
    residency: Vec<u64>,
    rng: SplitMix64,
}

/// The simulated parallel file system.
///
/// Shared by all tasks of a region (and across regions: checkpoint files
/// survive application restarts). All operations that move data also advance
/// the calling task's virtual clock according to the cost model.
pub struct Piofs {
    cfg: PiofsConfig,
    state: Mutex<State>,
}

/// Descriptor as exchanged between tasks in a collective phase.
#[derive(Debug, Clone)]
struct WireDesc {
    path: String,
    offset: u64,
    len: u64,
    kind: DescKind,
}

impl Piofs {
    /// Creates a file system with the given configuration and jitter seed.
    pub fn new(cfg: PiofsConfig, seed: u64) -> Arc<Piofs> {
        let n = cfg.n_servers;
        Arc::new(Piofs {
            cfg,
            state: Mutex::new(State {
                files: HashMap::new(),
                next_id: 0,
                busy: vec![0.0; n],
                residency: vec![0; n],
                rng: SplitMix64::new(seed),
            }),
        })
    }

    /// The configuration in effect.
    pub fn cfg(&self) -> &PiofsConfig {
        &self.cfg
    }

    /// Registers the resident memory of the application task placed on
    /// `node`; drives the co-location interference and buffer-memory
    /// mechanisms. Nodes outside the server set are ignored.
    pub fn set_residency(&self, node: usize, bytes: u64) {
        let mut st = self.state.lock();
        if node < st.residency.len() {
            st.residency[node] = bytes;
        }
    }

    /// Clears all registered task residency (application terminated).
    pub fn clear_residency(&self) {
        let mut st = self.state.lock();
        st.residency.iter_mut().for_each(|r| *r = 0);
    }

    /// Resets the per-server busy horizon (between independent experiment
    /// runs).
    pub fn reset_time(&self) {
        let mut st = self.state.lock();
        st.busy.iter_mut().for_each(|b| *b = 0.0);
    }

    // ------------------------------------------------------------------
    // Namespace
    // ------------------------------------------------------------------

    /// Creates (or truncates) a file.
    pub fn create(&self, path: &str) {
        let mut st = self.state.lock();
        let id = st.alloc_id();
        st.files.insert(path.to_string(), FileData::new(id));
    }

    /// Deletes a file; `true` if it existed.
    pub fn delete(&self, path: &str) -> bool {
        self.state.lock().files.remove(path).is_some()
    }

    /// Whether a file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.state.lock().files.contains_key(path)
    }

    /// Size of a file in bytes.
    pub fn size(&self, path: &str) -> Result<u64, PiofsError> {
        self.state
            .lock()
            .files
            .get(path)
            .map(FileData::len)
            .ok_or_else(|| PiofsError::NotFound(path.to_string()))
    }

    /// All files whose path starts with `prefix`, sorted by path.
    pub fn list(&self, prefix: &str) -> Vec<FileInfo> {
        let st = self.state.lock();
        let mut out: Vec<FileInfo> = st
            .files
            .iter()
            .filter(|(p, _)| p.starts_with(prefix))
            .map(|(p, f)| FileInfo { path: p.clone(), size: f.len() })
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Total bytes stored under `prefix` (the paper's "size of saved
    /// state" metric).
    pub fn total_bytes(&self, prefix: &str) -> u64 {
        self.list(prefix).iter().map(|f| f.size).sum()
    }

    /// Raw file contents without touching the clock (diagnostics/tests).
    pub fn peek(&self, path: &str) -> Option<Vec<u8>> {
        self.state.lock().files.get(path).map(|f| f.bytes.clone())
    }

    /// Installs a file without charging simulated time — environment setup
    /// (e.g. placing an application binary) that happens before the
    /// experiment clock starts.
    pub fn preload(&self, path: &str, bytes: Vec<u8>) {
        let mut st = self.state.lock();
        st.intern(path);
        let f = st.files.get_mut(path).expect("interned");
        f.bytes = bytes;
    }

    // ------------------------------------------------------------------
    // Single-client I/O
    // ------------------------------------------------------------------

    /// Writes `data` at `offset`, creating the file if needed. Single-client
    /// operation: only the calling task is involved (e.g. the representative
    /// task writing the data segment while siblings wait at a barrier).
    pub fn write_at(&self, ctx: &mut Ctx, path: &str, offset: u64, data: &[u8]) {
        let node = ctx.node();
        let rank = ctx.rank();
        let now = ctx.now();
        let mut st = self.state.lock();
        let id = st.intern(path);
        st.files.get_mut(path).expect("interned").write_at(offset, data);
        let desc = ReqDesc {
            client: rank,
            node,
            path_id: id,
            offset,
            len: data.len() as u64,
            kind: DescKind::Write,
        };
        let pricing = st.price(&self.cfg, now, &[desc], &[rank]);
        drop(st);
        self.observe_phase(
            ctx.recorder(),
            rank,
            "write_at",
            &[(offset, data.len() as u64)],
            &pricing,
        );
        ctx.advance_to(pricing.completion[&rank]);
    }

    /// Reads `len` bytes at `offset`. Single-client operation.
    pub fn read_at(
        &self,
        ctx: &mut Ctx,
        path: &str,
        offset: u64,
        len: u64,
        access: ReadAccess,
    ) -> Result<Vec<u8>, PiofsError> {
        let node = ctx.node();
        let rank = ctx.rank();
        let now = ctx.now();
        let mut st = self.state.lock();
        let file = st.files.get(path).ok_or_else(|| PiofsError::NotFound(path.to_string()))?;
        let data = file.read_at(offset, len).ok_or_else(|| PiofsError::OutOfBounds {
            path: path.to_string(),
            offset,
            len,
            size: file.len(),
        })?;
        let id = file.id;
        let desc =
            ReqDesc { client: rank, node, path_id: id, offset, len, kind: DescKind::Read(access) };
        let pricing = st.price(&self.cfg, now, &[desc], &[rank]);
        drop(st);
        self.observe_phase(ctx.recorder(), rank, "read_at", &[(offset, len)], &pricing);
        ctx.advance_to(pricing.completion[&rank]);
        Ok(data)
    }

    // ------------------------------------------------------------------
    // Collective I/O
    // ------------------------------------------------------------------

    /// Collective write: every task of the region calls this with its own
    /// (possibly empty) request list. Bytes are stored immediately; the
    /// phase is priced once, deterministically, and every task's clock
    /// advances to its computed completion.
    pub fn collective_write(&self, ctx: &mut Ctx, reqs: Vec<WriteReq>) {
        // Store this task's bytes and build wire descriptors.
        let mut descs = Vec::with_capacity(reqs.len());
        {
            let mut st = self.state.lock();
            for r in &reqs {
                st.intern(&r.path);
                st.files.get_mut(&r.path).expect("interned").write_at(r.offset, &r.data);
                descs.push(WireDesc {
                    path: r.path.clone(),
                    offset: r.offset,
                    len: r.data.len() as u64,
                    kind: DescKind::Write,
                });
            }
        }
        self.run_phase(ctx, descs);
    }

    /// Collective read: every task calls with its own request list and gets
    /// its data back, one buffer per request, in request order.
    pub fn collective_read(
        &self,
        ctx: &mut Ctx,
        reqs: Vec<ReadReq>,
    ) -> Result<Vec<Vec<u8>>, PiofsError> {
        let descs: Vec<WireDesc> = reqs
            .iter()
            .map(|r| WireDesc {
                path: r.path.clone(),
                offset: r.offset,
                len: r.len,
                kind: DescKind::Read(r.access),
            })
            .collect();
        self.run_phase(ctx, descs);
        // Fetch this task's data (contents are stable during the phase).
        let st = self.state.lock();
        let mut out = Vec::with_capacity(reqs.len());
        for r in &reqs {
            let file = st.files.get(&r.path).ok_or_else(|| PiofsError::NotFound(r.path.clone()))?;
            let data = file.read_at(r.offset, r.len).ok_or_else(|| PiofsError::OutOfBounds {
                path: r.path.clone(),
                offset: r.offset,
                len: r.len,
                size: file.len(),
            })?;
            out.push(data);
        }
        Ok(out)
    }

    /// Exchanges descriptors, prices the phase on rank 0, and advances every
    /// participant's clock.
    fn run_phase(&self, ctx: &mut Ctx, descs: Vec<WireDesc>) {
        let rank = ctx.rank();
        let nodes: Vec<usize> = (0..ctx.ntasks()).map(|r| ctx.node_of(r)).collect();
        let (all_descs, t_sync) = ctx.exchange(descs);

        let pricing: Option<Arc<Pricing>> = if rank == 0 {
            let mut st = self.state.lock();
            let mut flat = Vec::new();
            for (client, ds) in all_descs.iter().enumerate() {
                for d in ds {
                    let path_id = st.intern(&d.path);
                    flat.push(ReqDesc {
                        client,
                        node: nodes[client],
                        path_id,
                        offset: d.offset,
                        len: d.len,
                        kind: d.kind,
                    });
                }
            }
            let participants: Vec<usize> = (0..ctx.ntasks()).collect();
            let priced = st.price(&self.cfg, t_sync, &flat, &participants);
            drop(st);
            let extents: Vec<(u64, u64)> = flat.iter().map(|d| (d.offset, d.len)).collect();
            self.observe_phase(ctx.recorder(), 0, "collective", &extents, &priced);
            Some(Arc::new(priced))
        } else {
            None
        };

        let (priced, _) = ctx.exchange(pricing);
        let pricing = priced[0].as_ref().expect("rank 0 priced the phase");
        ctx.advance_to(pricing.completion[&rank]);
    }

    /// Reports one priced phase to the recorder: a span over the phase
    /// wall time, request/stripe counters, and the per-server busy-horizon
    /// gauges. No-op under the null recorder.
    fn observe_phase(
        &self,
        rec: &dyn Recorder,
        rank: usize,
        name: &str,
        extents: &[(u64, u64)],
        pricing: &Pricing,
    ) {
        if !rec.enabled() {
            return;
        }
        let n = self.cfg.n_servers;
        rec.counter_add(rank, names::IO_PHASES, None, 1);
        rec.counter_add(rank, names::IO_REQUESTS, None, extents.len() as u64);
        let stripes: u64 = extents
            .iter()
            .map(|&(off, len)| {
                (0..n)
                    .filter(|&k| striped_bytes(self.cfg.stripe_unit, n, off, off + len, k) > 0)
                    .count() as u64
            })
            .sum();
        rec.counter_add(rank, names::STRIPES_TOUCHED, None, stripes);
        let end = pricing.completion.values().fold(pricing.t0, |a, &b| a.max(b));
        rec.span_start(pricing.t0, rank, Phase::IoPhase, name);
        rec.span_end(end, rank, Phase::IoPhase, name);
        for (k, &b) in pricing.server_busy.iter().enumerate() {
            rec.gauge_set(names::SERVER_BUSY, k, b);
        }
    }
}

impl State {
    fn alloc_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Ensures `path` exists, returning its id.
    fn intern(&mut self, path: &str) -> u64 {
        if let Some(f) = self.files.get(path) {
            return f.id;
        }
        let id = self.alloc_id();
        self.files.insert(path.to_string(), FileData::new(id));
        id
    }

    /// Prices a phase against current server state and applies its effects.
    fn price(
        &mut self,
        cfg: &PiofsConfig,
        t_sync: f64,
        reqs: &[ReqDesc],
        participants: &[usize],
    ) -> Pricing {
        let pricing = price_phase(
            cfg,
            &self.busy,
            &self.residency,
            t_sync,
            reqs,
            participants,
            &mut self.rng,
        );
        self.busy = pricing.server_busy.clone();
        pricing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_msg::{run_spmd, CostModel};

    fn fs() -> Arc<Piofs> {
        Piofs::new(PiofsConfig::test_tiny(4), 1)
    }

    #[test]
    fn namespace_operations() {
        let fs = fs();
        assert!(!fs.exists("a"));
        fs.create("a");
        assert!(fs.exists("a"));
        assert_eq!(fs.size("a").unwrap(), 0);
        assert!(fs.size("b").is_err());
        fs.create("dir/x");
        fs.create("dir/y");
        let listed = fs.list("dir/");
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].path, "dir/x");
        assert!(fs.delete("a"));
        assert!(!fs.delete("a"));
    }

    #[test]
    fn single_client_roundtrip() {
        let fs = fs();
        let out = run_spmd(1, CostModel::free(), |ctx| {
            fs.write_at(ctx, "f", 0, &[1, 2, 3, 4]);
            fs.write_at(ctx, "f", 2, &[9, 9]);
            fs.read_at(ctx, "f", 0, 4, ReadAccess::Sequential).unwrap()
        })
        .unwrap();
        assert_eq!(out[0], vec![1, 2, 9, 9]);
    }

    #[test]
    fn read_errors() {
        let fs = fs();
        run_spmd(1, CostModel::free(), |ctx| {
            assert!(matches!(
                fs.read_at(ctx, "missing", 0, 1, ReadAccess::Sequential),
                Err(PiofsError::NotFound(_))
            ));
            fs.write_at(ctx, "f", 0, &[0; 8]);
            assert!(matches!(
                fs.read_at(ctx, "f", 5, 10, ReadAccess::Sequential),
                Err(PiofsError::OutOfBounds { .. })
            ));
        })
        .unwrap();
    }

    #[test]
    fn collective_write_then_read_roundtrip() {
        let fs = fs();
        let out = run_spmd(4, CostModel::free(), |ctx| {
            let rank = ctx.rank() as u8;
            // Each task writes 100 bytes of its rank at its own offset of a
            // shared file.
            fs.collective_write(
                ctx,
                vec![WriteReq {
                    path: "shared".into(),
                    offset: rank as u64 * 100,
                    data: vec![rank; 100],
                }],
            );
            // Everyone reads the whole file.
            let got = fs
                .collective_read(
                    ctx,
                    vec![ReadReq {
                        path: "shared".into(),
                        offset: 0,
                        len: 400,
                        access: ReadAccess::Sequential,
                    }],
                )
                .unwrap();
            got.into_iter().next().unwrap()
        })
        .unwrap();
        let mut expect = Vec::new();
        for r in 0..4u8 {
            expect.extend(vec![r; 100]);
        }
        for got in out {
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn collective_with_empty_requests() {
        let fs = fs();
        run_spmd(3, CostModel::free(), |ctx| {
            let reqs = if ctx.rank() == 0 {
                vec![WriteReq { path: "solo".into(), offset: 0, data: vec![7; 10] }]
            } else {
                Vec::new()
            };
            fs.collective_write(ctx, reqs);
        })
        .unwrap();
        assert_eq!(fs.peek("solo").unwrap(), vec![7; 10]);
    }

    #[test]
    fn clocks_advance_with_costs() {
        let fs = Piofs::new(PiofsConfig::sp_1997(), 1);
        let out = run_spmd(2, CostModel::free(), |ctx| {
            fs.collective_write(
                ctx,
                vec![WriteReq {
                    path: "t".into(),
                    offset: ctx.rank() as u64 * (1 << 20),
                    data: vec![1; 1 << 20],
                }],
            );
            ctx.now()
        })
        .unwrap();
        // 1 MB per client over a ~21 MB/s aggregate: must take real
        // simulated time.
        assert!(out[0] > 0.01, "t = {}", out[0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| -> f64 {
            let fs = Piofs::new(PiofsConfig::sp_1997(), seed);
            run_spmd(4, CostModel::free(), |ctx| {
                fs.collective_write(
                    ctx,
                    vec![WriteReq {
                        path: format!("f{}", ctx.rank()),
                        offset: 0,
                        data: vec![0; 4 << 20],
                    }],
                );
                ctx.now()
            })
            .unwrap()
            .into_iter()
            .fold(0.0, f64::max)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn total_bytes_sums_prefix() {
        let fs = fs();
        run_spmd(1, CostModel::free(), |ctx| {
            fs.write_at(ctx, "ck/a", 0, &[0; 100]);
            fs.write_at(ctx, "ck/b", 0, &[0; 50]);
            fs.write_at(ctx, "other", 0, &[0; 999]);
        })
        .unwrap();
        assert_eq!(fs.total_bytes("ck/"), 150);
    }
}
