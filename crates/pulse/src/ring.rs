//! Bounded per-task sample rings: the producer side of the pulse pipeline.
//!
//! Each SPMD task (plus the control plane, which reports as rank 0 between
//! regions) pushes fixed-size [`Sample`]s into its own ring; the collector
//! drains them in batches. Rings are single-producer in practice — the
//! runtime gives every rank its own OS thread — so the mutex guarding each
//! ring is effectively uncontended except against the drainer, and the
//! critical section is a bounds check plus a push.
//!
//! Two invariants make downstream windowing deterministic regardless of
//! when (or how often) the collector drains:
//!
//! * **Per-ring monotone stamps.** Every sample's window-assignment stamp
//!   is clamped to the ring's high-water mark at push time
//!   (`max(t, hwm)`), so a ring's stamp sequence never goes backward even
//!   when callers report retroactive times (phase spans recorded after the
//!   fact, control-plane events carrying sequence numbers, incarnation
//!   restarts that reset the simulated clock). The clamp depends only on
//!   the ring's own sample sequence, never on drain timing.
//! * **Raw times preserved.** The caller's uncorrected `t` rides along in
//!   [`Sample::raw_t`], so span durations are computed from the exact
//!   values a post-hoc trace would see.

use drms_obs::Phase;
use parking_lot::Mutex;

/// What one sample reports. Payloads are fixed-size — no strings — so a
/// push never allocates beyond the ring's own growth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Payload {
    /// A span opened (`phase` identifies it; names are not needed online).
    SpanStart { phase: Phase },
    /// The most recent open span of `phase` on this rank closed.
    SpanEnd { phase: Phase },
    /// An instantaneous event.
    Event { phase: Phase },
    /// `delta` added to counter `name`.
    Counter { name: &'static str, delta: u64 },
    /// Gauge `name[index]` set to `value`.
    Gauge { name: &'static str, index: usize, value: f64 },
    /// A point-to-point message left this rank.
    MsgSent { bytes: u64 },
    /// A point-to-point message was delivered to this rank.
    MsgReceived,
    /// One PIOFS server accrued `seconds` of busy time in a priced phase.
    ServerBusy { server: usize, seconds: f64 },
}

/// One sample: a monotone window stamp, the raw caller time, the reporting
/// rank, and the payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Sample {
    /// Window-assignment time: per-ring monotone (clamped at push).
    pub stamp: f64,
    /// The caller-supplied simulated time, unclamped (span arithmetic).
    pub raw_t: f64,
    /// Reporting rank.
    pub rank: usize,
    /// What happened.
    pub payload: Payload,
}

struct Inner {
    queue: Vec<Sample>,
    hwm: f64,
    dropped: u64,
}

/// A bounded sample ring for one task.
pub(crate) struct Ring {
    inner: Mutex<Inner>,
    cap: usize,
}

/// What one drain took from a ring.
pub(crate) struct Drained {
    pub samples: Vec<Sample>,
    /// Highest stamp the ring has ever accepted (the settlement watermark).
    pub hwm: f64,
    /// Samples dropped on the floor since the previous drain.
    pub dropped: u64,
}

impl Ring {
    pub fn new(cap: usize) -> Ring {
        Ring {
            inner: Mutex::new(Inner { queue: Vec::new(), hwm: 0.0, dropped: 0 }),
            cap: cap.max(1),
        }
    }

    /// Pushes a sample stamped `max(t, hwm)`; non-finite times collapse to
    /// the high-water mark so window arithmetic never sees NaN/inf.
    pub fn push(&self, t: f64, rank: usize, payload: Payload) {
        let mut g = self.inner.lock();
        if g.queue.len() >= self.cap {
            g.dropped += 1;
            return;
        }
        let stamp = if t.is_finite() { t.max(g.hwm) } else { g.hwm };
        g.hwm = stamp;
        g.queue.push(Sample { stamp, raw_t: if t.is_finite() { t } else { stamp }, rank, payload });
    }

    /// Pushes a sample stamped at the ring's current high-water mark, for
    /// reports that carry no timestamp of their own (legacy `counter_add`,
    /// gauges).
    pub fn push_at_hwm(&self, rank: usize, payload: Payload) {
        let mut g = self.inner.lock();
        if g.queue.len() >= self.cap {
            g.dropped += 1;
            return;
        }
        let stamp = g.hwm;
        g.queue.push(Sample { stamp, raw_t: stamp, rank, payload });
    }

    /// Takes everything queued, plus the ring's watermark bookkeeping.
    pub fn drain(&self) -> Drained {
        let mut g = self.inner.lock();
        let samples = std::mem::take(&mut g.queue);
        let dropped = std::mem::take(&mut g.dropped);
        Drained { samples, hwm: g.hwm, dropped }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_monotone_and_raw_times_survive() {
        let r = Ring::new(16);
        r.push(2.0, 0, Payload::Event { phase: Phase::Control });
        r.push(1.0, 0, Payload::Event { phase: Phase::Control }); // retroactive
        r.push(3.0, 0, Payload::Event { phase: Phase::Control });
        let d = r.drain();
        let stamps: Vec<f64> = d.samples.iter().map(|s| s.stamp).collect();
        assert_eq!(stamps, vec![2.0, 2.0, 3.0]);
        let raw: Vec<f64> = d.samples.iter().map(|s| s.raw_t).collect();
        assert_eq!(raw, vec![2.0, 1.0, 3.0]);
        assert_eq!(d.hwm, 3.0);
    }

    #[test]
    fn full_ring_counts_drops() {
        let r = Ring::new(2);
        for i in 0..5 {
            r.push(i as f64, 0, Payload::MsgReceived);
        }
        let d = r.drain();
        assert_eq!(d.samples.len(), 2);
        assert_eq!(d.dropped, 3);
        // Drops cleared by the drain; capacity is available again.
        r.push(9.0, 0, Payload::MsgReceived);
        let d = r.drain();
        assert_eq!(d.samples.len(), 1);
        assert_eq!(d.dropped, 0);
    }

    #[test]
    fn non_finite_times_collapse_to_hwm() {
        let r = Ring::new(8);
        r.push(5.0, 0, Payload::MsgReceived);
        r.push(f64::NAN, 0, Payload::MsgReceived);
        r.push(f64::INFINITY, 0, Payload::MsgReceived);
        let d = r.drain();
        assert!(d.samples.iter().all(|s| s.stamp == 5.0));
        assert!(d.samples.iter().all(|s| s.raw_t == 5.0));
    }
}
