//! In-memory byte store for logical files, with optional XOR parity.
//!
//! The store is honest about failure: when a server is killed, the byte
//! ranges it held are *actually overwritten* with a poison pattern (and
//! tracked in [`FileData::lost`]), so any read that claims to return the
//! original data must genuinely reconstruct it from parity plus the
//! surviving stripe units — there is no hidden copy to cheat from.

use std::collections::BTreeSet;

use crate::parity::ParityGeom;
use crate::stripe::IntervalSet;

/// Pattern written over byte ranges lost with a failed server.
pub(crate) const POISON: u8 = 0xDB;

/// Contents and identity of one logical file.
#[derive(Debug)]
pub(crate) struct FileData {
    /// Interned identity, stable for the life of the namespace entry.
    pub id: u64,
    /// The file's bytes, contiguous. Striping is a property of the cost
    /// model, not of the storage representation. Ranges in `lost` hold
    /// poison, not data.
    pub bytes: Vec<u8>,
    /// Parity blocks, group-major, one stripe unit per group (empty when
    /// parity is off). Invariant: an intact block is the byte-wise XOR of
    /// its group's *true* unit contents, zero-padded past end-of-file.
    pub parity: Vec<u8>,
    /// Logical byte ranges whose server is down (poisoned in `bytes`).
    pub lost: IntervalSet,
    /// Groups whose parity block is unavailable: its server is down, or
    /// the block could not be maintained through a degraded write.
    pub parity_lost: BTreeSet<u64>,
}

impl FileData {
    pub fn new(id: u64) -> FileData {
        FileData {
            id,
            bytes: Vec::new(),
            parity: Vec::new(),
            lost: IntervalSet::new(),
            parity_lost: BTreeSet::new(),
        }
    }

    /// Writes `data` at `offset`, zero-extending the file as needed. Raw:
    /// no parity maintenance (use [`FileData::write_parity_aware`] on the
    /// I/O path).
    pub fn write_at(&mut self, offset: u64, data: &[u8]) {
        let offset = offset as usize;
        let end = offset + data.len();
        if end > self.bytes.len() {
            self.bytes.resize(end, 0);
        }
        self.bytes[offset..end].copy_from_slice(data);
    }

    /// Reads `len` bytes at `offset`; `None` if out of bounds. Raw: lost
    /// ranges come back as poison.
    pub fn read_at(&self, offset: u64, len: u64) -> Option<Vec<u8>> {
        let offset = offset as usize;
        let len = len as usize;
        let end = offset.checked_add(len)?;
        if end > self.bytes.len() {
            return None;
        }
        Some(self.bytes[offset..end].to_vec())
    }

    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    // ------------------------------------------------------------------
    // Parity maintenance
    // ------------------------------------------------------------------

    /// Stored byte at logical position `b`, zero past end-of-file (the
    /// padding convention parity is computed under).
    fn byte_or_zero(&self, b: u64) -> u8 {
        self.bytes.get(b as usize).copied().unwrap_or(0)
    }

    /// Stripe units of group `grp` that overlap a lost range.
    fn lost_units_in_group(&self, grp: u64, g: &ParityGeom) -> Vec<u64> {
        g.units_of_group(grp)
            .filter(|&u| {
                let (s, e) = g.unit_range(u, self.len());
                self.lost.overlaps(s, e)
            })
            .collect()
    }

    /// Whether the data content of group `grp` can be (or already is)
    /// bitwise-true in memory: nothing lost, or exactly one unit lost with
    /// its parity block intact.
    fn group_feasible(&self, grp: u64, g: &ParityGeom) -> bool {
        let lost = self.lost_units_in_group(grp, g);
        lost.is_empty() || (lost.len() == 1 && !self.parity_lost.contains(&grp))
    }

    /// Restores the true contents of group `grp` into `bytes` (overwriting
    /// poison with the XOR reconstruction). Returns `false` when the group
    /// is unrecoverable (two losses).
    fn heal_group(&mut self, grp: u64, g: &ParityGeom) -> bool {
        let lost = self.lost_units_in_group(grp, g);
        if lost.is_empty() {
            return true;
        }
        if lost.len() > 1 || self.parity_lost.contains(&grp) {
            return false;
        }
        let u = lost[0];
        let (s, e) = g.unit_range(u, self.len());
        for b in s..e {
            let o = b - u * g.stripe_unit;
            let mut v = self.parity[(grp * g.stripe_unit + o) as usize];
            for u2 in g.units_of_group(grp) {
                if u2 != u {
                    v ^= self.byte_or_zero(u2 * g.stripe_unit + o);
                }
            }
            self.bytes[b as usize] = v;
        }
        true
    }

    /// Recomputes the parity block of group `grp` from the current `bytes`.
    fn recompute_parity_group(&mut self, grp: u64, g: &ParityGeom) {
        let su = g.stripe_unit;
        let base = (grp * su) as usize;
        if self.parity.len() < base + su as usize {
            self.parity.resize(base + su as usize, 0);
        }
        for o in 0..su {
            let mut v = 0u8;
            for u in g.units_of_group(grp) {
                v ^= self.byte_or_zero(u * su + o);
            }
            self.parity[base + o as usize] = v;
        }
    }

    /// Overwrites every lost range with poison (dead servers hold nothing,
    /// even right after a write addressed bytes to them).
    fn repoison(&mut self) {
        let ivs: Vec<(u64, u64)> = self.lost.intervals().to_vec();
        for (a, b) in ivs {
            let b = b.min(self.len());
            if a < b {
                self.bytes[a as usize..b as usize].fill(POISON);
            }
        }
    }

    /// Parity-aware write: the normal I/O path when parity is enabled
    /// (plain [`FileData::write_at`] when `geom` is `None`).
    ///
    /// Degraded-mode protocol per affected group: reconstruct any lost unit
    /// from old parity first (so memory briefly holds the group's true
    /// contents), apply the write, recompute the parity block — unless its
    /// server is down (`down[parity_server]`) or the group is unrecoverable,
    /// in which case the block is marked lost — and finally re-poison lost
    /// ranges. Net effect: parity always encodes the *new* true contents,
    /// so bytes written "to" a dead server remain reconstructible, exactly
    /// like a degraded RAID-5 write. Returns the number of parity bytes
    /// rewritten (the write-overhead the cost model charges for).
    pub fn write_parity_aware(
        &mut self,
        offset: u64,
        data: &[u8],
        geom: Option<&ParityGeom>,
        down: &[bool],
    ) -> u64 {
        let Some(g) = geom else {
            self.write_at(offset, data);
            self.repoison();
            return 0;
        };
        if data.is_empty() {
            return 0;
        }
        let end = offset + data.len() as u64;
        let groups = g.groups_overlapping(offset, end);
        let healed: Vec<(u64, bool)> = groups.map(|grp| (grp, self.heal_group(grp, g))).collect();
        self.write_at(offset, data);
        let mut parity_bytes = 0;
        for &(grp, ok) in &healed {
            if ok && !down[g.parity_server(grp)] {
                self.recompute_parity_group(grp, g);
                self.parity_lost.remove(&grp);
                parity_bytes += g.stripe_unit;
            } else {
                // Parity unavailable: either its server is down, or the
                // group's true contents are unknowable (double loss). Poison
                // the stale block so nothing reconstructs from it.
                self.poison_parity_group(grp, g);
            }
        }
        self.repoison();
        parity_bytes
    }

    fn poison_parity_group(&mut self, grp: u64, g: &ParityGeom) {
        let su = g.stripe_unit as usize;
        let base = grp as usize * su;
        if self.parity.len() >= base + su {
            self.parity[base..base + su].fill(POISON);
        }
        self.parity_lost.insert(grp);
    }

    /// XOR-reconstructs the true contents of `[s, e)` — a range inside one
    /// stripe unit — into `out`, from the parity block and the sibling
    /// units of its group. The stored bytes of the range's own unit never
    /// participate, so this works whether they are poisoned or silently
    /// corrupt. `false` when the group's parity is lost or a sibling is
    /// also lost. The per-group bookkeeping (interval checks, parity
    /// lookups) runs once per unit, not per byte — reconstruction of a
    /// multi-megabyte file has to stay cheap enough for restart reads.
    fn reconstruct_span(&self, s: u64, e: u64, g: &ParityGeom, out: &mut [u8]) -> bool {
        let u = s / g.stripe_unit;
        debug_assert_eq!((e - 1) / g.stripe_unit, u, "span crosses a stripe unit");
        let grp = g.group_of_byte(s);
        if self.parity_lost.contains(&grp) {
            return false;
        }
        let o0 = s % g.stripe_unit;
        let plen = (e - s) as usize;
        let pbase = (grp * g.stripe_unit + o0) as usize;
        if self.parity.len() < pbase + plen {
            return false; // parity block never materialized
        }
        out[..plen].copy_from_slice(&self.parity[pbase..pbase + plen]);
        for u2 in g.units_of_group(grp) {
            if u2 == u {
                continue;
            }
            let (s2, e2) = g.unit_range(u2, self.len());
            if self.lost.overlaps(s2, e2) {
                return false; // sibling also lost: double failure
            }
            let b2 = u2 * g.stripe_unit + o0;
            for (i, v) in out.iter_mut().take(plen).enumerate() {
                *v ^= self.byte_or_zero(b2 + i as u64);
            }
        }
        true
    }

    /// Logical read: raw bytes with any lost range transparently replaced
    /// by its XOR reconstruction. Returns the data and the number of
    /// reconstructed bytes, or the first unreconstructible lost range.
    pub fn read_logical(
        &self,
        offset: u64,
        len: u64,
        geom: Option<&ParityGeom>,
    ) -> Result<(Vec<u8>, u64), ReadFail> {
        let mut out = self.read_at(offset, len).ok_or(ReadFail::OutOfBounds)?;
        let end = offset + len;
        if !self.lost.overlaps(offset, end) {
            return Ok((out, 0));
        }
        let Some(g) = geom else {
            let (a, b) = self.lost.clipped(offset, end)[0];
            return Err(ReadFail::Lost { offset: a, len: b - a });
        };
        let mut reconstructed = 0;
        for (a, b) in self.lost.clipped(offset, end) {
            let mut s = a;
            while s < b {
                let e = b.min((s / g.stripe_unit + 1) * g.stripe_unit);
                let dst = (s - offset) as usize..(e - offset) as usize;
                if !self.reconstruct_span(s, e, g, &mut out[dst]) {
                    return Err(ReadFail::Lost { offset: a, len: b - a });
                }
                s = e;
            }
            reconstructed += b - a;
        }
        Ok((out, reconstructed))
    }

    /// Pure parity-based reconstruction of `[offset, offset + len)`,
    /// ignoring the stored bytes of that range — the repair source for a
    /// chunk whose checksum failed. `None` when any byte's group lacks
    /// intact parity or a surviving sibling set.
    pub fn reconstruct_range(&self, offset: u64, len: u64, g: &ParityGeom) -> Option<Vec<u8>> {
        let end = offset.checked_add(len)?;
        if end > self.len() {
            return None;
        }
        let mut out = vec![0u8; len as usize];
        let mut s = offset;
        while s < end {
            let e = end.min((s / g.stripe_unit + 1) * g.stripe_unit);
            let dst = (s - offset) as usize..(e - offset) as usize;
            if !self.reconstruct_span(s, e, g, &mut out[dst]) {
                return None;
            }
            s = e;
        }
        Some(out)
    }

    /// Marks server `k`'s stripe units as lost, overwriting them with
    /// poison; under parity mode (`parity_on`) the parity blocks hosted on
    /// `k` are poisoned too. The same striping applies either way — without
    /// parity the data is simply gone. Returns the data bytes lost in this
    /// file.
    pub fn fail_server(&mut self, k: usize, g: &ParityGeom, parity_on: bool) -> u64 {
        let mut lost = 0;
        let units = self.len().div_ceil(g.stripe_unit);
        for u in 0..units {
            if g.unit_server(u) == k {
                let (s, e) = g.unit_range(u, self.len());
                if s < e {
                    self.lost.insert(s, e);
                    lost += e - s;
                }
            }
        }
        if parity_on {
            for grp in 0..g.group_count(self.len()) {
                if g.parity_server(grp) == k {
                    self.poison_parity_group(grp, g);
                }
            }
        }
        self.repoison();
        lost
    }

    /// Repairs this file after server `k` comes back: lost units on `k` are
    /// reconstructed from parity, lost parity blocks on `k` are recomputed
    /// from data. Returns the number of data bytes still lost afterwards
    /// (non-zero only under multi-server failures).
    pub fn repair_after_server(&mut self, k: usize, g: &ParityGeom) -> u64 {
        let units = self.len().div_ceil(g.stripe_unit);
        for u in 0..units {
            if g.unit_server(u) != k {
                continue;
            }
            let (s, e) = g.unit_range(u, self.len());
            if s >= e || !self.lost.overlaps(s, e) {
                continue;
            }
            let grp = g.group_of_byte(s);
            if self.group_feasible(grp, g) && self.heal_group(grp, g) {
                self.lost.remove(s, e);
            }
        }
        for grp in 0..g.group_count(self.len()) {
            if g.parity_server(grp) == k
                && self.parity_lost.contains(&grp)
                && self.lost_units_in_group(grp, g).is_empty()
            {
                self.recompute_parity_group(grp, g);
                self.parity_lost.remove(&grp);
            }
        }
        self.lost.total()
    }
}

/// Why a logical read failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadFail {
    /// The request reached past end-of-file.
    OutOfBounds,
    /// A lost range could not be reconstructed (no parity, or a second
    /// concurrent loss in the same group).
    Lost {
        /// Start of the unreconstructible range.
        offset: u64,
        /// Its length.
        len: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    const G: ParityGeom = ParityGeom { stripe_unit: 4, n_servers: 3 };
    const UP: [bool; 3] = [false, false, false];

    fn filled(n: usize) -> FileData {
        let mut f = FileData::new(0);
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8 + 1).collect();
        f.write_parity_aware(0, &data, Some(&G), &UP);
        f
    }

    #[test]
    fn write_extends_with_zeros() {
        let mut f = FileData::new(0);
        f.write_at(4, &[1, 2]);
        assert_eq!(f.len(), 6);
        assert_eq!(f.read_at(0, 6).unwrap(), vec![0, 0, 0, 0, 1, 2]);
    }

    #[test]
    fn overwrite_in_place() {
        let mut f = FileData::new(0);
        f.write_at(0, &[1, 2, 3, 4]);
        f.write_at(1, &[9, 9]);
        assert_eq!(f.read_at(0, 4).unwrap(), vec![1, 9, 9, 4]);
        assert_eq!(f.len(), 4);
    }

    #[test]
    fn read_out_of_bounds_is_none() {
        let mut f = FileData::new(0);
        f.write_at(0, &[1, 2, 3]);
        assert!(f.read_at(1, 3).is_none());
        assert!(f.read_at(3, 1).is_none());
        assert_eq!(f.read_at(3, 0).unwrap(), Vec::<u8>::new());
        assert!(f.read_at(u64::MAX, 2).is_none());
    }

    #[test]
    fn any_single_server_loss_reconstructs_exactly() {
        let want = filled(41).bytes.clone();
        for k in 0..3 {
            let mut f = filled(41);
            let lost = f.fail_server(k, &G, true);
            // Poison genuinely destroys the stored copy of lost units.
            if lost > 0 {
                assert_ne!(f.bytes, want, "server {k}");
            }
            let (got, rec) = f.read_logical(0, 41, Some(&G)).unwrap();
            assert_eq!(got, want, "server {k}");
            assert_eq!(rec, lost);
        }
    }

    #[test]
    fn degraded_write_keeps_lost_bytes_reconstructible() {
        let mut f = filled(40);
        f.fail_server(1, &G, true);
        // Overwrite a range spanning lost and surviving units.
        let patch: Vec<u8> = (0..24).map(|i| 200 + i as u8).collect();
        f.write_parity_aware(8, &patch, Some(&G), &[false, true, false]);
        let mut want: Vec<u8> = (0..40).map(|i| (i % 251) as u8 + 1).collect();
        want[8..32].copy_from_slice(&patch);
        let (got, rec) = f.read_logical(0, 40, Some(&G)).unwrap();
        assert_eq!(got, want);
        assert!(rec > 0, "lost units were served by reconstruction");
    }

    #[test]
    fn double_failure_is_detected_not_fabricated() {
        let mut f = filled(40);
        f.fail_server(0, &G, true);
        f.fail_server(1, &G, true);
        assert!(matches!(f.read_logical(0, 40, Some(&G)), Err(ReadFail::Lost { .. })));
    }

    #[test]
    fn repair_restores_bitwise_and_clears_loss() {
        let want = filled(53).bytes.clone();
        let mut f = filled(53);
        f.fail_server(2, &G, true);
        assert_eq!(f.repair_after_server(2, &G), 0);
        assert_eq!(f.bytes, want);
        assert!(f.parity_lost.is_empty());
        // Reads need no reconstruction afterwards.
        let (_, rec) = f.read_logical(0, 53, Some(&G)).unwrap();
        assert_eq!(rec, 0);
    }

    #[test]
    fn reconstruct_range_ignores_stored_corruption() {
        let mut f = filled(36);
        let want = f.bytes.clone();
        // Corrupt one stripe unit in place (parity untouched, like real bit
        // rot). Reconstruction of that unit comes from parity + siblings, so
        // the stored garbage never participates.
        f.bytes[10] ^= 0xFF;
        f.bytes[11] ^= 0x0F;
        let fixed = f.reconstruct_range(8, 4, &G).unwrap();
        assert_eq!(fixed, want[8..12].to_vec());
    }

    #[test]
    fn parity_off_loss_is_permanent() {
        let mut f = FileData::new(0);
        f.write_parity_aware(0, &[7; 32], None, &UP);
        assert!(f.parity.is_empty());
        f.fail_server(0, &G, false);
        // Without parity blocks the lost units cannot come back.
        assert!(f.read_logical(0, 32, None).is_err());
    }
}
