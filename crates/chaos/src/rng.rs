//! Stateless hashing for fault decisions.
//!
//! Fault decisions must not flow through a shared seeded generator: task
//! threads interleave nondeterministically, so the *order* in which sites
//! draw from a shared stream would vary run to run even under a fixed seed.
//! Instead every decision hashes its full coordinates — seed, site, rank,
//! per-site sequence, attempt — so the outcome is a pure function of *what*
//! is being decided, independent of *when* any other task decides anything.

/// SplitMix64 finalizer: a well-mixed bijection on `u64`.
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a list of coordinates into one well-mixed word. Order-sensitive,
/// so `(site, rank)` and `(rank, site)` decide independently.
pub fn mix(coords: &[u64]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64; // pi, as tradition demands
    for &c in coords {
        h = splitmix(h ^ c);
    }
    splitmix(h)
}

/// Maps coordinates to a uniform value in `[0, 1)`.
pub fn unit(coords: &[u64]) -> f64 {
    // 53 mantissa bits give the full f64 resolution available in [0, 1).
    (mix(coords) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic_and_order_sensitive() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[0, 0]));
    }

    #[test]
    fn unit_stays_in_range_and_spreads() {
        let mut lo = 0usize;
        for i in 0..10_000u64 {
            let u = unit(&[42, i]);
            assert!((0.0..1.0).contains(&u), "u = {u}");
            if u < 0.5 {
                lo += 1;
            }
        }
        // A grossly biased hash would fail this loose band.
        assert!((4000..6000).contains(&lo), "low-half count {lo}");
    }
}
