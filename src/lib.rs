//! # drms — reconfigurable checkpointing for distributed parallel applications
//!
//! A Rust reproduction of *"A Checkpointing Strategy for Scalable Recovery on
//! Distributed Parallel Systems"* (Naik, Midkiff, Moreira — SC '97). This
//! facade crate re-exports the full workspace; see the individual crates for
//! the subsystems:
//!
//! * [`slices`] — ranges, slices, stream linearization, recursive partition;
//! * [`chaos`] — deterministic fault injection (fault plans, crash points,
//!   retry/backoff policy) for robustness campaigns;
//! * [`msg`] — the SPMD task runtime with virtual-time message passing;
//! * [`piofs`] — the striped parallel file system simulator;
//! * [`darray`] — distributions, distributed arrays, redistribution,
//!   parallel array-section streaming;
//! * [`core`] — the DRMS programming model: data segments, reconfigurable
//!   checkpoint/restart, and the conventional SPMD checkpointing baseline;
//! * [`delta`] — incremental checkpointing: dirty-chunk tracking,
//!   content-hash dedup against prior incarnations, optional per-chunk
//!   compression, and bitwise chain materialization at restart;
//! * [`resil`] — storage resilience: checkpoint verification, scrub and
//!   parity repair, seeded storage-fault campaigns, restart fallback;
//! * [`memtier`] — the diskless checkpoint tier: in-memory replication of
//!   stream pieces across nodes, verified spill to PIOFS, tiered restart;
//! * [`async_ckpt`] — the asynchronous checkpoint pipeline: COW snapshots
//!   at the SOP, a deterministic background flusher with bounded
//!   backpressure, and bitwise-identical committed checkpoints;
//! * [`rtenv`] — the RC/TC/JSA run-time environment and failure recovery;
//! * [`obs`] — the observability layer (recorders, phases, counters);
//! * [`blackbox`] — the crash-surviving flight recorder: bounded per-rank
//!   event rings sealed to storage at SOPs and crash points, recovered
//!   and stitched across incarnations;
//! * [`insight`] — causal trace analysis: critical path, straggler and
//!   server attribution, cross-incarnation stitching and recovery-cost
//!   reports;
//! * [`pulse`] — online telemetry: windowed streaming aggregation, a
//!   declarative health-rule engine, and live heartbeat/status exporters
//!   for in-flight runs;
//! * [`recover`] — localized recovery: survivor-driven section restore
//!   with membership epochs and an escalation ladder, plus online
//!   shrink/grow for malleable jobs;
//! * [`apps`] — mini NAS-parallel-benchmark applications (BT, LU, SP).

pub use drms_apps as apps;
pub use drms_async as async_ckpt;
pub use drms_blackbox as blackbox;
pub use drms_chaos as chaos;
pub use drms_core as core;
pub use drms_darray as darray;
pub use drms_delta as delta;
pub use drms_insight as insight;
pub use drms_memtier as memtier;
pub use drms_msg as msg;
pub use drms_obs as obs;
pub use drms_piofs as piofs;
pub use drms_pulse as pulse;
pub use drms_recover as recover;
pub use drms_resil as resil;
pub use drms_rtenv as rtenv;
pub use drms_slices as slices;
