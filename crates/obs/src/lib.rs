//! Observability layer for the DRMS checkpoint/restart pipeline.
//!
//! Every hot path in the workspace (message passing, PIOFS phase pricing,
//! array streaming, checkpoint orchestration, the runtime environment)
//! reports through a [`Recorder`]. Two implementations exist:
//!
//! * [`NullRecorder`] — every method is an empty default body and
//!   [`Recorder::enabled`] returns `false`, so instrumented code can skip
//!   label construction entirely. This is the default everywhere; existing
//!   call sites pay nothing.
//! * [`TraceRecorder`] — collects [`TraceEvent`]s in **simulated** clock
//!   time behind a single mutex and aggregates counters/gauges in a
//!   [`MetricsRegistry`].
//!
//! Timestamps are always supplied by the caller (from the task's simulated
//! clock), never sampled from the host, so recorded traces are exactly as
//! deterministic as the simulation itself.
//!
//! Collected traces export three ways (see [`TraceRecorder`]):
//! a JSONL event log, Chrome `trace_event` JSON loadable in Perfetto
//! (`chrome://tracing`), and a plain-text per-phase summary table built by
//! [`PhaseSummary`]. The summary is derived from the same span timestamps
//! the core crate uses to build its operation report, so the two can never
//! disagree.

#![deny(missing_docs)]

mod export;
mod metrics;
mod recorder;
mod summary;
mod trace;

pub use metrics::{CounterKey, MetricsRegistry};
pub use recorder::{NullRecorder, Recorder};
pub use summary::{PhaseRow, PhaseSummary};
pub use trace::{EventKind, TraceEvent, TraceRecorder};

/// Well-known counter and gauge names, shared by instrumentation sites and
/// consumers so they cannot drift apart.
pub mod names {
    /// Counter: point-to-point messages sent (`Ctx::send`).
    pub const MESSAGES_SENT: &str = "msg.messages_sent";
    /// Counter: payload bytes of point-to-point messages.
    pub const MESSAGE_BYTES: &str = "msg.message_bytes";
    /// Counter: bytes moved through `alltoallv` (redistribution volume).
    pub const REDISTRIBUTION_BYTES: &str = "redistribute.bytes";
    /// Counter: ~1 MB stream pieces written by array streaming.
    pub const PIECES_WRITTEN: &str = "stream.pieces_written";
    /// Counter: bytes streamed to or from checkpoint array files.
    pub const BYTES_STREAMED: &str = "stream.bytes";
    /// Counter: PIOFS collective I/O phases priced.
    pub const IO_PHASES: &str = "piofs.phases";
    /// Counter: individual I/O requests inside PIOFS phases.
    pub const IO_REQUESTS: &str = "piofs.requests";
    /// Counter: file-stripe touches across PIOFS servers.
    pub const STRIPES_TOUCHED: &str = "piofs.stripes";
    /// Counter: checkpoint segment bytes written (core report input).
    pub const SEGMENT_BYTES: &str = "core.segment_bytes";
    /// Counter: checkpoint array bytes written (core report input).
    pub const ARRAY_BYTES: &str = "core.array_bytes";
    /// Counter: job (re)starts observed by the runtime environment; the
    /// count above the first start is the retry count.
    pub const JOB_STARTS: &str = "rtenv.job_starts";
    /// Counter: recovery retries (task-coordinator restarts).
    pub const RETRIES: &str = "rtenv.retries";
    /// Gauge (indexed by server): accumulated PIOFS server busy horizon
    /// in simulated seconds.
    pub const SERVER_BUSY: &str = "piofs.server_busy";
    /// Counter: parity bytes written alongside data (RAID-5 overhead).
    pub const PARITY_BYTES: &str = "piofs.parity_bytes";
    /// Counter: bytes served by XOR reconstruction in degraded mode.
    pub const RECONSTRUCTED_BYTES: &str = "piofs.reconstructed_bytes";
    /// Counter: checkpoint chunks whose checksum failed verification.
    pub const CORRUPTIONS_DETECTED: &str = "resil.corruptions_detected";
    /// Counter: corrupt chunks repaired from parity by a scrub pass.
    pub const CORRUPTIONS_REPAIRED: &str = "resil.corruptions_repaired";
    /// Counter: checkpoints quarantined after failing verification.
    pub const CHECKPOINTS_QUARANTINED: &str = "rtenv.checkpoints_quarantined";
    /// Counter: total fallback depth (checkpoints skipped before a restart
    /// found one that verified).
    pub const FALLBACK_DEPTH: &str = "rtenv.fallback_depth";
    /// Counter: bytes captured into the in-memory checkpoint tier
    /// (owner copies, before replication).
    pub const MEMTIER_STORE_BYTES: &str = "memtier.store_bytes";
    /// Counter: replica bytes scattered over the network by memory-tier
    /// stores (the replication traffic the cost model prices).
    pub const MEMTIER_REPLICA_BYTES: &str = "memtier.replica_bytes";
    /// Counter: bytes served out of the memory tier during a restart.
    pub const MEMTIER_RESTORE_BYTES: &str = "memtier.restore_bytes";
    /// Counter: bytes spilled from the memory tier to durable PIOFS files.
    pub const MEMTIER_SPILL_BYTES: &str = "memtier.spill_bytes";
    /// Counter: restarts served by the memory tier instead of PIOFS.
    pub const MEMTIER_HITS: &str = "rtenv.memtier_hits";
    /// Counter: memory-tier checkpoints invalidated by node loss.
    pub const MEMTIER_INVALIDATIONS: &str = "rtenv.memtier_invalidations";
    /// Gauge (index 0): simulated seconds of the most recent memory-tier
    /// spill to PIOFS.
    pub const MEMTIER_SPILL_SECONDS: &str = "memtier.spill_seconds";
}

/// Pipeline phase a span or event belongs to. Doubles as the Chrome-trace
/// category, so Perfetto can filter on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Restart initialization: program text plus data-segment read.
    Init,
    /// Data-segment write (checkpoint) or read (restart).
    Segment,
    /// Distributed-array streaming, all arrays of one operation.
    Arrays,
    /// Checkpoint manifest write or read.
    Manifest,
    /// One wave of array-section streaming.
    StreamWave,
    /// Redistribution between distributions (`alltoallv` pack/unpack).
    Redistribute,
    /// A PIOFS collective I/O phase.
    IoPhase,
    /// Runtime-environment / control-plane activity.
    Control,
    /// End-to-end checkpoint verification (manifest digest + chunk CRCs).
    Verify,
    /// A storage scrub pass (detect and repair corrupt stripes).
    Scrub,
    /// XOR reconstruction of lost stripes during degraded reads.
    Reconstruct,
    /// In-memory checkpoint-tier activity (store, replication, restore).
    MemTier,
    /// Spill of a memory-tier checkpoint to durable PIOFS storage.
    Spill,
}

impl Phase {
    /// Stable lowercase name, used in exports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Init => "init",
            Phase::Segment => "segment",
            Phase::Arrays => "arrays",
            Phase::Manifest => "manifest",
            Phase::StreamWave => "stream_wave",
            Phase::Redistribute => "redistribute",
            Phase::IoPhase => "io_phase",
            Phase::Control => "control",
            Phase::Verify => "verify",
            Phase::Scrub => "scrub",
            Phase::Reconstruct => "reconstruct",
            Phase::MemTier => "memtier",
            Phase::Spill => "spill",
        }
    }

    /// All phases, in summary-table order.
    pub const ALL: [Phase; 13] = [
        Phase::Init,
        Phase::Segment,
        Phase::Arrays,
        Phase::Manifest,
        Phase::StreamWave,
        Phase::Redistribute,
        Phase::IoPhase,
        Phase::Control,
        Phase::Verify,
        Phase::Scrub,
        Phase::Reconstruct,
        Phase::MemTier,
        Phase::Spill,
    ];
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}
