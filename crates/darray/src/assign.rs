//! The array assignment operation `B <- A` (paper, Section 3.1).
//!
//! Sets every element of `B` to the value of the corresponding element of
//! `A`, across arbitrary distributions of the same domain. If an element of
//! `B` is present in several tasks (one assigned copy plus mapped/shadow
//! copies), **all** copies are updated consistently. Assignment is the
//! primitive beneath data redistribution, shadow refresh, computational
//! steering, and checkpoint streaming.
//!
//! The implementation is the natural one for message passing: task `i` packs
//! `assigned_A(i) ∩ mapped_B(p)` for every destination `p` (in the array's
//! stream order over global coordinates), a single `alltoallv` moves the
//! buffers, and each destination unpacks symmetric intersections. Packing
//! cost is charged to the virtual clock via the cost model's memory
//! bandwidth.

use std::sync::Arc;

use drms_msg::Ctx;
use drms_obs::{names, Phase};

use crate::{DarrayError, DistArray, Distribution, Element, Result};

/// Collective: assigns `src`'s values into `dst` (same domain, any
/// distributions). Every task of the region must call it.
pub fn assign<T: Element>(ctx: &mut Ctx, dst: &mut DistArray<T>, src: &DistArray<T>) -> Result<()> {
    let p = ctx.ntasks();
    if src.domain() != dst.domain() {
        return Err(DarrayError::DomainMismatch {
            left: src.domain().clone(),
            right: dst.domain().clone(),
        });
    }
    if src.dist().ntasks() != p || dst.dist().ntasks() != p {
        return Err(DarrayError::TaskCountMismatch {
            expected: p,
            got: src.dist().ntasks().max(dst.dist().ntasks()),
        });
    }
    let t0 = ctx.now();
    // Pack: my assigned source elements destined for each task's mapped
    // section.
    let mut outgoing = Vec::with_capacity(p);
    let mut packed_bytes = 0usize;
    for dest in 0..p {
        let region = src.assigned().intersect(dst.dist().mapped(dest))?;
        let buf = if region.is_empty() { Vec::new() } else { src.pack_region(&region) };
        packed_bytes += buf.len();
        outgoing.push(buf);
    }

    let incoming = ctx.alltoallv(outgoing);

    // Unpack: every source's assigned elements that land in my mapped
    // section.
    let mut unpacked_bytes = 0usize;
    for from in 0..p {
        let region = src.dist().assigned(from).intersect(dst.mapped())?;
        if region.is_empty() {
            continue;
        }
        let buf = incoming.from(from);
        unpacked_bytes += buf.len();
        dst.unpack_region(&region, buf);
    }

    ctx.charge((packed_bytes + unpacked_bytes) as f64 / ctx.cost().memcpy_bw);
    if ctx.recorder().enabled() {
        let rank = ctx.rank();
        ctx.recorder().span_start(t0, rank, Phase::Redistribute, src.name());
        ctx.recorder().span_end(ctx.now(), rank, Phase::Redistribute, src.name());
        ctx.recorder().counter_add_at(
            ctx.now(),
            rank,
            names::REDISTRIBUTION_BYTES,
            Some(src.name()),
            packed_bytes as u64,
        );
    }
    Ok(())
}

/// Collective: returns a copy of `src` under `new_dist` (the runtime's data
/// redistribution operation, `drms_distribute` after a `drms_adjust`).
pub fn redistribute<T: Element>(
    ctx: &mut Ctx,
    src: &DistArray<T>,
    new_dist: Arc<Distribution>,
) -> Result<DistArray<T>> {
    let mut dst = DistArray::new(src.name(), src.order(), new_dist, ctx.rank());
    assign(ctx, &mut dst, src)?;
    Ok(dst)
}

/// Collective: refreshes shadow copies — every mapped element is updated
/// from its assigned owner. This is `A <- A` in the paper's formulation.
pub fn refresh_shadows<T: Element>(ctx: &mut Ctx, array: &mut DistArray<T>) -> Result<()> {
    let p = ctx.ntasks();
    if array.dist().ntasks() != p {
        return Err(DarrayError::TaskCountMismatch { expected: p, got: array.dist().ntasks() });
    }

    let t0 = ctx.now();
    let mut outgoing = Vec::with_capacity(p);
    let mut moved = 0usize;
    for dest in 0..p {
        let region = array.assigned().intersect(array.dist().mapped(dest))?;
        let buf = if region.is_empty() || dest == ctx.rank() {
            // Our own mapped copy of our own assigned data is already
            // current; skip the self-transfer.
            Vec::new()
        } else {
            array.pack_region(&region)
        };
        moved += buf.len();
        outgoing.push(buf);
    }

    let me = ctx.rank();
    let incoming = ctx.alltoallv(outgoing);
    for from in 0..p {
        if from == me {
            continue;
        }
        let region = array.dist().assigned(from).intersect(array.mapped())?;
        if region.is_empty() {
            continue;
        }
        let buf = incoming.from(from);
        moved += buf.len();
        array.unpack_region(&region, buf);
    }
    ctx.charge(moved as f64 / ctx.cost().memcpy_bw);
    if ctx.recorder().enabled() {
        let rank = ctx.rank();
        ctx.recorder().span_start(t0, rank, Phase::Redistribute, array.name());
        ctx.recorder().span_end(ctx.now(), rank, Phase::Redistribute, array.name());
        ctx.recorder().counter_add_at(
            ctx.now(),
            rank,
            names::REDISTRIBUTION_BYTES,
            Some(array.name()),
            moved as u64,
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_msg::{run_spmd, CostModel};
    use drms_slices::{Order, Slice};

    #[test]
    fn block_to_cyclic_preserves_values() {
        let dom = Slice::boxed(&[(0, 19)]);
        let out = run_spmd(4, CostModel::default(), |ctx| {
            let bdist = Distribution::block(&dom, &[4], &[0]).unwrap();
            let cdist = Distribution::cyclic(&dom, 4, 0).unwrap();
            let mut a = DistArray::<i64>::new("a", Order::ColumnMajor, bdist, ctx.rank());
            a.fill_assigned(|p| p[0] * 3 + 1);
            let b = redistribute(ctx, &a, cdist).unwrap();
            b.fold_assigned(Vec::new(), |mut acc, p, v| {
                acc.push((p[0], v));
                acc
            })
        })
        .unwrap();
        for vals in out {
            for (g, v) in vals {
                assert_eq!(v, g * 3 + 1, "element {g}");
            }
        }
    }

    #[test]
    fn assignment_updates_all_copies_including_shadows() {
        let dom = Slice::boxed(&[(0, 15)]);
        let out = run_spmd(2, CostModel::default(), |ctx| {
            let src_dist = Distribution::block(&dom, &[2], &[0]).unwrap();
            let dst_dist = Distribution::block(&dom, &[2], &[2]).unwrap();
            let mut a = DistArray::<i64>::new("a", Order::ColumnMajor, src_dist, ctx.rank());
            a.fill_assigned(|p| 100 + p[0]);
            let mut b = DistArray::<i64>::new("b", Order::ColumnMajor, dst_dist, ctx.rank());
            assign(ctx, &mut b, &a).unwrap();
            // Every mapped point of b (shadows included) has the value.
            let mut all = Vec::new();
            b.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
                all.push((p[0], b.get(p).unwrap()));
            });
            all
        })
        .unwrap();
        for vals in out {
            for (g, v) in vals {
                assert_eq!(v, 100 + g, "element {g}");
            }
        }
    }

    #[test]
    fn refresh_shadows_propagates_owner_values() {
        let dom = Slice::boxed(&[(0, 15), (0, 3)]);
        let out = run_spmd(4, CostModel::default(), |ctx| {
            let dist = Distribution::block(&dom, &[4, 1], &[1, 0]).unwrap();
            let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(|p| (p[0] * 10 + p[1]) as f64);
            refresh_shadows(ctx, &mut a).unwrap();
            let mut all = Vec::new();
            a.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
                all.push((p.to_vec(), a.get(p).unwrap()));
            });
            all
        })
        .unwrap();
        for vals in out {
            for (p, v) in vals {
                assert_eq!(v, (p[0] * 10 + p[1]) as f64, "point {p:?}");
            }
        }
    }

    #[test]
    fn domain_mismatch_rejected() {
        let out = run_spmd(1, CostModel::free(), |ctx| {
            let d1 = Slice::boxed(&[(0, 9)]);
            let d2 = Slice::boxed(&[(0, 8)]);
            let dist1 = Distribution::block(&d1, &[1], &[0]).unwrap();
            let dist2 = Distribution::block(&d2, &[1], &[0]).unwrap();
            let a = DistArray::<f64>::new("a", Order::ColumnMajor, dist1, 0);
            let mut b = DistArray::<f64>::new("b", Order::ColumnMajor, dist2, 0);
            assign(ctx, &mut b, &a).unwrap_err()
        })
        .unwrap();
        assert!(matches!(out[0], DarrayError::DomainMismatch { .. }));
    }

    #[test]
    fn assignment_charges_time() {
        let dom = Slice::boxed(&[(0, 1023)]);
        let out = run_spmd(2, CostModel::default(), |ctx| {
            let b = Distribution::block(&dom, &[2], &[0]).unwrap();
            let c = Distribution::cyclic(&dom, 2, 0).unwrap();
            let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, b, ctx.rank());
            a.fill_assigned(|p| p[0] as f64);
            let _ = redistribute(ctx, &a, c).unwrap();
            ctx.now()
        })
        .unwrap();
        assert!(out[0] > 0.0);
    }

    #[test]
    fn irregular_destination_distribution() {
        // Send a block array into an irregular strided decomposition.
        let dom = Slice::boxed(&[(0, 11)]);
        let out = run_spmd(2, CostModel::default(), |ctx| {
            use drms_slices::Range;
            let bdist = Distribution::block(&dom, &[2], &[0]).unwrap();
            let evens = Slice::new(vec![Range::strided(0, 11, 2).unwrap()]);
            let odds = Slice::new(vec![Range::strided(1, 11, 2).unwrap()]);
            let idist =
                Distribution::irregular(&dom, vec![evens.clone(), odds.clone()], vec![evens, odds])
                    .unwrap();
            let mut a = DistArray::<i64>::new("a", Order::ColumnMajor, bdist, ctx.rank());
            a.fill_assigned(|p| p[0] * p[0]);
            let b = redistribute(ctx, &a, idist).unwrap();
            b.fold_assigned(Vec::new(), |mut acc, p, v| {
                acc.push((p[0], v));
                acc
            })
        })
        .unwrap();
        assert_eq!(out[0].len(), 6);
        for rank_vals in out {
            for (g, v) in rank_vals {
                assert_eq!(v, g * g);
            }
        }
    }
}
