//! A reusable all-to-all rendezvous ("exchange board").
//!
//! Every participating task deposits one value and a timestamp; once all
//! tasks have arrived, the deposits are published and every task retrieves
//! the full vector plus the maximum timestamp. The board resets itself after
//! the last task leaves, so it can be reused generation after generation.
//! All collectives (barrier, reductions, gathers, `alltoallv`, collective
//! file I/O) are built on this primitive.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Deadline after which a blocked collective panics. Collectives only block
/// while sibling tasks are still on their way; a timeout this long always
/// indicates a bug (mismatched collective, dead task), and a loud panic
/// beats a hung test suite.
const STALL_TIMEOUT: Duration = Duration::from_secs(120);

pub(crate) struct Board {
    inner: Mutex<Inner>,
    cv: Condvar,
    ntasks: usize,
}

struct Inner {
    deposits: Vec<Option<Box<dyn Any + Send>>>,
    times: Vec<f64>,
    arrived: usize,
    leaving: usize,
    published: Option<Arc<dyn Any + Send + Sync>>,
    max_time: f64,
}

/// Result of an exchange: every task's deposit, in rank order, plus the
/// latest deposit timestamp.
pub(crate) struct Exchanged<T> {
    pub all: Arc<Vec<T>>,
    pub max_time: f64,
}

impl<T> Clone for Exchanged<T> {
    fn clone(&self) -> Self {
        Exchanged { all: Arc::clone(&self.all), max_time: self.max_time }
    }
}

impl Board {
    pub fn new(ntasks: usize) -> Board {
        Board {
            inner: Mutex::new(Inner {
                deposits: (0..ntasks).map(|_| None).collect(),
                times: vec![0.0; ntasks],
                arrived: 0,
                leaving: 0,
                published: None,
                max_time: 0.0,
            }),
            cv: Condvar::new(),
            ntasks,
        }
    }

    /// Deposits `value` for `rank` at simulated time `now`, waits for all
    /// tasks, and returns everyone's deposits.
    ///
    /// Every participating task must call this with the same `T`; the board
    /// enforces one-deposit-per-rank-per-generation.
    pub fn exchange<T: Send + Sync + 'static>(
        &self,
        rank: usize,
        now: f64,
        value: T,
    ) -> Exchanged<T> {
        let mut g = self.inner.lock();

        // A previous generation may still be draining: wait until its
        // publication has been cleared before depositing into the next one.
        while g.published.is_some() {
            self.wait(&mut g, "previous exchange generation to drain");
        }

        debug_assert!(g.deposits[rank].is_none(), "rank {rank} deposited twice");
        g.deposits[rank] = Some(Box::new(value));
        g.times[rank] = now;
        g.arrived += 1;

        if g.arrived == self.ntasks {
            // Last arriver publishes.
            let mut vals = Vec::with_capacity(self.ntasks);
            for d in g.deposits.iter_mut() {
                let boxed = d.take().expect("all ranks deposited");
                vals.push(*boxed.downcast::<T>().expect("uniform exchange type"));
            }
            g.max_time = g.times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            g.published = Some(Arc::new(Arc::new(vals)) as Arc<dyn Any + Send + Sync>);
            self.cv.notify_all();
        } else {
            while g.published.is_none() {
                self.wait(&mut g, "sibling tasks to reach the exchange");
            }
        }

        let published = g.published.as_ref().expect("published above");
        let all = published.downcast_ref::<Arc<Vec<T>>>().expect("uniform exchange type").clone();
        let max_time = g.max_time;

        g.leaving += 1;
        if g.leaving == self.ntasks {
            // Last to leave resets the board for the next generation.
            g.published = None;
            g.arrived = 0;
            g.leaving = 0;
            self.cv.notify_all();
        }

        Exchanged { all, max_time }
    }

    fn wait(&self, guard: &mut parking_lot::MutexGuard<'_, Inner>, what: &str) {
        if self.cv.wait_for(guard, STALL_TIMEOUT).timed_out() {
            panic!("collective stalled for {STALL_TIMEOUT:?} waiting for {what}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn exchange_collects_all_deposits() {
        let board = Board::new(4);
        thread::scope(|s| {
            for rank in 0..4 {
                let board = &board;
                s.spawn(move || {
                    let got = board.exchange(rank, rank as f64, rank * 10);
                    assert_eq!(*got.all, vec![0, 10, 20, 30]);
                    assert_eq!(got.max_time, 3.0);
                });
            }
        });
    }

    #[test]
    fn board_is_reusable_across_generations() {
        let board = Board::new(3);
        thread::scope(|s| {
            for rank in 0..3 {
                let board = &board;
                s.spawn(move || {
                    for generation in 0..50u64 {
                        let got = board.exchange(rank, 0.0, (generation, rank));
                        let expect: Vec<(u64, usize)> = (0..3).map(|r| (generation, r)).collect();
                        assert_eq!(*got.all, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn single_task_exchange_is_immediate() {
        let board = Board::new(1);
        let got = board.exchange(0, 7.5, "x");
        assert_eq!(*got.all, vec!["x"]);
        assert_eq!(got.max_time, 7.5);
    }
}
