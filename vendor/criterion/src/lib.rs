//! Offline stand-in for the `criterion` crate.
//!
//! A bare-bones but functional benchmark harness: each benchmark runs a
//! warm-up pass, then a fixed number of timed samples, and prints the
//! median per-iteration time (plus throughput when declared). There is no
//! statistical analysis, plotting, or baseline comparison — just enough to
//! keep `cargo bench` compiling and producing ballpark numbers offline.

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_string() }
    }
}

/// Declared data volume per iteration, for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { _c: self, samples: 20, throughput: None }
    }
}

/// A group of benchmarks sharing sample-count and throughput settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Declares per-iteration data volume for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { median: Duration::ZERO, samples: self.samples };
        f(&mut b);
        self.report(&id.label, b.median);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        let mut b = Bencher { median: Duration::ZERO, samples: self.samples };
        f(&mut b, input);
        self.report(&id.label, b.median);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, median: Duration) {
        let secs = median.as_secs_f64();
        match self.throughput {
            Some(Throughput::Bytes(bytes)) if secs > 0.0 => {
                let rate = bytes as f64 / secs / 1e6;
                println!("  {label}: median {median:?}/iter ({rate:.1} MB/s)");
            }
            Some(Throughput::Elements(n)) if secs > 0.0 => {
                let rate = n as f64 / secs / 1e6;
                println!("  {label}: median {median:?}/iter ({rate:.2} Melem/s)");
            }
            _ => println!("  {label}: median {median:?}/iter"),
        }
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    median: Duration,
    samples: usize,
}

impl Bencher {
    /// Runs `f` repeatedly: one warm-up, then `samples` timed runs; records
    /// the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort();
        self.median = times[times.len() / 2];
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Collects benchmark functions into a runner for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates the benchmark `main` from `criterion_group!` outputs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(2 + 2));
            ran += 1;
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| std::hint::black_box(p * 2));
            ran += 1;
        });
        g.finish();
        assert_eq!(ran, 2);
    }
}
