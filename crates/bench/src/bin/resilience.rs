//! Resilience overhead experiment: what parity-redundant checkpointing
//! costs, and what degraded-mode restart costs.
//!
//! ```text
//! cargo run --release -p drms-bench --bin resilience [--class T] [--pes 4] [--seed 42] [--json DIR]
//! ```
//!
//! For each of BT, LU and SP, runs the mid-point checkpoint/restart protocol
//! three ways on the paper's 16-server PIOFS:
//!
//! * **clean** — plain striping, the baseline;
//! * **parity** — RAID-5-style rotating parity: the checkpoint pays the
//!   parity-write overhead;
//! * **degraded** — after the parity checkpoint, one PIOFS server is killed;
//!   the checkpoint still verifies end-to-end and the restart reads every
//!   lost stripe through XOR reconstruction.
//!
//! Every run is deterministic per seed (the binary re-runs each degraded
//! restart and aborts if the virtual times diverge).

use std::path::PathBuf;
use std::sync::Arc;

use drms_apps::{bt, lu, sp, AppSpec, AppVariant, Class, MiniApp};
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_core::{Drms, EnableFlag};
use drms_msg::{run_spmd_traced, CostModel};
use drms_obs::{names, NullRecorder, Recorder, TraceRecorder};
use drms_piofs::{Piofs, PiofsConfig};
use drms_resil::verify_checkpoint;

struct Opts {
    class: Class,
    pes: usize,
    seed: u64,
    json: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts { class: Class::T, pes: 4, seed: 42, json: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--class" => {
                let v = value("--class");
                opts.class =
                    Class::parse(&v).unwrap_or_else(|| usage(&format!("unknown class {v:?}")));
            }
            "--pes" => {
                let v = value("--pes");
                opts.pes = v
                    .parse()
                    .ok()
                    .filter(|p| (1..=16).contains(p))
                    .unwrap_or_else(|| usage(&format!("bad PE count {v:?}")));
            }
            "--seed" => {
                let v = value("--seed");
                opts.seed = v.parse().unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
            }
            "--json" => opts.json = Some(PathBuf::from(value("--json"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: resilience [--class T|S|W|A] [--pes N] [--seed S] [--json DIR]");
    std::process::exit(2);
}

/// One measured checkpoint/restart cycle.
struct Cycle {
    ckpt_s: f64,
    restart_s: f64,
    parity_bytes: u64,
    reconstructed_bytes: u64,
}

/// Runs the mid-point protocol on a fresh file system. With
/// `kill_server`, one PIOFS server dies between the checkpoint and the
/// restart, and the checkpoint is re-verified before restarting from it.
fn run_cycle(spec: &AppSpec, opts: &Opts, parity: bool, kill_server: Option<usize>) -> Cycle {
    let mut cfg = PiofsConfig::sp_1997().scale_memory(spec.class.memory_scale());
    if parity {
        cfg = cfg.with_parity();
    }
    let fs = Piofs::new(cfg, opts.seed);
    Drms::install_binary(&fs, &spec.drms_config());

    let rec = Arc::new(TraceRecorder::new());
    let spec_c = spec.clone();
    let fs_c = Arc::clone(&fs);
    let ckpts = run_spmd_traced(
        opts.pes,
        CostModel::default(),
        Arc::clone(&rec) as Arc<dyn Recorder>,
        move |ctx| {
            let mut app = MiniApp::start(
                ctx,
                &fs_c,
                spec_c.clone(),
                AppVariant::Drms,
                EnableFlag::new(),
                None,
            )
            .expect("fresh start");
            app.step(ctx);
            app.checkpoint(ctx, &fs_c, "ck/mid").expect("checkpoint")
        },
    )
    .expect("checkpoint incarnation");
    let parity_bytes = rec.metrics().counter_total(names::PARITY_BYTES);

    if let Some(server) = kill_server {
        fs.fail_server(server);
        // The checkpoint must still verify end-to-end through parity.
        let report = verify_checkpoint(&fs, "ck/mid", &NullRecorder, 0.0);
        assert!(report.is_valid(), "checkpoint lost with server {server}: {report:?}");
    }

    let (restart_s, reconstructed_bytes) = restart_once(spec, opts, &fs);
    Cycle { ckpt_s: ckpts[0].total(), restart_s, parity_bytes, reconstructed_bytes }
}

/// One restart incarnation from `ck/mid`; returns its virtual time and how
/// many bytes the reads rebuilt from parity.
fn restart_once(spec: &AppSpec, opts: &Opts, fs: &Arc<Piofs>) -> (f64, u64) {
    fs.clear_residency();
    fs.reset_time();
    let rec = Arc::new(TraceRecorder::new());
    let spec_r = spec.clone();
    let fs_r = Arc::clone(fs);
    let restarts = run_spmd_traced(
        opts.pes,
        CostModel::default(),
        Arc::clone(&rec) as Arc<dyn Recorder>,
        move |ctx| {
            let app = MiniApp::start(
                ctx,
                &fs_r,
                spec_r.clone(),
                AppVariant::Drms,
                EnableFlag::new(),
                Some("ck/mid"),
            )
            .expect("restart");
            app.restart_report.expect("restarted")
        },
    )
    .expect("restart incarnation");
    (restarts[0].total(), rec.metrics().counter_total(names::RECONSTRUCTED_BYTES))
}

fn pct(over: f64, base: f64) -> f64 {
    (over / base - 1.0) * 100.0
}

fn main() {
    let opts = parse_args();
    let repro = format!(
        "cargo run --release -p drms-bench --bin resilience -- --class {} --pes {} --seed {}",
        opts.class, opts.pes, opts.seed
    );
    run_gated("resilience", &repro, || body(&opts));
}

fn body(opts: &Opts) {
    const KILLED: usize = 3;
    println!(
        "Resilience overheads (class {}, {} PEs, seed {}, server {KILLED} killed for degraded restart)",
        opts.class, opts.pes, opts.seed
    );
    println!(
        "{:<4} {:>9} {:>10} {:>8}  {:>10} {:>11} {:>8}  {:>10} {:>13}",
        "app",
        "ckpt(s)",
        "parity(s)",
        "ovh",
        "restart(s)",
        "degraded(s)",
        "ovh",
        "parity MB",
        "reconstr. MB"
    );

    let mut result = BenchResult::new("resilience");
    result.param("class", opts.class);
    result.param("pes", opts.pes);
    result.param("seed", opts.seed);
    result.stamp_header(opts.seed, opts.pes);

    for spec in [bt(opts.class), lu(opts.class), sp(opts.class)] {
        let clean = run_cycle(&spec, opts, false, None);
        let parity = run_cycle(&spec, opts, true, None);
        let degraded = run_cycle(&spec, opts, true, Some(KILLED));

        assert_eq!(clean.parity_bytes, 0);
        assert!(parity.parity_bytes > 0, "parity writes must be priced");
        assert_eq!(clean.reconstructed_bytes, 0);
        assert!(degraded.reconstructed_bytes > 0, "degraded restart must reconstruct");

        let key = |m: &str| format!("{}.{m}", spec.name);
        result.metric(&key("clean_ckpt_s"), clean.ckpt_s);
        result.metric(&key("parity_ckpt_s"), parity.ckpt_s);
        result.metric(&key("clean_restart_s"), clean.restart_s);
        result.metric(&key("degraded_restart_s"), degraded.restart_s);
        result.metric(&key("parity_mb"), parity.parity_bytes as f64 / 1e6);
        result.metric(&key("reconstructed_mb"), degraded.reconstructed_bytes as f64 / 1e6);

        // Determinism check: the same seed must reproduce the same degraded
        // virtual times bit-for-bit.
        let repeat = run_cycle(&spec, opts, true, Some(KILLED));
        assert_eq!(
            (repeat.ckpt_s, repeat.restart_s),
            (degraded.ckpt_s, degraded.restart_s),
            "{}: degraded cycle not deterministic per seed",
            spec.name
        );

        println!(
            "{:<4} {:>9.3} {:>10.3} {:>7.1}%  {:>10.3} {:>11.3} {:>7.1}%  {:>10.2} {:>13.2}",
            spec.name,
            clean.ckpt_s,
            parity.ckpt_s,
            pct(parity.ckpt_s, clean.ckpt_s),
            clean.restart_s,
            degraded.restart_s,
            pct(degraded.restart_s, clean.restart_s),
            parity.parity_bytes as f64 / 1e6,
            degraded.reconstructed_bytes as f64 / 1e6,
        );
    }
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_resilience.json");
        println!("wrote {}", path.display());
    }
    println!("\nAll degraded checkpoints verified end-to-end with a dead server; all cycles deterministic.");
}
