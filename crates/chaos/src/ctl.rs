//! The chaos controller instrumented layers consult.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::backoff::RetryPolicy;
use crate::plan::{CrashPoint, FaultPlan};
use crate::rng::unit;

/// Per-site labels folded into each decision hash, so the same `(rank,
/// sequence)` coordinates decide independently at different layers.
mod site {
    pub const MSG_DROP: u64 = 1;
    pub const MSG_DUP: u64 = 2;
    pub const MSG_LATENCY: u64 = 3;
    pub const IO_FAULT: u64 = 4;
}

/// Shared fault-injection controller for one chaos-enabled world.
///
/// All probabilistic decisions are stateless hashes of the plan seed plus
/// the caller's coordinates — thread interleaving cannot perturb them. The
/// only mutable state is the once-only arming of the crash point and the
/// torn write, both of which are consulted from serialized positions
/// (rank 0 between barriers; the file-system lock), plus monotone tallies
/// exposed for campaign assertions.
pub struct ChaosCtl {
    plan: FaultPlan,
    /// Consultations of the armed crash point so far.
    crash_seen: AtomicU64,
    /// Whether the armed crash already fired (fires exactly once).
    crash_fired: AtomicBool,
    /// Matching writes seen by the armed torn write.
    torn_seen: Mutex<u64>,
    retries: AtomicU64,
    giveups: AtomicU64,
}

impl ChaosCtl {
    /// Builds a controller over a plan.
    pub fn new(plan: FaultPlan) -> Arc<ChaosCtl> {
        Arc::new(ChaosCtl {
            plan,
            crash_seen: AtomicU64::new(0),
            crash_fired: AtomicBool::new(false),
            torn_seen: Mutex::new(0),
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        })
    }

    /// The plan in effect.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry/backoff policy instrumented layers charge with.
    pub fn retry(&self) -> RetryPolicy {
        self.plan.retry
    }

    // ------------------------------------------------------------------
    // Message layer
    // ------------------------------------------------------------------

    /// Whether send attempt `attempt` of message `(rank, seq)` fails
    /// transiently.
    pub fn msg_drop(&self, rank: u64, seq: u64, attempt: u64) -> bool {
        self.plan.msg.drop_prob > 0.0
            && unit(&[self.plan.seed, site::MSG_DROP, rank, seq, attempt]) < self.plan.msg.drop_prob
    }

    /// Whether message `(rank, seq)` is delivered twice.
    pub fn msg_dup(&self, rank: u64, seq: u64) -> bool {
        self.plan.msg.dup_prob > 0.0
            && unit(&[self.plan.seed, site::MSG_DUP, rank, seq]) < self.plan.msg.dup_prob
    }

    /// Extra delivery latency for message `(rank, seq)`, simulated seconds.
    pub fn msg_extra_latency(&self, rank: u64, seq: u64) -> f64 {
        if self.plan.msg.max_extra_latency <= 0.0 {
            return 0.0;
        }
        self.plan.msg.max_extra_latency * unit(&[self.plan.seed, site::MSG_LATENCY, rank, seq])
    }

    // ------------------------------------------------------------------
    // File-system layer
    // ------------------------------------------------------------------

    /// Whether attempt `attempt` of I/O operation `(rank, seq)` hits a
    /// transient server error.
    pub fn io_fault(&self, rank: u64, seq: u64, attempt: u64) -> bool {
        self.plan.piofs.transient_prob > 0.0
            && unit(&[self.plan.seed, site::IO_FAULT, rank, seq, attempt])
                < self.plan.piofs.transient_prob
    }

    /// Consults the armed torn write for a `write_at` of `len` bytes to
    /// `path`: `Some(kept)` on the armed occurrence (a strict prefix of the
    /// payload lands), `None` otherwise. Serialized by the caller (the
    /// file-system lock), so occurrence counting is deterministic.
    pub fn torn_len(&self, path: &str, len: usize) -> Option<usize> {
        let torn = self.plan.piofs.torn.as_ref()?;
        if len == 0 || !path.contains(&torn.path_contains) {
            return None;
        }
        let mut seen = self.torn_seen.lock().expect("torn counter poisoned");
        *seen += 1;
        if *seen != torn.occurrence as u64 {
            return None;
        }
        Some(((len as f64 * torn.keep_fraction) as usize).min(len - 1))
    }

    // ------------------------------------------------------------------
    // Crash points
    // ------------------------------------------------------------------

    /// Consults the armed crash point: `true` exactly once, at the armed
    /// occurrence of the armed point. Consulted from one serialized
    /// position per region (rank 0 between barriers).
    pub fn should_crash(&self, point: CrashPoint) -> bool {
        let Some((armed, occurrence)) = self.plan.crash else { return false };
        if armed != point || self.crash_fired.load(Ordering::SeqCst) {
            return false;
        }
        let seen = self.crash_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if seen == occurrence as u64 {
            self.crash_fired.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Whether the armed crash point has fired.
    pub fn crash_fired(&self) -> bool {
        self.crash_fired.load(Ordering::SeqCst)
    }

    // ------------------------------------------------------------------
    // Tallies
    // ------------------------------------------------------------------

    /// Records one transient-fault retry (any layer).
    pub fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry-budget exhaustion (any layer).
    pub fn note_giveup(&self) {
        self.giveups.fetch_add(1, Ordering::Relaxed);
    }

    /// Total transient-fault retries observed.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Total retry-budget exhaustions observed.
    pub fn giveups(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{MsgFaults, PiofsFaults, TornWrite};

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = |seed| FaultPlan {
            seed,
            msg: MsgFaults { drop_prob: 0.5, dup_prob: 0.5, max_extra_latency: 1.0 },
            piofs: PiofsFaults { transient_prob: 0.5, torn: None },
            ..Default::default()
        };
        let a = ChaosCtl::new(plan(1));
        let b = ChaosCtl::new(plan(1));
        let c = ChaosCtl::new(plan(2));
        let fingerprint = |ctl: &ChaosCtl| -> Vec<bool> {
            (0..64).map(|i| ctl.msg_drop(i % 4, i, 0) || ctl.io_fault(i % 4, i, 1)).collect()
        };
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn crash_fires_exactly_once_at_armed_occurrence() {
        let ctl = ChaosCtl::new(FaultPlan {
            crash: Some((CrashPoint::CkptAfterSegment, 2)),
            ..Default::default()
        });
        assert!(!ctl.should_crash(CrashPoint::CkptEnter), "unarmed point never fires");
        assert!(!ctl.should_crash(CrashPoint::CkptAfterSegment), "first occurrence passes");
        assert!(ctl.should_crash(CrashPoint::CkptAfterSegment), "second occurrence fires");
        assert!(ctl.crash_fired());
        assert!(!ctl.should_crash(CrashPoint::CkptAfterSegment), "never fires twice");
    }

    #[test]
    fn torn_write_arms_one_occurrence_and_keeps_a_strict_prefix() {
        let ctl = ChaosCtl::new(FaultPlan {
            piofs: PiofsFaults {
                transient_prob: 0.0,
                torn: Some(TornWrite {
                    path_contains: "manifest".into(),
                    occurrence: 2,
                    keep_fraction: 0.5,
                }),
            },
            ..Default::default()
        });
        assert_eq!(ctl.torn_len("ck/x/segment", 100), None, "pattern must match");
        assert_eq!(ctl.torn_len("ck/x.tmp/manifest.tmp", 100), None, "first match passes");
        assert_eq!(ctl.torn_len("ck/x.tmp/manifest.tmp", 100), Some(50), "second tears");
        assert_eq!(ctl.torn_len("ck/x.tmp/manifest.tmp", 100), None, "fires once");
    }

    #[test]
    fn torn_write_never_keeps_the_full_payload() {
        let ctl = ChaosCtl::new(FaultPlan {
            piofs: PiofsFaults {
                transient_prob: 0.0,
                torn: Some(TornWrite {
                    path_contains: "f".into(),
                    occurrence: 1,
                    keep_fraction: 1.0,
                }),
            },
            ..Default::default()
        });
        assert_eq!(ctl.torn_len("f", 10), Some(9), "a torn write must lose bytes");
    }
}
