//! Span reconstruction: pairing `Begin`/`End` trace events into closed
//! spans and assigning containment parents.
//!
//! The recorder deliberately does not issue span ids (concurrent ranks
//! would race over them and break export determinism), so the analysis
//! re-derives the span tree from the time-sorted event stream: per
//! `(rank, phase, name)` the events pair LIFO, mirroring
//! [`drms_obs::TraceRecorder`]'s own histogram pairing. Ids are assigned
//! after a deterministic sort, so equal traces yield equal span tables.

use std::collections::HashMap;

use drms_obs::{EventKind, Phase, TraceEvent};

/// One closed span reconstructed from a `Begin`/`End` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Deterministic id: index into the sorted span table.
    pub id: usize,
    /// Reporting task rank.
    pub rank: usize,
    /// Pipeline phase.
    pub phase: Phase,
    /// Span name (array, phase label, ...).
    pub name: String,
    /// Start time in simulated seconds.
    pub start: f64,
    /// End time in simulated seconds.
    pub end: f64,
    /// Smallest enclosing span on the same rank, if any.
    pub parent: Option<usize>,
}

impl Span {
    /// Span length in simulated seconds.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Whether this span's interval contains `[a, b]`.
    fn covers(&self, a: f64, b: f64) -> bool {
        self.start <= a && b <= self.end
    }
}

/// Phase ordinal for deterministic sorting (declaration order).
fn phase_ord(p: Phase) -> usize {
    Phase::ALL.iter().position(|&q| q == p).unwrap_or(usize::MAX)
}

/// Reconstructs closed spans from a **time-sorted** event stream (as
/// returned by `TraceRecorder::events`). `Begin`s pair with the nearest
/// later `End` of the same `(rank, phase, name)` (LIFO); unmatched
/// `Begin`s and `End`s are dropped, mirroring the recorder's histogram
/// pairing. The result is sorted by `(start, longer-first, rank, phase,
/// name)` and ids are indices into that order; `parent` links each span
/// to its smallest enclosing span on the same rank.
pub fn build_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut open: HashMap<(usize, Phase, &str), Vec<f64>> = HashMap::new();
    let mut spans = Vec::new();
    for e in events {
        match e.kind {
            EventKind::Begin => {
                open.entry((e.rank, e.phase, e.name.as_str())).or_default().push(e.t);
            }
            EventKind::End => {
                if let Some(start) =
                    open.get_mut(&(e.rank, e.phase, e.name.as_str())).and_then(Vec::pop)
                {
                    spans.push(Span {
                        id: 0,
                        rank: e.rank,
                        phase: e.phase,
                        name: e.name.clone(),
                        start,
                        end: e.t,
                        parent: None,
                    });
                }
            }
            EventKind::Instant => {}
        }
    }

    spans.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(b.end.total_cmp(&a.end)) // longer (enclosing) spans first
            .then(a.rank.cmp(&b.rank))
            .then(phase_ord(a.phase).cmp(&phase_ord(b.phase)))
            .then(a.name.cmp(&b.name))
    });
    for (i, s) in spans.iter_mut().enumerate() {
        s.id = i;
    }

    // Containment parents, per rank. Quadratic in span count, which is
    // fine at trace scale (thousands). Equal-interval spans chain by id
    // so the relation stays acyclic.
    let parents: Vec<Option<usize>> = spans
        .iter()
        .map(|s| {
            spans
                .iter()
                .filter(|c| {
                    c.id != s.id
                        && c.rank == s.rank
                        && c.covers(s.start, s.end)
                        && (c.start < s.start || s.end < c.end || c.id < s.id)
                })
                .min_by(|x, y| {
                    x.duration()
                        .total_cmp(&y.duration())
                        .then(y.start.total_cmp(&x.start))
                        .then(y.id.cmp(&x.id))
                })
                .map(|c| c.id)
        })
        .collect();
    for (s, p) in spans.iter_mut().zip(parents) {
        s.parent = p;
    }
    spans
}

/// The deepest (smallest) span of `rank` covering the interval `[a, b]`,
/// among `spans`. Ties break toward the later-starting, then higher-id
/// span, matching the parent rule.
pub fn deepest_covering(spans: &[Span], rank: usize, a: f64, b: f64) -> Option<&Span> {
    spans.iter().filter(|s| s.rank == rank && s.covers(a, b)).min_by(|x, y| {
        x.duration()
            .total_cmp(&y.duration())
            .then(y.start.total_cmp(&x.start))
            .then(y.id.cmp(&x.id))
    })
}

/// The deepest span of `rank` containing time `t` (half-open on the
/// right, so a span ending exactly at `t` does not contain it).
pub fn deepest_at(spans: &[Span], rank: usize, t: f64) -> Option<&Span> {
    spans.iter().filter(|s| s.rank == rank && s.start <= t && t < s.end).min_by(|x, y| {
        x.duration()
            .total_cmp(&y.duration())
            .then(y.start.total_cmp(&x.start))
            .then(y.id.cmp(&x.id))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, rank: usize, phase: Phase, name: &str, kind: EventKind) -> TraceEvent {
        TraceEvent { t, rank, phase, name: name.to_owned(), kind, corr: None }
    }

    #[test]
    fn pairs_nested_spans_lifo_and_assigns_parents() {
        let events = vec![
            ev(0.0, 0, Phase::Segment, "write", EventKind::Begin),
            ev(1.0, 0, Phase::IoPhase, "collective", EventKind::Begin),
            ev(2.0, 0, Phase::IoPhase, "collective", EventKind::End),
            ev(4.0, 0, Phase::Segment, "write", EventKind::End),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 2);
        let outer = &spans[0];
        let inner = &spans[1];
        assert_eq!((outer.phase, outer.start, outer.end), (Phase::Segment, 0.0, 4.0));
        assert_eq!((inner.phase, inner.start, inner.end), (Phase::IoPhase, 1.0, 2.0));
        assert_eq!(outer.parent, None);
        assert_eq!(inner.parent, Some(outer.id));
    }

    #[test]
    fn unmatched_begins_and_ends_are_dropped() {
        let events = vec![
            ev(0.0, 0, Phase::Arrays, "a", EventKind::Begin),
            ev(1.0, 1, Phase::Arrays, "a", EventKind::End),
        ];
        assert!(build_spans(&events).is_empty());
    }

    #[test]
    fn parents_stay_on_the_same_rank() {
        let events = vec![
            ev(0.0, 0, Phase::Segment, "write", EventKind::Begin),
            ev(1.0, 1, Phase::StreamWave, "a", EventKind::Begin),
            ev(2.0, 1, Phase::StreamWave, "a", EventKind::End),
            ev(4.0, 0, Phase::Segment, "write", EventKind::End),
        ];
        let spans = build_spans(&events);
        let wave = spans.iter().find(|s| s.phase == Phase::StreamWave).unwrap();
        assert_eq!(wave.parent, None, "rank-1 span must not parent under a rank-0 span");
    }

    #[test]
    fn equal_interval_spans_chain_without_cycles() {
        let events = vec![
            ev(0.0, 0, Phase::Arrays, "a", EventKind::Begin),
            ev(0.0, 0, Phase::Arrays, "a", EventKind::Begin),
            ev(3.0, 0, Phase::Arrays, "a", EventKind::End),
            ev(3.0, 0, Phase::Arrays, "a", EventKind::End),
        ];
        let spans = build_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(spans[0].id));
    }

    #[test]
    fn deepest_covering_prefers_the_innermost_span() {
        let events = vec![
            ev(0.0, 0, Phase::Segment, "write", EventKind::Begin),
            ev(1.0, 0, Phase::IoPhase, "collective", EventKind::Begin),
            ev(3.0, 0, Phase::IoPhase, "collective", EventKind::End),
            ev(4.0, 0, Phase::Segment, "write", EventKind::End),
        ];
        let spans = build_spans(&events);
        let deep = deepest_covering(&spans, 0, 1.5, 2.5).unwrap();
        assert_eq!(deep.phase, Phase::IoPhase);
        assert_eq!(deepest_covering(&spans, 0, 0.25, 0.5).unwrap().phase, Phase::Segment);
        assert!(deepest_covering(&spans, 0, 4.5, 5.0).is_none());
        assert_eq!(deepest_at(&spans, 0, 1.0).unwrap().phase, Phase::IoPhase);
        assert_eq!(deepest_at(&spans, 0, 3.0).unwrap().phase, Phase::Segment);
    }
}
