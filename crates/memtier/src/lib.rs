//! Diskless checkpoint tier: in-memory replication above the PIOFS path.
//!
//! The paper's restart always pays full PIOFS I/O. Later recovery work
//! (ReStore; diskless checkpointing generally) showed that keeping the
//! newest checkpoint replicated in surviving nodes' memory makes recovery
//! latency nearly independent of storage bandwidth. This crate layers that
//! idea over the DRMS machinery without changing what a checkpoint *is*:
//!
//! * **Store** ([`store_checkpoint`]): at an SOP, the canonical stream
//!   pieces of `darray::stream` — the same distribution-independent bytes
//!   the file path writes — are kept in node memory and scattered to
//!   [`MemTier::replicas`] additional nodes over `msg`, never co-located
//!   with the owning node ([`placement`]). Replication traffic is priced by
//!   the simulator's deterministic cost model like any other message.
//! * **Survivability**: a checkpoint survives the loss of up to
//!   `replicas` nodes (owner plus `replicas - 1` copies of some piece may
//!   die and one copy remains); [`MemTier::fail_node`] applies node loss
//!   and evicts entries that crossed the threshold. Node memory does not
//!   come back with a repaired node.
//! * **Spill** ([`spill_checkpoint`]): resident pieces are persisted to the
//!   exact PIOFS files the direct checkpoint path would have produced,
//!   manifest (with integrity records) last, verified end-to-end before the
//!   checkpoint counts as durable — so durability is unchanged and a PIOFS
//!   fallback restores bitwise-identical state.
//! * **Tiered restart** ([`choose_restart_tiered`]): memory tier if intact
//!   and at least as new as the durable chain, else the verified PIOFS
//!   walk of `drms_resil` with its scrub/quarantine fallback.
//!   [`resume_from_tier`] / [`restore_arrays_from_tier`] then serve the
//!   restart out of resident pieces at memory/interconnect speed.

#![deny(missing_docs)]

mod error;
pub mod placement;
mod restart;
mod restore;
mod store;
mod tier;

pub use error::MemTierError;
pub use restart::{choose_restart_tiered, RestartTier, TieredRestartPlan};
pub use restore::{fetch_array_range, price_fetch, restore_arrays_from_tier, resume_from_tier};
pub use store::{
    array_file, spill_checkpoint, spill_to_staging, store_captured, store_checkpoint,
    store_feasible, CapturedPiece, SpillReport, StoreReport, SEGMENT_FILE,
};
pub use tier::{Fetched, MemTier, DEFAULT_PIECE_BYTES};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MemTierError>;
