//! Recovery-cost attribution over a stitched timeline.
//!
//! Answers "where did the wall clock of this faulty run go?" with an
//! *exact tiling*: every stitched second lands in exactly one of six
//! buckets — detection latency, restore, localized recovery,
//! re-computation, useful work, or lost work — so the buckets sum to the
//! stitched wall clock to the last bit (useful work is the residual of
//! the other five inside each incarnation's extent, and the boundary
//! quantities are differences of the same event timestamps, so nothing
//! is double-billed).
//!
//! Bucket boundaries, per incarnation `k` over `[start_k, end_k]`:
//!
//! * **detect** — the gap billed before `start_k` (restarts only);
//! * **restore** — `start_k` to the last close of a restore span
//!   ([`drms_blackbox::RESTORE_SPAN_NAMES`]), restarted incarnations only;
//! * **localized** — the union of in-incarnation localized-recovery
//!   spans ([`drms_blackbox::LOCALIZED_SPAN_NAME`]): survivors paused
//!   while lost sections were restored in place, no restart billed.
//!   Overlap with the restore window stays restore; overlap with the
//!   recompute or lost windows is billed localized (priority
//!   restore > localized > recompute > lost);
//! * **recompute** — restore end to the first `commit:` marker: work
//!   re-done because it post-dated the checkpoint the restart used. A
//!   restarted incarnation that never commits is all re-computation (if it
//!   completed) or all lost (if it was killed again);
//! * **lost** — last `commit:` marker to `end_k`, killed incarnations
//!   only: work that died uncommitted;
//! * **useful** — everything else.
//!
//! The localized bucket is what separates a run that recovered through
//! the survivor-driven section-restore path from one that fell back to a
//! full restart: localized time replaces an entire detect + restore +
//! recompute cycle of a new incarnation.

use std::fmt::Write as _;

use drms_blackbox::{COMMIT_EVENT_PREFIX, LOCALIZED_SPAN_NAME, RESTORE_SPAN_NAMES};
use drms_obs::EventKind;

use crate::stitch::StitchedTimeline;

/// One incarnation's share of the six buckets, in stitched seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct IncarnationCost {
    /// Incarnation number.
    pub incarnation: u64,
    /// Detection latency billed before this incarnation started.
    pub detect: f64,
    /// Restore window (checkpoint read + redistribution).
    pub restore: f64,
    /// In-place localized-recovery windows (survivor-driven section
    /// restore that avoided a restart).
    pub localized: f64,
    /// Re-computation to regain the pre-crash frontier.
    pub recompute: f64,
    /// Productive, committed-or-final work.
    pub useful: f64,
    /// Uncommitted work a kill destroyed.
    pub lost: f64,
    /// Commits observed inside the incarnation's extent.
    pub commits: usize,
    /// Per-rank lost tails `(rank, seconds)` for killed incarnations: how
    /// far past the last commit each rank's recovered history reaches.
    pub rank_lost: Vec<(usize, f64)>,
}

impl IncarnationCost {
    /// The incarnation's extent duration (all buckets except `detect`).
    pub fn duration(&self) -> f64 {
        self.restore + self.localized + self.recompute + self.useful + self.lost
    }
}

/// The full attribution: per-incarnation rows plus totals that tile the
/// stitched wall clock exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// One row per incarnation, in order.
    pub rows: Vec<IncarnationCost>,
    /// Stitched end-to-end wall clock the rows tile.
    pub wall: f64,
}

impl RecoveryReport {
    /// Computes the attribution from a stitched timeline.
    pub fn from_timeline(tl: &StitchedTimeline) -> RecoveryReport {
        let mut rows = Vec::with_capacity(tl.segments.len());
        for seg in &tl.segments {
            let events: Vec<_> =
                tl.events.iter().filter(|e| e.t >= seg.start && e.t <= seg.end).collect();
            let restore_end = if seg.restarted {
                events
                    .iter()
                    .filter(|e| {
                        e.kind == EventKind::End && RESTORE_SPAN_NAMES.contains(&e.name.as_str())
                    })
                    .map(|e| e.t)
                    .fold(seg.start, f64::max)
            } else {
                seg.start
            };
            let commits: Vec<f64> = events
                .iter()
                .filter(|e| e.kind == EventKind::Instant && e.name.starts_with(COMMIT_EVENT_PREFIX))
                .map(|e| e.t)
                .collect();
            // Localized-recovery windows: paired Start/End spans within the
            // extent. An unclosed span (a crash mid-recovery) extends to
            // the extent's end. Clamped below the restore window so restore
            // keeps priority, then merged so overlaps bill once.
            let mut localized_windows: Vec<(f64, f64)> = Vec::new();
            let mut open: Option<f64> = None;
            for e in events.iter().filter(|e| e.name == LOCALIZED_SPAN_NAME) {
                match e.kind {
                    EventKind::Begin => open = Some(e.t),
                    EventKind::End => {
                        if let Some(s) = open.take() {
                            localized_windows.push((s, e.t));
                        }
                    }
                    EventKind::Instant => {}
                }
            }
            if let Some(s) = open {
                localized_windows.push((s, seg.end));
            }
            let localized_windows = merge_windows(localized_windows, restore_end, seg.end);
            let restore = restore_end - seg.start;
            // Only a restarted incarnation re-computes: its pre-commit work
            // repeats ground the checkpoint had already covered. A fresh
            // incarnation's pre-commit work is ordinary useful progress.
            let (recompute, lost_from) = if seg.restarted {
                match commits.first() {
                    Some(&first) => {
                        ((first - restore_end).max(0.0), *commits.last().expect("nonempty"))
                    }
                    // No commit: a killed incarnation's whole tail is lost;
                    // a surviving one re-computed to its horizon.
                    None if seg.killed => (0.0, restore_end),
                    None => (seg.end - restore_end, seg.end),
                }
            } else {
                (0.0, commits.last().copied().unwrap_or(seg.start))
            };
            // Priority walk: time inside a localized window is billed
            // localized, carved out of whichever lower-priority bucket
            // (recompute, lost) would otherwise have claimed it.
            let localized: f64 = localized_windows.iter().map(|&(s, e)| e - s).sum();
            let recompute = recompute
                - localized_windows
                    .iter()
                    .map(|&(s, e)| overlap(s, e, restore_end, restore_end + recompute))
                    .sum::<f64>();
            let lost_raw = if seg.killed { (seg.end - lost_from).max(0.0) } else { 0.0 };
            let lost = lost_raw
                - localized_windows
                    .iter()
                    .map(|&(s, e)| overlap(s, e, seg.end - lost_raw, seg.end))
                    .sum::<f64>();
            let duration = seg.end - seg.start;
            let useful = duration - restore - localized - recompute - lost;
            let mut rank_lost: Vec<(usize, f64)> = Vec::new();
            if seg.killed {
                let mut by_rank: std::collections::BTreeMap<usize, f64> = Default::default();
                for e in &events {
                    let t = by_rank.entry(e.rank).or_insert(seg.start);
                    *t = t.max(e.t);
                }
                rank_lost =
                    by_rank.into_iter().map(|(r, t)| (r, (t - lost_from).max(0.0))).collect();
            }
            rows.push(IncarnationCost {
                incarnation: seg.incarnation,
                detect: seg.detect,
                restore,
                localized,
                recompute,
                useful,
                lost,
                commits: commits.len(),
                rank_lost,
            });
        }
        RecoveryReport { rows, wall: tl.wall() }
    }

    /// Sum of one bucket across incarnations.
    fn total(&self, f: impl Fn(&IncarnationCost) -> f64) -> f64 {
        self.rows.iter().map(f).sum()
    }

    /// Total recovery cost: everything except useful work.
    pub fn recovery_cost(&self) -> f64 {
        self.total(|r| r.detect + r.restore + r.localized + r.recompute + r.lost)
    }

    /// Recovery cost as a fraction of the stitched wall clock (0 when the
    /// timeline is empty) — the offline, exactly-tiled counterpart of the
    /// live `blackbox.recovery_ratio` gauge.
    pub fn recovery_fraction(&self) -> f64 {
        if self.wall <= 0.0 {
            0.0
        } else {
            self.recovery_cost() / self.wall
        }
    }

    /// Largest absolute tiling error: how far the five buckets are from
    /// summing to the wall clock. Zero up to floating-point association
    /// (the quantities are differences of shared timestamps).
    pub fn tiling_error(&self) -> f64 {
        let sum = self.total(|r| r.detect + r.duration());
        (sum - self.wall).abs()
    }

    /// Deterministic plain-text table of the attribution.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "recovery-cost attribution ({} incarnations)", self.rows.len());
        let _ = writeln!(
            out,
            "{:>4} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
            "inc", "detect", "restore", "localized", "recompute", "useful", "lost", "commits"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>4} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>12.6} {:>8}",
                r.incarnation,
                r.detect,
                r.restore,
                r.localized,
                r.recompute,
                r.useful,
                r.lost,
                r.commits
            );
            for (rank, lost) in &r.rank_lost {
                if *lost > 0.0 {
                    let _ = writeln!(out, "       rank {rank}: {lost:.6}s past last commit");
                }
            }
        }
        let _ = writeln!(
            out,
            "totals detect={:.6} restore={:.6} localized={:.6} recompute={:.6} useful={:.6} \
             lost={:.6}",
            self.total(|r| r.detect),
            self.total(|r| r.restore),
            self.total(|r| r.localized),
            self.total(|r| r.recompute),
            self.total(|r| r.useful),
            self.total(|r| r.lost),
        );
        let _ = writeln!(
            out,
            "wall={:.6} recovery_cost={:.6} recovery_fraction={:.6}",
            self.wall,
            self.recovery_cost(),
            self.recovery_fraction()
        );
        out
    }
}

/// Clamps each window to `[lo, hi]`, drops empties, and merges overlaps
/// so every instant is counted at most once.
fn merge_windows(mut windows: Vec<(f64, f64)>, lo: f64, hi: f64) -> Vec<(f64, f64)> {
    for w in &mut windows {
        w.0 = w.0.max(lo);
        w.1 = w.1.min(hi);
    }
    windows.retain(|&(s, e)| e > s);
    windows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut merged: Vec<(f64, f64)> = Vec::with_capacity(windows.len());
    for (s, e) in windows {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// Length of the intersection of `[a0, a1]` and `[b0, b1]`.
fn overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stitch::{stitch, IncarnationInput, StitchOptions};
    use drms_obs::{Phase, TraceEvent};

    fn ev(t: f64, rank: usize, name: &str, kind: EventKind) -> TraceEvent {
        TraceEvent { t, rank, phase: Phase::Arrays, name: name.to_string(), kind, corr: None }
    }

    fn timeline() -> StitchedTimeline {
        // Incarnation 0: commits at 4 and 6, killed at horizon 10.
        // Incarnation 1 (restarted): restore ends 3, commit 5, horizon 8.
        let inputs = vec![
            IncarnationInput {
                incarnation: 0,
                events: vec![
                    ev(0.5, 0, "warmup", EventKind::Instant),
                    ev(4.0, 0, "commit:ck/a", EventKind::Instant),
                    ev(6.0, 0, "commit:ck/b", EventKind::Instant),
                    ev(9.0, 1, "late-work", EventKind::Instant),
                    ev(10.0, 0, "crash:ckpt_mid_publish", EventKind::Instant),
                ],
                killed: true,
                restarted: false,
            },
            IncarnationInput {
                incarnation: 1,
                events: vec![
                    ev(3.0, 0, "restore_arrays", EventKind::End),
                    ev(5.0, 0, "commit:ck/c", EventKind::Instant),
                    ev(8.0, 0, "done", EventKind::Instant),
                ],
                killed: false,
                restarted: true,
            },
        ];
        stitch(&inputs, &StitchOptions { detection_latency: 2.0 })
    }

    #[test]
    fn buckets_tile_the_wall_clock_exactly() {
        let tl = timeline();
        let rep = RecoveryReport::from_timeline(&tl);
        assert_eq!(rep.wall, 20.0);
        assert_eq!(rep.tiling_error(), 0.0);
        // Inc 0: useful 6 (start→last commit), lost 4 (6→10).
        assert_eq!(rep.rows[0].useful, 6.0);
        assert_eq!(rep.rows[0].lost, 4.0);
        assert_eq!(rep.rows[0].detect, 0.0);
        // Inc 1: detect 2, restore 3, recompute 2 (3→5), useful 3 (5→8).
        assert_eq!(rep.rows[1].detect, 2.0);
        assert_eq!(rep.rows[1].restore, 3.0);
        assert_eq!(rep.rows[1].recompute, 2.0);
        assert_eq!(rep.rows[1].useful, 3.0);
        // cost = 4 + 2 + 3 + 2 = 11 of 20.
        assert!((rep.recovery_fraction() - 11.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn rank_lost_tails_attribute_per_rank() {
        let rep = RecoveryReport::from_timeline(&timeline());
        let tails = &rep.rows[0].rank_lost;
        // Rank 0's last event is the crash marker at 10 (4s past commit at
        // 6); rank 1's late work at 9 is 3s past.
        assert_eq!(tails.len(), 2);
        assert_eq!(tails[0], (0, 4.0));
        assert_eq!(tails[1], (1, 3.0));
    }

    #[test]
    fn localized_spans_bill_their_own_bucket() {
        // One incarnation, never killed or restarted: a commit at 3, then
        // a localized recovery from 5 to 7, horizon 10. The two seconds
        // inside the span are recovery cost; the rest is useful.
        let inputs = vec![IncarnationInput {
            incarnation: 0,
            events: vec![
                ev(3.0, 0, "commit:ck/a", EventKind::Instant),
                ev(5.0, 0, LOCALIZED_SPAN_NAME, EventKind::Begin),
                ev(7.0, 0, LOCALIZED_SPAN_NAME, EventKind::End),
                ev(10.0, 0, "done", EventKind::Instant),
            ],
            killed: false,
            restarted: false,
        }];
        let tl = stitch(&inputs, &StitchOptions { detection_latency: 2.0 });
        let rep = RecoveryReport::from_timeline(&tl);
        assert_eq!(rep.rows[0].localized, 2.0);
        assert_eq!(rep.rows[0].useful, 8.0);
        assert_eq!(rep.rows[0].restore, 0.0);
        assert_eq!(rep.recovery_cost(), 2.0);
        assert_eq!(rep.tiling_error(), 0.0);
        assert!(rep.render().contains("localized"));
    }

    #[test]
    fn localized_takes_priority_over_lost() {
        // Killed incarnation: commit at 4, localized span [6, 8], horizon
        // 10. The span is carved out of the lost tail, not double-billed.
        let inputs = vec![IncarnationInput {
            incarnation: 0,
            events: vec![
                ev(4.0, 0, "commit:ck/a", EventKind::Instant),
                ev(6.0, 0, LOCALIZED_SPAN_NAME, EventKind::Begin),
                ev(8.0, 0, LOCALIZED_SPAN_NAME, EventKind::End),
                ev(10.0, 0, "crash:x", EventKind::Instant),
            ],
            killed: true,
            restarted: false,
        }];
        let tl = stitch(&inputs, &StitchOptions { detection_latency: 1.0 });
        let rep = RecoveryReport::from_timeline(&tl);
        assert_eq!(rep.rows[0].localized, 2.0);
        assert_eq!(rep.rows[0].lost, 4.0);
        assert_eq!(rep.rows[0].useful, 4.0);
        assert_eq!(rep.tiling_error(), 0.0);
    }

    #[test]
    fn unclosed_localized_span_extends_to_the_crash() {
        // A second failure mid-recovery leaves the span open: everything
        // from the span start to the horizon is localized-recovery time.
        let inputs = vec![IncarnationInput {
            incarnation: 0,
            events: vec![
                ev(6.0, 0, LOCALIZED_SPAN_NAME, EventKind::Begin),
                ev(9.0, 0, "crash:recover_restored", EventKind::Instant),
            ],
            killed: true,
            restarted: false,
        }];
        let tl = stitch(&inputs, &StitchOptions { detection_latency: 1.0 });
        let rep = RecoveryReport::from_timeline(&tl);
        // With no commit the whole extent is a lost tail; the open span
        // carves [6, 9] out of it as localized-recovery time.
        assert_eq!(rep.rows[0].localized, 3.0);
        assert_eq!(rep.rows[0].lost, 6.0);
        assert_eq!(rep.rows[0].useful, 0.0);
        assert_eq!(rep.tiling_error(), 0.0);
    }

    #[test]
    fn killed_without_commit_is_all_lost_after_restore() {
        let inputs = vec![
            IncarnationInput {
                incarnation: 0,
                events: vec![ev(10.0, 0, "w", EventKind::Instant)],
                killed: true,
                restarted: false,
            },
            IncarnationInput {
                incarnation: 1,
                events: vec![
                    ev(2.0, 0, "restore_arrays", EventKind::End),
                    ev(7.0, 0, "crash:x", EventKind::Instant),
                ],
                killed: true,
                restarted: true,
            },
        ];
        let tl = stitch(&inputs, &StitchOptions { detection_latency: 1.0 });
        let rep = RecoveryReport::from_timeline(&tl);
        assert_eq!(rep.rows[1].restore, 2.0);
        assert_eq!(rep.rows[1].recompute, 0.0);
        assert_eq!(rep.rows[1].lost, 5.0);
        assert_eq!(rep.rows[1].useful, 0.0);
        assert_eq!(rep.tiling_error(), 0.0);
        let render = rep.render();
        assert!(render.contains("recovery_fraction"));
    }
}
