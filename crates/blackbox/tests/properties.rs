//! Property tests for the flight recorder: the ring's memory bound and
//! oldest-first eviction discipline under arbitrary push sequences, the
//! seal bookkeeping telescoping exactly, the wire format round-tripping,
//! and overlapping-seal deduplication in the archive. (The stitcher's
//! ordering invariant lives in the insight crate's property tests.)

use drms_blackbox::{decode_seal, encode_seal, FlightRing, SealArchive, SealHeader};
use drms_obs::{EventKind, Phase, TraceEvent};
use proptest::prelude::*;

fn ev(t: f64, rank: usize, name: &str) -> TraceEvent {
    TraceEvent {
        t,
        rank,
        phase: Phase::Arrays,
        name: name.to_string(),
        kind: EventKind::Instant,
        corr: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The ring never holds more than `capacity` events no matter how many
    /// are pushed, and its lifetime counters tile exactly: every captured
    /// event is either still buffered or was evicted.
    #[test]
    fn ring_memory_is_bounded(capacity in 1usize..64, pushes in 0usize..256) {
        let mut ring = FlightRing::new(capacity);
        for i in 0..pushes {
            ring.push(ev(i as f64, 0, "e"));
            prop_assert!(ring.len() <= capacity);
        }
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.captured(), pushes as u64);
        prop_assert_eq!(ring.evicted(), pushes.saturating_sub(capacity) as u64);
        prop_assert_eq!(ring.len() as u64 + ring.evicted(), ring.captured());
    }

    /// Eviction is strictly oldest-first: the survivors are exactly the
    /// highest capture sequence numbers, still in capture order.
    #[test]
    fn ring_evicts_oldest_first(capacity in 1usize..32, pushes in 0usize..128) {
        let mut ring = FlightRing::new(capacity);
        for i in 0..pushes {
            ring.push(ev(i as f64, 0, "e"));
        }
        let seqs: Vec<u64> = ring.contents().map(|(s, _)| *s).collect();
        let survivors = pushes.min(capacity);
        let expect: Vec<u64> = ((pushes - survivors) as u64..pushes as u64).collect();
        prop_assert_eq!(seqs, expect);
    }

    /// Seal bookkeeping telescopes: over any interleaving of pushes and
    /// seals, the per-seal capture/eviction deltas sum back to the ring's
    /// lifetime totals, and what was never sealed is exactly the tail the
    /// process would lose if killed now.
    #[test]
    fn seal_stats_telescope(
        capacity in 1usize..16,
        ops in proptest::collection::vec(0u8..2, 0..64),
    ) {
        let mut ring = FlightRing::new(capacity);
        let (mut captured, mut evicted, mut t) = (0u64, 0u64, 0.0f64);
        let mut seals = 0u64;
        for (i, op) in ops.iter().enumerate() {
            if *op == 1 {
                ring.push(ev(i as f64, 0, "e"));
                t = i as f64;
            } else {
                let stats = ring.mark_sealed();
                prop_assert_eq!(stats.seal_seq, seals);
                seals += 1;
                captured += stats.captured_delta;
                evicted += stats.evicted_delta;
                prop_assert_eq!(stats.evicted_total, ring.evicted());
                prop_assert_eq!(ring.unsealed(), 0);
            }
        }
        prop_assert_eq!(captured + ring.unsealed(), ring.captured());
        prop_assert_eq!(evicted + (ring.evicted() - evicted), ring.evicted());
        let _ = t;
    }

    /// A seal survives the wire format bit-exactly: header fields, event
    /// order, capture sequence numbers, and every timestamp.
    #[test]
    fn wire_roundtrip_is_exact(
        incarnation in 0u64..8,
        rank in 0usize..16,
        seal_seq in 0u64..8,
        t_us in 0u64..1_000_000_000,
        times_us in proptest::collection::vec(0u64..1_000_000_000, 0..32),
    ) {
        // Microsecond grid mapped through an inexact scale, so the
        // timestamps carry full mantissas and bit-equality is a real test.
        let t = t_us as f64 * 1e-6;
        let events: Vec<(u64, TraceEvent)> = times_us
            .iter()
            .enumerate()
            .map(|(i, &us)| (i as u64, ev(us as f64 * 1e-6, rank, &format!("n{i}"))))
            .collect();
        let header = SealHeader {
            incarnation,
            rank,
            seal_seq,
            t,
            reason: "sop".to_string(),
            evicted_total: 3,
        };
        let bytes = encode_seal(&header, events.iter(), events.len());
        let dec = decode_seal(&bytes).unwrap();
        prop_assert_eq!(dec.header.incarnation, incarnation);
        prop_assert_eq!(dec.header.rank, rank);
        prop_assert_eq!(dec.header.seal_seq, seal_seq);
        prop_assert_eq!(dec.header.t.to_bits(), t.to_bits());
        prop_assert_eq!(dec.events, events);
    }

    /// Overlapping snapshot seals deduplicate exactly in the archive: no
    /// matter where the seal points fall, the recovered stream is every
    /// surviving event once, in capture order.
    #[test]
    fn archive_dedups_overlapping_seals(
        capacity in 2usize..24,
        pushes in 1usize..96,
        cuts in proptest::collection::vec(0usize..96, 1..6),
    ) {
        let mut ring = FlightRing::new(capacity);
        let mut archive = SealArchive::new();
        let mut cuts = cuts;
        cuts.sort_unstable();
        let mut next_cut = 0;
        let seal = |ring: &mut FlightRing, archive: &mut SealArchive, t: f64| {
            let stats = ring.mark_sealed();
            let header = SealHeader {
                incarnation: 0,
                rank: 0,
                seal_seq: stats.seal_seq,
                t,
                reason: "sop".to_string(),
                evicted_total: stats.evicted_total,
            };
            let n = ring.len();
            let bytes = encode_seal(&header, ring.contents(), n);
            assert!(archive.ingest(&bytes).unwrap());
        };
        // Oracle: a seal taken right after push `i` snapshots the window
        // of the `capacity` newest captures. Events falling between two
        // seals' windows were evicted unsealed and are gone for good, so
        // the recovered stream is the union of the windows — once each,
        // in capture order — not necessarily contiguous.
        let mut windows: Vec<(usize, usize)> = Vec::new();
        for i in 0..pushes {
            ring.push(ev(i as f64, 0, &format!("n{i}")));
            while next_cut < cuts.len() && cuts[next_cut] <= i {
                seal(&mut ring, &mut archive, i as f64);
                windows.push(((i + 1).saturating_sub(capacity), i + 1));
                next_cut += 1;
            }
        }
        // Final seal so the tail is always recoverable.
        seal(&mut ring, &mut archive, pushes as f64);
        windows.push((pushes.saturating_sub(capacity), pushes));
        let recovered = archive.events_for(0);
        let expect: Vec<String> = (0..pushes)
            .filter(|&i| windows.iter().any(|&(lo, hi)| i >= lo && i < hi))
            .map(|i| format!("n{i}"))
            .collect();
        let got: Vec<String> = recovered.iter().map(|e| e.name.clone()).collect();
        prop_assert_eq!(got, expect);
    }
}
