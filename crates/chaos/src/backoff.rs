//! Bounded exponential backoff with deterministic jitter.

use crate::rng::unit;

/// Retry schedule for transient faults: up to `max_attempts` tries, with an
/// exponentially growing, capped, jittered delay charged between attempts.
///
/// The schedule is a pure function of the policy and a caller-supplied key
/// (derived from the fault-plan seed plus the operation's coordinates), so
/// replaying a campaign replays the exact same waits. Delays are monotone
/// non-decreasing by construction — the jittered exponential is folded
/// through a running maximum — and never exceed `cap`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempt budget (first try included). After this many faulted
    /// attempts the operation gives up: reads fail, writes and sends
    /// escalate to the blocking path.
    pub max_attempts: u32,
    /// Delay before the first retry, simulated seconds.
    pub base: f64,
    /// Multiplicative growth per retry.
    pub factor: f64,
    /// Upper bound on any single delay, simulated seconds.
    pub cap: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, base: 0.002, factor: 2.0, cap: 0.05 }
    }
}

impl RetryPolicy {
    /// Delay to charge before retry number `attempt` (0-based), jittered by
    /// `key`. Monotone non-decreasing in `attempt` and bounded by `cap`.
    pub fn delay(&self, attempt: u32, key: u64) -> f64 {
        let mut d = 0.0f64;
        for k in 0..=attempt {
            // Jitter in [0.5, 1.0] keeps every term under the cap while
            // decorrelating retry storms across ranks and operations.
            let jitter = 0.5 + 0.5 * unit(&[key, k as u64]);
            let raw = (self.base * self.factor.powi(k as i32)).min(self.cap) * jitter;
            d = d.max(raw);
        }
        d.min(self.cap)
    }

    /// The full schedule of delays a giving-up operation would charge:
    /// one entry per retry, `max_attempts - 1` entries total (the first
    /// attempt waits for nothing).
    pub fn schedule(&self, key: u64) -> Vec<f64> {
        (0..self.max_attempts.saturating_sub(1)).map(|a| self.delay(a, key)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule_grows_and_respects_cap() {
        let p = RetryPolicy::default();
        let s = p.schedule(7);
        assert_eq!(s.len(), 3);
        for w in s.windows(2) {
            assert!(w[1] >= w[0], "schedule must be monotone: {s:?}");
        }
        assert!(s.iter().all(|&d| d > 0.0 && d <= p.cap), "{s:?}");
    }

    #[test]
    fn deterministic_per_key() {
        let p = RetryPolicy { max_attempts: 8, base: 0.001, factor: 3.0, cap: 0.2 };
        assert_eq!(p.schedule(11), p.schedule(11));
        assert_ne!(p.schedule(11), p.schedule(12));
    }
}
