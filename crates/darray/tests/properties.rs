//! Property tests for the reconfigurability invariants:
//!
//! * redistribution between arbitrary distributions preserves every element;
//! * a streamed section is distribution-independent: writing with `P1` tasks
//!   and reading with `P2` tasks (any distributions, any I/O parallelism)
//!   restores every element exactly.

use std::sync::Arc;

use drms_darray::{assign, stream, DistArray, Distribution};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum DistChoice {
    BlockAuto { shadow: usize },
    BlockGrid { axis_bias: usize, shadow: usize },
    Cyclic { axis: usize },
}

fn arb_dist() -> impl Strategy<Value = DistChoice> {
    prop_oneof![
        (0usize..3).prop_map(|shadow| DistChoice::BlockAuto { shadow }),
        (0usize..2, 0usize..2)
            .prop_map(|(axis_bias, shadow)| DistChoice::BlockGrid { axis_bias, shadow }),
        (0usize..2).prop_map(|axis| DistChoice::Cyclic { axis }),
    ]
}

fn build_dist(choice: &DistChoice, domain: &Slice, ntasks: usize) -> Arc<Distribution> {
    match choice {
        DistChoice::BlockAuto { shadow } => {
            Distribution::block_auto(domain, ntasks, *shadow).expect("block auto")
        }
        DistChoice::BlockGrid { axis_bias, shadow } => {
            // Put all parts on one axis.
            let mut parts = vec![1usize; domain.rank()];
            let ax = *axis_bias % domain.rank();
            parts[ax] = ntasks;
            let shadows = vec![*shadow; domain.rank()];
            Distribution::block(domain, &parts, &shadows).expect("block grid")
        }
        DistChoice::Cyclic { axis } => {
            Distribution::cyclic(domain, ntasks, *axis % domain.rank()).expect("cyclic")
        }
    }
}

fn value(p: &[i64]) -> f64 {
    p.iter().enumerate().map(|(i, &x)| (i as f64 + 1.0) * (x as f64 + 0.25)).product::<f64>() + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn redistribution_preserves_all_elements(
        rows in 4i64..20,
        cols in 4i64..20,
        p in 1usize..5,
        src in arb_dist(),
        dst in arb_dist(),
    ) {
        let dom = Slice::boxed(&[(0, rows - 1), (0, cols - 1)]);
        let src_dist = build_dist(&src, &dom, p);
        let dst_dist = build_dist(&dst, &dom, p);
        let results = run_spmd(p, CostModel::default(), |ctx| {
            let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, src_dist.clone(), ctx.rank());
            a.fill_assigned(value);
            let b = assign::redistribute(ctx, &a, dst_dist.clone()).unwrap();
            // Check every mapped element against the ground truth.
            let mut bad = 0usize;
            b.mapped().clone().points(Order::ColumnMajor).for_each(|pt| {
                if b.get(pt).unwrap() != value(pt) {
                    bad += 1;
                }
            });
            bad
        }).unwrap();
        prop_assert_eq!(results.into_iter().sum::<usize>(), 0);
    }

    #[test]
    fn streaming_is_reconfigurable(
        rows in 4i64..16,
        cols in 4i64..16,
        p1 in 1usize..5,
        p2 in 1usize..5,
        d1 in arb_dist(),
        d2 in arb_dist(),
        io1 in 1usize..5,
        io2 in 1usize..5,
    ) {
        let dom = Slice::boxed(&[(0, rows - 1), (0, cols - 1)]);
        let fs = Piofs::new(PiofsConfig::test_tiny(4), 3);
        let w_dist = build_dist(&d1, &dom, p1);
        run_spmd(p1, CostModel::default(), |ctx| {
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, w_dist.clone(), ctx.rank());
            a.fill_assigned(value);
            stream::write_array(ctx, &fs, &a, "u", io1).unwrap();
        }).unwrap();

        let r_dist = build_dist(&d2, &dom, p2);
        let results = run_spmd(p2, CostModel::default(), |ctx| {
            let mut b = DistArray::<f64>::new("u", Order::ColumnMajor, r_dist.clone(), ctx.rank());
            stream::read_array(ctx, &fs, &mut b, "u", io2).unwrap();
            let mut bad = 0usize;
            b.mapped().clone().points(Order::ColumnMajor).for_each(|pt| {
                if b.get(pt).unwrap() != value(pt) {
                    bad += 1;
                }
            });
            bad
        }).unwrap();
        prop_assert_eq!(results.into_iter().sum::<usize>(), 0);
    }

    #[test]
    fn stream_bytes_independent_of_writer_config(
        rows in 4i64..12,
        cols in 4i64..12,
        p in 1usize..5,
        d in arb_dist(),
        io in 1usize..5,
    ) {
        let dom = Slice::boxed(&[(0, rows - 1), (0, cols - 1)]);
        // Reference stream: serial write from one task.
        let fs_ref = Piofs::new(PiofsConfig::test_tiny(4), 3);
        let ref_dist = Distribution::block_auto(&dom, 1, 0).unwrap();
        run_spmd(1, CostModel::default(), |ctx| {
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, ref_dist.clone(), ctx.rank());
            a.fill_assigned(value);
            stream::write_array(ctx, &fs_ref, &a, "u", 1).unwrap();
        }).unwrap();

        let fs = Piofs::new(PiofsConfig::test_tiny(4), 3);
        let dist = build_dist(&d, &dom, p);
        run_spmd(p, CostModel::default(), |ctx| {
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist.clone(), ctx.rank());
            a.fill_assigned(value);
            stream::write_array(ctx, &fs, &a, "u", io).unwrap();
        }).unwrap();

        prop_assert_eq!(fs.peek("u").unwrap(), fs_ref.peek("u").unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// C-style (row-major) arrays stream and reconfigure just like
    /// Fortran-style ones; the two orders produce different byte streams
    /// for the same data, and each reads back exactly.
    #[test]
    fn row_major_streams_are_reconfigurable(
        rows in 4i64..12,
        cols in 4i64..12,
        p1 in 1usize..4,
        p2 in 1usize..4,
    ) {
        // Asymmetric in the axes, so transposed enumerations differ.
        fn value(p: &[i64]) -> f64 {
            (p[0] * 1000 + p[1]) as f64 + 0.5
        }
        let dom = Slice::boxed(&[(0, rows - 1), (0, cols - 1)]);
        let fs = Piofs::new(PiofsConfig::test_tiny(4), 3);
        let w_dist = Distribution::block_auto(&dom, p1, 1).unwrap();
        run_spmd(p1, CostModel::default(), |ctx| {
            let mut a = DistArray::<f64>::new("u", Order::RowMajor, w_dist.clone(), ctx.rank());
            a.fill_assigned(value);
            stream::write_array(ctx, &fs, &a, "u", p1).unwrap();
        }).unwrap();

        let r_dist = Distribution::block_auto(&dom, p2, 0).unwrap();
        let bad: usize = run_spmd(p2, CostModel::default(), |ctx| {
            let mut b = DistArray::<f64>::new("u", Order::RowMajor, r_dist.clone(), ctx.rank());
            stream::read_array(ctx, &fs, &mut b, "u", p2).unwrap();
            let mut bad = 0usize;
            b.mapped().clone().points(Order::RowMajor).for_each(|pt| {
                if b.get(pt).unwrap() != value(pt) {
                    bad += 1;
                }
            });
            bad
        }).unwrap().into_iter().sum();
        prop_assert_eq!(bad, 0);

        // Cross-check: a column-major stream of the same data differs
        // byte-wise (unless the section is one-dimensional in effect).
        if rows > 1 && cols > 1 {
            let fs2 = Piofs::new(PiofsConfig::test_tiny(4), 3);
            let dist1 = Distribution::block_auto(&dom, 1, 0).unwrap();
            run_spmd(1, CostModel::default(), |ctx| {
                let mut a =
                    DistArray::<f64>::new("u", Order::ColumnMajor, dist1.clone(), ctx.rank());
                a.fill_assigned(value);
                stream::write_array(ctx, &fs2, &a, "u", 1).unwrap();
            }).unwrap();
            prop_assert_ne!(fs.peek("u").unwrap(), fs2.peek("u").unwrap());
        }
    }
}
