//! The shared checkpoint/restart experiment: run an application to its
//! mid-point on `P` of the 16 processors, checkpoint, then restart.

use std::sync::Arc;

use drms_apps::{AppSpec, AppVariant, Class, MiniApp};
use drms_core::report::OpBreakdown;
use drms_core::{Drms, EnableFlag};
use drms_msg::{run_spmd, CostModel, SpmdError};
use drms_piofs::{Piofs, PiofsConfig};

/// Number of nodes in the simulated system (fixed, like the paper's SP).
pub const SYSTEM_NODES: usize = 16;

/// A file system configured like the paper's PIOFS, with memory parameters
/// scaled to the class so thresholds are preserved at reduced scale.
pub fn experiment_fs(class: Class, seed: u64) -> Arc<Piofs> {
    let cfg = PiofsConfig::sp_1997().scale_memory(class.memory_scale());
    debug_assert_eq!(cfg.n_servers, SYSTEM_NODES);
    Piofs::new(cfg, seed)
}

/// Measurements from one checkpoint + restart cycle.
#[derive(Debug, Clone)]
pub struct PairResult {
    /// Checkpoint phase breakdown.
    pub ckpt: OpBreakdown,
    /// Restart phase breakdown.
    pub restart: OpBreakdown,
    /// Total size of the saved state on the file system.
    pub state_bytes: u64,
}

/// Runs one seeded checkpoint/restart experiment: `spec` on `pes`
/// processors, one warm-up solver iteration (the "mid-point"), checkpoint,
/// then a fresh incarnation restarting from it on the same processor count
/// (the Table 5 protocol).
pub fn run_pair(
    spec: &AppSpec,
    variant: AppVariant,
    pes: usize,
    seed: u64,
    warm_iters: i64,
) -> Result<PairResult, SpmdError> {
    let fs = experiment_fs(spec.class, seed);
    Drms::install_binary(&fs, &spec.drms_config());

    // --- incarnation 1: run to mid-point and checkpoint -----------------
    let spec_c = spec.clone();
    let fs_c = Arc::clone(&fs);
    let ckpts = run_spmd(pes, CostModel::default(), move |ctx| {
        let mut app = MiniApp::start(ctx, &fs_c, spec_c.clone(), variant, EnableFlag::new(), None)
            .expect("fresh start");
        for _ in 0..warm_iters {
            app.step(ctx);
        }
        app.checkpoint(ctx, &fs_c, "ck/mid").expect("checkpoint")
    })?;
    let ckpt = ckpts[0];
    let state_bytes = fs.total_bytes("ck/mid/");

    // --- incarnation 2: restart from the mid-point ----------------------
    fs.clear_residency();
    fs.reset_time();
    let spec_r = spec.clone();
    let fs_r = Arc::clone(&fs);
    let restarts = run_spmd(pes, CostModel::default(), move |ctx| {
        let app =
            MiniApp::start(ctx, &fs_r, spec_r.clone(), variant, EnableFlag::new(), Some("ck/mid"))
                .expect("restart");
        app.restart_report.expect("restarted")
    })?;
    Ok(PairResult { ckpt, restart: restarts[0], state_bytes })
}

/// Saved-state sizes only (Table 3): cheaper than a timed pair because no
/// restart is needed.
pub fn run_state_size(
    spec: &AppSpec,
    variant: AppVariant,
    pes: usize,
) -> Result<SavedState, SpmdError> {
    let fs = experiment_fs(spec.class, 1);
    Drms::install_binary(&fs, &spec.drms_config());
    let spec_c = spec.clone();
    let fs_c = Arc::clone(&fs);
    let reports = run_spmd(pes, CostModel::default(), move |ctx| {
        let mut app = MiniApp::start(ctx, &fs_c, spec_c.clone(), variant, EnableFlag::new(), None)
            .expect("fresh start");
        app.checkpoint(ctx, &fs_c, "ck/size").expect("checkpoint")
    })?;
    let segment_file = match variant {
        AppVariant::Drms => fs.size("ck/size/segment").unwrap_or(0),
        AppVariant::Spmd => fs.size("ck/size/task-0").unwrap_or(0),
    };
    Ok(SavedState {
        total: fs.total_bytes("ck/size/"),
        segment_component: reports[0].segment_bytes,
        array_component: reports[0].array_bytes,
        per_task_file: segment_file,
    })
}

/// Size decomposition of one saved state.
#[derive(Debug, Clone, Copy)]
pub struct SavedState {
    /// All bytes under the checkpoint prefix.
    pub total: u64,
    /// The data-segment component (one file for DRMS, sum for SPMD).
    pub segment_component: u64,
    /// The distributed-array component (zero for SPMD).
    pub array_component: u64,
    /// Size of one segment file.
    pub per_task_file: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_apps::{bt, sp};

    #[test]
    fn pair_produces_positive_times() {
        let spec = sp(Class::T);
        let r = run_pair(&spec, AppVariant::Drms, 4, 42, 1).unwrap();
        assert!(r.ckpt.total() > 0.0);
        assert!(r.restart.total() > 0.0);
        assert!(r.restart.init > 0.0, "restart includes text load");
        assert!(r.state_bytes > 0);
        assert_eq!(r.ckpt.array_bytes, spec.stream_bytes());
    }

    #[test]
    fn seeds_jitter_times_but_not_sizes() {
        let spec = bt(Class::T);
        let a = run_pair(&spec, AppVariant::Drms, 4, 1, 0).unwrap();
        let b = run_pair(&spec, AppVariant::Drms, 4, 2, 0).unwrap();
        assert_ne!(a.ckpt.total(), b.ckpt.total());
        assert_eq!(a.state_bytes, b.state_bytes);
        let a2 = run_pair(&spec, AppVariant::Drms, 4, 1, 0).unwrap();
        assert_eq!(a.ckpt.total(), a2.ckpt.total(), "same seed, same times");
    }

    #[test]
    fn state_size_drms_vs_spmd() {
        let spec = bt(Class::T);
        let d = run_state_size(&spec, AppVariant::Drms, 4).unwrap();
        let s = run_state_size(&spec, AppVariant::Spmd, 4).unwrap();
        assert!(d.array_component > 0);
        assert_eq!(s.array_component, 0);
        // SPMD state at 4 tasks is roughly 4 x one segment; DRMS is one
        // segment + arrays.
        assert!(s.total > d.total);
        assert!((s.total as f64 / s.per_task_file as f64 - 4.0).abs() < 0.1);
    }
}
