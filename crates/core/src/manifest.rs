//! Checkpoint manifests and file-naming conventions.
//!
//! A checkpoint under prefix `P` consists of:
//! * `P/manifest` — this manifest;
//! * `P/segment` — the representative task's data segment (DRMS), or
//!   `P/task-{rank}` — one segment per task (conventional SPMD);
//! * `P/array-{name}` — one distribution-independent stream per distributed
//!   array (DRMS only).
//!
//! The manifest records everything a *reconfigured* restart needs that is
//! not derivable from the application source: the task count at checkpoint
//! time (for `delta`), and the identity (name, domain, element type, order)
//! of every array stream, so mismatched restarts fail loudly instead of
//! reading garbage.

use drms_slices::{Order, Range, Slice};

use crate::wire::{crc32, split_trailing_crc, Reader, WireError, Writer};

const MAGIC: [u8; 4] = *b"DMFT";
/// Current manifest version. v1 had no integrity section and no trailing
/// self-CRC; `decode` still accepts it (with `integrity` empty).
const VERSION: u32 = 2;

/// Which checkpointing scheme produced the state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptKind {
    /// Reconfigurable DRMS checkpoint (one segment + array streams).
    Drms,
    /// Conventional SPMD checkpoint (one segment per task).
    Spmd,
}

/// Identity of one array stream within a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayEntry {
    /// Array name.
    pub name: String,
    /// Element type code (see [`drms_darray::Element::CODE`]).
    pub elem_code: u8,
    /// Global index domain.
    pub domain: Slice,
    /// Stream/storage order.
    pub order: Order,
}

/// Integrity record for one checkpoint file: per-chunk CRC-32s plus a
/// whole-file CRC. Chunk granularity is chosen by the writer (normally the
/// PIOFS stripe unit) so a failing chunk maps directly onto the stripe
/// units a parity repair must reconstruct.
#[derive(Debug, Clone, PartialEq)]
pub struct FileIntegrity {
    /// File name relative to the checkpoint prefix (e.g. `segment`,
    /// `array-u`).
    pub name: String,
    /// File length in bytes.
    pub len: u64,
    /// Chunk size in bytes (last chunk may be short). Always > 0.
    pub chunk: u64,
    /// CRC-32 of each chunk, in order.
    pub crcs: Vec<u32>,
    /// CRC-32 of the whole file.
    pub whole: u32,
}

impl FileIntegrity {
    /// Computes the integrity record for `bytes` at `chunk` granularity.
    pub fn compute(name: &str, bytes: &[u8], chunk: u64) -> FileIntegrity {
        let chunk = chunk.max(1);
        let crcs = bytes.chunks(chunk as usize).map(crc32).collect();
        FileIntegrity {
            name: name.to_string(),
            len: bytes.len() as u64,
            chunk,
            crcs,
            whole: crc32(bytes),
        }
    }

    /// Byte range `[start, end)` of chunk `i` within the file.
    pub fn chunk_range(&self, i: usize) -> (u64, u64) {
        let start = i as u64 * self.chunk;
        (start, (start + self.chunk).min(self.len))
    }

    /// Indices of chunks whose CRC does not match `bytes`. A length
    /// mismatch marks every chunk corrupt (the file is not the one that
    /// was checksummed).
    pub fn corrupt_chunks(&self, bytes: &[u8]) -> Vec<usize> {
        if bytes.len() as u64 != self.len {
            return (0..self.crcs.len().max(1)).collect();
        }
        self.crcs
            .iter()
            .enumerate()
            .filter(|&(i, &want)| {
                let (s, e) = self.chunk_range(i);
                crc32(&bytes[s as usize..e as usize]) != want
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether `bytes` matches this record exactly.
    pub fn matches(&self, bytes: &[u8]) -> bool {
        bytes.len() as u64 == self.len && crc32(bytes) == self.whole
    }
}

/// The checkpoint manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Application name.
    pub app: String,
    /// Scheme that produced the checkpoint.
    pub kind: CkptKind,
    /// Number of tasks at checkpoint time.
    pub ntasks: usize,
    /// SOP sequence number (which observable point this state belongs to).
    pub sop: u64,
    /// Array streams present.
    pub arrays: Vec<ArrayEntry>,
    /// Integrity records for the checkpoint's data files (v2+; empty when
    /// decoded from a v1 manifest).
    pub integrity: Vec<FileIntegrity>,
}

/// Path of the manifest file under `prefix`.
pub fn manifest_path(prefix: &str) -> String {
    format!("{prefix}/manifest")
}

/// Path of the DRMS representative segment under `prefix`.
pub fn segment_path(prefix: &str) -> String {
    format!("{prefix}/segment")
}

/// Path of task `rank`'s segment in an SPMD checkpoint.
pub fn task_segment_path(prefix: &str, rank: usize) -> String {
    format!("{prefix}/task-{rank}")
}

/// Path of the stream for array `name` under `prefix`.
pub fn array_path(prefix: &str, name: &str) -> String {
    format!("{prefix}/array-{name}")
}

fn write_range(w: &mut Writer, r: &Range) {
    match r {
        Range::Contiguous { lo, hi } => {
            w.u8(0);
            w.i64(*lo);
            w.i64(*hi);
        }
        Range::Strided { lo, hi, step } => {
            w.u8(1);
            w.i64(*lo);
            w.i64(*hi);
            w.i64(*step);
        }
        Range::Explicit(v) => {
            w.u8(2);
            w.u64(v.len() as u64);
            for x in v.iter() {
                w.i64(*x);
            }
        }
    }
}

fn read_range(r: &mut Reader<'_>) -> Result<Range, WireError> {
    match r.u8()? {
        0 => Ok(Range::contiguous(r.i64()?, r.i64()?)),
        1 => {
            let (lo, hi, step) = (r.i64()?, r.i64()?, r.i64()?);
            Range::strided(lo, hi, step).map_err(|_| WireError::Truncated { what: "range" })
        }
        2 => {
            let n = r.u64()? as usize;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            Range::from_indices(&v).map_err(|_| WireError::Truncated { what: "range" })
        }
        _ => Err(WireError::Truncated { what: "range tag" }),
    }
}

/// Encodes a slice (exposed for segment/region metadata reuse).
pub fn write_slice(w: &mut Writer, s: &Slice) {
    w.u32(s.rank() as u32);
    for r in s.ranges() {
        write_range(w, r);
    }
}

/// Decodes a slice.
pub fn read_slice(r: &mut Reader<'_>) -> Result<Slice, WireError> {
    let rank = r.u32()? as usize;
    let mut ranges = Vec::with_capacity(rank);
    for _ in 0..rank {
        ranges.push(read_range(r)?);
    }
    Ok(Slice::new(ranges))
}

impl Manifest {
    /// Encodes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.string(&self.app);
        w.u8(match self.kind {
            CkptKind::Drms => 0,
            CkptKind::Spmd => 1,
        });
        w.u64(self.ntasks as u64);
        w.u64(self.sop);
        w.u32(self.arrays.len() as u32);
        for a in &self.arrays {
            w.string(&a.name);
            w.u8(a.elem_code);
            w.u8(match a.order {
                Order::ColumnMajor => 0,
                Order::RowMajor => 1,
            });
            write_slice(&mut w, &a.domain);
        }
        w.u32(self.integrity.len() as u32);
        for fi in &self.integrity {
            w.string(&fi.name);
            w.u64(fi.len);
            w.u64(fi.chunk);
            w.u32(fi.crcs.len() as u32);
            for &c in &fi.crcs {
                w.u32(c);
            }
            w.u32(fi.whole);
        }
        // The manifest is the root of trust for the whole checkpoint, so it
        // carries its own digest: a trailing CRC over everything above.
        w.finish_with_crc()
    }

    /// Decodes a manifest. Accepts the current version and v1 (pre-integrity,
    /// no trailing CRC) for backward compatibility.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, WireError> {
        let (_, version) = Reader::with_header(bytes, MAGIC)?;
        let body = match version {
            1 => bytes,
            VERSION => split_trailing_crc(bytes, "manifest")?,
            v => return Err(WireError::BadVersion(v)),
        };
        let (mut r, _) = Reader::with_header(body, MAGIC)?;
        let app = r.string()?;
        let kind = match r.u8()? {
            0 => CkptKind::Drms,
            1 => CkptKind::Spmd,
            _ => return Err(WireError::Truncated { what: "checkpoint kind" }),
        };
        let ntasks = r.u64()? as usize;
        let sop = r.u64()?;
        let narrays = r.u32()?;
        let mut arrays = Vec::with_capacity(narrays as usize);
        for _ in 0..narrays {
            let name = r.string()?;
            let elem_code = r.u8()?;
            let order = match r.u8()? {
                0 => Order::ColumnMajor,
                1 => Order::RowMajor,
                _ => return Err(WireError::Truncated { what: "order tag" }),
            };
            let domain = read_slice(&mut r)?;
            arrays.push(ArrayEntry { name, elem_code, domain, order });
        }
        let mut integrity = Vec::new();
        if version >= 2 {
            let n = r.u32()? as usize;
            integrity.reserve(n);
            for _ in 0..n {
                let name = r.string()?;
                let len = r.u64()?;
                let chunk = r.u64()?;
                let ncrcs = r.u32()? as usize;
                let mut crcs = Vec::with_capacity(ncrcs);
                for _ in 0..ncrcs {
                    crcs.push(r.u32()?);
                }
                let whole = r.u32()?;
                integrity.push(FileIntegrity { name, len, chunk, crcs, whole });
            }
        }
        Ok(Manifest { app, kind, ntasks, sop, arrays, integrity })
    }

    /// Looks up the integrity record for a file (name relative to the
    /// checkpoint prefix).
    pub fn file_integrity(&self, name: &str) -> Option<&FileIntegrity> {
        self.integrity.iter().find(|fi| fi.name == name)
    }

    /// Looks up an array entry by name.
    pub fn array(&self, name: &str) -> Option<&ArrayEntry> {
        self.arrays.iter().find(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            app: "bt".into(),
            kind: CkptKind::Drms,
            ntasks: 8,
            sop: 100,
            arrays: vec![
                ArrayEntry {
                    name: "u".into(),
                    elem_code: 1,
                    domain: Slice::boxed(&[(1, 64), (1, 64), (1, 64)]),
                    order: Order::ColumnMajor,
                },
                ArrayEntry {
                    name: "mask".into(),
                    elem_code: 7,
                    domain: Slice::new(vec![
                        Range::strided(0, 100, 3).unwrap(),
                        Range::from_indices(&[1, 5, 9]).unwrap(),
                    ]),
                    order: Order::RowMajor,
                },
            ],
            integrity: vec![FileIntegrity::compute("segment", b"some segment bytes", 4)],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let d = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(d, m);
        assert_eq!(d.array("u").unwrap().elem_code, 1);
        assert!(d.array("nope").is_none());
    }

    #[test]
    fn spmd_kind_roundtrip() {
        let mut m = sample();
        m.kind = CkptKind::Spmd;
        m.arrays.clear();
        assert_eq!(Manifest::decode(&m.encode()).unwrap().kind, CkptKind::Spmd);
    }

    #[test]
    fn paths_are_disjoint_per_prefix() {
        assert_eq!(manifest_path("ck/1"), "ck/1/manifest");
        assert_eq!(segment_path("ck/1"), "ck/1/segment");
        assert_eq!(task_segment_path("ck/1", 3), "ck/1/task-3");
        assert_eq!(array_path("ck/1", "u"), "ck/1/array-u");
        assert_ne!(array_path("a", "u"), array_path("b", "u"));
    }

    #[test]
    fn corrupt_manifest_rejected() {
        let m = sample();
        let mut bytes = m.encode();
        bytes.truncate(10);
        assert!(Manifest::decode(&bytes).is_err());

        // Any single flipped byte fails the trailing self-CRC.
        let bytes = m.encode();
        for i in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(Manifest::decode(&bad).is_err(), "flip at {i} went undetected");
        }
    }

    /// Encodes `m` the way version 1 did: no integrity section, no
    /// trailing CRC.
    fn encode_v1(m: &Manifest) -> Vec<u8> {
        let mut w = Writer::with_header(MAGIC, 1);
        w.string(&m.app);
        w.u8(match m.kind {
            CkptKind::Drms => 0,
            CkptKind::Spmd => 1,
        });
        w.u64(m.ntasks as u64);
        w.u64(m.sop);
        w.u32(m.arrays.len() as u32);
        for a in &m.arrays {
            w.string(&a.name);
            w.u8(a.elem_code);
            w.u8(match a.order {
                Order::ColumnMajor => 0,
                Order::RowMajor => 1,
            });
            write_slice(&mut w, &a.domain);
        }
        w.finish()
    }

    #[test]
    fn v1_manifest_still_decodes() {
        let mut m = sample();
        let bytes = encode_v1(&m);
        let d = Manifest::decode(&bytes).unwrap();
        m.integrity.clear();
        assert_eq!(d, m);
    }

    #[test]
    fn unknown_version_rejected() {
        let w = Writer::with_header(MAGIC, 9);
        assert!(matches!(Manifest::decode(&w.finish()), Err(WireError::BadVersion(9))));
    }

    #[test]
    fn file_integrity_chunking_and_detection() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let fi = FileIntegrity::compute("array-u", &data, 256);
        assert_eq!(fi.crcs.len(), 4);
        assert_eq!(fi.chunk_range(3), (768, 1000));
        assert!(fi.matches(&data));
        assert!(fi.corrupt_chunks(&data).is_empty());

        // Every single-byte flip is pinned to exactly its chunk.
        for &pos in &[0usize, 255, 256, 700, 999] {
            let mut bad = data.clone();
            bad[pos] ^= 0x01;
            assert!(!fi.matches(&bad));
            assert_eq!(fi.corrupt_chunks(&bad), vec![pos / 256]);
        }

        // Length mismatch marks everything corrupt.
        assert_eq!(fi.corrupt_chunks(&data[..999]).len(), 4);
    }
}
