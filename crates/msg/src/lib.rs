//! In-process SPMD task runtime with virtual-time message passing.
//!
//! This crate is the substitute for the MPL/MPI layer of the IBM RS/6000 SP
//! the paper ran on. An application region runs as `P` *tasks* (one OS thread
//! each) that communicate through a [`Ctx`]: typed point-to-point messages,
//! barriers, reductions, gathers, and the `alltoallv` exchange that array
//! redistribution is built on.
//!
//! **Virtual time.** Every task owns a [`SimClock`]. Communication and
//! compute charge simulated seconds against it according to a [`CostModel`]
//! (wire latency + 1/bandwidth, calibrated to the 1995-era SP switch);
//! synchronizing operations reconcile clocks (a barrier takes the maximum).
//! All *data* movement is real — payload bytes actually travel between
//! threads — but *time* is simulated, which is what lets a single-core host
//! report faithful 16-processor execution times.
//!
//! The paper's experiments map tasks one-to-one onto processors; the runtime
//! records the task → node placement so the file-system layer can model
//! client/server co-location interference (paper, Section 5).
//!
//! **Observability.** A world optionally carries a `drms-obs`
//! [`Recorder`](drms_obs::Recorder) (see [`World::new_traced`] /
//! [`run_spmd_traced`]); tasks reach it through [`Ctx::recorder`] and the
//! send path counts messages and payload bytes. The default recorder is the
//! zero-cost [`NullRecorder`](drms_obs::NullRecorder).

#![deny(missing_docs)]

mod board;
mod clock;
mod comm;
mod group;
mod runner;

pub use clock::{CostModel, SimClock};
pub use comm::{Ctx, Incoming, ReduceOp, World};
pub use group::Group;
pub use runner::{
    run_spmd, run_spmd_chaos, run_spmd_traced, run_spmd_with_nodes, run_spmd_with_nodes_chaos,
    run_spmd_with_nodes_traced, SpmdError,
};

/// Re-export of the fault-injection crate: consumers that only hold a
/// [`Ctx`] can name the controller types without a direct dependency.
pub use drms_chaos as chaos;

/// Task identifier within an SPMD region (0-based rank).
pub type Rank = usize;
