//! Collective crash-point injection for robustness campaigns.
//!
//! A crash must be a *collective* decision: if rank 0 alone vanished
//! mid-checkpoint, its siblings would hang in the next barrier until the
//! stall guard fired. Instead, rank 0 consults the chaos controller and the
//! vote is propagated through the exchange board, so every task returns
//! [`CoreError::Interrupted`] from the same point — the job-level analog of
//! a node death at that instant. The runtime environment treats the error
//! like any other kill and drives a restart from the last *committed*
//! checkpoint.

use drms_chaos::CrashPoint;
use drms_msg::Ctx;
use drms_obs::{names, Phase};

use crate::{CoreError, Result};

/// Fires the enumerated crash point when the region runs under a chaos
/// plan that armed it. Regions without a chaos controller pay nothing:
/// no exchange, no branch on plan contents, so virtual timing is
/// bit-identical to a build without injection.
///
/// `aborts_commit` marks points where a staged-but-uncommitted checkpoint
/// is abandoned, counted separately (as [`names::COMMIT_ABORTS`]) from
/// crashes that interrupt nothing in flight.
pub fn crash_point(ctx: &mut Ctx, point: CrashPoint, aborts_commit: bool) -> Result<()> {
    let Some(chaos) = ctx.chaos() else { return Ok(()) };
    let mine = ctx.rank() == 0 && chaos.should_crash(point);
    let (votes, _) = ctx.exchange(mine);
    if !votes[0] {
        return Ok(());
    }
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.counter_add(0, names::CRASHES_INJECTED, None, 1);
        if aborts_commit {
            rec.counter_add(0, names::COMMIT_ABORTS, None, 1);
        }
        rec.event(ctx.now(), 0, Phase::Control, &format!("crash:{point}"));
    }
    Err(CoreError::Interrupted(point.as_str().to_string()))
}
