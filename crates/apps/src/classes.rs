//! Problem classes: grid sizes and memory scaling.

/// NPB-style problem class. The paper's experiments use class A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Tiny: 8^3 grid — unit tests.
    T,
    /// Small: 16^3 grid — integration tests.
    S,
    /// Workstation: 32^3 grid — quick experiment runs.
    W,
    /// The paper's setting: 64^3 grid.
    A,
}

impl Class {
    /// Grid edge length.
    pub fn grid(self) -> usize {
        match self {
            Class::T => 8,
            Class::S => 16,
            Class::W => 32,
            Class::A => 64,
        }
    }

    /// Memory scale factor relative to class A. All byte-denominated
    /// anatomy (system buffers, private data, node memory when the caller
    /// scales the file system) shrinks by this factor, preserving every
    /// ratio — and therefore every buffer-threshold crossing — of the
    /// class-A experiments.
    pub fn memory_scale(self) -> f64 {
        let g = self.grid() as f64;
        (g / 64.0).powi(3)
    }

    /// Default iteration count for the benchmark runs.
    pub fn niter(self) -> i64 {
        match self {
            Class::T | Class::S => 8,
            Class::W | Class::A => 4,
        }
    }

    /// Parses a class name (`"A"`, `"W"`, ...).
    pub fn parse(s: &str) -> Option<Class> {
        match s.trim().to_ascii_uppercase().as_str() {
            "T" => Some(Class::T),
            "S" => Some(Class::S),
            "W" => Some(Class::W),
            "A" => Some(Class::A),
            _ => None,
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let c = match self {
            Class::T => 'T',
            Class::S => 'S',
            Class::W => 'W',
            Class::A => 'A',
        };
        write!(f, "{c}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_and_scales() {
        assert_eq!(Class::A.grid(), 64);
        assert_eq!(Class::A.memory_scale(), 1.0);
        assert_eq!(Class::W.memory_scale(), 0.125);
        assert_eq!(Class::T.grid(), 8);
        assert!((Class::S.memory_scale() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn parse_roundtrip() {
        for c in [Class::T, Class::S, Class::W, Class::A] {
            assert_eq!(Class::parse(&c.to_string()), Some(c));
        }
        assert_eq!(Class::parse("a"), Some(Class::A));
        assert_eq!(Class::parse("zz"), None);
    }
}
