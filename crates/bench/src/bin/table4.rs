//! Table 4: components of the data segment of a representative task.
//!
//! ```text
//! cargo run --release -p drms-bench --bin table4 [--class A]
//! ```

use std::sync::Arc;

use drms_apps::{bt, lu, sp, AppVariant, MiniApp};
use drms_bench::args::Options;
use drms_bench::experiment::experiment_fs;
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_bench::table::render;
use drms_core::EnableFlag;
use drms_msg::{run_spmd, CostModel};

/// Paper values at class A (bytes): total, local sections, system,
/// private/replicated.
const PAPER: &[(&str, [u64; 4])] = &[
    ("bt", [65_982_468, 25_635_456, 34_972_228, 5_374_784]),
    ("lu", [89_169_924, 10_061_824, 34_972_228, 44_134_872]),
    ("sp", [55_242_756, 14_648_832, 34_972_228, 5_621_696]),
];

fn main() {
    let opts = Options::from_env();
    let repro = format!("cargo run --release -p drms-bench --bin table4 -- --class {}", opts.class);
    run_gated("table4", &repro, || body(&opts));
}

fn body(opts: &Options) {
    println!("Table 4 — components of a representative task's data segment (bytes)");
    println!("class {} | paper values are class A\n", opts.class);
    let mut result = BenchResult::new("table4");
    result.param("class", opts.class);
    result.stamp_header(drms_bench::seed::fault_seed_or(0), 4);

    let header = vec!["app", "component", "measured", "paper (class A)", "delta"];
    let mut rows = Vec::new();
    for spec in [bt(opts.class), lu(opts.class), sp(opts.class)] {
        let fs = experiment_fs(opts.class, 1);
        let spec2 = spec.clone();
        let fs2 = Arc::clone(&fs);
        // The paper's applications compile for a minimum of 4 tasks; the
        // representative segment is measured on that minimum.
        let anatomies = run_spmd(4, CostModel::default(), move |ctx| {
            let app =
                MiniApp::start(ctx, &fs2, spec2.clone(), AppVariant::Drms, EnableFlag::new(), None)
                    .expect("start");
            app.segment_anatomy()
        })
        .expect("region");
        let a = anatomies[0];

        let paper = PAPER.iter().find(|(n, _)| *n == spec.name).unwrap().1;
        let scale = opts.class.memory_scale();
        let scaled = |v: u64| (v as f64 * scale).round() as u64;
        let delta = |m: u64, p: u64| -> String {
            if p == 0 {
                return "-".into();
            }
            format!("{:+.1}%", 100.0 * (m as f64 - p as f64) / p as f64)
        };
        assert!(
            a.total >= a.local_sections + a.system + a.private_replicated,
            "{}: anatomy components must not exceed the total",
            spec.name
        );
        for (key, v) in [
            ("total_bytes", a.total),
            ("local_sections_bytes", a.local_sections),
            ("system_bytes", a.system),
            ("private_replicated_bytes", a.private_replicated),
        ] {
            result.metric(&format!("{}.{key}", spec.name), v as f64);
        }
        for (label, measured, paper_v) in [
            ("total data", a.total, scaled(paper[0])),
            ("local sections", a.local_sections, scaled(paper[1])),
            ("system related", a.system, scaled(paper[2])),
            ("private/replicated", a.private_replicated, scaled(paper[3])),
        ] {
            rows.push(vec![
                spec.name.to_string(),
                label.to_string(),
                measured.to_string(),
                paper_v.to_string(),
                delta(measured, paper_v),
            ]);
        }
    }
    println!("{}", render(&header, &rows));
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_table4.json");
        println!("wrote {}", path.display());
    }
    println!(
        "Anatomy notes (matching the paper's discussion): local sections are ~1/4 of\n\
         the arrays plus shadow storage; the ~33 MB system region is message-passing\n\
         buffers and is identical across applications; LU's private/replicated region\n\
         dwarfs BT's and SP's because LU declares its work arrays private."
    );
}
