//! Incremental checkpointing (the Section 6 memory-exclusion optimization
//! at array granularity): arrays unmodified since the last checkpoint to a
//! prefix are not rewritten, yet restarts see a complete, correct state.

use std::sync::Arc;

use drms_core::segment::DataSegment;
use drms_core::{Drms, DrmsConfig, EnableFlag, Start};
use drms_darray::{DistArray, Distribution};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(4), 21)
}

fn arrays(ctx_ntasks: usize, rank: usize) -> (DistArray<f64>, DistArray<f64>) {
    let dom = Slice::boxed(&[(0, 31)]);
    let dist = Distribution::block_auto(&dom, ctx_ntasks, 1).unwrap();
    let mut u = DistArray::new("u", Order::ColumnMajor, dist.clone(), rank);
    let mut forcing = DistArray::new("forcing", Order::ColumnMajor, dist, rank);
    u.fill_assigned(|p| p[0] as f64);
    forcing.fill_assigned(|p| (p[0] * 7) as f64); // constant after setup
    (u, forcing)
}

#[test]
fn unchanged_arrays_are_skipped_but_state_stays_complete() {
    let f = fs();
    Drms::install_binary(&f, &DrmsConfig::new("inc"));
    run_spmd(4, CostModel::default(), |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, &f, DrmsConfig::new("inc"), EnableFlag::new(), None).unwrap();
        let (mut u, forcing) = arrays(4, ctx.rank());
        let seg = DataSegment::new();

        // First incremental checkpoint: everything written.
        let (r1, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/inc", &seg, &[&u, &forcing]).unwrap();
        assert!(skipped.is_empty(), "first checkpoint writes all");
        assert_eq!(r1.array_bytes, 2 * 32 * 8);

        // Mutate only u; checkpoint again to the same prefix.
        u.fill_assigned(|p| p[0] as f64 + 100.0);
        let (r2, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/inc", &seg, &[&u, &forcing]).unwrap();
        assert_eq!(skipped, vec!["forcing".to_string()]);
        assert_eq!(r2.array_bytes, 32 * 8, "only u rewritten");
        assert!(r2.arrays < r1.arrays || r2.array_bytes < r1.array_bytes);

        // Nothing changed: both skipped.
        let (r3, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/inc", &seg, &[&u, &forcing]).unwrap();
        assert_eq!(skipped.len(), 2);
        assert_eq!(r3.array_bytes, 0);
    })
    .unwrap();

    // Restart (reconfigured to 3 tasks) sees the complete, newest state.
    run_spmd(3, CostModel::default(), |ctx| {
        let (drms, start) =
            Drms::initialize(ctx, &f, DrmsConfig::new("inc"), EnableFlag::new(), Some("ck/inc"))
                .unwrap();
        let Start::Restarted(info) = start else { panic!() };
        let (mut u, mut forcing) = arrays(3, ctx.rank());
        drms.restore_arrays(ctx, &f, "ck/inc", &info.manifest, &mut [&mut u, &mut forcing])
            .unwrap();
        u.fold_assigned((), |_, p, v| assert_eq!(v, p[0] as f64 + 100.0));
        forcing.fold_assigned((), |_, p, v| assert_eq!(v, (p[0] * 7) as f64));
    })
    .unwrap();
}

#[test]
fn different_prefix_forces_full_write() {
    let f = fs();
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, &f, DrmsConfig::new("inc"), EnableFlag::new(), None).unwrap();
        let (u, forcing) = arrays(2, ctx.rank());
        let seg = DataSegment::new();
        let (_, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/a", &seg, &[&u, &forcing]).unwrap();
        assert!(skipped.is_empty());
        // Same (untouched) arrays, new prefix: data is not there yet, so
        // nothing may be skipped.
        let (_, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/b", &seg, &[&u, &forcing]).unwrap();
        assert!(skipped.is_empty(), "new prefix has no prior streams");
        // And back to the first prefix: everything is current now.
        let (_, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/a", &seg, &[&u, &forcing]).unwrap();
        assert_eq!(skipped.len(), 2);
    })
    .unwrap();
}

#[test]
fn redistribution_counts_as_mutation() {
    // After an in-place redistribution the bytes are logically identical,
    // but the conservative counter must force a rewrite (the stream file
    // stays correct either way; this asserts we never *under*-save).
    let f = fs();
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, &f, DrmsConfig::new("inc"), EnableFlag::new(), None).unwrap();
        let (mut u, _) = arrays(2, ctx.rank());
        let seg = DataSegment::new();
        drms.reconfig_checkpoint_incremental(ctx, &f, "ck/r", &seg, &[&u]).unwrap();

        use drms_core::CheckpointArray;
        (&mut u as &mut dyn CheckpointArray).adjust_redistribute(ctx).unwrap();
        let (_, skipped) =
            drms.reconfig_checkpoint_incremental(ctx, &f, "ck/r", &seg, &[&u]).unwrap();
        assert!(skipped.is_empty());
    })
    .unwrap();
}
