//! Heartbeat snapshots: one sorted-key JSONL line per settled window.
//!
//! Lines carry the window's structural fields (see [`fields`]), a live
//! stall-attribution breakdown derived from closed spans, every counter
//! that moved (keyed by its `drms_obs::names` metric name), index-0 gauges
//! set in the window, and the alerts fired at evaluation. Keys are emitted
//! in sorted order and every value is rendered deterministically, so the
//! heartbeat stream for a fixed seed is byte-identical run to run.

use std::collections::BTreeMap;

use drms_obs::Phase;

use crate::window::WindowStats;

/// Structural heartbeat field names (the window-derived keys every line can
/// carry, as opposed to the pass-through metric names). Declared with an
/// `ALL` list so coverage tests can pin that each one is actually emitted.
pub mod fields {
    /// Window index (`floor(t / width)`).
    pub const WINDOW: &str = "window";
    /// Window start, simulated seconds.
    pub const T0: &str = "t0";
    /// Window end, simulated seconds.
    pub const T1: &str = "t1";
    /// Samples assigned to the window.
    pub const SAMPLES: &str = "samples";
    /// Alert names fired at this window's evaluation (JSON array).
    pub const ALERTS: &str = "alerts";
    /// Seconds of checkpoint activity (segment + arrays + manifest +
    /// memory-tier store + spill spans) closed in the window — the live
    /// SOP-stall attribution.
    pub const CKPT_SECONDS: &str = "ckpt_s";
    /// Seconds of stream-wave spans closed in the window, all ranks.
    pub const WAVE_SECONDS: &str = "wave_s";
    /// Seconds of priced I/O-phase spans closed in the window.
    pub const IO_SECONDS: &str = "io_s";
    /// Seconds of retry-backoff spans closed in the window.
    pub const RETRY_SECONDS: &str = "retry_s";
    /// Slowest/median per-rank stream-wave seconds (0 when fewer than two
    /// ranks reported waves).
    pub const WAVE_SKEW: &str = "wave_skew";
    /// Busiest PIOFS server's busy seconds accrued in the window.
    pub const QUEUE_SECONDS: &str = "queue_s";
    /// Point-to-point messages sent in the window.
    pub const MSGS: &str = "msgs";
    /// Payload bytes of messages sent in the window.
    pub const MSG_BYTES: &str = "msg_bytes";

    /// Every structural field above.
    pub const ALL: [&str; 13] = [
        WINDOW,
        T0,
        T1,
        SAMPLES,
        ALERTS,
        CKPT_SECONDS,
        WAVE_SECONDS,
        IO_SECONDS,
        RETRY_SECONDS,
        WAVE_SKEW,
        QUEUE_SECONDS,
        MSGS,
        MSG_BYTES,
    ];
}

/// Span phases attributed to checkpoint activity in `ckpt_s`.
pub(crate) const CKPT_PHASES: [Phase; 5] =
    [Phase::Segment, Phase::Arrays, Phase::Manifest, Phase::MemTier, Phase::Spill];

/// One settled window ready for export.
#[derive(Debug, Clone)]
pub(crate) struct Row {
    pub window: u64,
    pub t0: f64,
    pub t1: f64,
    pub stats: WindowStats,
}

fn num(v: f64) -> String {
    // Fixed precision keeps lines stable and diffable; six digits is below
    // the cost model's own resolution.
    format!("{v:.6}")
}

impl Row {
    /// Slowest/median stream-wave seconds across ranks (0 when under two
    /// ranks reported).
    pub fn wave_skew(&self) -> f64 {
        let mut secs: Vec<f64> =
            self.stats.phase_by_rank(Phase::StreamWave).into_iter().map(|(_, s)| s).collect();
        if secs.len() < 2 {
            return 0.0;
        }
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = secs[secs.len() / 2];
        if median > 0.0 {
            secs[secs.len() - 1] / median
        } else {
            0.0
        }
    }

    /// Renders the sorted-key JSON line.
    pub fn to_jsonl(&self) -> String {
        let mut kv: BTreeMap<String, String> = BTreeMap::new();
        kv.insert(fields::WINDOW.into(), self.window.to_string());
        kv.insert(fields::T0.into(), num(self.t0));
        kv.insert(fields::T1.into(), num(self.t1));
        kv.insert(fields::SAMPLES.into(), self.stats.samples.to_string());
        let ckpt: f64 = CKPT_PHASES.iter().map(|p| self.stats.phase_total(*p)).sum();
        kv.insert(fields::CKPT_SECONDS.into(), num(ckpt));
        kv.insert(fields::WAVE_SECONDS.into(), num(self.stats.phase_total(Phase::StreamWave)));
        kv.insert(fields::IO_SECONDS.into(), num(self.stats.phase_total(Phase::IoPhase)));
        kv.insert(fields::RETRY_SECONDS.into(), num(self.stats.phase_total(Phase::Retry)));
        kv.insert(fields::WAVE_SKEW.into(), num(self.wave_skew()));
        kv.insert(fields::QUEUE_SECONDS.into(), num(self.stats.max_server_busy()));
        kv.insert(fields::MSGS.into(), self.stats.msgs_sent.to_string());
        kv.insert(fields::MSG_BYTES.into(), self.stats.msg_bytes.to_string());
        let alerts: Vec<String> = self.stats.alerts.iter().map(|a| format!("\"{a}\"")).collect();
        kv.insert(fields::ALERTS.into(), format!("[{}]", alerts.join(",")));
        for (name, v) in &self.stats.counters {
            kv.insert((*name).into(), v.to_string());
        }
        for ((name, index), g) in &self.stats.gauges {
            if *index == 0 {
                kv.insert((*name).into(), num(g.value));
            }
        }
        let body: Vec<String> = kv.into_iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
        format!("{{{}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::names;

    #[test]
    fn lines_are_sorted_key_json_with_all_structural_fields() {
        let mut stats =
            WindowStats { samples: 3, msgs_sent: 2, msg_bytes: 128, ..Default::default() };
        stats.counters.insert(names::COMMITS, 1);
        let gw = |value| crate::window::GaugeWrite { stamp: 0.0, rank: 0, value };
        stats.record_gauge(names::MEMTIER_REPLICAS, 0, gw(2.0));
        stats.record_gauge(names::PIOFS_QUEUE_DEPTH, 3, gw(0.5)); // non-zero index: omitted
        stats.span_secs.insert((0, Phase::Segment), 0.25);
        stats.alerts.push(names::ALERT_RETRY_STORM);
        let row = Row { window: 4, t0: 2.0, t1: 2.5, stats };
        let line = row.to_jsonl();
        for f in fields::ALL {
            assert!(line.contains(&format!("\"{f}\":")), "missing field {f} in {line}");
        }
        assert!(line.contains("\"core.commits\":1"));
        assert!(line.contains("\"memtier.replicas\":2.000000"));
        assert!(!line.contains("piofs.queue_depth"));
        assert!(line.contains(&format!("\"alerts\":[\"{}\"]", names::ALERT_RETRY_STORM)));
        // Keys are sorted.
        let keys: Vec<&str> = line
            .trim_matches(|c| c == '{' || c == '}')
            .split(",\"")
            .map(|kv| kv.split(':').next().unwrap().trim_matches('"'))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "keys not sorted in {line}");
    }
}
