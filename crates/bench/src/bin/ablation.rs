//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **I/O parallelism** (the paper's `P` in `parstream`, Figure 5b):
//!    sweep the number of I/O tasks from 1 (serial streaming) to all 16.
//!    Serial streaming needs no seek support but leaves the file system's
//!    parallelism unused.
//! 2. **Piece size** (the paper: "we choose m so that each piece requires
//!    approximately 1 MB of storage"): smaller pieces add per-piece
//!    overhead; larger pieces reduce I/O parallelism and raise buffer
//!    pressure.
//!
//! ```text
//! cargo run --release -p drms-bench --bin ablation [--class A]
//! ```

use std::sync::Arc;

use drms_apps::bt;
use drms_bench::args::Options;
use drms_bench::experiment::experiment_fs;
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_bench::table::render;
use drms_darray::{stream, DistArray};
use drms_msg::{run_spmd, CostModel};
use drms_slices::Order;

fn main() {
    let opts = Options::from_env();
    let repro =
        format!("cargo run --release -p drms-bench --bin ablation -- --class {}", opts.class);
    run_gated("ablation", &repro, || body(&opts));
}

fn body(opts: &Options) {
    let mut result = BenchResult::new("ablation");
    result.param("class", opts.class);
    let spec = bt(opts.class);
    let field = &spec.fields[0];
    let pes = 16usize;
    result.stamp_header(drms_bench::seed::fault_seed_or(0), pes);
    println!(
        "Ablations on streaming one BT field ({:.1} MB) out of {} tasks, class {}\n",
        spec.domain(field.components).size() as f64 * 8.0 / 1e6,
        pes,
        opts.class
    );

    // ---- 1: I/O-task sweep -------------------------------------------
    let mut rows = Vec::new();
    let mut serial_time = 0.0;
    for io in [1usize, 2, 4, 8, 16] {
        let fs = experiment_fs(opts.class, 1);
        let spec2 = spec.clone();
        let fs2 = Arc::clone(&fs);
        let times = run_spmd(pes, CostModel::default(), move |ctx| {
            fs2.set_residency(ctx.node(), spec2.expected_segment_bytes());
            let dist = spec2.dist(&spec2.fields[0], ctx.ntasks());
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(|p| p[1] as f64);
            ctx.barrier();
            let t0 = ctx.now();
            stream::write_array(ctx, &fs2, &a, "abl", io).unwrap();
            ctx.barrier();
            ctx.now() - t0
        })
        .unwrap();
        let t = times.iter().cloned().fold(0.0, f64::max);
        if io == 1 {
            serial_time = t;
        }
        assert!(t > 0.0 && t <= serial_time, "more I/O tasks must never slow the write");
        result.metric(&format!("io{io}.write_s"), t);
        rows.push(vec![
            io.to_string(),
            format!("{t:.2}"),
            format!("{:.2}x", serial_time / t),
            if io == 1 { "serial streaming (no seek needed)".into() } else { String::new() },
        ]);
    }
    println!("{}", render(&["I/O tasks", "write (s)", "speedup", "note"], &rows));

    // ---- 2: piece-size sweep -------------------------------------------
    println!();
    let mut rows = Vec::new();
    let scale = opts.class.memory_scale();
    for target_mb in [0.125f64, 0.5, 1.0, 4.0, 16.0] {
        let target = ((target_mb * 1e6 * scale) as usize).max(1024);
        let fs = experiment_fs(opts.class, 1);
        let spec2 = spec.clone();
        let fs2 = Arc::clone(&fs);
        let times = run_spmd(pes, CostModel::default(), move |ctx| {
            fs2.set_residency(ctx.node(), spec2.expected_segment_bytes());
            let dist = spec2.dist(&spec2.fields[0], ctx.ntasks());
            let mut a = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
            a.fill_assigned(|p| p[1] as f64);
            let domain = a.domain().clone();
            ctx.barrier();
            let t0 = ctx.now();
            stream::write_section_with(ctx, &fs2, &a, &domain, "abl", ctx.ntasks(), target)
                .unwrap();
            ctx.barrier();
            ctx.now() - t0
        })
        .unwrap();
        let t = times.iter().cloned().fold(0.0, f64::max);
        assert!(t > 0.0, "piece-size sweep produced a zero-time write");
        result.metric(&format!("piece{target_mb}mb.write_s"), t);
        rows.push(vec![format!("{target_mb} (scaled)"), format!("{t:.2}")]);
    }
    println!("{}", render(&["target piece (MB)", "write (s)"], &rows));
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_ablation.json");
        println!("wrote {}", path.display());
    }
    println!(
        "\nExpected shape: speedup saturates as I/O tasks exceed the servers'\n\
         effective parallelism; very small pieces pay per-chunk overheads, very\n\
         large pieces under-use the I/O tasks within each wave. The paper's ~1 MB\n\
         choice sits near the flat bottom."
    );
}
