//! Property tests for the retry/backoff schedule and the retry-loop shape
//! the instrumented layers use.

use drms_chaos::{ChaosCtl, FaultPlan, PiofsFaults, RetryPolicy};
use proptest::prelude::*;

/// The vendored proptest shim only generates integer ranges, so the policy
/// space is drawn on an integer lattice and mapped into floats: bases in
/// [0.1ms, 100ms), factors in [1.0, 4.0), caps in [1ms, 1s).
fn policies() -> impl Strategy<Value = RetryPolicy> {
    (1u32..13, 1u64..1000, 0u64..30, 1u64..1000).prop_map(|(max_attempts, b, f, c)| RetryPolicy {
        max_attempts,
        base: b as f64 * 1e-4,
        factor: 1.0 + f as f64 * 0.1,
        cap: c as f64 * 1e-3,
    })
}

proptest! {
    /// Delays never shrink as attempts accumulate: a later retry always
    /// waits at least as long as an earlier one.
    #[test]
    fn schedule_is_monotone_non_decreasing(p in policies(), key in 0u64..u64::MAX) {
        let s = p.schedule(key);
        for w in s.windows(2) {
            prop_assert!(w[1] >= w[0], "schedule not monotone: {:?}", s);
        }
    }

    /// No delay exceeds the configured cap, and all are non-negative.
    #[test]
    fn schedule_is_bounded_by_cap(p in policies(), key in 0u64..u64::MAX) {
        for (i, d) in p.schedule(key).iter().enumerate() {
            prop_assert!(*d >= 0.0 && *d <= p.cap, "delay {} = {} vs cap {}", i, d, p.cap);
        }
    }

    /// The schedule is a pure function of (policy, key): same inputs, same
    /// waits — the repro-line guarantee.
    #[test]
    fn schedule_is_deterministic_per_seed(p in policies(), key in 0u64..u64::MAX) {
        prop_assert_eq!(p.schedule(key), p.schedule(key));
        prop_assert_eq!(p.delay(0, key).to_bits(), p.delay(0, key).to_bits());
    }

    /// The retry loop shape every instrumented site uses — try, and while
    /// the controller faults the attempt, back off and retry until the
    /// budget is spent — performs at most `max_attempts` tries, even under
    /// a plan that faults every attempt.
    #[test]
    fn attempts_never_exceed_budget(
        p in policies(),
        seed in 0u64..u64::MAX,
        prob_milli in 0u64..1001,
    ) {
        let ctl = ChaosCtl::new(FaultPlan {
            seed,
            piofs: PiofsFaults { transient_prob: prob_milli as f64 / 1000.0, torn: None },
            retry: p,
            ..Default::default()
        });
        let mut attempts = 0u32;
        let mut charged = 0.0f64;
        loop {
            attempts += 1;
            if !ctl.io_fault(0, 1, attempts as u64 - 1) || attempts >= p.max_attempts {
                break;
            }
            charged += p.delay(attempts - 1, seed);
        }
        prop_assert!(attempts <= p.max_attempts, "{} > {}", attempts, p.max_attempts);
        // Total backoff is bounded by the worst-case schedule sum.
        let worst: f64 = p.schedule(seed).iter().sum();
        prop_assert!(charged <= worst + 1e-12, "charged {} vs worst {}", charged, worst);
    }
}
