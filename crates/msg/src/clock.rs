/// Per-task virtual clock, in simulated seconds since region start.
///
/// Clocks only move forward. Synchronizing operations (barriers, collectives,
/// collective I/O phases) reconcile the clocks of participating tasks by
/// taking the maximum, exactly like wall time would on real hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock { now: 0.0 }
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds (`dt >= 0`).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "clock must not run backwards (dt = {dt})");
        debug_assert!(dt.is_finite());
        self.now += dt.max(0.0);
    }

    /// Moves the clock forward to `t` if `t` is later than now.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

/// Communication cost model for the simulated interconnect.
///
/// The defaults are calibrated to the multistage switch of the 16-node
/// RS/6000 SP used in the paper (thin nodes, MPL user-space protocol):
/// ~40 µs one-way latency and ~35 MB/s point-to-point bandwidth, which is
/// what contemporaneous measurements of the SP2 switch reported.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// One-way wire latency per message, seconds.
    pub latency: f64,
    /// Point-to-point bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Sender-side software overhead per message, seconds.
    pub send_overhead: f64,
    /// Receiver-side software overhead per message, seconds.
    pub recv_overhead: f64,
    /// Fixed cost of a barrier once all tasks have arrived, seconds.
    pub barrier_cost: f64,
    /// Local memory copy bandwidth, bytes per second — charged for packing
    /// and unpacking during redistribution (67 MHz POWER2 thin nodes moved
    /// on the order of 80 MB/s).
    pub memcpy_bw: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            latency: 40e-6,
            bandwidth: 35.0e6,
            send_overhead: 15e-6,
            recv_overhead: 15e-6,
            barrier_cost: 60e-6,
            memcpy_bw: 80.0e6,
        }
    }
}

impl CostModel {
    /// A zero-cost model: useful for tests that check data movement only.
    pub fn free() -> CostModel {
        CostModel {
            latency: 0.0,
            bandwidth: f64::INFINITY,
            send_overhead: 0.0,
            recv_overhead: 0.0,
            barrier_cost: 0.0,
            memcpy_bw: f64::INFINITY,
        }
    }

    /// Time for `bytes` to cross one link, excluding latency.
    pub fn wire_time(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth
    }

    /// Cost of a `log2(P)`-stage collective's latency component.
    pub fn collective_latency(&self, ntasks: usize) -> f64 {
        let stages = (ntasks.max(1) as f64).log2().ceil();
        stages * self.latency + self.barrier_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        assert_eq!(c.now(), 1.5);
        c.advance_to(1.0); // no-op: earlier than now
        assert_eq!(c.now(), 1.5);
        c.advance_to(2.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn free_model_is_free() {
        let m = CostModel::free();
        assert_eq!(m.wire_time(1 << 30), 0.0);
        assert_eq!(m.collective_latency(16), 0.0);
    }

    #[test]
    fn collective_latency_scales_log2() {
        let m = CostModel { latency: 1.0, barrier_cost: 0.0, ..CostModel::default() };
        assert_eq!(m.collective_latency(1), 0.0);
        assert_eq!(m.collective_latency(2), 1.0);
        assert_eq!(m.collective_latency(8), 3.0);
        assert_eq!(m.collective_latency(9), 4.0);
    }

    #[test]
    fn wire_time_proportional_to_bytes() {
        let m = CostModel { bandwidth: 1e6, ..CostModel::default() };
        assert!((m.wire_time(2_000_000) - 2.0).abs() < 1e-12);
    }
}
