use std::fmt;

use drms_core::CoreError;
use drms_memtier::MemTierError;

/// Errors from the asynchronous checkpoint pipeline: either the underlying
/// checkpoint machinery or the memory tier the flush drains through.
#[derive(Debug, Clone, PartialEq)]
pub enum AsyncError {
    /// Failure in the core checkpoint machinery (including injected
    /// crashes, which surface as [`CoreError::Interrupted`]).
    Core(CoreError),
    /// Failure in the in-memory replica tier the flush drains through.
    Tier(MemTierError),
}

impl AsyncError {
    /// Whether this error is an injected crash point firing — the signal
    /// job bodies translate into a `Killed` outcome so the JSA
    /// reincarnates them from the last committed checkpoint.
    pub fn is_interrupted(&self) -> bool {
        matches!(
            self,
            AsyncError::Core(CoreError::Interrupted(_))
                | AsyncError::Tier(MemTierError::Core(CoreError::Interrupted(_)))
        )
    }
}

impl fmt::Display for AsyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncError::Core(e) => write!(f, "async checkpoint: {e}"),
            AsyncError::Tier(e) => write!(f, "async checkpoint tier: {e}"),
        }
    }
}

impl std::error::Error for AsyncError {}

impl From<CoreError> for AsyncError {
    fn from(e: CoreError) -> Self {
        AsyncError::Core(e)
    }
}

impl From<MemTierError> for AsyncError {
    fn from(e: MemTierError) -> Self {
        AsyncError::Tier(e)
    }
}
