//! Deterministic, seeded storage-fault injection.

use drms_piofs::rng::SplitMix64;
use drms_piofs::Piofs;

/// One corruption a campaign applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedCorruption {
    /// Damaged file.
    pub path: String,
    /// Start of the flipped range.
    pub offset: u64,
    /// Length of the flipped range.
    pub len: u64,
}

/// A seeded plan of silent stripe corruptions against the data files of a
/// checkpoint. The same seed against the same checkpoint produces the same
/// damage, byte for byte — fault campaigns in tests and benchmarks are
/// reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptionCampaign {
    /// Seed for the fault stream.
    pub seed: u64,
    /// Number of corruptions to apply.
    pub hits: usize,
    /// Longest range a single corruption may flip.
    pub max_len: u64,
}

impl CorruptionCampaign {
    /// A campaign of `hits` corruptions of up to 256 bytes each.
    pub fn new(seed: u64, hits: usize) -> CorruptionCampaign {
        CorruptionCampaign { seed, hits, max_len: 256 }
    }

    /// Applies the campaign to the data files under `prefix` (the manifest
    /// and quarantine markers are spared — manifest loss is a different
    /// failure mode, injected separately). Returns the corruptions actually
    /// applied, in order. Control-plane operation (no clock).
    pub fn apply(&self, fs: &Piofs, prefix: &str) -> Vec<AppliedCorruption> {
        let dir = format!("{prefix}/");
        let targets: Vec<(String, u64)> = fs
            .list(&dir)
            .into_iter()
            .filter(|i| {
                let name = &i.path[dir.len()..];
                name != "manifest" && !name.starts_with("manifest.") && i.size > 0
            })
            .map(|i| (i.path, i.size))
            .collect();
        if targets.is_empty() || self.hits == 0 {
            return Vec::new();
        }
        let mut rng = SplitMix64::new(self.seed);
        let mut applied = Vec::with_capacity(self.hits);
        for _ in 0..self.hits {
            let (path, size) = &targets[(rng.next_u64() % targets.len() as u64) as usize];
            let len = 1 + rng.next_u64() % self.max_len.min(*size);
            let offset = rng.next_u64() % (size - len + 1);
            let salt = rng.next_u64();
            let flipped = fs.corrupt_range(path, offset, len, salt);
            debug_assert_eq!(flipped, len);
            applied.push(AppliedCorruption { path: path.clone(), offset, len });
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_piofs::PiofsConfig;

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let setup = || {
            let fs = Piofs::new(PiofsConfig::test_tiny(4).with_parity(), 1);
            fs.preload("ck/a/segment", (0..9000u32).map(|i| i as u8).collect());
            fs.preload("ck/a/array-x", vec![7; 5000]);
            fs.preload("ck/a/manifest", vec![1; 64]);
            fs
        };
        let fs1 = setup();
        let fs2 = setup();
        let c = CorruptionCampaign::new(33, 5);
        let a1 = c.apply(&fs1, "ck/a");
        let a2 = c.apply(&fs2, "ck/a");
        assert_eq!(a1, a2);
        assert_eq!(a1.len(), 5);
        assert_eq!(fs1.peek_raw("ck/a/segment"), fs2.peek_raw("ck/a/segment"));
        // The manifest is spared; something else was hit.
        assert_eq!(fs1.peek_raw("ck/a/manifest").unwrap(), vec![1; 64]);
        assert!(a1.iter().all(|c| !c.path.ends_with("manifest")));
        // A different seed lands differently.
        let fs3 = setup();
        let a3 = CorruptionCampaign::new(34, 5).apply(&fs3, "ck/a");
        assert_ne!(a1, a3);
    }
}
