//! The [`Recorder`] trait and its zero-cost null implementation.

use crate::Phase;

/// One encoded flight-recorder seal, as returned by
/// [`Recorder::flight_seal`]: the drained contents of the sealing rank's
/// bounded in-memory ring, ready to be persisted alongside checkpoint data.
///
/// The `tag` uniquely identifies the seal across the whole job
/// (incarnation, rank, and per-rank seal sequence) and is safe to use as a
/// file name; `events` and `evicted` let the sealing call site publish
/// capture/overflow counters without the flight recorder ever re-entering
/// the recorder stack it is part of.
#[derive(Debug, Clone)]
pub struct FlightSeal {
    /// Unique seal tag, e.g. `inc0-r3-s2`.
    pub tag: String,
    /// Encoded ring contents (self-describing wire format).
    pub bytes: Vec<u8>,
    /// Events drained into this seal.
    pub events: u64,
    /// Events evicted oldest-first from the full ring since the last seal.
    pub evicted: u64,
}

/// Sink for structured spans, instant events, counters, and gauges.
///
/// All timestamps (`t`) are **simulated** seconds supplied by the caller's
/// task clock; implementations must not consult host time. `rank` is the
/// reporting task's rank (control-plane callers pass rank 0). `array`
/// optionally labels the checkpoint array a sample belongs to.
///
/// Every method has an empty default body so null recording costs nothing;
/// instrumentation sites may additionally check [`Recorder::enabled`] to
/// skip building labels.
#[allow(unused_variables)]
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. When `false`, callers may
    /// skip instrumentation entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name` at simulated time `t`.
    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Closes the most recent open span with this `(rank, phase, name)`.
    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Records an instantaneous event.
    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Records an instantaneous event carrying a correlation id, so causal
    /// analysis can link it to other records (e.g. a job start to its JSA
    /// incarnation number). The default forwards to [`Recorder::event`],
    /// dropping the id.
    fn event_with_corr(&self, t: f64, rank: usize, phase: Phase, name: &str, corr: u64) {
        self.event(t, rank, phase, name);
    }

    /// Reports the completed send of a point-to-point message: `t` is the
    /// sender's clock after the send call returned (wire time charged),
    /// `corr` is the message's unique correlation id shared with the
    /// matching [`Recorder::msg_received`] report.
    fn msg_sent(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64, bytes: u64) {}

    /// Reports the completed receive of the message with correlation id
    /// `corr`: `t` is the receiver's clock after delivery (arrival plus
    /// receive overhead).
    fn msg_received(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64) {}

    /// Reports one PIOFS server's busy interval inside a priced I/O phase
    /// (`[start, end]` in simulated seconds), for utilization and
    /// stripe-imbalance attribution.
    fn server_interval(&self, server: usize, name: &str, start: f64, end: f64) {}

    /// As [`Recorder::server_interval`], naming the task whose I/O phase
    /// priced the interval. Aggregate sinks keep the default (which drops
    /// the rank); streaming sinks override it to attribute the interval to
    /// the reporting task's stream, keeping per-task sample order
    /// deterministic when several ranks price phases concurrently.
    fn server_interval_from(&self, rank: usize, server: usize, name: &str, start: f64, end: f64) {
        self.server_interval(server, name, start, end);
    }

    /// Adds `delta` to the monotonic counter `name`, labelled by `rank`
    /// and optionally an `array` name.
    fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {}

    /// As [`Recorder::counter_add`], stamped with the caller's simulated
    /// clock `t`. Aggregate-only sinks keep the default (which drops the
    /// timestamp and forwards to [`Recorder::counter_add`]); streaming
    /// sinks such as windowed online collectors override it to place the
    /// increment on the simulated time axis. Instrumentation sites that
    /// hold a clock should prefer this variant.
    fn counter_add_at(
        &self,
        t: f64,
        rank: usize,
        name: &'static str,
        array: Option<&str>,
        delta: u64,
    ) {
        self.counter_add(rank, name, array, delta);
    }

    /// Sets gauge `name[index]` to `value` (e.g. per-server busy time).
    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {}

    /// As [`Recorder::gauge_set`], stamped with the caller's simulated
    /// clock `t` and reporting `rank`. Aggregate sinks keep the default
    /// (which drops both); streaming sinks override it to place the sample
    /// on the reporting task's stream.
    fn gauge_set_at(&self, t: f64, rank: usize, name: &'static str, index: usize, value: f64) {
        self.gauge_set(name, index, value);
    }

    /// Whether a flight recorder is attached somewhere in this recorder
    /// stack. Instrumentation that exists purely for the flight recorder
    /// (commit markers, ring persistence, the extra seal barrier) gates on
    /// this so runs without one stay bit-identical to builds before it.
    fn flight_enabled(&self) -> bool {
        false
    }

    /// Seals a snapshot of the calling rank's flight-recorder ring at
    /// simulated time `t`, returning the encoded seal for the caller to
    /// persist. `reason` labels why the seal was taken (e.g. `"sop"` or a
    /// crash-point name) and is embedded in the seal header.
    ///
    /// Only a flight-recorder sink returns `Some`; every other recorder
    /// keeps this default so existing stacks are unaffected. Must be
    /// called from rank `rank`'s own thread — rings are single-writer.
    fn flight_seal(&self, t: f64, rank: usize, reason: &str) -> Option<FlightSeal> {
        None
    }
}

/// Recorder that tees every report to a list of downstream recorders, so a
/// post-hoc trace sink and an online streaming sink can observe the same
/// run. `enabled()` is true when any branch is enabled; disabled branches
/// still receive the calls (their own empty bodies make that free).
pub struct FanoutRecorder {
    sinks: Vec<std::sync::Arc<dyn Recorder>>,
}

impl FanoutRecorder {
    /// A fan-out over `sinks`, invoked in order on every hook.
    pub fn new(sinks: Vec<std::sync::Arc<dyn Recorder>>) -> FanoutRecorder {
        FanoutRecorder { sinks }
    }
}

impl Recorder for FanoutRecorder {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        for s in &self.sinks {
            s.span_start(t, rank, phase, name);
        }
    }

    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        for s in &self.sinks {
            s.span_end(t, rank, phase, name);
        }
    }

    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        for s in &self.sinks {
            s.event(t, rank, phase, name);
        }
    }

    fn event_with_corr(&self, t: f64, rank: usize, phase: Phase, name: &str, corr: u64) {
        for s in &self.sinks {
            s.event_with_corr(t, rank, phase, name, corr);
        }
    }

    fn msg_sent(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64, bytes: u64) {
        for s in &self.sinks {
            s.msg_sent(t, src, dst, tag, corr, bytes);
        }
    }

    fn msg_received(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64) {
        for s in &self.sinks {
            s.msg_received(t, src, dst, tag, corr);
        }
    }

    fn server_interval(&self, server: usize, name: &str, start: f64, end: f64) {
        for s in &self.sinks {
            s.server_interval(server, name, start, end);
        }
    }

    fn server_interval_from(&self, rank: usize, server: usize, name: &str, start: f64, end: f64) {
        for s in &self.sinks {
            s.server_interval_from(rank, server, name, start, end);
        }
    }

    fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {
        for s in &self.sinks {
            s.counter_add(rank, name, array, delta);
        }
    }

    fn counter_add_at(
        &self,
        t: f64,
        rank: usize,
        name: &'static str,
        array: Option<&str>,
        delta: u64,
    ) {
        for s in &self.sinks {
            s.counter_add_at(t, rank, name, array, delta);
        }
    }

    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {
        for s in &self.sinks {
            s.gauge_set(name, index, value);
        }
    }

    fn gauge_set_at(&self, t: f64, rank: usize, name: &'static str, index: usize, value: f64) {
        for s in &self.sinks {
            s.gauge_set_at(t, rank, name, index, value);
        }
    }

    fn flight_enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.flight_enabled())
    }

    fn flight_seal(&self, t: f64, rank: usize, reason: &str) -> Option<FlightSeal> {
        self.sinks.iter().find_map(|s| s.flight_seal(t, rank, reason))
    }
}

/// Recorder that drops everything; the default wherever a recorder is
/// optional. `enabled()` is `false`, so instrumented code short-circuits.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.span_start(0.0, 0, Phase::Init, "x");
        r.span_end(1.0, 0, Phase::Init, "x");
        r.event(0.5, 1, Phase::Control, "e");
        r.event_with_corr(0.5, 1, Phase::Control, "e", 7);
        r.msg_sent(0.1, 0, 1, 9, 42, 128);
        r.msg_received(0.2, 0, 1, 9, 42);
        r.server_interval(3, "collective", 0.0, 1.0);
        r.counter_add(0, crate::names::MESSAGES_SENT, None, 3);
        r.counter_add_at(0.7, 0, crate::names::MESSAGES_SENT, None, 3);
        r.gauge_set(crate::names::SERVER_BUSY, 2, 1.5);
        assert!(r.flight_seal(0.9, 0, "sop").is_none());
    }

    #[test]
    fn fanout_tees_to_every_sink() {
        use crate::TraceRecorder;
        use std::sync::Arc;

        let a = Arc::new(TraceRecorder::default());
        let b = Arc::new(TraceRecorder::default());
        let fan = FanoutRecorder::new(vec![a.clone() as Arc<dyn Recorder>, b.clone()]);
        assert!(fan.enabled());
        fan.event(1.0, 0, Phase::Control, "e");
        fan.counter_add_at(2.0, 1, crate::names::COMMITS, None, 2);
        fan.gauge_set(crate::names::SERVER_BUSY, 0, 3.5);
        for rec in [&a, &b] {
            assert_eq!(rec.events().len(), 1);
            assert_eq!(rec.metrics().counter_total(crate::names::COMMITS), 2);
            assert_eq!(rec.metrics().gauge(crate::names::SERVER_BUSY, 0), Some(3.5));
        }
    }

    #[test]
    fn fanout_of_nulls_is_disabled() {
        let fan = FanoutRecorder::new(vec![std::sync::Arc::new(NullRecorder)]);
        assert!(!fan.enabled());
    }
}
