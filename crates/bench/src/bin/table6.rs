//! Table 6: components of DRMS checkpoint and restart operations — total
//! time and rate, plus the data-segment and distributed-array phases as
//! percentages of the total with their own rates.
//!
//! ```text
//! cargo run --release -p drms-bench --bin table6 [--class A] [--runs 10]
//! ```

use drms_apps::{bt, lu, sp, AppVariant};
use drms_bench::args::Options;
use drms_bench::experiment::run_pair;
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_bench::stats::Summary;
use drms_bench::table::render;
use drms_core::report::OpBreakdown;

/// Paper values at class A:
/// (app, pes, ckpt(total s, rate, seg%, seg rate, arr%, arr rate),
///  restart(total s, rate, seg%, seg rate, arr%, arr rate)).
const PAPER: &[(&str, usize, [f64; 6], [f64; 6])] = &[
    ("bt", 8, [16.0, 9.2, 32.0, 12.4, 68.0, 7.7], [41.6, 14.1, 42.0, 29.0, 49.0, 4.1]),
    ("bt", 16, [19.5, 7.5, 38.0, 8.4, 62.0, 7.0], [31.7, 34.4, 57.0, 55.4, 32.0, 8.4]),
    ("lu", 8, [19.0, 6.3, 68.0, 6.6, 32.0, 5.5], [46.4, 15.4, 69.0, 21.3, 23.0, 3.1]),
    ("lu", 16, [18.2, 6.5, 56.0, 8.4, 44.0, 4.2], [30.7, 45.4, 71.0, 62.6, 15.0, 7.2]),
    ("sp", 8, [13.3, 7.6, 40.0, 10.0, 60.0, 6.0], [34.5, 13.6, 47.0, 26.0, 42.0, 3.3]),
    ("sp", 16, [16.3, 6.2, 39.0, 8.3, 61.0, 4.9], [26.5, 33.6, 57.0, 55.9, 29.0, 6.2]),
];

fn six(b: &OpBreakdown) -> [f64; 6] {
    [
        b.total(),
        b.rate_mb_s(),
        b.segment_pct(),
        b.segment_rate_mb_s(),
        b.arrays_pct(),
        b.array_rate_mb_s(),
    ]
}

fn main() {
    let opts = Options::from_env();
    let repro = format!(
        "cargo run --release -p drms-bench --bin table6 -- --class {} --runs {}",
        opts.class, opts.runs
    );
    run_gated("table6", &repro, || body(&opts));
}

fn body(opts: &Options) {
    println!("Table 6 — components of DRMS checkpoint and restart (mean of {} runs)", opts.runs);
    println!("class {} | paper values are class A\n", opts.class);

    let header =
        vec!["app", "PEs", "op", "", "total(s)", "rate", "seg %", "seg rate", "arr %", "arr rate"];
    let mut rows = Vec::new();
    let mut result = BenchResult::new("table6");
    result.param("class", opts.class);
    result.param("runs", opts.runs);
    result.param("pes", opts.pes.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(","));
    result.stamp_header(
        drms_bench::seed::fault_seed_or(0),
        opts.pes.iter().copied().max().unwrap_or(0),
    );
    for spec in [bt(opts.class), lu(opts.class), sp(opts.class)] {
        for &pes in &opts.pes {
            let mut cs: Vec<[f64; 6]> = Vec::new();
            let mut rs: Vec<[f64; 6]> = Vec::new();
            for run in 0..opts.runs {
                let seed = 2000 + run as u64 * 104729;
                let pair = run_pair(&spec, AppVariant::Drms, pes, seed, 1).expect("experiment");
                cs.push(six(&pair.ckpt));
                rs.push(six(&pair.restart));
            }
            let mean6 = |v: &Vec<[f64; 6]>| -> [f64; 6] {
                let mut out = [0.0; 6];
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = Summary::of(&v.iter().map(|x| x[i]).collect::<Vec<_>>()).mean;
                }
                out
            };
            let paper = PAPER.iter().find(|(n, p, _, _)| *n == spec.name && *p == pes);
            for (op, measured, paper_vals) in [
                ("checkpoint", mean6(&cs), paper.map(|p| p.2)),
                ("restart", mean6(&rs), paper.map(|p| p.3)),
            ] {
                let key = |m: &str| format!("{}.p{pes}.{op}.{m}", spec.name);
                result.metric(&key("total_s"), measured[0]);
                result.metric(&key("rate_mb_s"), measured[1]);
                result.metric(&key("seg_pct"), measured[2]);
                result.metric(&key("arr_pct"), measured[4]);
                let fmt = |v: [f64; 6]| -> Vec<String> {
                    vec![
                        format!("{:.1}", v[0]),
                        format!("{:.1}", v[1]),
                        format!("{:.0}", v[2]),
                        format!("{:.1}", v[3]),
                        format!("{:.0}", v[4]),
                        format!("{:.1}", v[5]),
                    ]
                };
                let mut row = vec![
                    spec.name.to_string(),
                    pes.to_string(),
                    op.to_string(),
                    "measured".to_string(),
                ];
                row.extend(fmt(measured));
                rows.push(row);
                if let Some(p) = paper_vals {
                    let mut row =
                        vec![String::new(), String::new(), String::new(), "paper".to_string()];
                    row.extend(fmt(p));
                    rows.push(row);
                }
            }
            eprintln!("... {} @ {} PEs done", spec.name, pes);
        }
    }
    println!("{}", render(&header, &rows));
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_table6.json");
        println!("wrote {}", path.display());
    }
    println!(
        "Rates are SI MB/s. Restart rows omit the initialization component from the\n\
         percentages, like the paper (they add to ~85-90% of the total). Shapes:\n\
         segment-read rates RISE with PEs (client-limited shared file), write rates\n\
         FALL (server-limited with co-location interference)."
    );
}
