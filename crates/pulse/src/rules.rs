//! The declarative health-rule engine.
//!
//! A [`PulseRule`] names an alert and a [`Predicate`] over settled windows.
//! The engine evaluates rules window by window, in window order, against
//! the window's aggregates plus a small amount of carried state (last
//! gauge values, time of last counter activity). Alerts follow a breach
//! state machine: a rule fires **once** when its predicate first holds for
//! `min_windows` consecutive windows, stays latched while the breach
//! continues, and re-arms after the first non-breaching window — so one
//! continuous breach can never emit twice.

use std::collections::BTreeMap;

use drms_obs::Phase;

use crate::window::WindowStats;

/// Threshold/rate/absence predicates over one settled window.
#[derive(Debug, Clone)]
pub enum Predicate {
    /// Summed counter deltas over `metrics`, divided by the window width,
    /// at or above `per_second`.
    RateAbove {
        /// Counter names summed together (e.g. msg and I/O retries).
        metrics: Vec<&'static str>,
        /// Breach threshold in increments per simulated second.
        per_second: f64,
    },
    /// Summed counter deltas over `metrics` at or above `at_least`.
    CountAbove {
        /// Counter names summed together.
        metrics: Vec<&'static str>,
        /// Breach threshold in increments per window.
        at_least: u64,
    },
    /// Carried gauge value strictly below `below`. Evaluates only once the
    /// gauge has been set at least once (an unreported gauge is unknown,
    /// not zero).
    GaugeBelow {
        /// Gauge name.
        name: &'static str,
        /// Gauge index.
        index: usize,
        /// Breach threshold (strictly below).
        below: f64,
    },
    /// Carried gauge value strictly above `above`.
    GaugeAbove {
        /// Gauge name.
        name: &'static str,
        /// Gauge index.
        index: usize,
        /// Breach threshold (strictly above).
        above: f64,
    },
    /// No increment of `metric` for at least `seconds` of simulated time,
    /// measured window-end to window-end while the run shows activity.
    AbsenceFor {
        /// Counter whose silence constitutes the stall.
        metric: &'static str,
        /// Stall budget in simulated seconds.
        seconds: f64,
    },
    /// Straggler skew: slowest rank's seconds in `phase` this window over
    /// the median rank's, at or above `factor`, with at least `min_ranks`
    /// ranks reporting.
    SkewAbove {
        /// Phase whose per-rank durations are compared.
        phase: Phase,
        /// Breach threshold for slowest/median.
        factor: f64,
        /// Minimum reporting ranks for the comparison to mean anything.
        min_ranks: usize,
    },
}

/// One declarative health rule.
#[derive(Debug, Clone)]
pub struct PulseRule {
    /// Alert name — one of the `pulse.alert.*` metric names, emitted as a
    /// counter and a `Phase::Pulse` event when the rule fires.
    pub name: &'static str,
    /// The windowed predicate.
    pub predicate: Predicate,
    /// Consecutive breaching windows required before firing (≥ 1; 0 is
    /// treated as 1).
    pub min_windows: usize,
}

/// A fired alert.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The rule's alert name.
    pub rule: &'static str,
    /// Index of the window whose evaluation fired the alert.
    pub window: u64,
    /// Window start, simulated seconds.
    pub t0: f64,
    /// Window end, simulated seconds.
    pub t1: f64,
    /// The measured value that breached (rate, count, gauge, gap, skew).
    pub value: f64,
}

/// Tunable thresholds for the built-in rule set.
#[derive(Debug, Clone)]
pub struct RuleThresholds {
    /// Checkpoint-stall SLO: simulated seconds without a commit.
    pub ckpt_stall_slo: f64,
    /// Retry-storm threshold: msg+I/O retries per simulated second.
    pub retry_rate: f64,
    /// Straggler threshold: slowest/median stream-wave seconds.
    pub straggler_factor: f64,
    /// Minimum ranks reporting waves before skew is considered.
    pub straggler_min_ranks: usize,
    /// Replica-health floor: alert when the memory tier's minimum
    /// surviving replica count drops strictly below this.
    pub min_replicas: f64,
    /// Delta-collapse ceiling: alert when an incremental checkpoint's
    /// dirty-chunk ratio exceeds this (deltas no longer save anything and
    /// the application should fall back to full checkpoints).
    pub delta_dirty_ceiling: f64,
    /// Flush-lag budget: alert when the asynchronous pipeline accrues at
    /// least this many microseconds of commit lag inside one window (the
    /// background flusher has fallen behind the snapshot cadence).
    pub flush_lag_budget_us: u64,
    /// Recovery-budget ceiling: alert when the flight recorder's live
    /// cumulative recovery fraction (detection, restore, re-computation,
    /// and lost work over stitched wall clock, the
    /// `blackbox.recovery_ratio` gauge) exceeds this fraction of the run.
    pub recovery_budget: f64,
    /// Recovery-degradation floor: alert when localized recovery
    /// escalates to at least this many verified full restarts inside one
    /// window (the survivor-driven restore path is no longer holding).
    pub full_restart_budget: u64,
}

impl Default for RuleThresholds {
    fn default() -> RuleThresholds {
        RuleThresholds {
            ckpt_stall_slo: 300.0,
            retry_rate: 5.0,
            straggler_factor: 2.0,
            straggler_min_ranks: 4,
            min_replicas: 1.0,
            delta_dirty_ceiling: 0.9,
            flush_lag_budget_us: 5_000_000,
            recovery_budget: 0.25,
            full_restart_budget: 1,
        }
    }
}

/// The nine built-in rules: checkpoint-stall SLO breach, retry storm,
/// straggler skew, parity-degraded writes, memory-tier replica loss,
/// delta-ratio collapse, asynchronous flush lag, recovery-budget
/// exhaustion, and recovery degradation (localized recovery escalating
/// to full restarts).
pub fn builtin_rules(th: &RuleThresholds) -> Vec<PulseRule> {
    use drms_obs::names;
    vec![
        PulseRule {
            name: names::ALERT_CKPT_STALL,
            predicate: Predicate::AbsenceFor { metric: names::COMMITS, seconds: th.ckpt_stall_slo },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_RETRY_STORM,
            predicate: Predicate::RateAbove {
                metrics: vec![names::MSG_RETRIES, names::IO_RETRIES],
                per_second: th.retry_rate,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_STRAGGLER,
            predicate: Predicate::SkewAbove {
                phase: Phase::StreamWave,
                factor: th.straggler_factor,
                min_ranks: th.straggler_min_ranks,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_PARITY_DEGRADED,
            predicate: Predicate::GaugeAbove { name: names::PIOFS_DEGRADED, index: 0, above: 0.0 },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_REPLICA_LOSS,
            predicate: Predicate::GaugeBelow {
                name: names::MEMTIER_REPLICAS,
                index: 0,
                below: th.min_replicas,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_DELTA_COLLAPSE,
            predicate: Predicate::GaugeAbove {
                name: names::DELTA_DIRTY_RATIO,
                index: 0,
                above: th.delta_dirty_ceiling,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_FLUSH_LAG,
            predicate: Predicate::CountAbove {
                metrics: vec![names::ASYNC_FLUSH_LAG_US],
                at_least: th.flush_lag_budget_us,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_RECOVERY_BUDGET,
            predicate: Predicate::GaugeAbove {
                name: names::BLACKBOX_RECOVERY_RATIO,
                index: 0,
                above: th.recovery_budget,
            },
            min_windows: 1,
        },
        PulseRule {
            name: names::ALERT_RECOVERY_DEGRADED,
            predicate: Predicate::CountAbove {
                metrics: vec![names::RECOVER_FULL_RESTARTS],
                at_least: th.full_restart_budget,
            },
            min_windows: 1,
        },
    ]
}

struct RuleState {
    /// Consecutive breaching windows so far.
    run: usize,
    /// Whether the alert is latched (fired and still breaching).
    latched: bool,
}

/// Evaluates rules over settled windows, in window order.
pub struct RuleEngine {
    rules: Vec<PulseRule>,
    states: Vec<RuleState>,
    /// Carried last value per gauge series.
    gauges: BTreeMap<(&'static str, usize), f64>,
    /// Absence tracking: simulated time the metric was last seen
    /// incrementing (window end), or the start of observation.
    last_seen: BTreeMap<&'static str, f64>,
    /// Whether any window has been observed yet (anchors absence clocks).
    observed: bool,
}

impl RuleEngine {
    /// An engine over `rules` with all alerts armed.
    pub fn new(rules: Vec<PulseRule>) -> RuleEngine {
        let states = rules.iter().map(|_| RuleState { run: 0, latched: false }).collect();
        RuleEngine {
            rules,
            states,
            gauges: BTreeMap::new(),
            last_seen: BTreeMap::new(),
            observed: false,
        }
    }

    /// The rules under evaluation.
    pub fn rules(&self) -> &[PulseRule] {
        &self.rules
    }

    /// Evaluates every rule against one settled window (`index`, bounds
    /// `[t0, t1)`), updating carried state, and returns the alerts that
    /// fired. Must be called in strictly increasing window order.
    pub fn evaluate(&mut self, index: u64, t0: f64, t1: f64, w: &WindowStats) -> Vec<Alert> {
        // Carried state updates first: gauges keep their last set value
        // across windows, and counter activity timestamps feed absence.
        for (key, g) in &w.gauges {
            self.gauges.insert(*key, g.value);
        }
        if !self.observed && w.samples > 0 {
            self.observed = true;
            // Anchor every absence clock at the first observed activity.
            for rule in &self.rules {
                if let Predicate::AbsenceFor { metric, .. } = &rule.predicate {
                    self.last_seen.entry(*metric).or_insert(t0);
                }
            }
        }
        for rule in &self.rules {
            if let Predicate::AbsenceFor { metric, .. } = &rule.predicate {
                if w.counters.get(*metric).copied().unwrap_or(0) > 0 {
                    self.last_seen.insert(*metric, t1);
                }
            }
        }

        let width = (t1 - t0).max(f64::MIN_POSITIVE);
        let mut fired = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let breach: Option<f64> = match &rule.predicate {
                Predicate::RateAbove { metrics, per_second } => {
                    let rate = w.counter_sum(metrics) as f64 / width;
                    (rate >= *per_second && *per_second > 0.0).then_some(rate)
                }
                Predicate::CountAbove { metrics, at_least } => {
                    let n = w.counter_sum(metrics);
                    (n >= *at_least && *at_least > 0).then_some(n as f64)
                }
                Predicate::GaugeBelow { name, index, below } => {
                    self.gauges.get(&(*name, *index)).copied().filter(|v| *v < *below)
                }
                Predicate::GaugeAbove { name, index, above } => {
                    self.gauges.get(&(*name, *index)).copied().filter(|v| *v > *above)
                }
                Predicate::AbsenceFor { metric, seconds } => {
                    let gap = self.last_seen.get(*metric).map(|seen| t1 - seen);
                    gap.filter(|g| self.observed && *g >= *seconds && *seconds > 0.0)
                }
                Predicate::SkewAbove { phase, factor, min_ranks } => {
                    let mut secs: Vec<f64> =
                        w.phase_by_rank(*phase).into_iter().map(|(_, s)| s).collect();
                    if secs.len() < (*min_ranks).max(2) {
                        None
                    } else {
                        secs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                        let median = secs[secs.len() / 2];
                        let slowest = secs[secs.len() - 1];
                        if median > 0.0 && slowest / median >= *factor {
                            Some(slowest / median)
                        } else {
                            None
                        }
                    }
                }
            };
            match breach {
                Some(value) => {
                    state.run += 1;
                    if state.run >= rule.min_windows.max(1) && !state.latched {
                        state.latched = true;
                        fired.push(Alert { rule: rule.name, window: index, t0, t1, value });
                    }
                }
                None => {
                    state.run = 0;
                    state.latched = false;
                }
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::names;

    fn window_with(metric: &'static str, delta: u64) -> WindowStats {
        let mut w = WindowStats { samples: 1, ..Default::default() };
        if delta > 0 {
            w.counters.insert(metric, delta);
        }
        w
    }

    fn gw(value: f64) -> crate::window::GaugeWrite {
        crate::window::GaugeWrite { stamp: 0.0, rank: 0, value }
    }

    #[test]
    fn continuous_breach_fires_once_and_rearms() {
        let rule = PulseRule {
            name: names::ALERT_RETRY_STORM,
            predicate: Predicate::RateAbove { metrics: vec![names::MSG_RETRIES], per_second: 2.0 },
            min_windows: 1,
        };
        let mut eng = RuleEngine::new(vec![rule]);
        let hot = window_with(names::MSG_RETRIES, 10);
        let cold = window_with(names::MSG_RETRIES, 0);
        assert_eq!(eng.evaluate(0, 0.0, 1.0, &hot).len(), 1);
        assert_eq!(eng.evaluate(1, 1.0, 2.0, &hot).len(), 0); // latched
        assert_eq!(eng.evaluate(2, 2.0, 3.0, &cold).len(), 0); // re-arms
        assert_eq!(eng.evaluate(3, 3.0, 4.0, &hot).len(), 1); // new breach
    }

    #[test]
    fn min_windows_debounces() {
        let rule = PulseRule {
            name: names::ALERT_RETRY_STORM,
            predicate: Predicate::CountAbove { metrics: vec![names::MSG_RETRIES], at_least: 1 },
            min_windows: 3,
        };
        let mut eng = RuleEngine::new(vec![rule]);
        let hot = window_with(names::MSG_RETRIES, 1);
        assert!(eng.evaluate(0, 0.0, 1.0, &hot).is_empty());
        assert!(eng.evaluate(1, 1.0, 2.0, &hot).is_empty());
        assert_eq!(eng.evaluate(2, 2.0, 3.0, &hot).len(), 1);
    }

    #[test]
    fn gauge_rules_carry_values_across_windows() {
        let rule = PulseRule {
            name: names::ALERT_REPLICA_LOSS,
            predicate: Predicate::GaugeBelow {
                name: names::MEMTIER_REPLICAS,
                index: 0,
                below: 1.0,
            },
            min_windows: 1,
        };
        let mut eng = RuleEngine::new(vec![rule]);
        // Unset gauge: unknown, no alert.
        assert!(eng.evaluate(0, 0.0, 1.0, &window_with(names::COMMITS, 1)).is_empty());
        let mut set = WindowStats { samples: 1, ..Default::default() };
        set.record_gauge(names::MEMTIER_REPLICAS, 0, gw(2.0));
        assert!(eng.evaluate(1, 1.0, 2.0, &set).is_empty());
        let mut drop = WindowStats { samples: 1, ..Default::default() };
        drop.record_gauge(names::MEMTIER_REPLICAS, 0, gw(0.0));
        let fired = eng.evaluate(2, 2.0, 3.0, &drop);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].value, 0.0);
        // Value carries: still breaching in an empty window, still latched.
        assert!(eng.evaluate(3, 3.0, 4.0, &WindowStats::default()).is_empty());
    }

    #[test]
    fn absence_measures_from_last_activity() {
        let rule = PulseRule {
            name: names::ALERT_CKPT_STALL,
            predicate: Predicate::AbsenceFor { metric: names::COMMITS, seconds: 2.5 },
            min_windows: 1,
        };
        let mut eng = RuleEngine::new(vec![rule]);
        let active = window_with(names::COMMITS, 1);
        let idle = window_with(names::MSG_RETRIES, 0);
        assert!(eng.evaluate(0, 0.0, 1.0, &active).is_empty());
        assert!(eng.evaluate(1, 1.0, 2.0, &idle).is_empty()); // gap 1.0
        assert!(eng.evaluate(2, 2.0, 3.0, &idle).is_empty()); // gap 2.0
        let fired = eng.evaluate(3, 3.0, 4.0, &idle); // gap 3.0 >= 2.5
        assert_eq!(fired.len(), 1);
        assert!((fired[0].value - 3.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_degradation_counts_full_restarts() {
        let rules = builtin_rules(&RuleThresholds::default());
        assert_eq!(rules.len(), 9);
        let mut eng = RuleEngine::new(rules);
        let quiet = window_with(names::RECOVER_FULL_RESTARTS, 0);
        assert!(!eng
            .evaluate(0, 0.0, 1.0, &quiet)
            .iter()
            .any(|a| a.rule == names::ALERT_RECOVERY_DEGRADED));
        let degraded = window_with(names::RECOVER_FULL_RESTARTS, 1);
        let fired = eng.evaluate(1, 1.0, 2.0, &degraded);
        assert!(fired.iter().any(|a| a.rule == names::ALERT_RECOVERY_DEGRADED));
    }

    #[test]
    fn skew_needs_enough_ranks() {
        let rule = PulseRule {
            name: names::ALERT_STRAGGLER,
            predicate: Predicate::SkewAbove { phase: Phase::StreamWave, factor: 2.0, min_ranks: 3 },
            min_windows: 1,
        };
        let mut eng = RuleEngine::new(vec![rule]);
        let mut w = WindowStats { samples: 4, ..Default::default() };
        w.span_secs.insert((0, Phase::StreamWave), 1.0);
        w.span_secs.insert((1, Phase::StreamWave), 1.0);
        assert!(eng.evaluate(0, 0.0, 1.0, &w).is_empty()); // too few ranks
        w.span_secs.insert((2, Phase::StreamWave), 1.1);
        w.span_secs.insert((3, Phase::StreamWave), 5.0);
        let fired = eng.evaluate(1, 1.0, 2.0, &w);
        assert_eq!(fired.len(), 1);
        assert!(fired[0].value >= 2.0);
    }
}
