//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 5) plus the Section 6 shadow-region model.
//!
//! Each `src/bin/tableN.rs` binary reproduces the corresponding table;
//! `fig7` emits the Figure 7 component series; `shadow_model` sweeps the
//! Section 6 ratio. `cargo bench` (criterion) covers the micro-performance
//! of the Figure 5 algorithms: partitioning, redistribution, streaming.
//!
//! Conventions shared by all experiments, matching the paper's setup:
//! a 16-node system with PIOFS striped across all 16 nodes; applications
//! run with a one-to-one task/processor mapping on the first `P` nodes;
//! a checkpoint is taken at the mid-point of the run; restarts reload the
//! mid-point state. Simulated times come from the calibrated cost models
//! in `drms-msg` and `drms-piofs`; data movement is real.

#![deny(missing_docs)]

pub mod args;
pub mod asyncck;
pub mod delta;
pub mod experiment;
pub mod gate;
pub mod json;
pub mod seed;
pub mod stats;
pub mod table;
