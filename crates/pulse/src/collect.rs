//! The collector: drains rings, folds samples into tumbling windows,
//! settles windows behind the cross-ring watermark, runs the rule engine,
//! and emits heartbeats and alerts.
//!
//! Settlement is what makes the stream *online yet deterministic*: window
//! `W` is evaluated as soon as every ring's high-water mark has passed
//! `W`'s end — from that point no ring can contribute to `W` again
//! (ring stamps are per-ring monotone), so the evaluation a live drain
//! performs mid-run is byte-identical to what a post-hoc pass would
//! produce. Drain timing only changes *when* a window settles, never what
//! it contains.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

use drms_obs::{names, Phase, Recorder};

use crate::heartbeat::Row;
use crate::ring::{Drained, Payload};
use crate::rules::{Alert, PulseRule, RuleEngine};
use crate::window::{window_bounds, window_of, GaugeWrite, WindowStats};

/// Upper bound on individually evaluated empty windows between two active
/// ones; larger idle gaps are skipped (rules then see the stall at the
/// next active window or at finish).
const MAX_GAP_EVAL: u64 = 4096;

/// How many settled rows the live status view keeps.
const RECENT_ROWS: usize = 8;

pub(crate) struct Collector {
    width: f64,
    windows: BTreeMap<u64, WindowStats>,
    /// LIFO stacks of open-span raw start times, keyed `(rank, phase)`.
    open_spans: HashMap<(usize, Phase), Vec<f64>>,
    /// Next window index to evaluate; `None` until the first settlement.
    next_eval: Option<u64>,
    ring_hwms: Vec<f64>,
    pub samples: u64,
    pub dropped: u64,
    pub cum_counters: BTreeMap<&'static str, u64>,
    pub cum_span_secs: BTreeMap<(usize, Phase), f64>,
    pub max_stamp: f64,
    engine: RuleEngine,
    pub heartbeats: Vec<String>,
    pub alerts: Vec<Alert>,
    pub recent: VecDeque<Row>,
    finished: bool,
}

impl Collector {
    pub fn new(width: f64, rules: Vec<PulseRule>) -> Collector {
        let width = if width.is_finite() && width > 0.0 { width } else { 1.0 };
        Collector {
            width,
            windows: BTreeMap::new(),
            open_spans: HashMap::new(),
            next_eval: None,
            ring_hwms: Vec::new(),
            samples: 0,
            dropped: 0,
            cum_counters: BTreeMap::new(),
            cum_span_secs: BTreeMap::new(),
            max_stamp: 0.0,
            engine: RuleEngine::new(rules),
            heartbeats: Vec::new(),
            alerts: Vec::new(),
            recent: VecDeque::new(),
            finished: false,
        }
    }

    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Folds one batch of ring drains in, then settles and evaluates every
    /// window now behind the watermark. Returns the samples ingested.
    pub fn ingest(&mut self, drains: Vec<Drained>, sink: &Arc<dyn Recorder>) -> usize {
        if self.ring_hwms.len() < drains.len() {
            self.ring_hwms.resize(drains.len(), 0.0);
        }
        let mut ingested = 0;
        for (i, d) in drains.into_iter().enumerate() {
            self.ring_hwms[i] = d.hwm;
            self.dropped += d.dropped;
            for s in d.samples {
                ingested += 1;
                self.fold(s.stamp, s.raw_t, s.rank, s.payload);
            }
        }
        self.samples += ingested as u64;
        self.settle(false, sink);
        ingested
    }

    /// Settles everything still open (end of run).
    pub fn finish(&mut self, sink: &Arc<dyn Recorder>) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.settle(true, sink);
        if sink.enabled() {
            sink.counter_add(0, names::PULSE_SAMPLES, None, self.samples);
            sink.counter_add(0, names::PULSE_DROPPED, None, self.dropped);
        }
    }

    fn fold(&mut self, stamp: f64, raw_t: f64, rank: usize, payload: Payload) {
        self.max_stamp = self.max_stamp.max(stamp);
        let mut idx = window_of(stamp, self.width);
        if let Some(next) = self.next_eval {
            // Safety net: per-ring monotone stamps make contributions to a
            // settled window impossible; if one ever appeared it folds into
            // the oldest still-open window rather than vanishing.
            idx = idx.max(next);
        }
        let w = self.windows.entry(idx).or_default();
        w.samples += 1;
        match payload {
            Payload::SpanStart { phase } => {
                self.open_spans.entry((rank, phase)).or_default().push(raw_t);
            }
            Payload::SpanEnd { phase } => {
                if let Some(start) = self.open_spans.get_mut(&(rank, phase)).and_then(Vec::pop) {
                    let secs = (raw_t - start).max(0.0);
                    *w.span_secs.entry((rank, phase)).or_default() += secs;
                    *self.cum_span_secs.entry((rank, phase)).or_default() += secs;
                }
            }
            Payload::Event { .. } => {}
            Payload::Counter { name, delta } => {
                *w.counters.entry(name).or_default() += delta;
                *self.cum_counters.entry(name).or_default() += delta;
            }
            Payload::Gauge { name, index, value } => {
                w.record_gauge(name, index, GaugeWrite { stamp, rank, value });
            }
            Payload::MsgSent { bytes } => {
                w.msgs_sent += 1;
                w.msg_bytes += bytes;
            }
            Payload::MsgReceived => {}
            Payload::ServerBusy { server, seconds } => {
                let secs = if seconds.is_finite() { seconds.max(0.0) } else { 0.0 };
                *w.server_busy.entry((server, rank)).or_default() += secs;
            }
        }
    }

    /// The cross-ring settlement watermark: the slowest ring's high-water
    /// mark, over **every** ring — including ones that have produced
    /// nothing yet. A silent ring pins the watermark at its mark (0.0
    /// until it speaks), which is exactly what keeps settlement
    /// drain-invariant: were silent rings skipped, drain timing would
    /// decide whether a late-starting ring's first samples land before or
    /// after their window settles. `None` before the first drain.
    fn watermark(&self) -> Option<f64> {
        self.ring_hwms.iter().copied().reduce(f64::min)
    }

    fn settle(&mut self, force: bool, sink: &Arc<dyn Recorder>) {
        let watermark = self.watermark();
        while let Some(&idx) = self.windows.keys().next() {
            let (_, end) = window_bounds(idx, self.width);
            let ready = force || watermark.is_some_and(|wm| end <= wm);
            if !ready {
                break;
            }
            // Evaluate the empty windows of a bounded idle gap first, so
            // absence rules and carried gauges see time passing.
            let next = self.next_eval.unwrap_or(idx);
            if idx > next && idx - next <= MAX_GAP_EVAL {
                for j in next..idx {
                    self.evaluate(j, WindowStats::default(), sink);
                }
            }
            let stats = self.windows.remove(&idx).unwrap_or_default();
            self.evaluate(idx, stats, sink);
            self.next_eval = Some(idx.saturating_add(1));
        }
    }

    /// Runs the rules over one settled window and emits its heartbeat (for
    /// windows with samples or alerts).
    fn evaluate(&mut self, idx: u64, mut stats: WindowStats, sink: &Arc<dyn Recorder>) {
        let (t0, t1) = window_bounds(idx, self.width);
        let fired = self.engine.evaluate(idx, t0, t1, &stats);
        for a in &fired {
            stats.alerts.push(a.rule);
            if sink.enabled() {
                sink.counter_add(0, a.rule, None, 1);
                sink.counter_add(0, names::PULSE_ALERTS, None, 1);
                sink.event(
                    a.t1,
                    0,
                    Phase::Pulse,
                    &format!("{} window={} value={:.3}", a.rule, a.window, a.value),
                );
            }
        }
        self.alerts.extend(fired);
        if stats.samples == 0 && stats.alerts.is_empty() {
            return;
        }
        let row = Row { window: idx, t0, t1, stats };
        self.heartbeats.push(row.to_jsonl());
        if sink.enabled() {
            sink.counter_add(0, names::PULSE_HEARTBEATS, None, 1);
        }
        if self.recent.len() == RECENT_ROWS {
            self.recent.pop_front();
        }
        self.recent.push_back(row);
    }
}
