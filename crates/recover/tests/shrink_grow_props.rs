//! Property tests for online shrink/grow: re-partitioning across arbitrary
//! active-set sizes preserves every array byte, and a grow immediately
//! undoing a shrink is the identity — all with zero storage I/O (the
//! malleable path never sees a file system).

use drms_core::CheckpointArray;
use drms_darray::{DistArray, Distribution};
use drms_msg::{run_spmd, CostModel, Ctx, ReduceOp};
use drms_recover::{resize, shrink, Membership};
use drms_slices::{Order, Slice};
use proptest::prelude::*;

fn truth(p: &[i64]) -> f64 {
    (p[0] * 53 + p[1] * 11 + 3) as f64
}

fn array(ctx: &Ctx, rows: i64, cols: i64) -> DistArray<f64> {
    let dom = Slice::boxed(&[(1, rows), (1, cols)]);
    let dist = Distribution::block_auto(&dom, ctx.ntasks(), 0).unwrap();
    let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
    u.fill_assigned(truth);
    u
}

/// Collective check: the assigned sections tile the domain and every value
/// is bitwise the fill function.
fn assert_intact(ctx: &mut Ctx, u: &DistArray<f64>, domain_size: usize) {
    let (ok, n) = u.fold_assigned((true, 0u64), |(ok, n), p, v| {
        (ok && v.to_bits() == truth(p).to_bits(), n + 1)
    });
    assert!(ok, "rank {} holds corrupted bytes after re-partition", ctx.rank());
    let covered = ctx.allreduce(n as f64, ReduceOp::Sum);
    assert_eq!(covered as usize, domain_size);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sequence of resizes over arbitrary active counts preserves the
    /// array bytes exactly.
    #[test]
    fn repartition_roundtrip_preserves_bytes(
        ntasks in 2usize..7,
        rows in 6i64..21,
        cols in 5i64..16,
        sizes in proptest::collection::vec(1usize..7, 1..5),
    ) {
        let sizes: Vec<usize> = sizes.into_iter().map(|s| s.min(ntasks).max(1)).collect();
        run_spmd(ntasks, CostModel::default(), |ctx| {
            let mut u = array(ctx, rows, cols);
            let dom_size = u.domain().size();
            let mut m = Membership::initial(ctx.ntasks());
            for &n in &sizes {
                m = shrink(ctx, &m, n, &mut [&mut u]).unwrap();
                assert_eq!(m.active().len(), n);
                assert_intact(ctx, &u, dom_size);
            }
            // Back to the full region: identical to the initial layout.
            m = shrink(ctx, &m, ctx.ntasks(), &mut [&mut u]).unwrap();
            assert_eq!(m.active().len(), ctx.ntasks());
            assert_intact(ctx, &u, dom_size);
        })
        .unwrap();
    }

    /// Growing right back after a shrink is the identity on local bytes.
    #[test]
    fn grow_after_shrink_is_identity(
        ntasks in 2usize..7,
        shrink_to in 1usize..6,
        rows in 6i64..19,
        cols in 5i64..13,
    ) {
        let shrink_to = shrink_to.min(ntasks);
        run_spmd(ntasks, CostModel::default(), |ctx| {
            let mut u = array(ctx, rows, cols);
            let before = CheckpointArray::local_encoded(&u);
            let assigned_before = u.assigned().clone();
            let m0 = Membership::initial(ctx.ntasks());
            let m1 = shrink(ctx, &m0, shrink_to, &mut [&mut u]).unwrap();
            let m2 = drms_recover::grow(ctx, &m1, ctx.ntasks(), &mut [&mut u]).unwrap();
            assert!(m2.epoch > m1.epoch, "each transition stamps a fresh epoch");
            assert_eq!(m2.active().len(), ctx.ntasks());
            assert_eq!(u.assigned(), &assigned_before);
            assert_eq!(CheckpointArray::local_encoded(&u), before);
        })
        .unwrap();
    }

    /// Explicit non-prefix active sets work too: any strictly increasing
    /// rank subset can host the arrays.
    #[test]
    fn arbitrary_active_subsets_preserve_bytes(
        ntasks in 3usize..7,
        mask in proptest::collection::vec(proptest::bool::ANY, 6..7),
    ) {
        let active: Vec<usize> = (0..ntasks).filter(|&r| mask[r]).collect();
        let active = if active.is_empty() { vec![0] } else { active };
        let expect = active.clone();
        run_spmd(ntasks, CostModel::default(), move |ctx| {
            let mut u = array(ctx, 14, 9);
            let dom_size = u.domain().size();
            let m0 = Membership::initial(ctx.ntasks());
            let m1 = resize(ctx, &m0, &expect, &mut [&mut u]).unwrap();
            assert_eq!(m1.active(), expect);
            assert_intact(ctx, &u, dom_size);
            if !expect.contains(&ctx.rank()) {
                assert!(u.assigned().is_empty(), "vacated ranks hold no section");
            }
        })
        .unwrap();
    }
}
