//! End-to-end checkpoint verification against the manifest.

use drms_core::manifest::{
    array_path, manifest_path, segment_path, task_segment_path, CkptKind, Manifest,
};
use drms_obs::{names, Phase, Recorder};
use drms_piofs::Piofs;

/// One chunk of one file that failed its CRC check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkFault {
    /// Full path of the damaged file.
    pub path: String,
    /// Index of the failing chunk in the file's integrity record.
    pub chunk: usize,
    /// Byte offset of the chunk within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

/// Outcome of verifying one checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Checkpoint prefix verified.
    pub prefix: String,
    /// Whether the manifest decoded (including its trailing self-CRC).
    pub manifest_ok: bool,
    /// Files the checkpoint kind mandates that are missing.
    pub missing: Vec<String>,
    /// Files that could not be read logically (lost with a server and not
    /// reconstructible from parity).
    pub unreadable: Vec<String>,
    /// Chunks whose stored bytes fail their recorded CRC.
    pub corrupt: Vec<ChunkFault>,
}

impl VerifyReport {
    /// Whether the checkpoint verified clean: manifest intact, nothing
    /// missing, unreadable, or corrupt.
    pub fn is_valid(&self) -> bool {
        self.manifest_ok
            && self.missing.is_empty()
            && self.unreadable.is_empty()
            && self.corrupt.is_empty()
    }

    fn damaged(prefix: &str) -> VerifyReport {
        VerifyReport {
            prefix: prefix.to_string(),
            manifest_ok: false,
            missing: Vec::new(),
            unreadable: Vec::new(),
            corrupt: Vec::new(),
        }
    }
}

/// Files the checkpoint kind mandates beyond what integrity records cover
/// (a v1 manifest has no integrity records at all; a damaged writer could
/// also have died between data and manifest).
fn required_files(prefix: &str, m: &Manifest) -> Vec<String> {
    match m.kind {
        CkptKind::Drms => std::iter::once(segment_path(prefix))
            .chain(m.arrays.iter().map(|a| array_path(prefix, &a.name)))
            .collect(),
        CkptKind::Spmd => (0..m.ntasks).map(|r| task_segment_path(prefix, r)).collect(),
        // Incremental checkpoints mandate the segment plus every pack file
        // their chunk tables point into — including packs of prior
        // incarnations (a delta chain with missing history cannot restore).
        CkptKind::DrmsDelta => std::iter::once(segment_path(prefix))
            .chain(
                m.deltas.iter().flat_map(|d| d.chunks.iter().map(|c| c.pack_path(prefix, &d.name))),
            )
            .collect(),
    }
}

/// Verifies the checkpoint under `prefix` end-to-end and reports every
/// defect found: manifest decode failure, mandated-but-missing files,
/// unreadable (unreconstructible) files, and chunk-level CRC mismatches.
/// Control-plane operation (no clock); `t` stamps the emitted `verify`
/// span and the per-defect trace events.
pub fn verify_checkpoint(fs: &Piofs, prefix: &str, rec: &dyn Recorder, t: f64) -> VerifyReport {
    if rec.enabled() {
        rec.span_start(t, 0, Phase::Verify, prefix);
    }
    let report = run_verify(fs, prefix, rec, t);
    if rec.enabled() {
        let detected = report.corrupt.len() as u64;
        if detected > 0 {
            rec.counter_add(0, names::CORRUPTIONS_DETECTED, None, detected);
        }
        rec.span_end(t, 0, Phase::Verify, prefix);
    }
    report
}

fn run_verify(fs: &Piofs, prefix: &str, rec: &dyn Recorder, t: f64) -> VerifyReport {
    let Some(bytes) = fs.peek(&manifest_path(prefix)) else {
        return VerifyReport::damaged(prefix);
    };
    let Ok(m) = Manifest::decode(&bytes) else {
        if rec.enabled() {
            rec.event(t, 0, Phase::Verify, &format!("manifest of {prefix} fails its CRC"));
        }
        return VerifyReport::damaged(prefix);
    };

    let mut report = VerifyReport {
        prefix: prefix.to_string(),
        manifest_ok: true,
        missing: Vec::new(),
        unreadable: Vec::new(),
        corrupt: Vec::new(),
    };
    for path in required_files(prefix, &m) {
        if !fs.exists(&path) {
            report.missing.push(path);
        }
    }
    for fi in &m.integrity {
        let path = format!("{prefix}/{}", fi.name);
        let Some(bytes) = fs.peek(&path) else {
            if fs.exists(&path) {
                report.unreadable.push(path);
            } else if !report.missing.contains(&path) {
                report.missing.push(path);
            }
            continue;
        };
        for chunk in fi.corrupt_chunks(&bytes) {
            let (offset, end) = fi.chunk_range(chunk);
            if rec.enabled() {
                rec.event(t, 0, Phase::Verify, &format!("{path} chunk {chunk} corrupt"));
            }
            report.corrupt.push(ChunkFault {
                path: path.clone(),
                chunk,
                offset,
                len: end - offset,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::NullRecorder;

    #[test]
    fn missing_manifest_is_invalid() {
        let fs = Piofs::new(drms_piofs::PiofsConfig::test_tiny(4), 1);
        let r = verify_checkpoint(&fs, "ck/none", &NullRecorder, 0.0);
        assert!(!r.manifest_ok);
        assert!(!r.is_valid());
    }
}
