use std::sync::Arc;

use drms_slices::{Order, Slice};

use crate::element::{decode, encode};
use crate::{DarrayError, Distribution, Element, Result};

/// One task's view of a distributed array: shared metadata plus the local
/// storage backing this task's mapped section.
///
/// The local storage is a dense array of the mapped section's shape, laid
/// out in the array's storage [`Order`] — exactly the paper's "local array
/// of the same shape as the section". Elements of the assigned section are
/// authoritative; the rest of the mapped section (shadow regions) holds
/// copies maintained by [`assign`](crate::assign::assign) /
/// [`refresh_shadows`](crate::assign::refresh_shadows).
pub struct DistArray<T: Element> {
    name: String,
    order: Order,
    dist: Arc<Distribution>,
    rank: usize,
    local: Vec<T>,
    /// Monotone mutation counter; checkpointing compares it against the
    /// version it last saved to skip unmodified arrays (the paper's
    /// Section 6 "memory exclusion" optimization, at array granularity).
    version: u64,
}

impl<T: Element> DistArray<T> {
    /// Creates this task's view, zero-initialized.
    pub fn new(name: &str, order: Order, dist: Arc<Distribution>, rank: usize) -> DistArray<T> {
        assert!(rank < dist.ntasks(), "rank {rank} outside distribution");
        let len = dist.mapped(rank).size();
        DistArray {
            name: name.to_string(),
            order,
            dist,
            rank,
            local: vec![T::default(); len],
            version: 0,
        }
    }

    /// Monotone mutation counter: bumped by every operation that may have
    /// changed local contents. Equal versions imply unchanged data (the
    /// converse need not hold — the counter is conservative).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Array name (checkpoint files are keyed by it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Storage and streaming order.
    pub fn order(&self) -> Order {
        self.order
    }

    /// The distribution currently in effect.
    pub fn dist(&self) -> &Arc<Distribution> {
        &self.dist
    }

    /// The global index domain.
    pub fn domain(&self) -> &Slice {
        self.dist.domain()
    }

    /// This task's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// This task's assigned section.
    pub fn assigned(&self) -> &Slice {
        self.dist.assigned(self.rank)
    }

    /// This task's mapped section.
    pub fn mapped(&self) -> &Slice {
        self.dist.mapped(self.rank)
    }

    /// Raw local storage (mapped section, storage order).
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Mutable raw local storage (conservatively counts as a mutation).
    pub fn local_mut(&mut self) -> &mut [T] {
        self.version += 1;
        &mut self.local
    }

    /// Bytes of local storage — the contribution of this array to the
    /// task's data segment (Table 4's "local sections").
    pub fn local_bytes(&self) -> usize {
        self.local.len() * T::SIZE
    }

    /// Replaces this view's distribution and storage with `other`'s
    /// (same name, order, and domain required). Used for in-place
    /// redistribution across a reconfiguration.
    pub fn adopt(&mut self, other: DistArray<T>) -> Result<()> {
        if other.domain() != self.domain() {
            return Err(DarrayError::DomainMismatch {
                left: self.domain().clone(),
                right: other.domain().clone(),
            });
        }
        debug_assert_eq!(self.name, other.name);
        debug_assert_eq!(self.order, other.order);
        self.dist = other.dist;
        self.rank = other.rank;
        self.local = other.local;
        self.version += 1;
        Ok(())
    }

    /// Flat index of a global point within the local storage.
    pub fn local_index(&self, point: &[i64]) -> Result<usize> {
        match self.mapped().stream_position(point, self.order)? {
            Some(i) => Ok(i),
            None => Err(DarrayError::NotMapped { point: point.to_vec() }),
        }
    }

    /// Reads the element at a global point (must be mapped to this task).
    pub fn get(&self, point: &[i64]) -> Result<T> {
        Ok(self.local[self.local_index(point)?])
    }

    /// Writes the element at a global point (must be mapped to this task).
    pub fn set(&mut self, point: &[i64], v: T) -> Result<()> {
        let i = self.local_index(point)?;
        self.local[i] = v;
        self.version += 1;
        Ok(())
    }

    /// Fills the assigned section from a function of the global point.
    pub fn fill_assigned(&mut self, mut f: impl FnMut(&[i64]) -> T) {
        let region = self.assigned().clone();
        self.for_each_local_of(&region, |idx, point, local| local[idx] = f(point));
    }

    /// Fills the whole mapped section (shadows included) from a function of
    /// the global point.
    pub fn fill_mapped(&mut self, mut f: impl FnMut(&[i64]) -> T) {
        let region = self.mapped().clone();
        self.for_each_local_of(&region, |idx, point, local| local[idx] = f(point));
    }

    /// Folds over the assigned section in stream order.
    pub fn fold_assigned<B>(&self, init: B, mut f: impl FnMut(B, &[i64], T) -> B) -> B {
        let mut acc = Some(init);
        let region = self.assigned();
        for_each_region_index(self.mapped(), region, self.order, |idx, point| {
            let prev = acc.take().expect("fold accumulator");
            acc = Some(f(prev, point, self.local[idx]));
        });
        acc.expect("fold accumulator")
    }

    /// Packs the elements of `region` (a subset of the mapped section) into
    /// a little-endian byte buffer, in the array's stream order over the
    /// region's *global* coordinates. Both ends of a transfer enumerate the
    /// region identically, which is what makes redistribution
    /// representation-independent.
    pub fn pack_region(&self, region: &Slice) -> Vec<u8> {
        let mut vals = Vec::with_capacity(region.size());
        for_each_region_index(self.mapped(), region, self.order, |idx, _point| {
            vals.push(self.local[idx]);
        });
        encode(&vals)
    }

    /// Unpacks bytes produced by [`DistArray::pack_region`] on the same
    /// region into local storage.
    pub fn unpack_region(&mut self, region: &Slice, bytes: &[u8]) {
        let vals = decode::<T>(bytes);
        debug_assert_eq!(vals.len(), region.size(), "payload size vs region");
        self.version += 1;
        let mut it = vals.into_iter();
        let mapped = self.mapped().clone();
        let order = self.order;
        for_each_region_index(&mapped, region, order, |idx, _point| {
            self.local[idx] = it.next().expect("sized above");
        });
    }

    /// Internal mutable visitor over a region of local storage.
    fn for_each_local_of(&mut self, region: &Slice, mut f: impl FnMut(usize, &[i64], &mut [T])) {
        let mapped = self.mapped().clone();
        let order = self.order;
        self.version += 1;
        let local = &mut self.local;
        for_each_region_index(&mapped, region, order, |idx, point| f(idx, point, local));
    }
}

/// Visits every point of `region` in `order`, passing its flat index within
/// the dense storage of `mapped` (also laid out in `order`) and its global
/// coordinates.
///
/// Uses per-axis offset tables (computed once) plus an odometer walk, so the
/// per-element cost is O(rank) arithmetic with no range searches — this is
/// the hot loop of redistribution and streaming.
#[allow(clippy::needless_range_loop)] // per-axis loop reads several tables
pub(crate) fn for_each_region_index(
    mapped: &Slice,
    region: &Slice,
    order: Order,
    mut f: impl FnMut(usize, &[i64]),
) {
    debug_assert!(region.is_subset_of(mapped), "region {region} not within mapped {mapped}");
    if region.is_empty() {
        return;
    }
    let d = region.rank();
    if d == 0 {
        f(0, &[]);
        return;
    }

    // Storage strides of the mapped box, in `order`.
    let mut strides = vec![0usize; d];
    let mut acc = 1usize;
    for ax in order.axes_fast_to_slow(d) {
        strides[ax] = acc;
        acc *= mapped.range(ax).len();
    }

    // Per-axis tables: local offset (position in mapped range x stride) and
    // global coordinate for each element of the region's range.
    let mut offsets: Vec<Vec<usize>> = Vec::with_capacity(d);
    let mut coords: Vec<Vec<i64>> = Vec::with_capacity(d);
    for ax in 0..d {
        let mrange = mapped.range(ax);
        let rrange = region.range(ax);
        let mut offs = Vec::with_capacity(rrange.len());
        let mut crds = Vec::with_capacity(rrange.len());
        for g in rrange.iter() {
            let pos = mrange
                .position(g)
                .unwrap_or_else(|| panic!("region point {g} on axis {ax} not mapped"));
            offs.push(pos * strides[ax]);
            crds.push(g);
        }
        offsets.push(offs);
        coords.push(crds);
    }

    // Odometer walk in stream order.
    let axes: Vec<usize> = order.axes_fast_to_slow(d).collect();
    let mut idx = vec![0usize; d];
    let mut point = vec![0i64; d];
    for ax in 0..d {
        point[ax] = coords[ax][0];
    }
    loop {
        let flat: usize = (0..d).map(|ax| offsets[ax][idx[ax]]).sum();
        f(flat, &point);
        // Advance odometer.
        let mut done = true;
        for &ax in &axes {
            idx[ax] += 1;
            if idx[ax] < offsets[ax].len() {
                point[ax] = coords[ax][idx[ax]];
                done = false;
                break;
            }
            idx[ax] = 0;
            point[ax] = coords[ax][0];
        }
        if done {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_slices::Range;

    fn dist_1x1(domain: &Slice) -> Arc<Distribution> {
        Distribution::block(domain, &vec![1; domain.rank()], &vec![0; domain.rank()]).unwrap()
    }

    #[test]
    fn get_set_roundtrip() {
        let dom = Slice::boxed(&[(0, 3), (0, 3)]);
        let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, dist_1x1(&dom), 0);
        a.set(&[2, 3], 7.5).unwrap();
        assert_eq!(a.get(&[2, 3]).unwrap(), 7.5);
        assert_eq!(a.get(&[0, 0]).unwrap(), 0.0);
        assert!(a.get(&[4, 0]).is_err());
    }

    #[test]
    fn fill_assigned_covers_assigned_only() {
        let dom = Slice::boxed(&[(0, 7)]);
        let dist = Distribution::block(&dom, &[2], &[1]).unwrap();
        let mut a = DistArray::<i64>::new("a", Order::ColumnMajor, dist, 0);
        a.fill_assigned(|p| p[0] * 10);
        // Assigned 0..=3 filled; shadow element 4 untouched.
        assert_eq!(a.get(&[3]).unwrap(), 30);
        assert_eq!(a.get(&[4]).unwrap(), 0);
        a.fill_mapped(|p| p[0]);
        assert_eq!(a.get(&[4]).unwrap(), 4);
    }

    #[test]
    fn local_layout_matches_order() {
        let dom = Slice::boxed(&[(0, 1), (0, 2)]);
        let mut col = DistArray::<i32>::new("c", Order::ColumnMajor, dist_1x1(&dom), 0);
        col.fill_mapped(|p| (p[0] * 10 + p[1]) as i32);
        // Column-major: axis 0 fastest.
        assert_eq!(col.local(), &[0, 10, 1, 11, 2, 12]);
        let mut row = DistArray::<i32>::new("r", Order::RowMajor, dist_1x1(&dom), 0);
        row.fill_mapped(|p| (p[0] * 10 + p[1]) as i32);
        assert_eq!(row.local(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn pack_unpack_region_roundtrip() {
        let dom = Slice::boxed(&[(0, 4), (0, 4)]);
        let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, dist_1x1(&dom), 0);
        a.fill_mapped(|p| (p[0] * 100 + p[1]) as f64);
        let region =
            Slice::new(vec![Range::from_indices(&[0, 2, 3]).unwrap(), Range::contiguous(1, 3)]);
        let bytes = a.pack_region(&region);
        assert_eq!(bytes.len(), region.size() * 8);

        let mut b = DistArray::<f64>::new("b", Order::ColumnMajor, dist_1x1(&dom), 0);
        b.unpack_region(&region, &bytes);
        region.points(Order::ColumnMajor).for_each(|p| {
            assert_eq!(b.get(p).unwrap(), a.get(p).unwrap(), "point {p:?}");
        });
        // Points outside the region stay zero.
        assert_eq!(b.get(&[1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn pack_between_different_mapped_boxes() {
        // Packing from one task's view and unpacking into another with a
        // different mapped section must agree on global coordinates.
        let dom = Slice::boxed(&[(0, 9)]);
        let dist = Distribution::block(&dom, &[2], &[2]).unwrap();
        let mut src = DistArray::<i64>::new("x", Order::ColumnMajor, dist.clone(), 0);
        src.fill_mapped(|p| p[0] * 7);
        let mut dst = DistArray::<i64>::new("x", Order::ColumnMajor, dist, 1);
        // Overlap of task 0 assigned (0..=4) and task 1 mapped (3..=9).
        let region = Slice::boxed(&[(3, 4)]);
        dst.unpack_region(&region, &src.pack_region(&region));
        assert_eq!(dst.get(&[3]).unwrap(), 21);
        assert_eq!(dst.get(&[4]).unwrap(), 28);
    }

    #[test]
    fn fold_assigned_sums() {
        let dom = Slice::boxed(&[(1, 4)]);
        let mut a = DistArray::<f64>::new("a", Order::ColumnMajor, dist_1x1(&dom), 0);
        a.fill_assigned(|p| p[0] as f64);
        let sum = a.fold_assigned(0.0, |acc, _, v| acc + v);
        assert_eq!(sum, 10.0);
    }

    #[test]
    fn local_bytes_counts_shadow_storage() {
        let dom = Slice::boxed(&[(0, 15)]);
        let dist = Distribution::block(&dom, &[2], &[2]).unwrap();
        let a = DistArray::<f64>::new("a", Order::ColumnMajor, dist, 0);
        // Mapped = 8 assigned + 2 shadow = 10 elements.
        assert_eq!(a.local_bytes(), 10 * 8);
    }

    #[test]
    fn region_enumeration_matches_cursor() {
        let mapped = Slice::boxed(&[(0, 5), (2, 6)]);
        let region = Slice::new(vec![
            Range::strided(1, 5, 2).unwrap(),
            Range::from_indices(&[2, 5, 6]).unwrap(),
        ]);
        for order in [Order::ColumnMajor, Order::RowMajor] {
            let mut via_helper = Vec::new();
            for_each_region_index(&mapped, &region, order, |idx, p| {
                via_helper.push((idx, p.to_vec()));
            });
            let mut via_cursor = Vec::new();
            region.points(order).for_each(|p| {
                let idx = mapped.stream_position(p, order).unwrap().unwrap();
                via_cursor.push((idx, p.to_vec()));
            });
            assert_eq!(via_helper, via_cursor, "order {order:?}");
        }
    }

    #[test]
    fn rank_zero_region() {
        let mapped = Slice::new(vec![]);
        let region = Slice::new(vec![]);
        let mut count = 0;
        for_each_region_index(&mapped, &region, Order::ColumnMajor, |idx, p| {
            assert_eq!(idx, 0);
            assert!(p.is_empty());
            count += 1;
        });
        assert_eq!(count, 1);
    }
}
