//! The [`Recorder`] trait and its zero-cost null implementation.

use crate::Phase;

/// Sink for structured spans, instant events, counters, and gauges.
///
/// All timestamps (`t`) are **simulated** seconds supplied by the caller's
/// task clock; implementations must not consult host time. `rank` is the
/// reporting task's rank (control-plane callers pass rank 0). `array`
/// optionally labels the checkpoint array a sample belongs to.
///
/// Every method has an empty default body so null recording costs nothing;
/// instrumentation sites may additionally check [`Recorder::enabled`] to
/// skip building labels.
#[allow(unused_variables)]
pub trait Recorder: Send + Sync {
    /// Whether this recorder keeps anything. When `false`, callers may
    /// skip instrumentation entirely.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span named `name` at simulated time `t`.
    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Closes the most recent open span with this `(rank, phase, name)`.
    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Records an instantaneous event.
    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {}

    /// Records an instantaneous event carrying a correlation id, so causal
    /// analysis can link it to other records (e.g. a job start to its JSA
    /// incarnation number). The default forwards to [`Recorder::event`],
    /// dropping the id.
    fn event_with_corr(&self, t: f64, rank: usize, phase: Phase, name: &str, corr: u64) {
        self.event(t, rank, phase, name);
    }

    /// Reports the completed send of a point-to-point message: `t` is the
    /// sender's clock after the send call returned (wire time charged),
    /// `corr` is the message's unique correlation id shared with the
    /// matching [`Recorder::msg_received`] report.
    fn msg_sent(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64, bytes: u64) {}

    /// Reports the completed receive of the message with correlation id
    /// `corr`: `t` is the receiver's clock after delivery (arrival plus
    /// receive overhead).
    fn msg_received(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64) {}

    /// Reports one PIOFS server's busy interval inside a priced I/O phase
    /// (`[start, end]` in simulated seconds), for utilization and
    /// stripe-imbalance attribution.
    fn server_interval(&self, server: usize, name: &str, start: f64, end: f64) {}

    /// Adds `delta` to the monotonic counter `name`, labelled by `rank`
    /// and optionally an `array` name.
    fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {}

    /// Sets gauge `name[index]` to `value` (e.g. per-server busy time).
    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {}
}

/// Recorder that drops everything; the default wherever a recorder is
/// optional. `enabled()` is `false`, so instrumented code short-circuits.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.span_start(0.0, 0, Phase::Init, "x");
        r.span_end(1.0, 0, Phase::Init, "x");
        r.event(0.5, 1, Phase::Control, "e");
        r.event_with_corr(0.5, 1, Phase::Control, "e", 7);
        r.msg_sent(0.1, 0, 1, 9, 42, 128);
        r.msg_received(0.2, 0, 1, 9, 42);
        r.server_interval(3, "collective", 0.0, 1.0);
        r.counter_add(0, crate::names::MESSAGES_SENT, None, 3);
        r.gauge_set(crate::names::SERVER_BUSY, 2, 1.5);
    }
}
