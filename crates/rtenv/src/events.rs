//! Audit trail of control-plane events.

use std::fmt;
use std::sync::Arc;

use drms_obs::{names, NullRecorder, Phase, Recorder};
use parking_lot::Mutex;

/// A control-plane event, in the vocabulary of Section 4 of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A processor failed (injected or organic).
    ProcessorFailed {
        /// Failed processor id.
        proc: usize,
    },
    /// The RC lost its connection to a TC.
    ConnectionLost {
        /// Processor whose TC disconnected.
        proc: usize,
    },
    /// The RC killed the processes and TC pool of an application.
    ApplicationKilled {
        /// Application name.
        app: String,
        /// Processors in the killed pool.
        pool: Vec<usize>,
    },
    /// The user was informed of the termination.
    UserInformed {
        /// Application name.
        app: String,
    },
    /// A TC was restarted on a processor.
    TcRestarted {
        /// Processor id.
        proc: usize,
    },
    /// A processor re-entered the available pool.
    ProcessorRestored {
        /// Processor id.
        proc: usize,
    },
    /// The JSA started (or restarted) a job.
    JobStarted {
        /// Application name.
        app: String,
        /// Task count of this incarnation.
        ntasks: usize,
        /// Checkpoint prefix the incarnation restarted from, if any.
        restart_from: Option<String>,
    },
    /// A job ran to completion.
    JobCompleted {
        /// Application name.
        app: String,
    },
    /// The JSA raised the enabling-checkpoint signal for a job.
    CheckpointEnabled {
        /// Application name.
        app: String,
    },
    /// A checkpoint failed verification (and could not be scrubbed back to
    /// health), so the restart walk took it out of circulation.
    CheckpointQuarantined {
        /// Quarantined checkpoint prefix.
        prefix: String,
    },
    /// A restart skipped damaged checkpoints and fell back to an older,
    /// verified one.
    RestartFallback {
        /// Application name.
        app: String,
        /// The checkpoint the restart settled on.
        prefix: String,
        /// How many newer checkpoints were skipped.
        depth: usize,
    },
    /// A restart was served out of the in-memory checkpoint tier, paying no
    /// PIOFS checkpoint I/O.
    MemTierHit {
        /// Memory-tier checkpoint prefix the restart resumed from.
        prefix: String,
    },
    /// Node loss took the last resident copy of some piece of a memory-tier
    /// checkpoint; the entry was evicted and later restarts must fall back
    /// to the durable PIOFS chain.
    MemTierInvalidated {
        /// Evicted memory-tier checkpoint prefix.
        prefix: String,
    },
    /// A node loss was handled by localized recovery: survivors kept their
    /// in-memory sections and only the lost ranks' sections were restored,
    /// with no full-application restart.
    LocalizedRecovery {
        /// Application name.
        app: String,
        /// Membership epoch the recovery committed.
        epoch: u64,
        /// Checkpoint prefix the lost sections were restored from.
        prefix: String,
    },
    /// A localized recovery could not complete (replicas gone, checkpoint
    /// unreadable, or a second failure mid-protocol) and the job escalated
    /// to a verified full restart.
    RecoveryEscalated {
        /// Application name.
        app: String,
        /// Why localized recovery degraded to a full restart.
        reason: String,
    },
    /// A kill discarded trace events that had been recorded but never made
    /// it into a sealed flight-ring snapshot. Historically this loss was
    /// silent — the pre-crash `TraceRecorder` simply vanished with the
    /// incarnation; now the JSA counts the unsealed tail explicitly so
    /// campaigns can tell "nothing happened" from "we lost the evidence".
    TraceDropped {
        /// Application name.
        app: String,
        /// Incarnation whose tail was lost.
        incarnation: usize,
        /// Events recorded after the last seal, gone for good.
        events: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::ProcessorFailed { proc } => write!(f, "processor {proc} failed"),
            Event::ConnectionLost { proc } => write!(f, "RC lost connection to TC {proc}"),
            Event::ApplicationKilled { app, pool } => {
                write!(f, "application {app} killed (pool {pool:?})")
            }
            Event::UserInformed { app } => write!(f, "user informed: {app} terminated"),
            Event::TcRestarted { proc } => write!(f, "TC restarted on processor {proc}"),
            Event::ProcessorRestored { proc } => {
                write!(f, "processor {proc} returned to available pool")
            }
            Event::JobStarted { app, ntasks, restart_from } => match restart_from {
                Some(p) => write!(f, "job {app} restarted on {ntasks} tasks from {p}"),
                None => write!(f, "job {app} started on {ntasks} tasks"),
            },
            Event::JobCompleted { app } => write!(f, "job {app} completed"),
            Event::CheckpointEnabled { app } => {
                write!(f, "checkpoint enabled for {app}")
            }
            Event::CheckpointQuarantined { prefix } => {
                write!(f, "checkpoint {prefix} quarantined after failed verification")
            }
            Event::RestartFallback { app, prefix, depth } => {
                write!(f, "job {app} fell back {depth} checkpoint(s) to {prefix}")
            }
            Event::MemTierHit { prefix } => {
                write!(f, "memory-tier restart hit on {prefix}")
            }
            Event::MemTierInvalidated { prefix } => {
                write!(f, "memory-tier checkpoint {prefix} invalidated by node loss")
            }
            Event::LocalizedRecovery { app, epoch, prefix } => {
                write!(f, "job {app} recovered locally at epoch {epoch} from {prefix}")
            }
            Event::RecoveryEscalated { app, reason } => {
                write!(f, "job {app} escalated to full restart: {reason}")
            }
            Event::TraceDropped { app, incarnation, events } => {
                write!(
                    f,
                    "job {app} incarnation {incarnation} dropped {events} unsealed trace event(s)"
                )
            }
        }
    }
}

/// Shared, append-only event log. Optionally mirrors every event into an
/// observability [`Recorder`] (see [`EventLog::with_recorder`]).
#[derive(Clone)]
pub struct EventLog {
    inner: Arc<Mutex<Vec<Event>>>,
    recorder: Arc<dyn Recorder>,
}

impl fmt::Debug for EventLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventLog").field("events", &self.inner.lock().len()).finish()
    }
}

impl Default for EventLog {
    fn default() -> EventLog {
        EventLog { inner: Arc::default(), recorder: Arc::new(NullRecorder) }
    }
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// An empty log that forwards each event to `recorder` as a
    /// `Phase::Control` instant, and bumps the `rtenv.job_starts` /
    /// `rtenv.retries` counters for job starts and TC restarts. Control-plane
    /// events happen outside any SPMD region, so they carry no simulated
    /// clock; they are stamped with their sequence number to keep ordering
    /// in exported traces.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> EventLog {
        EventLog { inner: Arc::default(), recorder }
    }

    /// The recorder events are mirrored into (the [`NullRecorder`] unless
    /// built with [`EventLog::with_recorder`]).
    pub fn recorder(&self) -> Arc<dyn Recorder> {
        Arc::clone(&self.recorder)
    }

    /// Appends an event.
    pub fn record(&self, e: Event) {
        self.record_inner(e, None);
    }

    /// Appends an event carrying a correlation id in its trace mirror (the
    /// JSA links each `JobStarted` to its incarnation number this way, so
    /// causal analysis can attribute spans to incarnations).
    pub fn record_linked(&self, e: Event, corr: u64) {
        self.record_inner(e, Some(corr));
    }

    fn record_inner(&self, e: Event, corr: Option<u64>) {
        let mut events = self.inner.lock();
        if self.recorder.enabled() {
            let seq = events.len() as f64;
            match corr {
                Some(c) => self.recorder.event_with_corr(seq, 0, Phase::Control, &e.to_string(), c),
                None => self.recorder.event(seq, 0, Phase::Control, &e.to_string()),
            }
            match &e {
                Event::JobStarted { .. } => {
                    self.recorder.counter_add(0, names::JOB_STARTS, None, 1)
                }
                Event::TcRestarted { .. } => self.recorder.counter_add(0, names::RETRIES, None, 1),
                Event::CheckpointQuarantined { .. } => {
                    self.recorder.counter_add(0, names::CHECKPOINTS_QUARANTINED, None, 1)
                }
                Event::RestartFallback { depth, .. } => {
                    self.recorder.counter_add(0, names::FALLBACK_DEPTH, None, *depth as u64)
                }
                Event::MemTierHit { .. } => {
                    self.recorder.counter_add(0, names::MEMTIER_HITS, None, 1)
                }
                Event::MemTierInvalidated { .. } => {
                    self.recorder.counter_add(0, names::MEMTIER_INVALIDATIONS, None, 1)
                }
                Event::LocalizedRecovery { .. } => {
                    self.recorder.counter_add(0, names::RECOVER_LOCALIZED, None, 1)
                }
                Event::RecoveryEscalated { .. } => {
                    self.recorder.counter_add(0, names::RECOVER_FULL_RESTARTS, None, 1)
                }
                Event::TraceDropped { events, .. } => {
                    self.recorder.counter_add(0, names::BLACKBOX_EVENTS_DROPPED, None, *events)
                }
                _ => {}
            }
        }
        events.push(e);
    }

    /// Snapshot of all events so far.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().clone()
    }

    /// Whether any recorded event satisfies `pred`.
    pub fn any(&self, pred: impl Fn(&Event) -> bool) -> bool {
        self.inner.lock().iter().any(pred)
    }

    /// Index of the first event satisfying `pred`.
    pub fn position(&self, pred: impl Fn(&Event) -> bool) -> Option<usize> {
        self.inner.lock().iter().position(pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let log = EventLog::new();
        log.record(Event::ProcessorFailed { proc: 3 });
        log.record(Event::ConnectionLost { proc: 3 });
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], Event::ProcessorFailed { proc: 3 });
        assert!(log.any(|e| matches!(e, Event::ConnectionLost { proc: 3 })));
        assert_eq!(log.position(|e| matches!(e, Event::ConnectionLost { .. })), Some(1));
    }

    #[test]
    fn recorder_mirrors_events_and_counters() {
        use drms_obs::{EventKind, TraceRecorder};

        let rec = Arc::new(TraceRecorder::default());
        let log = EventLog::with_recorder(rec.clone());
        log.record(Event::JobStarted { app: "bt".into(), ntasks: 8, restart_from: None });
        log.record(Event::TcRestarted { proc: 2 });
        log.record(Event::TcRestarted { proc: 5 });
        log.record(Event::JobCompleted { app: "bt".into() });

        assert_eq!(rec.metrics().counter_total(names::JOB_STARTS), 1);
        assert_eq!(rec.metrics().counter_total(names::RETRIES), 2);
        let events = rec.events();
        assert_eq!(events.len(), 4);
        assert!(events.iter().all(|e| e.phase == Phase::Control && e.kind == EventKind::Instant));
        // Sequence-number timestamps preserve control-plane ordering.
        assert_eq!(events[0].t, 0.0);
        assert_eq!(events[3].t, 3.0);
        assert!(events[0].name.contains("started on 8 tasks"));
    }

    #[test]
    fn linked_events_carry_correlation_id() {
        use drms_obs::TraceRecorder;

        let rec = Arc::new(TraceRecorder::default());
        let log = EventLog::with_recorder(rec.clone());
        log.record_linked(Event::JobStarted { app: "bt".into(), ntasks: 4, restart_from: None }, 0);
        log.record(Event::TcRestarted { proc: 1 });
        log.record_linked(
            Event::JobStarted { app: "bt".into(), ntasks: 4, restart_from: Some("ck/1".into()) },
            1,
        );
        let events = rec.events();
        assert_eq!(events[0].corr, Some(0));
        assert_eq!(events[1].corr, None);
        assert_eq!(events[2].corr, Some(1));
        // Counters fire for linked records too.
        assert_eq!(rec.metrics().counter_total(names::JOB_STARTS), 2);
    }

    #[test]
    fn display_is_readable() {
        let e = Event::JobStarted { app: "bt".into(), ntasks: 8, restart_from: None };
        assert_eq!(e.to_string(), "job bt started on 8 tasks");
        let e =
            Event::JobStarted { app: "bt".into(), ntasks: 5, restart_from: Some("ck/1".into()) };
        assert!(e.to_string().contains("restarted on 5 tasks from ck/1"));
    }
}
