//! The collecting recorder.

use std::collections::HashMap;

use crate::metrics::MetricsRegistry;
use crate::recorder::Recorder;
use crate::summary::PhaseSummary;
use crate::Phase;
use parking_lot::Mutex;

/// What a [`TraceEvent`] marks: a span boundary or an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening.
    Begin,
    /// Span closing.
    End,
    /// Instantaneous event.
    Instant,
}

/// One recorded event, timestamped in simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub t: f64,
    /// Reporting task rank.
    pub rank: usize,
    /// Pipeline phase (export category).
    pub phase: Phase,
    /// Span or event name.
    pub name: String,
    /// Boundary kind.
    pub kind: EventKind,
    /// Correlation id linking this event to others (message send/recv
    /// pairs, JSA incarnation numbers). `None` for uncorrelated events.
    pub corr: Option<u64>,
}

/// One point-to-point message as reported by the `msg` layer: the sender's
/// completion time, the receiver's delivery time (once received), and the
/// correlation id both sides share. These are the cross-task causal edges
/// of the span DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgRecord {
    /// Correlation id, unique per message within a trace.
    pub corr: u64,
    /// Sending task rank.
    pub src: usize,
    /// Receiving task rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u64,
    /// Payload bytes.
    pub bytes: u64,
    /// Sender clock when the send call returned (wire time charged).
    pub send_t: f64,
    /// Receiver clock when delivery completed; `None` if never received.
    pub recv_t: Option<f64>,
}

/// One PIOFS server's busy interval inside a priced I/O phase, in simulated
/// seconds. The per-server Gantt/utilization report is built from these.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerInterval {
    /// Server index.
    pub server: usize,
    /// Name of the I/O phase that occupied the server.
    pub name: String,
    /// Interval start (the later of the server's prior busy horizon and
    /// the phase start).
    pub start: f64,
    /// Interval end (the server's new busy horizon).
    pub end: f64,
}

/// Recorder that appends events to a vector under one short-lived mutex
/// and aggregates counters/gauges into a [`MetricsRegistry`]. Event order
/// is append order; consumers sort by time where needed.
///
/// Span closes additionally record the span's duration into a latency
/// histogram named after the phase (`MetricsRegistry::histogram`), pairing
/// each `span_end` with the most recent open `span_start` of the same
/// `(rank, phase, name)`; unmatched ends are ignored, mirroring
/// [`PhaseSummary`].
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Mutex<Vec<TraceEvent>>,
    /// Open-span begin times, keyed by (rank, phase, name); a stack per key
    /// supports nested same-name spans.
    open: Mutex<HashMap<(usize, Phase, String), Vec<f64>>>,
    msgs: Mutex<Vec<MsgRecord>>,
    servers: Mutex<Vec<ServerInterval>>,
    metrics: MetricsRegistry,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all recorded events, sorted by (time, rank). The rank
    /// tiebreak matters for determinism: ranks append concurrently, so at
    /// equal timestamps the raw append order races across runs. Within one
    /// (time, rank) group the stable sort keeps that rank's own append
    /// order, which preserves Begin-before-End at equal timestamps.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut ev = self.events.lock().clone();
        ev.sort_by(|a, b| a.t.total_cmp(&b.t).then(a.rank.cmp(&b.rank)));
        ev
    }

    /// Snapshot of all message records, sorted by (send time, src, dst,
    /// corr) so the listing is deterministic across runs.
    pub fn msg_records(&self) -> Vec<MsgRecord> {
        let mut ms = self.msgs.lock().clone();
        ms.sort_by(|a, b| {
            a.send_t
                .total_cmp(&b.send_t)
                .then(a.src.cmp(&b.src))
                .then(a.dst.cmp(&b.dst))
                .then(a.corr.cmp(&b.corr))
        });
        ms
    }

    /// Snapshot of all server busy intervals, sorted by (start, server,
    /// end, name) so the listing is deterministic across runs.
    pub fn server_intervals(&self) -> Vec<ServerInterval> {
        let mut si = self.servers.lock().clone();
        si.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(a.server.cmp(&b.server))
                .then(a.end.total_cmp(&b.end))
                .then(a.name.cmp(&b.name))
        });
        si
    }

    /// The aggregated counters, gauges, and latency histograms.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Per-phase summary derived from the recorded rank-0 spans.
    pub fn phase_summary(&self) -> PhaseSummary {
        PhaseSummary::from_events(&self.events())
    }

    fn push(&self, ev: TraceEvent) {
        self.events.lock().push(ev);
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.open.lock().entry((rank, phase, name.to_owned())).or_default().push(t);
        self.push(TraceEvent {
            t,
            rank,
            phase,
            name: name.to_owned(),
            kind: EventKind::Begin,
            corr: None,
        });
    }

    fn span_end(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        if let Some(t0) =
            self.open.lock().get_mut(&(rank, phase, name.to_owned())).and_then(Vec::pop)
        {
            self.metrics.histogram_record(phase.as_str(), t - t0);
        }
        self.push(TraceEvent {
            t,
            rank,
            phase,
            name: name.to_owned(),
            kind: EventKind::End,
            corr: None,
        });
    }

    fn event(&self, t: f64, rank: usize, phase: Phase, name: &str) {
        self.push(TraceEvent {
            t,
            rank,
            phase,
            name: name.to_owned(),
            kind: EventKind::Instant,
            corr: None,
        });
    }

    fn event_with_corr(&self, t: f64, rank: usize, phase: Phase, name: &str, corr: u64) {
        self.push(TraceEvent {
            t,
            rank,
            phase,
            name: name.to_owned(),
            kind: EventKind::Instant,
            corr: Some(corr),
        });
    }

    fn msg_sent(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64, bytes: u64) {
        self.msgs.lock().push(MsgRecord { corr, src, dst, tag, bytes, send_t: t, recv_t: None });
        self.push(TraceEvent {
            t,
            rank: src,
            phase: Phase::Msg,
            name: format!("send->{dst}"),
            kind: EventKind::Instant,
            corr: Some(corr),
        });
    }

    fn msg_received(&self, t: f64, src: usize, dst: usize, tag: u64, corr: u64) {
        let _ = tag;
        if let Some(m) = self.msgs.lock().iter_mut().rev().find(|m| m.corr == corr) {
            m.recv_t = Some(t);
        }
        self.push(TraceEvent {
            t,
            rank: dst,
            phase: Phase::Msg,
            name: format!("recv<-{src}"),
            kind: EventKind::Instant,
            corr: Some(corr),
        });
    }

    fn server_interval(&self, server: usize, name: &str, start: f64, end: f64) {
        self.servers.lock().push(ServerInterval { server, name: name.to_owned(), start, end });
    }

    fn counter_add(&self, rank: usize, name: &'static str, array: Option<&str>, delta: u64) {
        self.metrics.counter_add(rank, name, array, delta);
    }

    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {
        self.metrics.gauge_set(name, index, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_spans_events_and_metrics() {
        let r = TraceRecorder::new();
        assert!(r.enabled());
        r.span_start(1.0, 0, Phase::Segment, "write");
        r.event(1.5, 1, Phase::Control, "mark");
        r.span_end(2.0, 0, Phase::Segment, "write");
        r.counter_add(0, crate::names::SEGMENT_BYTES, None, 64);
        r.gauge_set(crate::names::SERVER_BUSY, 3, 0.25);
        let ev = r.events();
        assert_eq!(ev.len(), 3);
        assert_eq!(ev[0].kind, EventKind::Begin);
        assert_eq!(ev[1].kind, EventKind::Instant);
        assert_eq!(ev[2].kind, EventKind::End);
        assert_eq!(r.metrics().counter_total(crate::names::SEGMENT_BYTES), 64);
        assert_eq!(r.metrics().gauge(crate::names::SERVER_BUSY, 3), Some(0.25));
    }

    #[test]
    fn events_sorted_by_simulated_time() {
        let r = TraceRecorder::new();
        r.event(5.0, 0, Phase::Control, "late");
        r.event(1.0, 1, Phase::Control, "early");
        let ev = r.events();
        assert_eq!(ev[0].name, "early");
        assert_eq!(ev[1].name, "late");
    }

    #[test]
    fn span_close_records_phase_latency_histogram() {
        let r = TraceRecorder::new();
        r.span_start(1.0, 0, Phase::IoPhase, "collective");
        r.span_start(2.0, 1, Phase::IoPhase, "collective");
        r.span_end(4.0, 1, Phase::IoPhase, "collective");
        r.span_end(5.0, 0, Phase::IoPhase, "collective");
        // Unmatched end: ignored, like PhaseSummary.
        r.span_end(9.0, 2, Phase::IoPhase, "collective");
        let h = r.metrics().histogram("io_phase").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 4.0);
        assert!((h.sum() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nested_same_name_spans_pair_lifo_per_rank() {
        let r = TraceRecorder::new();
        r.span_start(0.0, 0, Phase::Arrays, "a");
        r.span_start(1.0, 0, Phase::Arrays, "a");
        r.span_end(2.0, 0, Phase::Arrays, "a"); // inner: 1
        r.span_end(4.0, 0, Phase::Arrays, "a"); // outer: 4
        let h = r.metrics().histogram("arrays").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 4.0);
        assert!((h.sum() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn msg_records_pair_send_and_recv_by_corr() {
        let r = TraceRecorder::new();
        r.msg_sent(1.0, 0, 1, 7, 42, 128);
        r.msg_sent(1.5, 0, 1, 7, 43, 64);
        r.msg_received(2.0, 0, 1, 7, 42);
        let ms = r.msg_records();
        assert_eq!(ms.len(), 2);
        assert_eq!(
            ms[0],
            MsgRecord {
                corr: 42,
                src: 0,
                dst: 1,
                tag: 7,
                bytes: 128,
                send_t: 1.0,
                recv_t: Some(2.0)
            }
        );
        assert_eq!(ms[1].recv_t, None);
        // Instant events carry the correlation id.
        let ev = r.events();
        assert!(ev
            .iter()
            .any(|e| e.phase == Phase::Msg && e.corr == Some(42) && e.name == "send->1"));
        assert!(ev
            .iter()
            .any(|e| e.phase == Phase::Msg && e.corr == Some(42) && e.name == "recv<-0"));
    }

    #[test]
    fn server_intervals_sorted_deterministically() {
        let r = TraceRecorder::new();
        r.server_interval(3, "collective", 5.0, 6.0);
        r.server_interval(1, "collective", 2.0, 4.0);
        r.server_interval(0, "collective", 2.0, 3.0);
        let si = r.server_intervals();
        assert_eq!(si.len(), 3);
        assert_eq!((si[0].server, si[0].start), (0, 2.0));
        assert_eq!((si[1].server, si[1].start), (1, 2.0));
        assert_eq!((si[2].server, si[2].start), (3, 5.0));
    }

    #[test]
    fn event_with_corr_defaults_forward_and_trace_keeps_id() {
        let r = TraceRecorder::new();
        r.event_with_corr(0.0, 0, Phase::Control, "job bt restarted", 2);
        let ev = r.events();
        assert_eq!(ev[0].corr, Some(2));
    }
}
