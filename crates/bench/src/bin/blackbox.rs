//! Flight-recorder bench: crash-surviving trace recovery and recovery-cost
//! attribution over a seeded kill campaign, as a coverage and determinism
//! gate.
//!
//! ```text
//! cargo run --release -p drms-bench --bin blackbox -- [--fault-seed N] \
//!     [--json DIR] [--baseline PATH] [--tolerance 0.05] [--bless] \
//!     [--report-out PATH] [--trace-out PATH]
//! ```
//!
//! Three campaigns over the iterative checkpointing job, each with a
//! [`Blackbox`] flight recorder riding the recorder fan-out:
//!
//! 1. **Clean** — no faults: one incarnation, recovered from its final
//!    seal, zero recovery cost.
//! 2. **Sweep** — every enumerated [`CrashPoint`], one armed crash each:
//!    the stitched timeline must cover *every* incarnation (each one's
//!    recovered event stream is non-empty — the kill salvage, the SOP
//!    seals riding committed checkpoints, or the final seal got it there),
//!    consecutive segments must abut bit-exactly (zero unattributed
//!    gaps), and the five attribution buckets must tile the stitched wall
//!    clock to floating-point association.
//! 3. **Deep dive** — fault weather, a mid-publish crash *and* a
//!    processor kill: at least three incarnations, a dropped-event audit
//!    from the token kill, a live `pulse.alert.recovery_budget` alert
//!    raised off the `blackbox.recovery_ratio` gauge, and the full
//!    recovery-cost table printed. Run twice: the rendered report and the
//!    recovery-cost total must be bit-identical (the per-`FAULT_SEED`
//!    determinism contract).
//!
//! With `--json DIR` the headline numbers land in `BENCH_blackbox.json`;
//! `--baseline PATH` compares against a committed baseline within
//! `--tolerance` (relative); `--bless` rewrites it. `--report-out` and
//! `--trace-out` write the recovery-cost table and the stitched
//! cross-incarnation event stream (the artifacts CI uploads).

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drms_bench::gate::{baseline_gate, run_gated};
use drms_bench::json::BenchResult;
use drms_blackbox::{Blackbox, BlackboxConfig};
use drms_chaos::{ChaosCtl, CrashPoint, FaultPlan, MsgFaults, PiofsFaults};
use drms_core::segment::DataSegment;
use drms_core::{CoreError, Drms, DrmsConfig, Start};
use drms_darray::{DistArray, Distribution};
use drms_insight::{stitch, IncarnationInput, RecoveryReport, StitchOptions, StitchedTimeline};
use drms_msg::CostModel;
use drms_obs::{names, FanoutRecorder, Recorder, TraceRecorder};
use drms_piofs::{Piofs, PiofsConfig};
use drms_pulse::{builtin_rules, Pulse, PulseConfig, RuleThresholds};
use drms_rtenv::{
    EventLog, JobOutcome, JobSpec, Jsa, JsaPolicy, ProcessorState, ResourceCoordinator, RunSummary,
};
use drms_slices::{Order, Slice};
use parking_lot::Mutex;

const NITER: i64 = 12;
const CKPT_EVERY: i64 = 3;
const NPROCS: usize = 8;
const APP: &str = "bbbench";
const DEFAULT_SEED: u64 = 42;

struct Opts {
    seed: u64,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    bless: bool,
    report_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        seed: drms_bench::seed::fault_seed_or(DEFAULT_SEED),
        json: None,
        baseline: None,
        tolerance: 0.05,
        bless: false,
        report_out: None,
        trace_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            |flag: &str| it.next().unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        match flag.as_str() {
            "--fault-seed" => {
                let v = value("--fault-seed");
                opts.seed = v.parse().unwrap_or_else(|_| usage(&format!("bad seed {v:?}")));
            }
            "--json" => opts.json = Some(PathBuf::from(value("--json"))),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline"))),
            "--tolerance" => {
                let v = value("--tolerance");
                opts.tolerance = v
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| usage(&format!("bad tolerance {v:?}")));
            }
            "--bless" => opts.bless = true,
            "--report-out" => opts.report_out = Some(PathBuf::from(value("--report-out"))),
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out"))),
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: blackbox [--fault-seed N] [--json DIR] [--baseline PATH]\n\
         \x20               [--tolerance REL] [--bless] [--report-out PATH]\n\
         \x20               [--trace-out PATH]"
    );
    std::process::exit(2);
}

fn domain() -> Slice {
    Slice::boxed(&[(1, 18), (1, 14)])
}

/// Checksum of the final state of an uninterrupted run.
fn reference() -> f64 {
    let mut s = 0.0;
    domain().points(Order::ColumnMajor).for_each(|p| {
        s += (p[0] * 13 + p[1] * 3) as f64 + NITER as f64 * 1.5;
    });
    s
}

/// One campaign run's observables, all deterministic per plan.
struct Run {
    checksum: f64,
    summary: RunSummary,
    rec: Arc<TraceRecorder>,
    bb: Arc<Blackbox>,
    ctl: Arc<ChaosCtl>,
}

/// Runs the iterative checkpointing job under a fault plan with a flight
/// recorder in the fan-out. `kill_at` arms one processor failure once the
/// given iteration is reached (the token-kill path, which — unlike a
/// crash point — gets no dying salvage). `extra` is fanned out next to
/// the trace and the blackbox when present (the pulse recorder).
fn run_campaign(plan: FaultPlan, kill_at: Option<i64>, extra: Option<Arc<dyn Recorder>>) -> Run {
    let rec = Arc::new(TraceRecorder::default());
    // Detection latency scaled to the workload: the job spans a few
    // simulated milliseconds, so the default 1 s gap would swamp every
    // other bucket of the attribution.
    let bb = Arc::new(Blackbox::new(
        BlackboxConfig { detection_latency: 1e-4, ..BlackboxConfig::default() },
        NPROCS,
    ));
    let mut sinks: Vec<Arc<dyn Recorder>> = vec![rec.clone(), bb.clone()];
    if let Some(extra) = extra {
        sinks.push(extra);
    }
    let sink: Arc<dyn Recorder> = Arc::new(FanoutRecorder::new(sinks));
    let log = EventLog::with_recorder(sink.clone());
    let rc = Arc::new(ResourceCoordinator::new(NPROCS, log.clone()));
    let fs = Piofs::new(PiofsConfig::test_tiny(NPROCS), plan.seed);
    fs.set_recorder(sink);
    Drms::install_binary(&fs, &DrmsConfig::new(APP));
    let ctl = ChaosCtl::new(plan);
    let jsa = Jsa::new(
        Arc::clone(&rc),
        Arc::clone(&fs),
        log,
        CostModel::default(),
        JsaPolicy { repair_when_starved: true, ..Default::default() },
    )
    .with_chaos(Arc::clone(&ctl))
    .with_blackbox(Arc::clone(&bb));

    let out = Arc::new(Mutex::new(Vec::new()));
    let out2 = Arc::clone(&out);
    let injected = Arc::new(AtomicUsize::new(0));
    let rc2 = Arc::clone(&rc);

    let job = JobSpec::new(APP, (1, NPROCS), move |ctx, env| {
        let (mut drms, start) = match Drms::initialize(
            ctx,
            &env.fs,
            DrmsConfig::new(APP),
            env.enable.clone(),
            env.restart_from.as_deref(),
        ) {
            Ok(v) => v,
            Err(CoreError::Interrupted(_)) => return JobOutcome::Killed,
            Err(e) => return JobOutcome::Failed(e.to_string()),
        };
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        match start {
            Start::Fresh => u.fill_assigned(|p| (p[0] * 13 + p[1] * 3) as f64),
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                match drms.restore_arrays(
                    ctx,
                    &env.fs,
                    env.restart_from.as_deref().unwrap(),
                    &info.manifest,
                    &mut [&mut u],
                ) {
                    Ok(_) => {}
                    Err(CoreError::Interrupted(_)) => return JobOutcome::Killed,
                    Err(e) => return JobOutcome::Failed(e.to_string()),
                }
            }
        }
        for iter in start_iter..=NITER {
            if env.sop_killed(ctx) {
                return JobOutcome::Killed;
            }
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 1.5).unwrap();
            });
            seg.set_control("iter", iter);
            if iter % CKPT_EVERY == 0 {
                match drms.reconfig_checkpoint(ctx, &env.fs, &format!("ck/bb/{iter}"), &seg, &[&u])
                {
                    Ok(_) => {}
                    Err(CoreError::Interrupted(_)) => return JobOutcome::Killed,
                    Err(e) => return JobOutcome::Failed(e.to_string()),
                }
            }
            if let Some(at) = kill_at {
                if ctx.rank() == 0
                    && iter >= at
                    && injected.swap(1, Ordering::SeqCst) == 0
                    && rc2.state_of(2) != ProcessorState::Failed
                {
                    rc2.fail_processor(2);
                }
            }
        }
        if env.sop_killed(ctx) {
            return JobOutcome::Killed;
        }
        out2.lock().push(u.fold_assigned(0.0, |acc, _, v| acc + v));
        JobOutcome::Completed
    });

    let summary = jsa.run_job(&job);
    let checksum: f64 = out.lock().iter().sum();
    Run { checksum, summary, rec, bb, ctl }
}

/// Builds the stitched cross-incarnation timeline and its recovery-cost
/// attribution from the run's recovered archive plus what the JSA knows
/// about each incarnation's fate.
fn attribution(run: &Run) -> (StitchedTimeline, RecoveryReport) {
    let inputs: Vec<IncarnationInput> = run
        .summary
        .incarnations
        .iter()
        .enumerate()
        .map(|(i, inc)| IncarnationInput {
            incarnation: i as u64,
            events: run.bb.events_for(i as u64),
            killed: inc.outcome == JobOutcome::Killed,
            restarted: inc.restart_from.is_some(),
        })
        .collect();
    let tl = stitch(&inputs, &StitchOptions { detection_latency: run.bb.cfg().detection_latency });
    let report = RecoveryReport::from_timeline(&tl);
    (tl, report)
}

/// The coverage contract: the run recovered bitwise, the stitched
/// timeline covers every incarnation with a non-empty recovered event
/// stream, consecutive segments abut bit-exactly (zero unattributed
/// gaps), and the attribution buckets tile the stitched wall clock.
fn assert_covered(run: &Run, tl: &StitchedTimeline, report: &RecoveryReport, what: &str) {
    assert!(run.summary.completed, "{what}: job did not complete: {:?}", run.summary);
    assert_eq!(run.checksum, reference(), "{what}: recovered state diverged");
    for (i, _) in run.summary.incarnations.iter().enumerate() {
        assert!(
            !run.bb.events_for(i as u64).is_empty(),
            "{what}: incarnation {i} left no recovered events"
        );
    }
    assert_eq!(tl.segments.len(), run.summary.incarnations.len(), "{what}: segment count");
    for k in 1..tl.segments.len() {
        assert_eq!(
            tl.segments[k].start,
            tl.segments[k - 1].end + tl.segments[k].detect,
            "{what}: unattributed gap before incarnation {k}"
        );
    }
    let budget = 1e-9 * report.wall.max(1.0);
    assert!(
        report.tiling_error() <= budget,
        "{what}: buckets do not tile the wall clock (error {})",
        report.tiling_error()
    );
}

/// Total recovered events across the archive.
fn recovered_events(run: &Run) -> usize {
    (0..run.summary.incarnations.len()).map(|i| run.bb.events_for(i as u64).len()).sum()
}

/// The deep-dive campaign: fault weather, a mid-publish crash, and a
/// processor token-kill, observed live by a pulse with a tight recovery
/// budget.
fn run_deep(seed: u64) -> (Run, drms_pulse::PulseReport) {
    let pulse = Pulse::new(PulseConfig {
        ntasks: NPROCS,
        window: 0.002,
        rules: builtin_rules(&RuleThresholds {
            // Any recovery spending at all breaches this budget — the
            // campaign is built to lose work, and the gauge-driven alert
            // proves the blackbox → pulse path works live.
            recovery_budget: 0.05,
            ..RuleThresholds::default()
        }),
        ..PulseConfig::default()
    });
    let plan = FaultPlan {
        msg: MsgFaults { drop_prob: 0.25, dup_prob: 0.1, max_extra_latency: 1e-4 },
        piofs: PiofsFaults { transient_prob: 0.25, torn: None },
        crash: Some((CrashPoint::CkptMidPublish, 1)),
        ..FaultPlan::seeded(seed)
    };
    let run = run_campaign(plan, Some(7), Some(pulse.recorder()));
    pulse.set_sink(run.rec.clone() as Arc<dyn Recorder>);
    let report = pulse.finish();
    (run, report)
}

fn main() {
    let opts = parse_args();
    let repro_line = drms_bench::seed::bin_repro("blackbox", opts.seed);
    run_gated("blackbox", &repro_line, || {
        println!(
            "Blackbox bench: flight-recorder recovery and cross-incarnation \
             attribution (seed {}, {} iterations, {} PEs)\n",
            opts.seed, NITER, NPROCS
        );
        let mut result = BenchResult::new("blackbox");
        result.param("seed", opts.seed);
        result.param("niter", NITER);
        result.param("nprocs", NPROCS);
        result.stamp_header(opts.seed, NPROCS);

        // Campaign 1 — clean: one incarnation, recovered from its final
        // seal, zero recovery cost.
        let clean = run_campaign(FaultPlan::seeded(opts.seed), None, None);
        let (clean_tl, clean_rep) = attribution(&clean);
        assert_covered(&clean, &clean_tl, &clean_rep, "clean");
        assert_eq!(clean.summary.incarnations.len(), 1, "clean run reincarnated");
        assert_eq!(clean_rep.recovery_cost(), 0.0, "clean run billed recovery cost");
        let clean_events = recovered_events(&clean);
        println!(
            "clean: checksum {:.1}, {} recovered events, recovery fraction {:.3}",
            clean.checksum,
            clean_events,
            clean_rep.recovery_fraction()
        );
        result.metric("clean.recovered_events", clean_events as f64);
        result.metric("clean.commits", clean.rec.metrics().counter_total(names::COMMITS) as f64);

        // Campaign 2 — the crash-point sweep: full stitched coverage of
        // every incarnation at every enumerated kill site.
        println!("\ncrash-point sweep (stitched coverage at every kill site):");
        println!(
            "  {:<22} {:>6} {:>10} {:>10} {:>12} {:>10}",
            "crash point", "incs", "events", "salvages", "wall (sim s)", "recovery"
        );
        for point in CrashPoint::ALL {
            // The `Flush*` family fires only inside the asynchronous
            // pipeline's background flush; a blocking checkpoint never
            // consults those points (they get their own sweep in
            // `tests/async_campaign.rs`).
            // The `Recover*` family likewise fires only inside a localized
            // recovery; it gets its own sweep in `tests/recover_campaign.rs`.
            if point.is_flush_side() || point.is_recover_side() {
                continue;
            }
            // Restart-side points only have a window once something
            // restarts organically; arm a processor kill for those.
            let restart_side = matches!(
                point,
                CrashPoint::RestartAfterInit
                    | CrashPoint::RestartAfterSegment
                    | CrashPoint::RestartAfterArrays
            );
            let plan = FaultPlan { crash: Some((point, 1)), ..FaultPlan::seeded(opts.seed) };
            let r = run_campaign(plan, restart_side.then_some(4), None);
            let what = format!("sweep {point}");
            assert!(r.ctl.crash_fired(), "{what}: armed crash never fired");
            assert!(r.summary.incarnations.len() >= 2, "{what}: no reincarnation");
            let (tl, rep) = attribution(&r);
            assert_covered(&r, &tl, &rep, &what);
            let events = recovered_events(&r);
            let salvages = r.rec.metrics().counter_total(names::BLACKBOX_SALVAGES);
            assert!(salvages > 0, "{what}: dying region salvaged nothing");
            println!(
                "  {:<22} {:>6} {:>10} {:>10} {:>12.6} {:>9.1}%",
                point.as_str(),
                r.summary.incarnations.len(),
                events,
                salvages,
                rep.wall,
                rep.recovery_fraction() * 100.0
            );
            let key = |m: &str| format!("sweep.{point}.{m}");
            result.metric(&key("incarnations"), r.summary.incarnations.len() as f64);
            result.metric(&key("recovered_events"), events as f64);
            result.metric(&key("salvages"), salvages as f64);
        }

        // Campaign 3 — the deep dive: crash + token kill under weather,
        // live pulse on top, full attribution table out.
        println!("\ndeep dive (weather + mid-publish crash + processor kill):");
        let (deep, pulse_rep) = run_deep(opts.seed);
        let (deep_tl, deep_rep) = attribution(&deep);
        assert_covered(&deep, &deep_tl, &deep_rep, "deep");
        assert!(
            deep.summary.incarnations.len() >= 3,
            "deep: expected crash kill + token kill + completion, got {:?}",
            deep.summary.incarnations.len()
        );
        let dropped = deep.rec.metrics().counter_total(names::BLACKBOX_EVENTS_DROPPED);
        assert!(dropped > 0, "deep: token kill dropped no unsealed events");
        let budget_alerts =
            pulse_rep.alerts.iter().filter(|a| a.rule == names::ALERT_RECOVERY_BUDGET).count();
        assert!(budget_alerts > 0, "deep: recovery-budget alert never fired");
        print!("{}", deep_rep.render());

        // Determinism: the whole pipeline — capture, seal, salvage,
        // recovery, stitch, attribution — must be bit-reproducible.
        let (again, _) = run_deep(opts.seed);
        let (_, again_rep) = attribution(&again);
        assert_eq!(again.checksum, deep.checksum, "deep campaign is nondeterministic");
        assert_eq!(
            again_rep.render(),
            deep_rep.render(),
            "recovery-cost report is nondeterministic"
        );
        assert_eq!(
            again_rep.recovery_cost().to_bits(),
            deep_rep.recovery_cost().to_bits(),
            "recovery-cost total drifted between identical runs"
        );

        let total = |f: &dyn Fn(&drms_insight::IncarnationCost) -> f64| {
            deep_rep.rows.iter().map(f).sum::<f64>()
        };
        result.metric("deep.incarnations", deep.summary.incarnations.len() as f64);
        result.metric("deep.recovered_events", recovered_events(&deep) as f64);
        result.metric("deep.dropped_events", dropped as f64);
        result.metric(
            "deep.salvages",
            deep.rec.metrics().counter_total(names::BLACKBOX_SALVAGES) as f64,
        );
        result.metric(
            "deep.rings_recovered",
            deep.rec.metrics().counter_total(names::BLACKBOX_RINGS_RECOVERED) as f64,
        );
        result
            .metric("deep.commits", deep_rep.rows.iter().map(|r| r.commits).sum::<usize>() as f64);
        result.metric("deep.wall_sim_s", deep_rep.wall);
        result.metric("deep.detect_sim_s", total(&|r| r.detect));
        result.metric("deep.restore_sim_s", total(&|r| r.restore));
        result.metric("deep.recompute_sim_s", total(&|r| r.recompute));
        result.metric("deep.useful_sim_s", total(&|r| r.useful));
        result.metric("deep.lost_sim_s", total(&|r| r.lost));
        result.metric("deep.recovery_fraction", deep_rep.recovery_fraction());
        result.metric("deep.alert.recovery_budget", budget_alerts as f64);

        if let Some(path) = &opts.report_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).expect("create report-out dir");
            }
            std::fs::write(path, deep_rep.render()).expect("write recovery report");
            println!("wrote recovery-cost report to {}", path.display());
        }
        if let Some(path) = &opts.trace_out {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).expect("create trace-out dir");
            }
            let mut f = std::fs::File::create(path).expect("create stitched trace file");
            for e in &deep_tl.events {
                writeln!(f, "{:.9}\t{}\t{:?}\t{:?}\t{}", e.t, e.rank, e.phase, e.kind, e.name)
                    .expect("write stitched trace line");
            }
            println!("wrote {} stitched events to {}", deep_tl.events.len(), path.display());
        }
        if let Some(dir) = &opts.json {
            let path = result.write_to(dir).expect("write BENCH_blackbox.json");
            println!("wrote {}", path.display());
        }
        if let Some(baseline) = &opts.baseline {
            baseline_gate(&result, baseline, opts.tolerance, opts.bless, &repro_line);
        }
        println!(
            "\nEvery incarnation of every kill campaign is covered by the \
             stitched timeline with zero unattributed gaps; the attribution \
             tiles the wall clock; the report is bit-reproducible per seed."
        );
    });
}
