//! Property tests for the resilience layer:
//!
//! * checksum records round-trip for arbitrary data, chunkings, slices,
//!   orderings, and distributions;
//! * any single corrupted byte is detected (and located to its chunk);
//! * any single lost server reconstructs bitwise-exactly from parity;
//! * an end-to-end checkpoint survives a single silent corruption: verify
//!   detects it, scrub repairs it from parity, and the checkpoint
//!   re-validates.

use std::sync::Arc;

use drms_core::manifest::FileIntegrity;
use drms_core::segment::DataSegment;
use drms_core::{Drms, DrmsConfig, EnableFlag};
use drms_darray::{DistArray, Distribution};
use drms_msg::{run_spmd, CostModel};
use drms_obs::NullRecorder;
use drms_piofs::rng::SplitMix64;
use drms_piofs::{Piofs, PiofsConfig};
use drms_resil::{scrub_checkpoint, verify_checkpoint};
use drms_slices::{Order, Slice};
use proptest::prelude::*;

fn pseudo_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SplitMix64::new(seed | 1);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn integrity_records_accept_exactly_what_they_hash(
        len in 0usize..5000,
        chunk in 1u64..600,
        seed in 0u64..1_000_000,
    ) {
        let bytes = pseudo_bytes(len, seed);
        let fi = FileIntegrity::compute("f", &bytes, chunk);
        prop_assert!(fi.matches(&bytes));
        prop_assert!(fi.corrupt_chunks(&bytes).is_empty());
        // Chunk ranges tile the file exactly.
        let total: u64 = (0..fi.crcs.len()).map(|i| {
            let (a, b) = fi.chunk_range(i);
            b - a
        }).sum();
        prop_assert_eq!(total, len as u64);
    }

    #[test]
    fn any_single_corrupted_byte_is_detected_and_located(
        len in 1usize..4000,
        chunk in 1u64..600,
        pos_seed in 0u64..1_000_000,
        flip in 1u16..256,
        seed in 0u64..1_000_000,
    ) {
        let mut bytes = pseudo_bytes(len, seed);
        let fi = FileIntegrity::compute("f", &bytes, chunk);
        let pos = (pos_seed % len as u64) as usize;
        bytes[pos] ^= flip as u8;
        prop_assert!(!fi.matches(&bytes));
        let bad = fi.corrupt_chunks(&bytes);
        prop_assert_eq!(bad, vec![pos / chunk as usize]);
    }

    #[test]
    fn any_single_lost_server_reconstructs_bitwise(
        n_servers in 2usize..9,
        stripe_unit in 16u64..300,
        len in 1usize..20_000,
        victim_seed in 0u64..1_000_000,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = PiofsConfig::test_tiny(n_servers).with_parity();
        cfg.stripe_unit = stripe_unit;
        let fs = Piofs::new(cfg, 1);
        let data = pseudo_bytes(len, seed);
        fs.preload("f", data.clone());
        let victim = (victim_seed % n_servers as u64) as usize;
        fs.fail_server(victim);
        prop_assert_eq!(fs.peek("f"), Some(data.clone()), "server {} of {}", victim, n_servers);
        // Repair rebuilds the raw copy bitwise as well.
        prop_assert_eq!(fs.repair_server(victim), 0);
        prop_assert_eq!(fs.peek_raw("f"), Some(data));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn checkpoints_verify_across_distributions_and_orderings(
        rows in 4i64..24,
        cols in 4i64..16,
        ntasks in 1usize..5,
        dim in 0usize..2,
        colmajor in proptest::bool::ANY,
    ) {
        let fs = Piofs::new(PiofsConfig::test_tiny(4).with_parity(), 1);
        take_checkpoint(&fs, rows, cols, ntasks, dim, colmajor, "ck/prop");
        let report = verify_checkpoint(&fs, "ck/prop", &NullRecorder, 0.0);
        prop_assert!(report.is_valid(), "{report:?}");
    }

    #[test]
    fn single_silent_corruption_is_detected_then_scrubbed(
        rows in 8i64..24,
        cols in 4i64..16,
        ntasks in 1usize..4,
        hit_seed in 0u64..1_000_000,
        flip in 1u16..256,
    ) {
        let fs = Piofs::new(PiofsConfig::test_tiny(4).with_parity(), 1);
        take_checkpoint(&fs, rows, cols, ntasks, 0, true, "ck/prop");

        // Flip one byte of one data file, at a seeded position.
        let files: Vec<(String, u64)> = fs
            .list("ck/prop/")
            .into_iter()
            .filter(|i| !i.path.ends_with("manifest") && i.size > 0)
            .map(|i| (i.path, i.size))
            .collect();
        let (path, size) = files[(hit_seed % files.len() as u64) as usize].clone();
        let pos = hit_seed % size;
        prop_assert_eq!(fs.corrupt_range(&path, pos, 1, flip as u64), 1);

        let report = verify_checkpoint(&fs, "ck/prop", &NullRecorder, 0.0);
        prop_assert!(!report.is_valid(), "corruption of {path} at {pos} missed");
        prop_assert_eq!(report.corrupt.len(), 1);

        let scrub = scrub_checkpoint(&fs, "ck/prop", &NullRecorder, 0.0);
        prop_assert_eq!(scrub.repaired, 1, "{scrub:?}");
        prop_assert!(verify_checkpoint(&fs, "ck/prop", &NullRecorder, 0.0).is_valid());
    }
}

/// Writes one DRMS checkpoint of a `rows x cols` array distributed over
/// `ntasks` tasks along `dim`, in the given storage order.
fn take_checkpoint(
    fs: &Arc<Piofs>,
    rows: i64,
    cols: i64,
    ntasks: usize,
    dim: usize,
    colmajor: bool,
    prefix: &str,
) {
    let dom = Slice::boxed(&[(1, rows), (1, cols)]);
    let order = if colmajor { Order::ColumnMajor } else { Order::RowMajor };
    let prefix = prefix.to_string();
    run_spmd(ntasks, CostModel::default(), move |ctx| {
        let (mut drms, _) =
            Drms::initialize(ctx, fs, DrmsConfig::new("prop"), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&dom, ctx.ntasks(), dim).unwrap();
        let mut u = DistArray::<f64>::new("u", order, dist, ctx.rank());
        u.fill_assigned(|p| (p[0] * 31 + p[1] * 7) as f64);
        let mut seg = DataSegment::new();
        seg.set_control("iter", 1);
        drms.reconfig_checkpoint(ctx, fs, &prefix, &seg, &[&u]).unwrap();
    })
    .unwrap();
}
