//! Section 6 of the paper: the shadow-region accounting model. Local-view
//! (task-based) checkpoints must save the shadow-padded sections; the DRMS
//! global view saves exactly the grid. The ratio r = (n + 2γ)^d / n^d grows
//! with the task count at fixed problem size.
//!
//! ```text
//! cargo run --release -p drms-bench --bin shadow_model
//! ```

use drms_bench::table::render;
use drms_darray::{shadow, Distribution};
use drms_slices::Slice;

fn main() {
    println!("Section 6 — ratio of grid points saved: local view / global view\n");

    // The paper's CFD setting: n = 32, gamma = 2, d = 3.
    let r = shadow::shadow_ratio(32.0, 2.0, 3);
    println!("paper example: n = 32, gamma = 2, d = 3  ->  r = {r:.3}");
    println!("(the paper quotes \"1.38 times more data\"; the formula gives 1.424)\n");

    // BT class C on 125 processors: ~500 MB of extra saved state.
    let extra = shadow::extra_bytes(162.0, 125, 2.0, 3, 40.0, 8.0);
    println!(
        "BT class C (162^3 grid, 8 five-component fields) on 125 processors:\n\
         local view saves {:.0} MB more than the DRMS global view (paper: ~500 MB)\n",
        extra / 1e6
    );

    // Analytic sweep: r vs P at fixed N = 64 (class A), gamma = 2, d = 3.
    let header = vec!["P", "n = N/P^(1/3)", "analytic r", "measured r (block dist)"];
    let mut rows = Vec::new();
    for p in [1usize, 8, 27, 64, 125, 216, 512] {
        let n_global = 64.0f64;
        let n = n_global / (p as f64).cbrt();
        let analytic = shadow::shadow_ratio_for_tasks(n_global, p, 2.0, 3);
        // Measured on a real distribution when the processor grid is exact.
        let side = (p as f64).cbrt().round() as usize;
        let measured = if side * side * side == p && 64 % side == 0 {
            let dom = Slice::boxed(&[(1, 64), (1, 64), (1, 64)]);
            let dist = Distribution::block(&dom, &[side, side, side], &[2, 2, 2])
                .expect("cubic decomposition");
            format!("{:.3}", shadow::measured_ratio(&dist))
        } else {
            "-".to_string()
        };
        rows.push(vec![p.to_string(), format!("{n:.1}"), format!("{analytic:.3}"), measured]);
    }
    println!("{}", render(&header, &rows));
    println!(
        "\nr increases with P at constant N: the more tasks, the more a task-based\n\
         checkpoint over-saves. (Measured values fall below the analytic bound\n\
         because real blocks clip their shadows at the domain boundary.)"
    );
}
