//! Table 1: source-code cost of adopting the DRMS programming model.
//!
//! The paper reports ~1% added lines (about 100 per ~10,000-line NPB code).
//! The equivalent measure here: of the mini-application sources, how many
//! lines mention the DRMS checkpoint/restart API (the code a user adds to a
//! plain message-passing solver to make it reconfigurable), versus the total.
//!
//! ```text
//! cargo run --release -p drms-bench --bin table1
//! ```

use drms_bench::table::render;

const SOURCES: &[(&str, &str)] = &[
    ("app.rs", include_str!("../../../apps/src/app.rs")),
    ("spec.rs", include_str!("../../../apps/src/spec.rs")),
    ("solver.rs", include_str!("../../../apps/src/solver.rs")),
    ("classes.rs", include_str!("../../../apps/src/classes.rs")),
];

/// Identifiers that exist only because of DRMS adoption — the analog of the
/// `drms_*` calls added to the Fortran benchmarks in Figure 1.
const DRMS_MARKERS: &[&str] = &[
    "Drms::initialize",
    "reconfig_checkpoint",
    "reconfig_chkenable",
    "checkpoint_if_enabled",
    "restore_arrays",
    "restart_report",
    "RestartInfo",
    "Start::Restarted",
    "Start::Fresh",
    "EnableFlag",
    "set_control",
    "install_binary",
    "decode_locals",
    "spmd::restart",
    "spmd::checkpoint",
];

fn code_lines(src: &str) -> usize {
    src.lines().map(str::trim).filter(|l| !l.is_empty() && !l.starts_with("//")).count()
}

fn drms_lines(src: &str) -> usize {
    let mut in_tests = false;
    src.lines()
        .filter(|l| {
            if l.contains("mod tests") {
                in_tests = true;
            }
            !in_tests
        })
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .filter(|l| DRMS_MARKERS.iter().any(|m| l.contains(m)))
        .count()
}

fn main() {
    println!("Table 1 — source lines added to adopt the DRMS programming model\n");
    let header = vec!["file", "code lines", "DRMS-API lines", "share"];
    let mut rows = Vec::new();
    let mut total = 0usize;
    let mut drms = 0usize;
    for (name, src) in SOURCES {
        let t = code_lines(src);
        let d = drms_lines(src);
        total += t;
        drms += d;
        rows.push(vec![
            name.to_string(),
            t.to_string(),
            d.to_string(),
            format!("{:.1}%", 100.0 * d as f64 / t as f64),
        ]);
    }
    rows.push(vec![
        "TOTAL".into(),
        total.to_string(),
        drms.to_string(),
        format!("{:.1}%", 100.0 * drms as f64 / total as f64),
    ]);
    println!("{}", render(&header, &rows));
    println!(
        "\nPaper (Fortran NPB): BT 107/10,973 = 1.0%; LU 85/9,641 = 0.9%;\n\
         SP 99/9,561 = 1.0%. The mini-apps are far smaller than the NPB codes, so\n\
         the share is higher, but the absolute count of DRMS-specific lines is the\n\
         comparable quantity: adopting the model costs tens of lines, not a rewrite."
    );
}
