use std::fmt;

use drms_core::CoreError;

/// Errors from memory-tier checkpoint operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MemTierError {
    /// The requested replication factor cannot be satisfied by the current
    /// node set (`replicas` must be at least 1 and leave every piece with
    /// `replicas` holders distinct from its owner).
    ReplicationUnsatisfiable {
        /// Requested replicas per piece (owner excluded).
        replicas: usize,
        /// Distinct nodes available, owner included.
        nodes: usize,
    },
    /// No tier entry exists under the given prefix.
    NoCheckpoint(
        /// The prefix searched.
        String,
    ),
    /// The tier entry exists but cannot serve a restart: it is unsealed, or
    /// node losses took every replica of at least one piece.
    NotIntact(
        /// Human-readable description.
        String,
    ),
    /// A resident piece failed its CRC check when fetched.
    Corrupt {
        /// Checkpoint prefix.
        prefix: String,
        /// File the piece belongs to.
        file: String,
        /// Stream offset of the piece.
        offset: u64,
    },
    /// A sealed entry does not cover a file contiguously, or a fetch asked
    /// for a range outside the stream.
    Incomplete(
        /// Human-readable description.
        String,
    ),
    /// A spilled checkpoint failed post-spill verification against PIOFS.
    SpillVerify(
        /// Human-readable description.
        String,
    ),
    /// Failure in the underlying checkpoint machinery.
    Core(CoreError),
}

impl fmt::Display for MemTierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemTierError::ReplicationUnsatisfiable { replicas, nodes } => write!(
                f,
                "replication factor {replicas} unsatisfiable with {nodes} distinct node(s): \
                 every piece needs {replicas} holder(s) distinct from its owner"
            ),
            MemTierError::NoCheckpoint(p) => {
                write!(f, "memory tier holds no checkpoint under prefix {p:?}")
            }
            MemTierError::NotIntact(m) => write!(f, "memory-tier checkpoint not intact: {m}"),
            MemTierError::Corrupt { prefix, file, offset } => write!(
                f,
                "memory-tier piece of {prefix:?} file {file:?} at offset {offset} fails its CRC"
            ),
            MemTierError::Incomplete(m) => write!(f, "memory-tier stream incomplete: {m}"),
            MemTierError::SpillVerify(m) => write!(f, "spill verification failed: {m}"),
            MemTierError::Core(e) => write!(f, "checkpoint machinery: {e}"),
        }
    }
}

impl std::error::Error for MemTierError {}

impl From<CoreError> for MemTierError {
    fn from(e: CoreError) -> Self {
        MemTierError::Core(e)
    }
}
