//! The task data segment: what one task's memory contributes to a
//! checkpoint.
//!
//! Per Section 2.2 of the paper, at an SOP the data segment of a task
//! consists of the replicated variables and execution context (for DRMS
//! checkpointing, saving one representative task's segment captures them for
//! all tasks), plus bulk regions: the storage of local array sections
//! (fixed at compile time for the minimum task count, in the Fortran
//! applications measured), the system-related region (message-passing
//! buffers, ~33 MB on the paper's SP), and private/replicated application
//! data. Table 4 of the paper reports exactly this anatomy.

use std::collections::BTreeMap;

use crate::wire::{Reader, WireError, Writer};

const MAGIC: [u8; 4] = *b"DSEG";
const VERSION: u32 = 1;

/// Classification of bulk regions, mirroring the columns of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Storage for the local sections of distributed arrays.
    LocalSections,
    /// System-library residency (message-passing buffers).
    SystemBuffers,
    /// Private and replicated application data (work arrays, tables).
    PrivateData,
}

impl RegionKind {
    fn code(self) -> u8 {
        match self {
            RegionKind::LocalSections => 1,
            RegionKind::SystemBuffers => 2,
            RegionKind::PrivateData => 3,
        }
    }

    fn from_code(c: u8) -> Result<RegionKind, WireError> {
        match c {
            1 => Ok(RegionKind::LocalSections),
            2 => Ok(RegionKind::SystemBuffers),
            3 => Ok(RegionKind::PrivateData),
            _ => Err(WireError::Truncated { what: "region kind" }),
        }
    }
}

/// A named bulk region of the data segment, with its actual bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region name (e.g. `"work-arrays"`).
    pub name: String,
    /// Classification for the anatomy report.
    pub kind: RegionKind,
    /// The region's bytes — real data, checkpointed verbatim.
    pub bytes: Vec<u8>,
}

/// Byte anatomy of a segment, per Table 4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentAnatomy {
    /// Total encoded segment size.
    pub total: u64,
    /// Bytes in `LocalSections` regions.
    pub local_sections: u64,
    /// Bytes in `SystemBuffers` regions.
    pub system: u64,
    /// Bytes in `PrivateData` regions plus replicated/control variables.
    pub private_replicated: u64,
}

/// One task's data segment: control variables, replicated variables, and
/// bulk regions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataSegment {
    /// Control variables steering the SOQ flow (loop indices, phase ids).
    pub control: BTreeMap<String, i64>,
    /// Replicated variables: identical in every task's address space.
    pub replicated: BTreeMap<String, Vec<u8>>,
    /// Bulk regions.
    pub regions: Vec<Region>,
}

impl DataSegment {
    /// An empty segment.
    pub fn new() -> DataSegment {
        DataSegment::default()
    }

    /// Sets a control variable.
    pub fn set_control(&mut self, name: &str, v: i64) {
        self.control.insert(name.to_string(), v);
    }

    /// Reads a control variable.
    pub fn control(&self, name: &str) -> Option<i64> {
        self.control.get(name).copied()
    }

    /// Sets a replicated byte variable.
    pub fn set_replicated(&mut self, name: &str, bytes: Vec<u8>) {
        self.replicated.insert(name.to_string(), bytes);
    }

    /// Sets a replicated `f64`.
    pub fn set_replicated_f64(&mut self, name: &str, v: f64) {
        self.set_replicated(name, v.to_le_bytes().to_vec());
    }

    /// Reads a replicated `f64`.
    pub fn replicated_f64(&self, name: &str) -> Option<f64> {
        let b = self.replicated.get(name)?;
        Some(f64::from_le_bytes(b.as_slice().try_into().ok()?))
    }

    /// Reads a replicated byte variable.
    pub fn replicated(&self, name: &str) -> Option<&[u8]> {
        self.replicated.get(name).map(Vec::as_slice)
    }

    /// Adds (or replaces) a bulk region.
    pub fn set_region(&mut self, name: &str, kind: RegionKind, bytes: Vec<u8>) {
        if let Some(r) = self.regions.iter_mut().find(|r| r.name == name) {
            r.kind = kind;
            r.bytes = bytes;
        } else {
            self.regions.push(Region { name: name.to_string(), kind, bytes });
        }
    }

    /// Looks up a region by name.
    pub fn region(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Encodes the segment to its checkpoint representation.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_with_region(None)
    }

    /// Encodes the segment as if `extra` were one of its regions (replacing
    /// any same-named region). Avoids cloning the segment's bulk regions
    /// just to attach the per-checkpoint local-sections blob — at class A
    /// these are tens of megabytes per task.
    pub fn encode_with_region(&self, extra: Option<&Region>) -> Vec<u8> {
        let mut w = Writer::with_header(MAGIC, VERSION);
        w.u32(self.control.len() as u32);
        for (k, v) in &self.control {
            w.string(k);
            w.i64(*v);
        }
        w.u32(self.replicated.len() as u32);
        for (k, v) in &self.replicated {
            w.string(k);
            w.blob(v);
        }
        let skip = |r: &&Region| extra.map(|e| e.name != r.name).unwrap_or(true);
        let nregions = self.regions.iter().filter(skip).count() + usize::from(extra.is_some());
        w.u32(nregions as u32);
        for r in self.regions.iter().filter(skip).chain(extra) {
            w.string(&r.name);
            w.u8(r.kind.code());
            w.blob(&r.bytes);
        }
        w.finish()
    }

    /// Decodes a segment from its checkpoint representation.
    pub fn decode(bytes: &[u8]) -> Result<DataSegment, WireError> {
        let (mut r, version) = Reader::with_header(bytes, MAGIC)?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let mut seg = DataSegment::new();
        let ncontrol = r.u32()?;
        for _ in 0..ncontrol {
            let k = r.string()?;
            let v = r.i64()?;
            seg.control.insert(k, v);
        }
        let nrep = r.u32()?;
        for _ in 0..nrep {
            let k = r.string()?;
            let v = r.blob()?;
            seg.replicated.insert(k, v);
        }
        let nreg = r.u32()?;
        for _ in 0..nreg {
            let name = r.string()?;
            let kind = RegionKind::from_code(r.u8()?)?;
            let bytes = r.blob()?;
            seg.regions.push(Region { name, kind, bytes });
        }
        Ok(seg)
    }

    /// The Table 4 anatomy of this segment.
    pub fn anatomy(&self) -> SegmentAnatomy {
        let mut a = SegmentAnatomy::default();
        for r in &self.regions {
            let n = r.bytes.len() as u64;
            match r.kind {
                RegionKind::LocalSections => a.local_sections += n,
                RegionKind::SystemBuffers => a.system += n,
                RegionKind::PrivateData => a.private_replicated += n,
            }
        }
        let rep_bytes: u64 = self.replicated.values().map(|v| v.len() as u64).sum();
        a.private_replicated += rep_bytes + self.control.len() as u64 * 8;
        a.total = self.encode_len();
        a
    }

    /// Encoded size without materializing the encoding.
    pub fn encode_len(&self) -> u64 {
        let mut n = 4 + 4; // magic + version
        n += 4;
        for k in self.control.keys() {
            n += 4 + k.len() as u64 + 8;
        }
        n += 4;
        for (k, v) in &self.replicated {
            n += 4 + k.len() as u64 + 8 + v.len() as u64;
        }
        n += 4;
        for r in &self.regions {
            n += 4 + r.name.len() as u64 + 1 + 8 + r.bytes.len() as u64;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataSegment {
        let mut s = DataSegment::new();
        s.set_control("iter", 42);
        s.set_control("phase", -1);
        s.set_replicated_f64("dt", 0.25);
        s.set_replicated("params", vec![1, 2, 3]);
        s.set_region("local", RegionKind::LocalSections, vec![9; 100]);
        s.set_region("msgbuf", RegionKind::SystemBuffers, vec![0; 50]);
        s.set_region("work", RegionKind::PrivateData, vec![7; 30]);
        s
    }

    #[test]
    fn encode_decode_roundtrip() {
        let s = sample();
        let bytes = s.encode();
        let d = DataSegment::decode(&bytes).unwrap();
        assert_eq!(d, s);
        assert_eq!(d.control("iter"), Some(42));
        assert_eq!(d.replicated_f64("dt"), Some(0.25));
        assert_eq!(d.region("local").unwrap().bytes.len(), 100);
    }

    #[test]
    fn encode_len_matches_encoding() {
        let s = sample();
        assert_eq!(s.encode_len(), s.encode().len() as u64);
        assert_eq!(DataSegment::new().encode_len(), DataSegment::new().encode().len() as u64);
    }

    #[test]
    fn anatomy_classifies_regions() {
        let s = sample();
        let a = s.anatomy();
        assert_eq!(a.local_sections, 100);
        assert_eq!(a.system, 50);
        // 30 (work) + 8 (dt) + 3 (params) + 2 control x 8
        assert_eq!(a.private_replicated, 30 + 8 + 3 + 16);
        assert_eq!(a.total, s.encode_len());
    }

    #[test]
    fn set_region_replaces() {
        let mut s = sample();
        s.set_region("local", RegionKind::LocalSections, vec![1; 7]);
        assert_eq!(s.region("local").unwrap().bytes.len(), 7);
        assert_eq!(s.regions.len(), 3);
    }

    #[test]
    fn corrupted_segment_rejected() {
        let s = sample();
        let mut bytes = s.encode();
        bytes.truncate(bytes.len() - 10);
        assert!(DataSegment::decode(&bytes).is_err());
        bytes[0] = b'X';
        assert!(matches!(DataSegment::decode(&bytes), Err(WireError::BadMagic { .. })));
    }
}
