use std::fmt;

/// Errors produced when constructing or combining ranges and slices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceError {
    /// A stride of zero or a negative stride was supplied.
    BadStride {
        /// The offending stride.
        step: i64,
    },
    /// An explicit index list was not strictly increasing.
    NotIncreasing {
        /// Position of the first violation.
        at: usize,
        /// Value at `at - 1`.
        prev: i64,
        /// Value at `at`.
        next: i64,
    },
    /// Two slices of different rank were combined.
    RankMismatch {
        /// Rank of the left operand.
        left: usize,
        /// Rank of the right operand.
        right: usize,
    },
    /// A point of the wrong rank was queried against a slice.
    PointRankMismatch {
        /// Rank of the slice.
        rank: usize,
        /// Length of the supplied point.
        point: usize,
    },
    /// A requested partition count was not a power of two.
    NotPowerOfTwo {
        /// The offending count.
        m: usize,
    },
    /// An element index was out of bounds for a range or slice.
    OutOfBounds {
        /// The requested position.
        index: usize,
        /// The number of elements available.
        len: usize,
    },
}

impl fmt::Display for SliceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SliceError::BadStride { step } => {
                write!(f, "range stride must be positive, got {step}")
            }
            SliceError::NotIncreasing { at, prev, next } => write!(
                f,
                "explicit range must be strictly increasing: element {at} is {next} after {prev}"
            ),
            SliceError::RankMismatch { left, right } => {
                write!(f, "slice rank mismatch: {left} vs {right}")
            }
            SliceError::PointRankMismatch { rank, point } => {
                write!(f, "point of length {point} queried against rank-{rank} slice")
            }
            SliceError::NotPowerOfTwo { m } => {
                write!(f, "partition count must be a power of two, got {m}")
            }
            SliceError::OutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl std::error::Error for SliceError {}
