//! Deterministic pricing of I/O phases.
//!
//! A *phase* is a set of read/write requests issued together (one collective
//! call, or a single task's private operation). Pricing is a pure function
//! of the configuration, the per-server busy horizon, the per-node memory
//! residency, and the request descriptors — given the same inputs and RNG
//! state it always produces the same completion times, which is what makes
//! simulated runs reproducible per seed.

use std::collections::HashMap;

use crate::config::PiofsConfig;
use crate::rng::SplitMix64;
use crate::stripe::{striped_bytes, IntervalSet};

/// How a read request accesses the file, which decides the client-side
/// prefetch efficiency (paper, Section 5: PIOFS prefetch makes sequential
/// reads fast; the strided 1 MB pieces of parallel array streaming do not
/// pipeline as well).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadAccess {
    /// One large in-order scan of a file region.
    Sequential,
    /// Scattered pieces at computed offsets.
    Strided,
}

/// A write request, carried by the issuing task.
#[derive(Debug, Clone)]
pub struct WriteReq {
    /// Logical file path.
    pub path: String,
    /// Byte offset of the write.
    pub offset: u64,
    /// Payload.
    pub data: Vec<u8>,
}

/// A read request.
#[derive(Debug, Clone)]
pub struct ReadReq {
    /// Logical file path.
    pub path: String,
    /// Byte offset of the read.
    pub offset: u64,
    /// Bytes to read.
    pub len: u64,
    /// Access pattern hint.
    pub access: ReadAccess,
}

/// Request descriptor: what pricing needs to know (no payload bytes).
#[derive(Debug, Clone)]
pub(crate) struct ReqDesc {
    /// Issuing task rank.
    pub client: usize,
    /// Node hosting the issuing task.
    pub node: usize,
    /// Interned file identity (for unique-byte grouping).
    pub path_id: u64,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
    /// Operation kind.
    pub kind: DescKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DescKind {
    Write,
    Read(ReadAccess),
}

/// Outcome of pricing a phase.
#[derive(Debug, Clone)]
pub(crate) struct Pricing {
    /// Phase start (max participant clock + op overhead). Anchors the
    /// phase span reported to the observability recorder.
    pub t0: f64,
    /// Completion time per client rank (clients with no requests complete
    /// at `t0`).
    pub completion: HashMap<usize, f64>,
    /// New per-server busy horizon.
    pub server_busy: Vec<f64>,
    /// Busy interval `(server, start, end)` of each server that did work in
    /// this phase: start is the later of the server's prior busy horizon
    /// and `t0`, end is its new horizon. Exported to the observability
    /// recorder for per-server utilization/Gantt attribution.
    pub server_spans: Vec<(usize, f64, f64)>,
}

/// Prices one phase. `busy` and `residency` are indexed by node; `t_sync`
/// is the synchronized start time (max of participant clocks).
pub(crate) fn price_phase(
    cfg: &PiofsConfig,
    busy: &[f64],
    residency: &[u64],
    t_sync: f64,
    reqs: &[ReqDesc],
    participants: &[usize],
    rng: &mut SplitMix64,
) -> Pricing {
    let n = cfg.n_servers;
    debug_assert_eq!(busy.len(), n);
    debug_assert_eq!(residency.len(), n);
    let t0 = t_sync + cfg.op_overhead;

    // ---- phase-wide facts -------------------------------------------
    let occupied = residency.iter().filter(|&&r| r > 0).count();
    let frac_occ = occupied as f64 / n.max(1) as f64;
    let streams = {
        let mut set: Vec<(usize, u64)> = reqs.iter().map(|r| (r.client, r.path_id)).collect();
        set.sort_unstable();
        set.dedup();
        set.len().max(1)
    };
    let need = streams as u64 * cfg.stream_buffer;

    let avail = |k: usize| -> u64 {
        cfg.node_mem.saturating_sub(cfg.os_resident).saturating_sub(residency[k])
    };
    // Server buffer efficiency. Writes (write-behind) degrade gently and
    // linearly; reads (prefetch) hold full efficiency down to a cutoff and
    // then collapse quadratically — the threshold the paper observes when
    // conventional restarts outgrow PIOFS buffer memory.
    let ratio = |k: usize| avail(k) as f64 / need.max(1) as f64;
    let beff_write = |k: usize| -> f64 { ratio(k).clamp(cfg.thrash_floor_write, 1.0) };
    let beff_read = |k: usize| -> f64 {
        let r = ratio(k);
        if r >= cfg.read_buffer_cutoff {
            1.0
        } else {
            (r * r).clamp(cfg.thrash_floor, 1.0)
        }
    };
    let interf = |k: usize| -> f64 {
        if residency[k] > 0 {
            cfg.interference
        } else {
            1.0
        }
    };
    let paging = |node: usize| -> f64 {
        if cfg.os_resident + residency[node.min(n - 1)] + cfg.io_buffer > cfg.node_mem {
            cfg.paging_factor
        } else {
            1.0
        }
    };

    // ---- server loads ------------------------------------------------
    // Unique read bytes per file (prefetched from disk once; extra copies
    // served from buffer).
    let mut uniq: HashMap<u64, IntervalSet> = HashMap::new();
    for r in reqs {
        if matches!(r.kind, DescKind::Read(_)) {
            uniq.entry(r.path_id).or_default().insert(r.offset, r.offset + r.len);
        }
    }

    let mut server_time = vec![0.0f64; n];
    #[allow(clippy::needless_range_loop)] // k indexes several parallel tables
    for k in 0..n {
        let mut w_load = 0u64;
        let mut r_total = 0u64;
        let mut w_chunks = 0usize;
        let mut r_chunks = 0usize;
        for r in reqs {
            let b = striped_bytes(cfg.stripe_unit, n, r.offset, r.offset + r.len, k);
            if b == 0 {
                continue;
            }
            match r.kind {
                DescKind::Write => {
                    w_load += b;
                    w_chunks += 1;
                }
                DescKind::Read(_) => {
                    r_total += b;
                    r_chunks += 1;
                }
            }
        }
        let u_k: u64 = uniq.values().map(|set| set.striped_total(cfg.stripe_unit, n, k)).sum();
        let mut t = 0.0;
        if w_load > 0 || w_chunks > 0 {
            t += w_load as f64 / (cfg.server_write_bw * interf(k) * beff_write(k))
                + w_chunks as f64 * cfg.chunk_overhead_write;
        }
        if r_total > 0 || r_chunks > 0 {
            t += u_k as f64 / (cfg.server_disk_read_bw * interf(k) * beff_read(k))
                + r_total as f64 / cfg.server_serve_bw
                + r_chunks as f64 * cfg.chunk_overhead_read;
        }
        server_time[k] = t;
    }
    let server_finish: Vec<f64> = (0..n).map(|k| busy[k].max(t0) + server_time[k]).collect();
    let server_spans: Vec<(usize, f64, f64)> = (0..n)
        .filter(|&k| server_time[k] > 0.0)
        .map(|k| (k, busy[k].max(t0), server_finish[k]))
        .collect();

    // ---- client times --------------------------------------------------
    let occ_pen = 1.0 - frac_occ * cfg.occupancy_write_penalty;
    let mut client_time: HashMap<usize, f64> = HashMap::new();
    let mut client_servers: HashMap<usize, Vec<bool>> = HashMap::new();
    for r in reqs {
        let ct = client_time.entry(r.client).or_insert(0.0);
        match r.kind {
            DescKind::Write => {
                *ct += r.len as f64 / (cfg.client_write_bw * occ_pen * paging(r.node))
                    + cfg.piece_overhead;
            }
            DescKind::Read(access) => {
                let rate = match access {
                    ReadAccess::Sequential => cfg.client_read_bw,
                    ReadAccess::Strided => cfg.client_strided_read_bw,
                };
                *ct += r.len as f64 / (rate * paging(r.node)) + cfg.piece_overhead;
            }
        }
        let touched = client_servers.entry(r.client).or_insert_with(|| vec![false; n]);
        for (k, slot) in touched.iter_mut().enumerate() {
            if striped_bytes(cfg.stripe_unit, n, r.offset, r.offset + r.len, k) > 0 {
                *slot = true;
            }
        }
    }

    // ---- completion per participant, with per-client jitter -----------
    let mut completion = HashMap::new();
    let mut sorted: Vec<usize> = participants.to_vec();
    sorted.sort_unstable();
    for c in sorted {
        let base = match client_time.get(&c) {
            Some(&ct) => {
                let server_gate = client_servers[&c]
                    .iter()
                    .enumerate()
                    .filter(|&(_, &touched)| touched)
                    .map(|(k, _)| server_finish[k])
                    .fold(f64::NEG_INFINITY, f64::max);
                (t0 + ct).max(server_gate)
            }
            None => t0,
        };
        let jit = rng.jitter(cfg.jitter_sigma);
        completion.insert(c, t0 + (base - t0) * jit);
    }

    Pricing { t0, completion, server_busy: server_finish, server_spans }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PiofsConfig {
        let mut c = PiofsConfig::sp_1997();
        c.jitter_sigma = 0.0;
        c.op_overhead = 0.0;
        c
    }

    fn write_desc(client: usize, node: usize, path: u64, len: u64) -> ReqDesc {
        ReqDesc { client, node, path_id: path, offset: 0, len, kind: DescKind::Write }
    }

    fn read_desc(client: usize, node: usize, path: u64, len: u64, access: ReadAccess) -> ReqDesc {
        ReqDesc { client, node, path_id: path, offset: 0, len, kind: DescKind::Read(access) }
    }

    #[test]
    fn empty_phase_completes_at_t0() {
        let c = cfg();
        let mut rng = SplitMix64::new(1);
        let p = price_phase(&c, &[0.0; 16], &[0; 16], 5.0, &[], &[0, 1], &mut rng);
        assert_eq!(p.completion[&0], 5.0);
        assert_eq!(p.completion[&1], 5.0);
    }

    #[test]
    fn single_sequential_write_is_client_limited_on_idle_system() {
        let c = cfg();
        let mut rng = SplitMix64::new(1);
        let len = 64 << 20; // 64 MB
        let reqs = vec![write_desc(0, 0, 0, len)];
        let p = price_phase(&c, &[0.0; 16], &[0; 16], 0.0, &reqs, &[0], &mut rng);
        let t = p.completion[&0];
        // Client limit: 64 MB / 13 MB/s ~ 5.16 s; aggregate server capacity
        // 16 x 1.35 = 21.6 MB/s would finish sooner.
        let client_limit = len as f64 / c.client_write_bw;
        assert!((t - client_limit).abs() / client_limit < 0.05, "t = {t}");
    }

    #[test]
    fn co_location_interference_slows_writes() {
        let c = cfg();
        let mut rng = SplitMix64::new(1);
        let len: u64 = 64 << 20;
        let idle = price_phase(
            &c,
            &[0.0; 16],
            &[0; 16],
            0.0,
            &(0..16).map(|i| write_desc(i, i, i as u64, len / 16)).collect::<Vec<_>>(),
            &(0..16).collect::<Vec<_>>(),
            &mut rng,
        );
        let mut rng = SplitMix64::new(1);
        let occupied = price_phase(
            &c,
            &[0.0; 16],
            &[64 << 20; 16],
            0.0,
            &(0..16).map(|i| write_desc(i, i, i as u64, len / 16)).collect::<Vec<_>>(),
            &(0..16).collect::<Vec<_>>(),
            &mut rng,
        );
        let t_idle = idle.completion.values().cloned().fold(0.0, f64::max);
        let t_occ = occupied.completion.values().cloned().fold(0.0, f64::max);
        assert!(t_occ > t_idle, "occupied {t_occ} vs idle {t_idle}");
    }

    #[test]
    fn shared_file_read_is_client_limited_and_scales() {
        // All clients read the same 32 MB file: per-client time roughly
        // constant, so doubling clients doubles aggregate rate.
        let c = cfg();
        let len: u64 = 32 << 20;
        let per_client = |p_clients: usize| -> f64 {
            let mut rng = SplitMix64::new(1);
            let reqs: Vec<ReqDesc> =
                (0..p_clients).map(|i| read_desc(i, i, 0, len, ReadAccess::Sequential)).collect();
            let parts: Vec<usize> = (0..p_clients).collect();
            let pr = price_phase(&c, &[0.0; 16], &[1; 16], 0.0, &reqs, &parts, &mut rng);
            pr.completion.values().cloned().fold(0.0, f64::max)
        };
        let t8 = per_client(8);
        let t16 = per_client(16);
        assert!((t8 - t16).abs() / t8 < 0.25, "t8 {t8} t16 {t16}");
        // And roughly the client sequential-read time.
        let expect = len as f64 / c.client_read_bw;
        assert!((t8 - expect).abs() / expect < 0.3, "t8 {t8} expect {expect}");
    }

    #[test]
    fn distinct_file_reads_thrash_when_buffers_tight() {
        let mut c = cfg();
        c.thrash_floor = 0.2;
        let len: u64 = 60 << 20;
        // 16 clients read 16 distinct large files; nodes heavily resident.
        let heavy: Vec<u64> = vec![80 << 20; 16];
        let light: Vec<u64> = vec![1 << 20; 16];
        let reqs: Vec<ReqDesc> =
            (0..16).map(|i| read_desc(i, i, i as u64, len, ReadAccess::Sequential)).collect();
        let parts: Vec<usize> = (0..16).collect();
        let mut rng = SplitMix64::new(1);
        let t_heavy = price_phase(&c, &[0.0; 16], &heavy, 0.0, &reqs, &parts, &mut rng)
            .completion
            .values()
            .cloned()
            .fold(0.0, f64::max);
        let mut rng = SplitMix64::new(1);
        let t_light = price_phase(&c, &[0.0; 16], &light, 0.0, &reqs, &parts, &mut rng)
            .completion
            .values()
            .cloned()
            .fold(0.0, f64::max);
        assert!(t_heavy > 2.0 * t_light, "expected collapse: heavy {t_heavy} vs light {t_light}");
    }

    #[test]
    fn strided_reads_slower_than_sequential() {
        let c = cfg();
        let len: u64 = 8 << 20;
        let mut rng = SplitMix64::new(1);
        let seq = price_phase(
            &c,
            &[0.0; 16],
            &[1; 16],
            0.0,
            &[read_desc(0, 0, 0, len, ReadAccess::Sequential)],
            &[0],
            &mut rng,
        )
        .completion[&0];
        let mut rng = SplitMix64::new(1);
        let strided = price_phase(
            &c,
            &[0.0; 16],
            &[1; 16],
            0.0,
            &[read_desc(0, 0, 0, len, ReadAccess::Strided)],
            &[0],
            &mut rng,
        )
        .completion[&0];
        assert!(strided > 3.0 * seq, "strided {strided} seq {seq}");
    }

    #[test]
    fn busy_servers_delay_phase() {
        let c = cfg();
        let mut rng = SplitMix64::new(1);
        let busy = vec![100.0; 16];
        let p =
            price_phase(&c, &busy, &[0; 16], 0.0, &[write_desc(0, 0, 0, 1 << 20)], &[0], &mut rng);
        assert!(p.completion[&0] > 100.0);
    }

    #[test]
    fn paging_penalizes_oversubscribed_client_nodes() {
        let c = cfg();
        let len: u64 = 16 << 20;
        // Residency such that os + resident + io_buffer exceeds node memory.
        let paging_res = c.node_mem - c.os_resident - c.io_buffer + 1;
        let mut rng = SplitMix64::new(1);
        let slow = price_phase(
            &c,
            &[0.0; 16],
            &[paging_res; 16],
            0.0,
            &[read_desc(0, 0, 0, len, ReadAccess::Sequential)],
            &[0],
            &mut rng,
        )
        .completion[&0];
        let mut rng = SplitMix64::new(1);
        let fast = price_phase(
            &c,
            &[0.0; 16],
            &[1 << 20; 16],
            0.0,
            &[read_desc(0, 0, 0, len, ReadAccess::Sequential)],
            &[0],
            &mut rng,
        )
        .completion[&0];
        assert!(slow > 1.5 * fast, "paging {slow} vs normal {fast}");
    }

    #[test]
    fn jitter_perturbs_but_preserves_mean() {
        let mut c = cfg();
        c.jitter_sigma = 0.05;
        let len: u64 = 8 << 20;
        let mut times = Vec::new();
        for seed in 0..200 {
            let mut rng = SplitMix64::new(seed);
            let p = price_phase(
                &c,
                &[0.0; 16],
                &[0; 16],
                0.0,
                &[write_desc(0, 0, 0, len)],
                &[0],
                &mut rng,
            );
            times.push(p.completion[&0]);
        }
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        let base = len as f64 / PiofsConfig::sp_1997().client_write_bw;
        assert!((mean - base).abs() / base < 0.05);
        let spread = times.iter().cloned().fold(0.0f64, f64::max)
            - times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 0.0);
    }
}
