//! Cross-incarnation timeline stitching.
//!
//! Each incarnation of a job records simulated time from zero: its trace
//! is a self-contained span DAG that knows nothing of the incarnations
//! before or after it. The stitcher lays the recovered per-incarnation
//! event streams (from the flight-recorder [`drms_blackbox::SealArchive`])
//! end to end on one global clock — incarnation `k` is offset by the total
//! duration of incarnations `0..k` plus one detection-latency gap per
//! restart — producing a single timeline whose segments abut exactly, so
//! the stitched wall clock has zero unattributed gaps by construction.

use drms_obs::TraceEvent;

/// One incarnation's recovered events plus what the JSA knows about it.
#[derive(Debug, Clone)]
pub struct IncarnationInput {
    /// Incarnation number (ascending, 0 = fresh start).
    pub incarnation: u64,
    /// Recovered, deduplicated events on the incarnation's local clock,
    /// sorted by (time, rank, capture sequence).
    pub events: Vec<TraceEvent>,
    /// Whether the incarnation was killed (crash point or node failure).
    pub killed: bool,
    /// Whether the incarnation restarted from a checkpoint (false for the
    /// first and for rare fresh re-starts that found no checkpoint).
    pub restarted: bool,
}

/// Stitching knobs.
#[derive(Debug, Clone)]
pub struct StitchOptions {
    /// Simulated seconds between an incarnation's death and its
    /// successor's clock starting — billed as detection latency.
    pub detection_latency: f64,
}

impl Default for StitchOptions {
    fn default() -> StitchOptions {
        StitchOptions { detection_latency: 1.0 }
    }
}

/// One incarnation's extent on the stitched clock.
#[derive(Debug, Clone, PartialEq)]
pub struct StitchSegment {
    /// Incarnation number.
    pub incarnation: u64,
    /// Global time the incarnation's local clock zero maps to.
    pub start: f64,
    /// Global time of the incarnation's last event (== `start` for an
    /// incarnation that recovered no events).
    pub end: f64,
    /// Detection-latency gap billed *before* `start` (0 for the first).
    pub detect: f64,
    /// Whether the incarnation was killed.
    pub killed: bool,
    /// Whether it restarted from a checkpoint.
    pub restarted: bool,
}

/// The joined cross-incarnation timeline.
#[derive(Debug, Clone)]
pub struct StitchedTimeline {
    /// Every recovered event, re-stamped onto the global clock, sorted by
    /// (time, rank) with the per-incarnation capture order preserved.
    pub events: Vec<TraceEvent>,
    /// Per-incarnation extents, in incarnation order. Consecutive segments
    /// abut exactly: `segments[k+1].start == segments[k].end +
    /// segments[k+1].detect`.
    pub segments: Vec<StitchSegment>,
}

impl StitchedTimeline {
    /// End-to-end stitched wall clock: last segment's end (detection gaps
    /// included, since they are part of every segment's offset).
    pub fn wall(&self) -> f64 {
        self.segments.last().map(|s| s.end).unwrap_or(0.0)
    }

    /// The events of incarnation `inc` on the global clock.
    pub fn events_of(&self, inc: u64) -> impl Iterator<Item = &TraceEvent> {
        let seg = self.segments.iter().find(|s| s.incarnation == inc);
        let (lo, hi) = seg.map(|s| (s.start, s.end)).unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
        self.events.iter().filter(move |e| e.t >= lo && e.t <= hi)
    }
}

/// Stitches the incarnations (pre-sorted by `incarnation`) into one
/// timeline. Deterministic: output order depends only on the inputs.
pub fn stitch(inputs: &[IncarnationInput], opts: &StitchOptions) -> StitchedTimeline {
    let mut events = Vec::new();
    let mut segments = Vec::new();
    let mut cursor = 0.0f64;
    for (i, inp) in inputs.iter().enumerate() {
        let detect = if i > 0 { opts.detection_latency } else { 0.0 };
        cursor += detect;
        let start = cursor;
        let horizon = inp.events.iter().map(|e| e.t).fold(0.0f64, f64::max);
        for e in &inp.events {
            let mut e = e.clone();
            e.t += start;
            events.push(e);
        }
        cursor = start + horizon;
        segments.push(StitchSegment {
            incarnation: inp.incarnation,
            start,
            end: cursor,
            detect,
            killed: inp.killed,
            restarted: inp.restarted,
        });
    }
    StitchedTimeline { events, segments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::{EventKind, Phase};

    fn ev(t: f64, rank: usize, name: &str) -> TraceEvent {
        TraceEvent {
            t,
            rank,
            phase: Phase::Arrays,
            name: name.to_string(),
            kind: EventKind::Instant,
            corr: None,
        }
    }

    #[test]
    fn segments_abut_exactly_with_detection_gaps() {
        let inputs = vec![
            IncarnationInput {
                incarnation: 0,
                events: vec![ev(1.0, 0, "a"), ev(10.0, 1, "b")],
                killed: true,
                restarted: false,
            },
            IncarnationInput {
                incarnation: 1,
                events: vec![ev(2.0, 0, "c"), ev(8.0, 0, "d")],
                killed: false,
                restarted: true,
            },
        ];
        let tl = stitch(&inputs, &StitchOptions { detection_latency: 2.0 });
        assert_eq!(tl.segments.len(), 2);
        assert_eq!(tl.segments[0].start, 0.0);
        assert_eq!(tl.segments[0].end, 10.0);
        assert_eq!(tl.segments[1].detect, 2.0);
        assert_eq!(tl.segments[1].start, 12.0);
        assert_eq!(tl.segments[1].end, 20.0);
        assert_eq!(tl.wall(), 20.0);
        // Events re-stamped onto the global clock.
        assert_eq!(tl.events[2].t, 14.0);
        assert_eq!(tl.events_of(1).count(), 2);
    }

    #[test]
    fn empty_incarnation_collapses_to_a_point() {
        let inputs = vec![
            IncarnationInput { incarnation: 0, events: vec![], killed: true, restarted: false },
            IncarnationInput {
                incarnation: 1,
                events: vec![ev(3.0, 0, "x")],
                killed: false,
                restarted: true,
            },
        ];
        let tl = stitch(&inputs, &StitchOptions::default());
        assert_eq!(tl.segments[0].start, tl.segments[0].end);
        assert_eq!(tl.segments[1].start, 1.0);
        assert_eq!(tl.wall(), 4.0);
    }
}
