use std::fmt;
use std::sync::Arc;

use drms_obs::Recorder;

use crate::{CostModel, Ctx, World};

/// Error from running an SPMD region.
#[derive(Debug)]
pub enum SpmdError {
    /// One of the tasks panicked; the region is unusable.
    TaskPanicked {
        /// Rank of the first failed task.
        rank: usize,
        /// Panic payload rendered to a string, when available.
        message: String,
    },
}

impl fmt::Display for SpmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpmdError::TaskPanicked { rank, message } => {
                write!(f, "SPMD task {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SpmdError {}

/// Runs `f` as an SPMD region of `ntasks` tasks mapped one-to-one onto nodes
/// `0..ntasks`, returning each task's result in rank order.
pub fn run_spmd<R, F>(ntasks: usize, cost: CostModel, f: F) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_spmd_with_nodes(ntasks, (0..ntasks).collect(), cost, f)
}

/// Runs `f` as an SPMD region of `ntasks` tasks with an explicit task → node
/// placement (`node_of[rank]` is the processor hosting `rank`).
///
/// One OS thread is spawned per task; the threads communicate through the
/// world's mailboxes and exchange board, and each carries its own virtual
/// clock. If any task panics, the panic is captured and reported with its
/// rank (sibling tasks blocked in collectives will trip their stall guards).
pub fn run_spmd_with_nodes<R, F>(
    ntasks: usize,
    node_of: Vec<usize>,
    cost: CostModel,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_world(World::new(ntasks, node_of, cost), f)
}

/// Runs `f` as an SPMD region whose tasks report to `recorder` (available
/// inside via `ctx.recorder()`). Placement is one-to-one onto nodes
/// `0..ntasks`, as in [`run_spmd`].
pub fn run_spmd_traced<R, F>(
    ntasks: usize,
    cost: CostModel,
    recorder: Arc<dyn Recorder>,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_world(World::new_traced(ntasks, (0..ntasks).collect(), cost, recorder), f)
}

/// Runs `f` with both an explicit task → node placement (as in
/// [`run_spmd_with_nodes`]) and an observability recorder (as in
/// [`run_spmd_traced`]). This is the scheduler's entry point: the JSA places
/// incarnations on whatever processors survive, and still wants their I/O
/// and recovery activity in the trace.
pub fn run_spmd_with_nodes_traced<R, F>(
    ntasks: usize,
    node_of: Vec<usize>,
    cost: CostModel,
    recorder: Arc<dyn Recorder>,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_world(World::new_traced(ntasks, node_of, cost, recorder), f)
}

/// Runs `f` as an SPMD region whose message layer is subject to the fault
/// plan carried by `chaos` (transient send failures with retry/backoff,
/// duplicated deliveries, added latency). Placement is one-to-one onto
/// nodes `0..ntasks`.
pub fn run_spmd_chaos<R, F>(
    ntasks: usize,
    cost: CostModel,
    recorder: Arc<dyn Recorder>,
    chaos: Arc<drms_chaos::ChaosCtl>,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_spmd_with_nodes_chaos(ntasks, (0..ntasks).collect(), cost, recorder, chaos, f)
}

/// [`run_spmd_chaos`] with an explicit task → node placement — the entry
/// point chaos campaigns drive through the scheduler, which places restart
/// incarnations on whatever processors survive.
pub fn run_spmd_with_nodes_chaos<R, F>(
    ntasks: usize,
    node_of: Vec<usize>,
    cost: CostModel,
    recorder: Arc<dyn Recorder>,
    chaos: Arc<drms_chaos::ChaosCtl>,
    f: F,
) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    run_world(World::new_chaos(ntasks, node_of, cost, recorder, chaos), f)
}

fn run_world<R, F>(world: Arc<World>, f: F) -> Result<Vec<R>, SpmdError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Sync,
{
    let ntasks = world.ntasks();
    let mut results: Vec<Option<R>> = (0..ntasks).map(|_| None).collect();

    let outcome: Result<(), SpmdError> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ntasks);
        for (rank, slot) in results.iter_mut().enumerate() {
            let world = &world;
            let f = &f;
            let handle = std::thread::Builder::new()
                .name(format!("spmd-task-{rank}"))
                .spawn_scoped(s, move || {
                    let mut ctx = world.ctx(rank);
                    *slot = Some(f(&mut ctx));
                })
                .expect("spawn SPMD task thread");
            handles.push((rank, handle));
        }
        let mut first_failure = None;
        for (rank, handle) in handles {
            if let Err(payload) = handle.join() {
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                first_failure.get_or_insert(SpmdError::TaskPanicked { rank, message });
            }
        }
        match first_failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    });

    outcome?;
    Ok(results.into_iter().map(|r| r.expect("task completed")).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_rank_order() {
        let out = run_spmd(5, CostModel::free(), |ctx| ctx.rank() * 2).unwrap();
        assert_eq!(out, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn custom_node_placement() {
        let out =
            run_spmd_with_nodes(3, vec![10, 20, 30], CostModel::free(), |ctx| ctx.node()).unwrap();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn panic_is_reported_with_rank() {
        let err = run_spmd(2, CostModel::free(), |ctx| {
            if ctx.rank() == 1 {
                panic!("boom");
            }
        })
        .unwrap_err();
        match err {
            SpmdError::TaskPanicked { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("boom"));
            }
        }
    }

    #[test]
    fn single_task_region() {
        let out = run_spmd(1, CostModel::default(), |ctx| {
            ctx.barrier();
            ctx.allreduce(42.0, crate::ReduceOp::Sum)
        })
        .unwrap();
        assert_eq!(out, vec![42.0]);
    }
}
