//! Property tests for the pulse pipeline's determinism contracts:
//!
//! * window arithmetic never panics, whatever garbage the stamps are;
//! * heartbeats and alerts are invariant under drain batching — chopping
//!   the same hook stream into arbitrary drain chunks changes nothing;
//! * one continuous breach fires exactly one alert: over any per-window
//!   load profile, the alert count equals the number of below→above
//!   transitions, never one per breaching window.

use drms_obs::{names, Phase};
use drms_pulse::{window_bounds, window_of, Predicate, Pulse, PulseConfig, PulseRule};
use proptest::prelude::*;

/// One synthetic hook call, decoded from integer lattice points (the
/// vendored proptest shim only draws integer ranges).
#[derive(Debug, Clone, Copy)]
struct Step {
    rank: usize,
    kind: u8,
    t: f64,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec((0usize..4, 0u8..6, 0u64..50_000), 1..120).prop_map(|raw| {
        raw.into_iter()
            .map(|(rank, kind, t_micro)| Step { rank, kind, t: t_micro as f64 * 1e-6 })
            .collect()
    })
}

/// Replays the synthetic stream into `pulse`, draining after every step
/// whose index is in `cuts`, then finishes and returns (heartbeats, alert
/// names-with-windows).
fn replay(script: &[Step], cuts: &[usize]) -> (Vec<String>, Vec<(String, u64)>) {
    let pulse = Pulse::new(PulseConfig {
        ntasks: 4,
        window: 0.005,
        // Hair-trigger rules so alerts actually participate in the
        // comparison.
        rules: vec![
            PulseRule {
                name: names::ALERT_RETRY_STORM,
                predicate: Predicate::RateAbove {
                    metrics: vec![names::MSG_RETRIES],
                    per_second: 150.0,
                },
                min_windows: 1,
            },
            PulseRule {
                name: names::ALERT_REPLICA_LOSS,
                predicate: Predicate::GaugeBelow {
                    name: names::MEMTIER_REPLICAS,
                    index: 0,
                    below: 2.0,
                },
                min_windows: 1,
            },
        ],
        ..PulseConfig::default()
    });
    let rec = pulse.recorder();
    for (i, s) in script.iter().enumerate() {
        match s.kind {
            0 => rec.span_start(s.t, s.rank, Phase::StreamWave, "wave"),
            1 => rec.span_end(s.t, s.rank, Phase::StreamWave, "wave"),
            2 => rec.counter_add_at(s.t, s.rank, names::MSG_RETRIES, None, 1),
            3 => rec.gauge_set_at(s.t, s.rank, names::MEMTIER_REPLICAS, 0, (s.rank % 3) as f64),
            4 => rec.msg_sent(s.t, s.rank, (s.rank + 1) % 4, 7, i as u64, 64),
            _ => rec.event(s.t, s.rank, Phase::Segment, "tick"),
        }
        if cuts.contains(&i) {
            pulse.drain();
        }
    }
    let report = pulse.finish();
    let alerts = report.alerts.iter().map(|a| (a.rule.to_string(), a.window)).collect();
    (report.heartbeats, alerts)
}

proptest! {
    /// Window assignment and bounds are total functions: any bit pattern
    /// for stamp and width — NaN, infinities, subnormals, negatives — maps
    /// to a window without panicking, and the bounds round-trip contains
    /// well-formed stamps.
    #[test]
    fn window_arithmetic_never_panics(stamp_bits in 0u64..u64::MAX, width_bits in 0u64..u64::MAX) {
        let stamp = f64::from_bits(stamp_bits);
        let width = f64::from_bits(width_bits);
        let idx = window_of(stamp, width);
        let (t0, t1) = window_bounds(idx, width);
        prop_assert!(!t0.is_nan() && !t1.is_nan());
        prop_assert!(t1 >= t0);
        // Well-formed stamps land inside their own window's bounds when
        // neither saturation nor width sanitation kicked in.
        if stamp.is_finite() && stamp >= 0.0 && width.is_finite() && width > 0.0
            && idx < u64::MAX && (idx as f64) * width < 1e18
        {
            prop_assert!(t0 <= stamp, "stamp {stamp} before window [{t0},{t1})");
        }
    }

    /// Drain batching is invisible: draining after every prescribed prefix
    /// of the stream produces byte-identical heartbeats and alerts to a
    /// single drain at the end.
    #[test]
    fn heartbeats_and_alerts_are_drain_invariant(
        script in steps(),
        raw_cuts in proptest::collection::vec(0usize..120, 0..12),
    ) {
        let cuts: Vec<usize> = raw_cuts.iter().map(|c| c % script.len().max(1)).collect();
        let (hb_ref, alerts_ref) = replay(&script, &[]);
        let (hb_cut, alerts_cut) = replay(&script, &cuts);
        prop_assert_eq!(hb_ref, hb_cut, "heartbeats changed under drain batching");
        prop_assert_eq!(alerts_ref, alerts_cut, "alerts changed under drain batching");
    }

    /// One continuous breach fires exactly once. For an arbitrary
    /// per-window retry profile the engine emits one alert per below→above
    /// transition of the rate — latched while the breach continues,
    /// re-armed only after a clean window.
    #[test]
    fn one_alert_per_breach_onset(deltas in proptest::collection::vec(0u64..6, 1..40)) {
        const WIDTH: f64 = 1.0;
        const THRESHOLD: f64 = 2.5;
        let pulse = Pulse::new(PulseConfig {
            ntasks: 1,
            window: WIDTH,
            rules: vec![PulseRule {
                name: names::ALERT_RETRY_STORM,
                predicate: Predicate::RateAbove {
                    metrics: vec![names::MSG_RETRIES],
                    per_second: THRESHOLD,
                },
                min_windows: 1,
            }],
            ..PulseConfig::default()
        });
        let rec = pulse.recorder();
        for (i, &d) in deltas.iter().enumerate() {
            // One counter sample per window keeps every window populated
            // (delta 0 is a sample with no increment — a clean window).
            rec.counter_add_at(i as f64 * WIDTH + 0.5, 0, names::MSG_RETRIES, None, d);
        }
        let report = pulse.finish();

        let breach: Vec<bool> =
            deltas.iter().map(|&d| d as f64 / WIDTH >= THRESHOLD).collect();
        let onsets: Vec<u64> = breach
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b && (i == 0 || !breach[i - 1]))
            .map(|(i, _)| i as u64)
            .collect();
        let fired: Vec<u64> = report.alerts.iter().map(|a| a.window).collect();
        prop_assert_eq!(
            fired,
            onsets,
            "alerts disagree with breach onsets for profile {:?}",
            deltas
        );
    }
}
