//! The streaming [`Recorder`] implementation: hook calls become ring
//! samples, with the time spent in the hook itself accounted to the pulse
//! self-overhead meter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use drms_obs::{Phase, Recorder};

use crate::ring::{Drained, Payload, Ring};

/// Routes every [`Recorder`] hook into bounded per-task rings.
///
/// Hooks that carry a rank (`span_*`, `event`, `counter_add*`) go to that
/// rank's ring; message hooks go to the sender's/receiver's ring; reports
/// with no rank of their own (gauges, server intervals) go to ring 0,
/// which in this runtime is fed by the control plane and the rank-0 task —
/// the threads that produce those reports.
///
/// Every hook body is timed with the host clock and accumulated into an
/// atomic nanosecond counter, so pulse's own cost is a first-class metric
/// rather than an invisible tax (see `Pulse::overhead_seconds`).
pub struct PulseRecorder {
    rings: Vec<Ring>,
    overhead_ns: AtomicU64,
}

impl PulseRecorder {
    /// Rings for `ntasks` tasks, each bounded to `ring_capacity` samples.
    pub(crate) fn new(ntasks: usize, ring_capacity: usize) -> Arc<PulseRecorder> {
        let n = ntasks.max(1);
        Arc::new(PulseRecorder {
            rings: (0..n).map(|_| Ring::new(ring_capacity)).collect(),
            overhead_ns: AtomicU64::new(0),
        })
    }

    fn ring(&self, rank: usize) -> &Ring {
        &self.rings[rank.min(self.rings.len() - 1)]
    }

    fn timed(&self, f: impl FnOnce()) {
        let t0 = Instant::now();
        f();
        self.overhead_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Host seconds spent inside recorder hooks so far.
    pub(crate) fn overhead_seconds(&self) -> f64 {
        self.overhead_ns.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Drains every ring, in rank order.
    pub(crate) fn drain_all(&self) -> Vec<Drained> {
        self.rings.iter().map(|r| r.drain()).collect()
    }
}

impl Recorder for PulseRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn span_start(&self, t: f64, rank: usize, phase: Phase, _name: &str) {
        self.timed(|| self.ring(rank).push(t, rank, Payload::SpanStart { phase }));
    }

    fn span_end(&self, t: f64, rank: usize, phase: Phase, _name: &str) {
        self.timed(|| self.ring(rank).push(t, rank, Payload::SpanEnd { phase }));
    }

    fn event(&self, t: f64, rank: usize, phase: Phase, _name: &str) {
        // Control-plane instants (the event log) carry a sequence number as
        // their pseudo-time, not a simulated clock; stamping them literally
        // would drag the ring's high-water mark — and with it the whole
        // window timeline — onto the sequence axis. Place them at the
        // ring's current mark instead.
        self.timed(|| {
            if phase == Phase::Control {
                self.ring(rank).push_at_hwm(rank, Payload::Event { phase });
            } else {
                self.ring(rank).push(t, rank, Payload::Event { phase });
            }
        });
    }

    fn msg_sent(&self, t: f64, src: usize, _dst: usize, _tag: u64, _corr: u64, bytes: u64) {
        self.timed(|| self.ring(src).push(t, src, Payload::MsgSent { bytes }));
    }

    fn msg_received(&self, t: f64, _src: usize, dst: usize, _tag: u64, _corr: u64) {
        self.timed(|| self.ring(dst).push(t, dst, Payload::MsgReceived));
    }

    fn server_interval(&self, server: usize, _name: &str, start: f64, end: f64) {
        // Rankless legacy spelling: attribute to ring 0 at the interval
        // start. Concurrent pricing paths use `server_interval_from`.
        self.timed(|| {
            self.ring(0).push(start, 0, Payload::ServerBusy { server, seconds: end - start })
        });
    }

    fn server_interval_from(&self, rank: usize, server: usize, _name: &str, start: f64, end: f64) {
        self.timed(|| {
            self.ring(rank).push(start, rank, Payload::ServerBusy { server, seconds: end - start })
        });
    }

    fn counter_add(&self, rank: usize, name: &'static str, _array: Option<&str>, delta: u64) {
        // No caller clock: place the increment at the ring's current
        // high-water mark (the newest simulated time this rank reported).
        self.timed(|| self.ring(rank).push_at_hwm(rank, Payload::Counter { name, delta }));
    }

    fn counter_add_at(
        &self,
        t: f64,
        rank: usize,
        name: &'static str,
        _array: Option<&str>,
        delta: u64,
    ) {
        self.timed(|| self.ring(rank).push(t, rank, Payload::Counter { name, delta }));
    }

    fn gauge_set(&self, name: &'static str, index: usize, value: f64) {
        self.timed(|| self.ring(0).push_at_hwm(0, Payload::Gauge { name, index, value }));
    }

    fn gauge_set_at(&self, t: f64, rank: usize, name: &'static str, index: usize, value: f64) {
        self.timed(|| self.ring(rank).push(t, rank, Payload::Gauge { name, index, value }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_obs::names;

    #[test]
    fn hooks_land_in_the_right_rings_and_are_metered() {
        let rec = PulseRecorder::new(3, 64);
        rec.span_start(1.0, 1, Phase::Segment, "seg");
        rec.span_end(2.0, 1, Phase::Segment, "seg");
        rec.counter_add_at(2.5, 2, names::COMMITS, None, 1);
        rec.counter_add(0, names::MSG_RETRIES, None, 1);
        rec.msg_sent(0.5, 2, 0, 7, 1, 64);
        rec.msg_received(0.9, 2, 0, 7, 1);
        rec.gauge_set(names::MEMTIER_REPLICAS, 0, 2.0);
        let drained = rec.drain_all();
        assert_eq!(drained[0].samples.len(), 3); // counter + msg_received + gauge
        assert_eq!(drained[1].samples.len(), 2); // span pair
        assert_eq!(drained[2].samples.len(), 2); // counter + msg_sent
        assert!(rec.overhead_seconds() > 0.0);
    }

    #[test]
    fn out_of_range_ranks_clamp_to_the_last_ring() {
        let rec = PulseRecorder::new(2, 64);
        rec.event(1.0, 99, Phase::Control, "e");
        let drained = rec.drain_all();
        assert_eq!(drained[1].samples.len(), 1);
    }
}
