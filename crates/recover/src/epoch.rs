//! Membership epochs and the collective recovery barrier.
//!
//! Every membership transition — a node loss handled locally, an explicit
//! shrink or grow — is stamped with a monotonically increasing *epoch*.
//! The epoch is agreed collectively at an SOP: each task contributes its
//! local view of which nodes failed, the views are merged
//! deterministically (union of failed nodes, maximum of epoch proposals),
//! and every task derives the identical survivor set from the merged view.
//! Tasks therefore never act on divergent membership: either the whole
//! region transitions to epoch *e + 1* with the same survivors, or none
//! does.

use drms_msg::Ctx;
use drms_obs::{names, Phase};

/// The agreed task membership of an SPMD region at some epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Epoch counter: 0 at job start, +1 per agreed transition.
    pub epoch: u64,
    /// Per-rank survival flags (`survivors[r]` — rank `r` still owns live
    /// data). Non-survivors keep running as replacement tasks with empty
    /// sections.
    pub survivors: Vec<bool>,
}

impl Membership {
    /// Epoch-0 membership: every task alive.
    pub fn initial(ntasks: usize) -> Membership {
        Membership { epoch: 0, survivors: vec![true; ntasks] }
    }

    /// The surviving ranks, ascending — the active set arrays re-partition
    /// onto.
    pub fn active(&self) -> Vec<usize> {
        (0..self.survivors.len()).filter(|&r| self.survivors[r]).collect()
    }

    /// The lost ranks, ascending.
    pub fn lost(&self) -> Vec<usize> {
        (0..self.survivors.len()).filter(|&r| !self.survivors[r]).collect()
    }
}

/// Collective, epoch-stamped recovery barrier: merges every task's view of
/// the failed nodes and returns the agreed next membership. Deterministic
/// by construction — the merged view is the union of all reported node
/// ids and the epoch is the maximum proposal, both order-independent —
/// so every task of the region computes bit-identical results. Records
/// the new epoch on the `recover.epoch` gauge and an instant event in the
/// recovery phase (rank 0).
pub fn recovery_barrier(ctx: &mut Ctx, prev: &Membership, failed_nodes: &[usize]) -> Membership {
    let proposal = (prev.epoch + 1, failed_nodes.to_vec());
    let (views, _) = ctx.exchange(proposal);
    let epoch = views.iter().map(|(e, _)| *e).max().unwrap_or(prev.epoch + 1);
    let mut failed: Vec<usize> = views.iter().flat_map(|(_, f)| f.iter().copied()).collect();
    failed.sort_unstable();
    failed.dedup();
    let survivors: Vec<bool> =
        (0..ctx.ntasks()).map(|r| prev.survivors[r] && !failed.contains(&ctx.node_of(r))).collect();
    if ctx.rank() == 0 && ctx.recorder().enabled() {
        let rec = ctx.recorder();
        rec.gauge_set_at(ctx.now(), 0, names::RECOVER_EPOCH, 0, epoch as f64);
        rec.event(ctx.now(), 0, Phase::Recover, &format!("recover:e{epoch}"));
    }
    Membership { epoch, survivors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_msg::{run_spmd, CostModel};

    #[test]
    fn initial_membership_is_everyone() {
        let m = Membership::initial(4);
        assert_eq!(m.epoch, 0);
        assert_eq!(m.active(), vec![0, 1, 2, 3]);
        assert!(m.lost().is_empty());
    }

    #[test]
    fn barrier_merges_divergent_views() {
        // Tasks map to nodes 0..4; only rank 2 saw node 1 fail, only rank 3
        // saw node 0 fail — everyone must agree both are gone.
        let out = run_spmd(4, CostModel::default(), |ctx| {
            let prev = Membership::initial(ctx.ntasks());
            let seen: &[usize] = match ctx.rank() {
                2 => &[1],
                3 => &[0],
                _ => &[],
            };
            recovery_barrier(ctx, &prev, seen)
        })
        .unwrap();
        for m in &out {
            assert_eq!(m.epoch, 1);
            assert_eq!(m.lost(), vec![0, 1]);
            assert_eq!(m.active(), vec![2, 3]);
        }
        assert!(out.windows(2).all(|w| w[0] == w[1]), "agreement is exact");
    }

    #[test]
    fn epochs_compose_across_transitions() {
        let out = run_spmd(3, CostModel::default(), |ctx| {
            let m0 = Membership::initial(ctx.ntasks());
            let m1 = recovery_barrier(ctx, &m0, &[2]);
            let m2 = recovery_barrier(ctx, &m1, &[0]);
            (m1, m2)
        })
        .unwrap();
        let (m1, m2) = &out[0];
        assert_eq!((m1.epoch, m2.epoch), (1, 2));
        assert_eq!(m1.active(), vec![0, 1]);
        // A rank lost at epoch 1 stays lost at epoch 2.
        assert_eq!(m2.active(), vec![1]);
        assert_eq!(m2.lost(), vec![0, 2]);
    }
}
