//! Text-table rendering helpers for the experiment binaries.

/// Renders an aligned text table: a header row plus data rows. Column
/// widths adapt to content.
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{c:>w$}", w = *w));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// SI megabytes, as the paper's tables use.
pub fn mb(bytes: u64) -> f64 {
    bytes as f64 / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_output() {
        let t = render(
            &["app", "value"],
            &[vec!["bt".into(), "147".into()], vec!["lu".into(), "9".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("app"));
        assert!(lines[2].ends_with("147"));
        assert!(lines[3].ends_with("  9"));
    }

    #[test]
    #[should_panic]
    fn ragged_rows_rejected() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }

    #[test]
    fn si_megabytes() {
        assert!((mb(84_000_000) - 84.0).abs() < 1e-9);
    }
}
