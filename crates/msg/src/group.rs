//! Survivor-group collectives: a shrunken communicator over a subset of a
//! region's tasks.
//!
//! An SPMD region's task count is fixed for its lifetime, but after a node
//! loss (or an explicit shrink) only a *subset* of the tasks owns live
//! data. A [`Group`] names that subset and provides the collectives the
//! localized-recovery protocol needs over it — barrier, byte allgather,
//! and agreement — implemented on top of the full-region
//! [`Ctx::alltoallv`] with non-members contributing empty buffers. Empty
//! buffers are free under the alltoallv cost model, so a group collective
//! prices exactly like a collective among the members, while every task of
//! the region still participates (keeping the region's collective schedule
//! well-formed — non-members are the "replacement tasks" of the paper's
//! recovery model, idling at the same rendezvous).

use crate::comm::Ctx;

/// An ordered subset of a region's ranks, acting as a communicator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    members: Vec<usize>,
}

impl Group {
    /// A group over the given ranks (sorted, deduplicated). Panics if
    /// empty — a communicator with no members cannot rendezvous.
    pub fn new(mut members: Vec<usize>) -> Group {
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "a group needs at least one member");
        Group { members }
    }

    /// The full region as a group.
    pub fn whole(ntasks: usize) -> Group {
        Group { members: (0..ntasks).collect() }
    }

    /// The member ranks, ascending.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Whether `rank` is a member.
    pub fn contains(&self, rank: usize) -> bool {
        self.members.binary_search(&rank).is_ok()
    }

    /// This rank's index within the group, if a member.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.members.binary_search(&rank).ok()
    }

    /// Collective over the *whole region*: synchronizes the group members
    /// (each pays one collective rendezvous with its peers); non-members
    /// pass through contributing nothing.
    pub fn barrier(&self, ctx: &mut Ctx) {
        self.allgather_bytes(ctx, vec![0u8]);
    }

    /// Collective over the *whole region*: gathers `data` from every
    /// member to every member, in member order. Non-members contribute
    /// empty buffers (free) and receive an empty result.
    pub fn allgather_bytes(&self, ctx: &mut Ctx, data: Vec<u8>) -> Vec<Vec<u8>> {
        let p = ctx.ntasks();
        let me_in = self.contains(ctx.rank());
        let mut outgoing = vec![Vec::new(); p];
        if me_in {
            for &m in &self.members {
                outgoing[m] = data.clone();
            }
        }
        let incoming = ctx.alltoallv(outgoing);
        if !me_in {
            return Vec::new();
        }
        self.members.iter().map(|&m| incoming.from(m).to_vec()).collect()
    }

    /// Collective over the *whole region*: every member contributes a
    /// `u64`; all members receive the element-wise list in member order.
    /// The building block for group agreement (checksum votes, epoch
    /// proposals). Non-members receive an empty vector.
    pub fn allgather_u64(&self, ctx: &mut Ctx, value: u64) -> Vec<u64> {
        self.allgather_bytes(ctx, value.to_le_bytes().to_vec())
            .into_iter()
            .map(|b| {
                let mut le = [0u8; 8];
                le.copy_from_slice(&b);
                u64::from_le_bytes(le)
            })
            .collect()
    }

    /// Collective over the *whole region*: whether every member
    /// contributed the same `u64` — the "same restored bytes" agreement of
    /// the recovery barrier. Non-members return `true` (they hold no data
    /// to disagree about).
    pub fn agree_u64(&self, ctx: &mut Ctx, value: u64) -> bool {
        let all = self.allgather_u64(ctx, value);
        all.iter().all(|&v| v == value) || !self.contains(ctx.rank())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::CostModel;
    use crate::runner::run_spmd;

    #[test]
    fn membership_queries() {
        let g = Group::new(vec![3, 1, 1, 5]);
        assert_eq!(g.members(), &[1, 3, 5]);
        assert_eq!(g.size(), 3);
        assert!(g.contains(3));
        assert!(!g.contains(0));
        assert_eq!(g.index_of(5), Some(2));
        assert_eq!(g.index_of(2), None);
        assert_eq!(Group::whole(3).members(), &[0, 1, 2]);
    }

    #[test]
    fn allgather_orders_by_member() {
        let vals = run_spmd(4, CostModel::default(), |ctx| {
            let g = Group::new(vec![0, 2, 3]);
            g.allgather_u64(ctx, 100 + ctx.rank() as u64)
        })
        .unwrap();
        assert_eq!(vals[0], vec![100, 102, 103]);
        assert_eq!(vals[2], vec![100, 102, 103]);
        assert_eq!(vals[3], vec![100, 102, 103]);
        assert!(vals[1].is_empty(), "non-member receives nothing");
    }

    #[test]
    fn agreement_detects_divergence() {
        let out = run_spmd(4, CostModel::default(), |ctx| {
            let g = Group::new(vec![1, 2]);
            let same = g.agree_u64(ctx, 7);
            let diff = g.agree_u64(ctx, if ctx.rank() == 2 { 9 } else { 7 });
            (same, diff)
        })
        .unwrap();
        assert!(out[1].0 && out[2].0);
        assert!(!out[1].1 && !out[2].1);
        // Non-members observe agreement vacuously.
        assert!(out[0].1 && out[3].1);
    }

    #[test]
    fn group_barrier_synchronizes_members() {
        run_spmd(3, CostModel::default(), |ctx| {
            if ctx.rank() == 1 {
                ctx.charge(0.25);
            }
            let g = Group::new(vec![0, 1]);
            g.barrier(ctx);
            if g.contains(ctx.rank()) {
                assert!(ctx.now() >= 0.25, "members wait for the slowest member");
            }
        })
        .unwrap();
    }
}
