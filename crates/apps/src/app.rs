//! The runnable mini-application: solver + checkpoint plumbing.

use drms_core::report::OpBreakdown;
use drms_core::segment::{DataSegment, RegionKind, SegmentAnatomy};
use drms_core::{spmd, CheckpointArray, CoreError, Drms, EnableFlag, Start};
use drms_darray::DistArray;
use drms_memtier::{MemTier, MemTierError, SpillReport, StoreReport, SEGMENT_FILE};
use drms_msg::Ctx;
use drms_piofs::Piofs;
use drms_slices::Order;

use crate::solver;
use crate::spec::AppSpec;

/// Which checkpointing scheme the application instance uses — the two
/// columns of Tables 3 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppVariant {
    /// Reconfigurable DRMS checkpointing (one segment + array streams).
    Drms,
    /// Conventional SPMD checkpointing (every task dumps its segment).
    Spmd,
}

/// One task's instance of a running mini-application.
pub struct MiniApp {
    spec: AppSpec,
    variant: AppVariant,
    drms: Drms,
    seg: DataSegment,
    fields: Vec<DistArray<f64>>,
    iter: i64,
    spmd_sop: u64,
    /// Breakdown of the restart that produced this instance, if any.
    pub restart_report: Option<OpBreakdown>,
}

impl MiniApp {
    /// Starts (or restarts) the application on the current SPMD region.
    ///
    /// This is the Figure 1 skeleton: `drms_initialize`, distributed-array
    /// declaration/distribution, and — on restart — state reload with
    /// `drms_adjust`-style redistribution when the task count changed.
    pub fn start(
        ctx: &mut Ctx,
        fs: &Piofs,
        spec: AppSpec,
        variant: AppVariant,
        enable: EnableFlag,
        restart_from: Option<&str>,
    ) -> Result<MiniApp, CoreError> {
        let cfg = spec.drms_config();

        // The task's resident set: what the node's memory ledger sees.
        fs.set_residency(ctx.node(), spec.expected_segment_bytes());

        // Base segment: system buffers, private/replicated data, parameters.
        let mut seg = DataSegment::new();
        seg.set_region(
            "msgbuf",
            RegionKind::SystemBuffers,
            vec![0xA5; spec.system_bytes() as usize],
        );
        seg.set_region(
            "work-arrays",
            RegionKind::PrivateData,
            vec![0x5C; spec.private_bytes() as usize],
        );
        seg.set_replicated_f64("grid", spec.grid() as f64);
        seg.set_control("iter", 0);

        let mut app = match variant {
            AppVariant::Drms => {
                let (drms, start) = Drms::initialize(ctx, fs, cfg, enable, restart_from)?;
                let mut fields = make_fields(&spec, ctx);
                match start {
                    Start::Fresh => {
                        fill_fresh(&mut fields);
                        MiniApp {
                            spec,
                            variant,
                            drms,
                            seg,
                            fields,
                            iter: 0,
                            spmd_sop: 0,
                            restart_report: None,
                        }
                    }
                    Start::Restarted(info) => {
                        let iter = info.segment.control("iter").unwrap_or(0);
                        let mut handles: Vec<&mut dyn CheckpointArray> =
                            fields.iter_mut().map(|f| f as &mut dyn CheckpointArray).collect();
                        let arrays_time = drms.restore_arrays(
                            ctx,
                            fs,
                            restart_from.expect("restarted implies prefix"),
                            &info.manifest,
                            &mut handles,
                        )?;
                        // Every task reads the whole shared segment file,
                        // so the bytes *moved* in the segment phase are
                        // ntasks x file size — the quantity behind the
                        // paper's aggregate restore rates (29 -> 55 MB/s).
                        let seg_file = fs
                            .size(&drms_core::manifest::segment_path(restart_from.unwrap()))
                            .unwrap_or(0);
                        let report = OpBreakdown {
                            init: info.init_time,
                            segment: info.segment_time,
                            arrays: arrays_time,
                            segment_bytes: seg_file * ctx.ntasks() as u64,
                            array_bytes: spec.stream_bytes(),
                        };
                        MiniApp {
                            spec,
                            variant,
                            drms,
                            seg: info.segment,
                            fields,
                            iter,
                            spmd_sop: 0,
                            restart_report: Some(report),
                        }
                    }
                }
            }
            AppVariant::Spmd => {
                let (drms, _) = Drms::initialize(ctx, fs, cfg.clone(), enable, None)?;
                let mut fields = make_fields(&spec, ctx);
                match restart_from {
                    None => {
                        fill_fresh(&mut fields);
                        MiniApp {
                            spec,
                            variant,
                            drms,
                            seg,
                            fields,
                            iter: 0,
                            spmd_sop: 0,
                            restart_report: None,
                        }
                    }
                    Some(prefix) => {
                        let (restored, report) = spmd::restart(ctx, fs, &cfg, prefix)?;
                        let iter = restored.control("iter").unwrap_or(0);
                        let blob = restored
                            .region("local-sections")
                            .ok_or_else(|| {
                                CoreError::ManifestMismatch(
                                    "SPMD segment lacks local sections".into(),
                                )
                            })?
                            .bytes
                            .clone();
                        let mut handles: Vec<&mut dyn CheckpointArray> =
                            fields.iter_mut().map(|f| f as &mut dyn CheckpointArray).collect();
                        drms_core::decode_locals(&mut handles, &blob)?;
                        MiniApp {
                            spec,
                            variant,
                            drms,
                            seg: restored,
                            fields,
                            iter,
                            spmd_sop: 0,
                            restart_report: Some(report),
                        }
                    }
                }
            }
        };
        app.seg.set_control("iter", app.iter);
        Ok(app)
    }

    /// The application spec.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// The running variant.
    pub fn variant(&self) -> AppVariant {
        self.variant
    }

    /// Completed iterations.
    pub fn iter(&self) -> i64 {
        self.iter
    }

    /// The distributed fields (primary solution first).
    pub fn fields(&self) -> &[DistArray<f64>] {
        &self.fields
    }

    /// One solver iteration (collective).
    pub fn step(&mut self, ctx: &mut Ctx) {
        self.iter += 1;
        solver::step(ctx, &mut self.fields, self.iter);
        self.seg.set_control("iter", self.iter);
    }

    /// Takes a checkpoint under `prefix` using the variant's scheme
    /// (collective). Returns the phase breakdown.
    pub fn checkpoint(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        prefix: &str,
    ) -> Result<OpBreakdown, CoreError> {
        let handles: Vec<&dyn CheckpointArray> =
            self.fields.iter().map(|f| f as &dyn CheckpointArray).collect();
        match self.variant {
            AppVariant::Drms => self.drms.reconfig_checkpoint(ctx, fs, prefix, &self.seg, &handles),
            AppVariant::Spmd => {
                self.spmd_sop += 1;
                spmd::checkpoint(
                    ctx,
                    fs,
                    self.drms.cfg(),
                    prefix,
                    &self.seg,
                    &handles,
                    self.spmd_sop,
                )
            }
        }
    }

    /// Takes a diskless checkpoint into the memory tier (collective): the
    /// same canonical streams `checkpoint` would write to PIOFS are kept
    /// resident and replicated across nodes, and — when `spill` is set —
    /// persisted to the exact PIOFS files the direct path would have
    /// produced, verified end-to-end. DRMS variant only (the tier stores
    /// distribution-independent streams, which the SPMD scheme lacks).
    pub fn checkpoint_memtier(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        tier: &MemTier,
        prefix: &str,
        spill: bool,
    ) -> Result<(StoreReport, Option<SpillReport>), MemTierError> {
        assert_eq!(
            self.variant,
            AppVariant::Drms,
            "memory-tier checkpoints require the DRMS variant"
        );
        let handles: Vec<&dyn CheckpointArray> =
            self.fields.iter().map(|f| f as &dyn CheckpointArray).collect();
        let store =
            drms_memtier::store_checkpoint(ctx, tier, prefix, &mut self.drms, &self.seg, &handles)?;
        let spilled =
            if spill { Some(drms_memtier::spill_checkpoint(ctx, fs, tier, prefix)?) } else { None };
        Ok((store, spilled))
    }

    /// Restarts the application out of the memory tier (collective): the
    /// diskless counterpart of [`MiniApp::start`] with a restart prefix.
    /// The tier entry under `prefix` must be intact for the surviving node
    /// set; segment and array bytes are served from resident pieces at
    /// memory/interconnect speed instead of PIOFS. Always a restart — the
    /// returned instance carries a `restart_report`.
    pub fn start_memtier(
        ctx: &mut Ctx,
        fs: &Piofs,
        tier: &MemTier,
        spec: AppSpec,
        enable: EnableFlag,
        prefix: &str,
    ) -> Result<MiniApp, MemTierError> {
        let cfg = spec.drms_config();
        fs.set_residency(ctx.node(), spec.expected_segment_bytes());

        let (drms, info) = drms_memtier::resume_from_tier(ctx, fs, tier, cfg, enable, prefix)?;
        let mut fields = make_fields(&spec, ctx);
        let iter = info.segment.control("iter").unwrap_or(0);
        let mut handles: Vec<&mut dyn CheckpointArray> =
            fields.iter_mut().map(|f| f as &mut dyn CheckpointArray).collect();
        let arrays_time = drms_memtier::restore_arrays_from_tier(
            ctx,
            tier,
            &drms,
            prefix,
            &info.manifest,
            &mut handles,
        )?;
        // Every task consumes the whole shared segment, so segment bytes
        // moved are ntasks x segment size, as on the PIOFS restart path.
        let seg_len = tier.file_len(prefix, SEGMENT_FILE)?;
        let report = OpBreakdown {
            init: info.init_time,
            segment: info.segment_time,
            arrays: arrays_time,
            segment_bytes: seg_len * ctx.ntasks() as u64,
            array_bytes: spec.stream_bytes(),
        };
        let mut app = MiniApp {
            spec,
            variant: AppVariant::Drms,
            drms,
            seg: info.segment,
            fields,
            iter,
            spmd_sop: 0,
            restart_report: Some(report),
        };
        app.seg.set_control("iter", app.iter);
        Ok(app)
    }

    /// System-enabled checkpoint (`drms_reconfig_chkenable`); DRMS variant
    /// only — returns `Ok(None)` for the SPMD variant (the facility does
    /// not exist there) or when the enable signal is down.
    pub fn checkpoint_if_enabled(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        prefix: &str,
    ) -> Result<Option<OpBreakdown>, CoreError> {
        if self.variant != AppVariant::Drms {
            return Ok(None);
        }
        let handles: Vec<&dyn CheckpointArray> =
            self.fields.iter().map(|f| f as &dyn CheckpointArray).collect();
        self.drms.reconfig_chkenable(ctx, fs, prefix, &self.seg, &handles)
    }

    /// Global residual diagnostic (collective).
    pub fn residual(&self, ctx: &mut Ctx) -> f64 {
        solver::residual(ctx, &self.fields)
    }

    /// Collects every assigned element of every field, tagged by field
    /// index and point — the ground truth for bitwise comparisons.
    pub fn snapshot_assigned(&self) -> Vec<((usize, Vec<i64>), f64)> {
        let mut out = Vec::new();
        for (fi, f) in self.fields.iter().enumerate() {
            f.fold_assigned((), |_, p, v| out.push(((fi, p.to_vec()), v)));
        }
        out
    }

    /// The Table 4 anatomy of this task's data segment, including the
    /// (fixed-size) local-sections region as it would be checkpointed.
    pub fn segment_anatomy(&self) -> SegmentAnatomy {
        let mut a = self.seg.anatomy();
        let actual: u64 = self.fields.iter().map(|f| f.local_bytes() as u64).sum();
        let local = actual.max(self.spec.fixed_local_bytes());
        a.local_sections += local;
        // name + kind + blob framing for the extra region
        a.total += 4 + "local-sections".len() as u64 + 1 + 8 + local;
        a
    }
}

fn make_fields(spec: &AppSpec, ctx: &Ctx) -> Vec<DistArray<f64>> {
    spec.fields
        .iter()
        .map(|f| {
            DistArray::new(&f.name, Order::ColumnMajor, spec.dist(f, ctx.ntasks()), ctx.rank())
        })
        .collect()
}

fn fill_fresh(fields: &mut [DistArray<f64>]) {
    for (fi, f) in fields.iter_mut().enumerate() {
        f.fill_mapped(|p| solver::initial_value(fi, p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bt, lu, sp, Class};
    use drms_msg::{run_spmd, CostModel};
    use drms_piofs::PiofsConfig;
    use std::sync::Arc;

    fn fs() -> Arc<Piofs> {
        Piofs::new(PiofsConfig::test_tiny(8), 17)
    }

    fn run_app(
        fs: &Arc<Piofs>,
        spec: AppSpec,
        variant: AppVariant,
        ntasks: usize,
        restart_from: Option<&str>,
        ckpt_at: Option<(i64, &str)>,
        end_iter: i64,
    ) -> Vec<((usize, Vec<i64>), f64)> {
        let out = run_spmd(ntasks, CostModel::default(), |ctx| {
            let mut app =
                MiniApp::start(ctx, fs, spec.clone(), variant, EnableFlag::new(), restart_from)
                    .unwrap();
            while app.iter() < end_iter {
                app.step(ctx);
                if let Some((at, prefix)) = ckpt_at {
                    if app.iter() == at {
                        app.checkpoint(ctx, fs, prefix).unwrap();
                    }
                }
            }
            app.snapshot_assigned()
        })
        .unwrap();
        let mut all: Vec<((usize, Vec<i64>), f64)> = out.into_iter().flatten().collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    #[test]
    fn drms_reconfigured_restart_bitwise_exact_all_apps() {
        for spec_fn in [bt as fn(Class) -> AppSpec, lu, sp] {
            let spec = spec_fn(Class::T);
            let name = spec.name;
            let reference = run_app(&fs(), spec.clone(), AppVariant::Drms, 4, None, None, 6);

            let f = fs();
            Drms::install_binary(&f, &spec.drms_config());
            run_app(&f, spec.clone(), AppVariant::Drms, 4, None, Some((3, "ck/x")), 3);
            let resumed = run_app(&f, spec.clone(), AppVariant::Drms, 3, Some("ck/x"), None, 6);
            assert_eq!(reference.len(), resumed.len(), "{name}");
            for (a, b) in reference.iter().zip(&resumed) {
                assert_eq!(a.0, b.0, "{name}");
                assert!(a.1 == b.1, "{name} point {:?}: {} vs {}", a.0, a.1, b.1);
            }
        }
    }

    #[test]
    fn memtier_restart_bitwise_exact_and_spill_matches_direct_path() {
        let spec = bt(Class::T);
        let reference = run_app(&fs(), spec.clone(), AppVariant::Drms, 4, None, None, 6);

        // Direct PIOFS checkpoint at the same point, for the bitwise
        // spill comparison.
        let fd = fs();
        Drms::install_binary(&fd, &spec.drms_config());
        run_app(&fd, spec.clone(), AppVariant::Drms, 4, None, Some((3, "ck/x")), 3);

        // Same run, but the checkpoint goes through the memory tier and
        // spills to PIOFS.
        let f = fs();
        Drms::install_binary(&f, &spec.drms_config());
        let tier = MemTier::new(1);
        run_spmd(4, CostModel::default(), |ctx| {
            let mut app =
                MiniApp::start(ctx, &f, spec.clone(), AppVariant::Drms, EnableFlag::new(), None)
                    .unwrap();
            while app.iter() < 3 {
                app.step(ctx);
            }
            let (store, spill) = app.checkpoint_memtier(ctx, &f, &tier, "ck/x", true).unwrap();
            assert!(store.bytes > 0 && store.replica_bytes > 0);
            assert!(spill.unwrap().bytes > 0);
        })
        .unwrap();

        // The spill produced the exact files the direct path writes.
        let direct: Vec<String> = fd.list("ck/x/").into_iter().map(|i| i.path).collect();
        let spilled: Vec<String> = f.list("ck/x/").into_iter().map(|i| i.path).collect();
        assert_eq!(direct, spilled);
        for path in &direct {
            assert_eq!(fd.peek(path), f.peek(path), "{path} differs from direct checkpoint");
        }

        // Restart out of the tier on a smaller region; bitwise-exact.
        let out = run_spmd(3, CostModel::default(), |ctx| {
            let mut app =
                MiniApp::start_memtier(ctx, &f, &tier, spec.clone(), EnableFlag::new(), "ck/x")
                    .unwrap();
            assert_eq!(app.iter(), 3);
            assert!(app.restart_report.as_ref().unwrap().arrays > 0.0);
            while app.iter() < 6 {
                app.step(ctx);
            }
            app.snapshot_assigned()
        })
        .unwrap();
        let mut resumed: Vec<((usize, Vec<i64>), f64)> = out.into_iter().flatten().collect();
        resumed.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(reference.len(), resumed.len());
        for (a, b) in reference.iter().zip(&resumed) {
            assert_eq!(a.0, b.0);
            assert!(a.1 == b.1, "point {:?}: {} vs {}", a.0, a.1, b.1);
        }
    }

    #[test]
    fn spmd_restart_same_tasks_bitwise_exact() {
        let spec = bt(Class::T);
        let reference = run_app(&fs(), spec.clone(), AppVariant::Spmd, 4, None, None, 6);
        let f = fs();
        Drms::install_binary(&f, &spec.drms_config());
        run_app(&f, spec.clone(), AppVariant::Spmd, 4, None, Some((3, "ck/s")), 3);
        let resumed = run_app(&f, spec.clone(), AppVariant::Spmd, 4, Some("ck/s"), None, 6);
        assert_eq!(reference, resumed);
    }

    #[test]
    fn spmd_restart_other_task_count_fails() {
        let spec = sp(Class::T);
        let f = fs();
        run_app(&f, spec.clone(), AppVariant::Spmd, 4, None, Some((2, "ck/s")), 2);
        let errs = run_spmd(2, CostModel::default(), |ctx| {
            MiniApp::start(ctx, &f, spec.clone(), AppVariant::Spmd, EnableFlag::new(), Some("ck/s"))
                .err()
                .map(|e| e.to_string())
        })
        .unwrap();
        assert!(errs[0].as_ref().unwrap().contains("cannot restart with 2"));
    }

    #[test]
    fn anatomy_reflects_spec() {
        let spec = lu(Class::S);
        let f = fs();
        let anatomies = run_spmd(4, CostModel::default(), |ctx| {
            let app =
                MiniApp::start(ctx, &f, spec.clone(), AppVariant::Drms, EnableFlag::new(), None)
                    .unwrap();
            app.segment_anatomy()
        })
        .unwrap();
        let a = anatomies[0];
        assert_eq!(a.system, spec.system_bytes());
        assert!(a.private_replicated >= spec.private_bytes());
        assert!(a.local_sections >= spec.fixed_local_bytes());
        assert!(a.total > a.system + a.private_replicated);
    }

    #[test]
    fn drms_saved_state_independent_of_tasks_spmd_grows() {
        let spec = sp(Class::T);
        let mut drms_sizes = Vec::new();
        let mut spmd_sizes = Vec::new();
        // Task counts at or above the compiled minimum (4), like the paper.
        for p in [4usize, 8] {
            let f = fs();
            run_app(&f, spec.clone(), AppVariant::Drms, p, None, Some((1, "ck/d")), 1);
            drms_sizes.push(f.total_bytes("ck/d/"));
            let f = fs();
            run_app(&f, spec.clone(), AppVariant::Spmd, p, None, Some((1, "ck/s")), 1);
            spmd_sizes.push(f.total_bytes("ck/s/"));
        }
        // DRMS: constant (manifest bytes differ by a few bytes at most).
        let drift = (drms_sizes[0] as f64 - drms_sizes[1] as f64).abs() / drms_sizes[0] as f64;
        assert!(drift < 0.001, "DRMS sizes {drms_sizes:?}");
        // SPMD: linear in tasks.
        let ratio = spmd_sizes[1] as f64 / spmd_sizes[0] as f64;
        assert!(ratio > 1.9 && ratio < 2.1, "SPMD sizes {spmd_sizes:?}");
    }
}
