//! The shadow-region accounting model of Section 6 of the paper.
//!
//! A grid-based computation over an `N^d` grid partitioned onto `P = p^d`
//! tasks gives each task an `n^d` section, `n = N/p`, padded by a shadow of
//! width `gamma` along each split edge. Task-local ("local-view")
//! checkpointing must save the padded sections; global-view checkpointing
//! (DRMS, HPF) saves exactly the `N^d` grid. The ratio of grid points saved
//! is `r = (n + 2*gamma)^d / n^d`, which grows as `P` grows at fixed `N`.

use crate::Distribution;

/// Analytic ratio `r = ((n + 2*gamma) / n)^d` of local-view to global-view
/// checkpoint size for per-task section edge `n`, shadow width `gamma`, and
/// dimensionality `d`.
pub fn shadow_ratio(n: f64, gamma: f64, d: u32) -> f64 {
    ((n + 2.0 * gamma) / n).powi(d as i32)
}

/// Analytic ratio as a function of the global edge `n_global`, task count
/// `p` (assumed organized as a `d`-dimensional grid), shadow width, and
/// dimensionality: `n = n_global / p^(1/d)`.
pub fn shadow_ratio_for_tasks(n_global: f64, p: usize, gamma: f64, d: u32) -> f64 {
    let n = n_global / (p as f64).powf(1.0 / d as f64);
    shadow_ratio(n, gamma, d)
}

/// Extra bytes a local-view checkpoint saves relative to the global view,
/// for `fields` arrays of `elem_size`-byte elements over an `n_global^d`
/// grid on `p` tasks.
pub fn extra_bytes(
    n_global: f64,
    p: usize,
    gamma: f64,
    d: u32,
    fields: f64,
    elem_size: f64,
) -> f64 {
    let grid_points = n_global.powi(d as i32);
    let r = shadow_ratio_for_tasks(n_global, p, gamma, d);
    grid_points * fields * elem_size * (r - 1.0)
}

/// Measured ratio of a concrete distribution: mapped storage over domain
/// size. This is what a real local-view checkpoint of that distribution
/// would save relative to the DRMS global view.
pub fn measured_ratio(dist: &Distribution) -> f64 {
    dist.mapped_elements() as f64 / dist.domain().size() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_slices::Slice;

    #[test]
    fn paper_cfd_example() {
        // Section 6: n = 32, gamma = 2, d = 3 gives r ~ 1.42 (the paper
        // rounds the discussion to "1.38 times more data").
        let r = shadow_ratio(32.0, 2.0, 3);
        assert!((r - 1.4238).abs() < 1e-3, "r = {r}");
    }

    #[test]
    fn paper_bt_class_c_example() {
        // BT class C: 162^3 grid on 125 (= 5^3) processors, ~8 fields of
        // 5-component f64: local view saves roughly 500 MB more.
        let extra = extra_bytes(162.0, 125, 2.0, 3, 8.0 * 5.0, 8.0);
        let mb = extra / (1024.0 * 1024.0);
        assert!(mb > 400.0 && mb < 700.0, "extra = {mb} MB");
    }

    #[test]
    fn ratio_grows_with_tasks_at_fixed_n() {
        let r8 = shadow_ratio_for_tasks(64.0, 8, 1.0, 3);
        let r64 = shadow_ratio_for_tasks(64.0, 64, 1.0, 3);
        let r512 = shadow_ratio_for_tasks(64.0, 512, 1.0, 3);
        assert!(r8 < r64 && r64 < r512, "{r8} {r64} {r512}");
    }

    #[test]
    fn no_shadow_no_overhead() {
        assert_eq!(shadow_ratio(10.0, 0.0, 3), 1.0);
        assert_eq!(shadow_ratio_for_tasks(100.0, 8, 0.0, 2), 1.0);
    }

    #[test]
    fn measured_matches_analytic_for_interior_blocks() {
        // An 8x8 grid split 2x2 with shadow 1: analytic over-counts at the
        // domain boundary (real mapped sections clip), so measured <=
        // analytic.
        let dom = Slice::boxed(&[(0, 63), (0, 63)]);
        let dist = Distribution::block(&dom, &[2, 2], &[1, 1]).unwrap();
        let measured = measured_ratio(&dist);
        let analytic = shadow_ratio(32.0, 1.0, 2);
        assert!(measured > 1.0);
        // Real blocks clip their shadows at the domain boundary, so each
        // 2x2 block carries a shadow on one side per axis only: exactly
        // (33/32)^2, strictly below the interior-task analytic bound.
        assert!(measured < analytic, "measured {measured} analytic {analytic}");
        assert!((measured - (33.0f64 / 32.0).powi(2)).abs() < 1e-12);
    }
}
