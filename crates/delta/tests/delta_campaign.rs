//! Crash-point campaign over the incremental checkpoint's two-phase
//! commit: for every enumerated checkpoint-side crash point, armed during
//! the *second* link of a delta chain, the half-staged delta is never a
//! restart source, recovery falls back to the newest fully-committed link,
//! and the recomputed final state is bitwise identical to the uninterrupted
//! run.

use std::sync::Arc;

use drms_chaos::{ChaosCtl, CrashPoint, FaultPlan, MsgFaults, PiofsFaults};
use drms_core::segment::DataSegment;
use drms_core::{
    checkpoint_is_valid, find_checkpoints, sweep_orphans, CoreError, Drms, DrmsConfig, EnableFlag,
    Start,
};
use drms_darray::{DistArray, Distribution};
use drms_delta::{delta_checkpoint, restore_arrays_delta, resume, DeltaChain, DeltaConfig};
use drms_msg::{run_spmd, run_spmd_chaos, CostModel};
use drms_obs::NullRecorder;
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};

const APP: &str = "camp";
const NTASKS: usize = 4;
const NITER: i64 = 9;
const CKPT_EVERY: i64 = 3; // delta links at iterations 3, 6, 9
const N: i64 = 2048;
const BAND: i64 = 256;

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(8), 17)
}

fn cfg() -> DrmsConfig {
    DrmsConfig::new(APP)
}

fn dcfg() -> DeltaConfig {
    DeltaConfig { chunk_bytes: 1024, full_every: 8, compress: true }
}

fn domain() -> Slice {
    Slice::boxed(&[(1, N)])
}

fn touched(p: &[i64], iter: i64) -> bool {
    (p[0] - 1) / BAND == iter % (N / BAND)
}

fn truth(p: &[i64], iter: i64) -> f64 {
    let mut v = (p[0] * 7 + 2) as f64;
    for t in 1..=iter {
        if touched(p, t) {
            v += 0.25;
        }
    }
    v
}

fn reference() -> f64 {
    let mut total = 0.0;
    domain().points(Order::ColumnMajor).for_each(|p| total += truth(p, NITER));
    total
}

/// One incarnation: initialize (fresh or from `restart_from`), iterate to
/// `NITER` with a delta checkpoint every `CKPT_EVERY`, die cleanly on an
/// injected crash. Returns the global final sum when the incarnation
/// completed, `None` when it crashed.
fn incarnation(
    f: &Arc<Piofs>,
    ctl: Option<Arc<ChaosCtl>>,
    restart_from: Option<&str>,
) -> Option<f64> {
    let body = |ctx: &mut drms_msg::Ctx| {
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        let mut chain;
        let mut drms = match restart_from {
            None => {
                let (drms, _) = Drms::initialize(ctx, f, cfg(), EnableFlag::new(), None).unwrap();
                chain = DeltaChain::new();
                u.fill_assigned(|p| truth(p, 0));
                drms
            }
            Some(prefix) => {
                let (drms, start) = resume(ctx, f, cfg(), EnableFlag::new(), prefix).unwrap();
                let Start::Restarted(info) = start else { panic!("expected restart") };
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                restore_arrays_delta(&drms, ctx, f, prefix, &info.manifest, &mut [&mut u]).unwrap();
                chain = DeltaChain::recover(prefix, &info.manifest).unwrap();
                drms
            }
        };
        for iter in start_iter..=NITER {
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                if touched(p, iter) {
                    let v = u.get(p).unwrap();
                    u.set(p, v + 0.25).unwrap();
                }
            });
            seg.set_control("iter", iter);
            if iter % CKPT_EVERY == 0 {
                match delta_checkpoint(
                    &mut drms,
                    &mut chain,
                    &dcfg(),
                    ctx,
                    f,
                    &format!("ck/c{iter}"),
                    &seg,
                    &[&u],
                ) {
                    Ok(_) => {}
                    Err(CoreError::Interrupted(_)) => return None,
                    Err(e) => panic!("checkpoint failed: {e}"),
                }
            }
        }
        Some(u.fold_assigned(0.0, |acc, _, v| acc + v))
    };
    let sums = match ctl {
        Some(ctl) => {
            run_spmd_chaos(NTASKS, CostModel::default(), Arc::new(NullRecorder), ctl, body).unwrap()
        }
        None => run_spmd(NTASKS, CostModel::default(), body).unwrap(),
    };
    let mut total = 0.0;
    for s in sums {
        total += s?;
    }
    Some(total)
}

/// Newest committed checkpoint of the app, by SOP.
fn newest(f: &Arc<Piofs>) -> Option<String> {
    find_checkpoints(f, Some(APP)).first().map(|(p, _)| p.clone())
}

#[test]
fn crash_point_sweep_over_delta_commits() {
    let reference = reference();
    let ckpt_points = [
        CrashPoint::CkptEnter,
        CrashPoint::CkptAfterSegment,
        CrashPoint::CkptAfterArray,
        CrashPoint::CkptStagedManifest,
        CrashPoint::CkptMidPublish,
        CrashPoint::CkptCommitted,
    ];
    for point in ckpt_points {
        // Arm the crash at the point's second consultation — during the
        // second link, so a committed first link exists to fall back to.
        let ctl = ChaosCtl::new(FaultPlan { crash: Some((point, 2)), ..FaultPlan::seeded(23) });
        let f = fs();
        let first = incarnation(&f, Some(Arc::clone(&ctl)), None);
        assert!(ctl.crash_fired(), "{point}: armed crash never fired");
        assert_eq!(first, None, "{point}: crashed incarnation completed");

        // A half-staged delta is never a restart source: nothing under a
        // staging prefix is discoverable, and every discoverable
        // checkpoint verifies in full (chunk refs included).
        let found = find_checkpoints(&f, Some(APP));
        for (prefix, _) in &found {
            assert!(!prefix.contains(".tmp"), "{point}: staged {prefix:?} discoverable");
            assert!(checkpoint_is_valid(&f, prefix), "{point}: {prefix:?} invalid");
        }
        // Fallback is the newest *fully committed* link: the first link
        // always, plus the second exactly when the crash hit after its
        // commit point.
        let expect = if point == CrashPoint::CkptCommitted { "ck/c6" } else { "ck/c3" };
        let from = newest(&f).expect("a committed fallback must exist");
        assert_eq!(from, expect, "{point}: wrong fallback");

        // Reclaiming the crashed attempt's staging never breaks the
        // surviving chain.
        sweep_orphans(&f);
        assert!(checkpoint_is_valid(&f, &from), "{point}: sweep broke the fallback");

        // Second incarnation restarts from the fallback (recovering the
        // chain from its manifest) and lands bitwise on the reference.
        let total = incarnation(&f, None, Some(&from))
            .unwrap_or_else(|| panic!("{point}: recovery incarnation crashed"));
        assert_eq!(total, reference, "{point}: recovered state diverged");
    }
}

#[test]
fn delta_chain_survives_transient_weather() {
    // Transient message/I-O faults (no crash): the chain commits through
    // retries, deterministically per seed.
    let plan = FaultPlan {
        msg: MsgFaults { drop_prob: 0.2, dup_prob: 0.1, max_extra_latency: 1e-4 },
        piofs: PiofsFaults { transient_prob: 0.2, torn: None },
        ..FaultPlan::seeded(29)
    };
    let f1 = fs();
    let ctl1 = ChaosCtl::new(plan.clone());
    let t1 = incarnation(&f1, Some(Arc::clone(&ctl1)), None).expect("weather run crashed");
    assert!(ctl1.retries() > 0, "weather plan injected no faults");
    assert_eq!(t1, reference(), "weather run diverged");

    let f2 = fs();
    let ctl2 = ChaosCtl::new(plan);
    let t2 = incarnation(&f2, Some(ctl2), None).expect("weather rerun crashed");
    assert_eq!(t1, t2, "weather run is nondeterministic");
    for (prefix, _) in find_checkpoints(&f2, Some(APP)) {
        assert!(checkpoint_is_valid(&f2, &prefix), "{prefix:?} invalid after weather");
    }
}
