//! Incremental (differential) checkpointing for the DRMS model.
//!
//! A reconfigurable checkpoint's cost is dominated by streaming every
//! distributed array in full. Iterative applications rarely change every
//! byte between checkpoints — and the paper's Section 6 already argues for
//! skipping regions "not updated since the last checkpoint". This crate
//! carries that idea to chunk granularity over the *distribution-
//! independent* stream, which is the representation that makes the
//! optimization task-count-proof:
//!
//! * each array's canonical stream is cut into fixed-size chunks (the
//!   shared [`drms_darray::chunks::ChunkParams`] geometry, by default the
//!   same chunk size integrity CRCs use);
//! * a chunk whose 128-bit content hash is unchanged since the last
//!   *committed* checkpoint is carried forward as a one-hop **reference**
//!   to the incarnation that stores it — no bytes written;
//! * a dirty chunk whose content already exists anywhere in the committed
//!   chain (or earlier in this very checkpoint) is **deduplicated** into a
//!   reference as well;
//! * remaining chunks are optionally compressed (per chunk, only when the
//!   codec strictly wins) and appended to the checkpoint's pack file;
//! * every [`DeltaConfig::full_every`]-th checkpoint is a **full rewrite**,
//!   bounding the chain a restart must reach through.
//!
//! The manifest (v3) records one self-contained [`ChunkRecord`] per chunk
//! — hash, lengths, codec, offset, and source pack — so restore and
//! garbage collection never chase manifests transitively: restart
//! materializes any chain bitwise with one pack read per chunk
//! ([`restore_arrays_delta`], [`materialize_stream`]), the orphan sweep
//! marks referenced packs straight from the chunk tables, and retention
//! *uncommits* (rather than deletes) incarnations whose packs are still
//! referenced.
//!
//! Commit safety composes with the two-phase protocol of
//! [`drms_core::commit`]: packs stage under `{prefix}.tmp`, the manifest
//! rename is the single commit point, the [`DeltaChain`]'s own state is
//! two-phase (staged digests promote only after the rename), and a delta
//! never commits a reference to an incarnation that is no longer committed
//! — a missing reference escalates to a local write instead.
//!
//! [`ChunkRecord`]: drms_core::manifest::ChunkRecord

#![deny(missing_docs)]

mod chain;
mod checkpoint;
mod restore;

pub use chain::{DeltaChain, DeltaConfig, StageStats};
pub use checkpoint::{delta_checkpoint, DeltaReport};
pub use restore::{fetch_delta_range, materialize_stream, restore_arrays_delta, resume};
