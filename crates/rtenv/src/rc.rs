//! The resource coordinator (RC) and its task coordinators (TCs).

use std::collections::HashMap;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::events::{Event, EventLog};
use crate::job::KillToken;

/// State of one processor, as tracked by the RC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessorState {
    /// Healthy, in the available pool.
    Available,
    /// Healthy, allocated to an application pool.
    InPool(
        /// Application name.
        String,
    ),
    /// Failed; needs repair before its TC can be restarted.
    Failed,
}

enum TcCommand {
    Kill,
}

struct TcHandle {
    cmd_tx: Sender<TcCommand>,
    alive_rx: Receiver<()>,
    join: JoinHandle<()>,
}

fn spawn_tc(proc_id: usize) -> TcHandle {
    let (cmd_tx, cmd_rx) = bounded::<TcCommand>(1);
    // The alive channel never carries messages; its disconnection is the
    // liveness signal, standing in for the paper's lost socket connection.
    let (_alive_tx, alive_rx) = {
        let (tx, rx) = bounded::<()>(0);
        (tx, rx)
    };
    let join = std::thread::Builder::new()
        .name(format!("tc-{proc_id}"))
        .spawn(move || {
            let _hold = _alive_tx;
            // The TC daemon: waits for a command; being killed (or the RC
            // dropping its sender) ends the thread and severs the alive
            // channel.
            let _ = cmd_rx.recv();
        })
        .expect("spawn TC thread");
    TcHandle { cmd_tx, alive_rx, join }
}

struct RcInner {
    tcs: Vec<Option<TcHandle>>,
    state: Vec<ProcessorState>,
    /// Application pools: app name -> (processors, kill token).
    pools: HashMap<String, (Vec<usize>, KillToken)>,
}

/// The master daemon: owns the TC registry, detects failures through lost
/// TC connections, and executes the five-step recovery of Section 4.
pub struct ResourceCoordinator {
    log: EventLog,
    inner: Mutex<RcInner>,
}

impl ResourceCoordinator {
    /// Brings up a system of `nprocs` processors, one TC each.
    pub fn new(nprocs: usize, log: EventLog) -> ResourceCoordinator {
        let tcs = (0..nprocs).map(|p| Some(spawn_tc(p))).collect();
        ResourceCoordinator {
            log,
            inner: Mutex::new(RcInner {
                tcs,
                state: vec![ProcessorState::Available; nprocs],
                pools: HashMap::new(),
            }),
        }
    }

    /// Total processors managed.
    pub fn nprocs(&self) -> usize {
        self.inner.lock().state.len()
    }

    /// Processors currently in the available pool.
    pub fn available(&self) -> Vec<usize> {
        let inner = self.inner.lock();
        inner
            .state
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == ProcessorState::Available)
            .map(|(p, _)| p)
            .collect()
    }

    /// State of one processor.
    pub fn state_of(&self, proc_id: usize) -> ProcessorState {
        self.inner.lock().state[proc_id].clone()
    }

    /// Allocates `procs` to application `app`, forming its TC pool.
    pub fn form_pool(&self, app: &str, procs: &[usize], kill: KillToken) {
        let mut inner = self.inner.lock();
        for &p in procs {
            assert_eq!(inner.state[p], ProcessorState::Available, "processor {p} is not available");
            inner.state[p] = ProcessorState::InPool(app.to_string());
        }
        inner.pools.insert(app.to_string(), (procs.to_vec(), kill));
    }

    /// Releases an application's pool after normal completion.
    pub fn release_pool(&self, app: &str) {
        let mut inner = self.inner.lock();
        if let Some((procs, _)) = inner.pools.remove(app) {
            for p in procs {
                if inner.state[p] == ProcessorState::InPool(app.to_string()) {
                    inner.state[p] = ProcessorState::Available;
                }
            }
        }
    }

    /// Injects a processor failure: the TC daemon dies (as if its processor
    /// crashed), and the RC's detection/recovery protocol runs.
    pub fn fail_processor(&self, proc_id: usize) {
        self.log.record(Event::ProcessorFailed { proc: proc_id });
        {
            let inner = self.inner.lock();
            if let Some(tc) = inner.tcs[proc_id].as_ref() {
                let _ = tc.cmd_tx.send(TcCommand::Kill);
                // Wait for the daemon to actually die: recv on the alive
                // channel returns Disconnected exactly when the TC thread
                // has exited and dropped its end.
                let _ = tc.alive_rx.recv();
            }
        }
        self.detect_and_recover();
    }

    /// Scans TC connections; on a lost connection, executes the recovery
    /// steps of Section 4. Idempotent.
    pub fn detect_and_recover(&self) {
        let mut lost: Vec<usize> = Vec::new();
        {
            let inner = self.inner.lock();
            for (p, tc) in inner.tcs.iter().enumerate() {
                // A missing handle means the failure was already handled
                // (processor awaiting repair): stay quiet.
                let disconnected = match tc {
                    Some(handle) => {
                        matches!(handle.alive_rx.try_recv(), Err(TryRecvError::Disconnected))
                    }
                    None => false,
                };
                if disconnected {
                    lost.push(p);
                }
            }
        }

        for p in lost {
            self.log.record(Event::ConnectionLost { proc: p });
            self.recover_from_loss(p);
        }
    }

    /// Steps 1-5 of the paper's recovery protocol for a lost TC.
    fn recover_from_loss(&self, failed_proc: usize) {
        let mut inner = self.inner.lock();

        // Step 1: which application and TC pool owns the disconnected TC?
        let owner = inner
            .pools
            .iter()
            .find_map(|(app, (procs, _))| procs.contains(&failed_proc).then(|| app.clone()));

        // Remove the dead TC; the processor is failed until repaired.
        if let Some(tc) = inner.tcs[failed_proc].take() {
            let _ = tc.cmd_tx.send(TcCommand::Kill);
            let _ = tc.join.join();
        }
        inner.state[failed_proc] = ProcessorState::Failed;

        let Some(app) = owner else { return };
        let (pool, kill) = inner.pools.remove(&app).expect("owner pool exists");

        // Step 2: kill all other processes of the application and all TCs
        // in the pool. (Application processes die cooperatively via the
        // kill token at their next SOP.)
        kill.kill(&format!("processor {failed_proc} failed"));
        for &p in &pool {
            if p != failed_proc {
                if let Some(tc) = inner.tcs[p].take() {
                    let _ = tc.cmd_tx.send(TcCommand::Kill);
                    let _ = tc.join.join();
                }
            }
        }
        // Step 3: the application is considered terminated.
        self.log.record(Event::ApplicationKilled { app: app.clone(), pool: pool.clone() });
        // Step 4: the user is informed.
        self.log.record(Event::UserInformed { app: app.clone() });

        // Step 5: restart the killed TCs. Healthy processors come straight
        // back; the failed one waits for `repair`. The system stays up
        // throughout, with reduced processor availability.
        for &p in &pool {
            if p != failed_proc {
                inner.tcs[p] = Some(spawn_tc(p));
                inner.state[p] = ProcessorState::Available;
                self.log.record(Event::TcRestarted { proc: p });
                self.log.record(Event::ProcessorRestored { proc: p });
            }
        }
    }

    /// Repairs a failed processor ("rebooting or even fixing it first"),
    /// restarting its TC and returning it to the available pool.
    pub fn repair(&self, proc_id: usize) {
        let mut inner = self.inner.lock();
        assert_eq!(inner.state[proc_id], ProcessorState::Failed, "repairing a healthy processor");
        inner.tcs[proc_id] = Some(spawn_tc(proc_id));
        inner.state[proc_id] = ProcessorState::Available;
        self.log.record(Event::TcRestarted { proc: proc_id });
        self.log.record(Event::ProcessorRestored { proc: proc_id });
    }

    /// Shuts every TC down (end of simulation).
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock();
        for tc in inner.tcs.iter_mut() {
            if let Some(tc) = tc.take() {
                let _ = tc.cmd_tx.send(TcCommand::Kill);
                let _ = tc.join.join();
            }
        }
    }
}

impl Drop for ResourceCoordinator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_processors_start_available() {
        let rc = ResourceCoordinator::new(4, EventLog::new());
        assert_eq!(rc.available(), vec![0, 1, 2, 3]);
        assert_eq!(rc.nprocs(), 4);
    }

    #[test]
    fn pool_formation_and_release() {
        let rc = ResourceCoordinator::new(4, EventLog::new());
        rc.form_pool("app", &[1, 2], KillToken::new());
        assert_eq!(rc.available(), vec![0, 3]);
        assert_eq!(rc.state_of(1), ProcessorState::InPool("app".into()));
        rc.release_pool("app");
        assert_eq!(rc.available(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn failure_runs_five_step_recovery() {
        let log = EventLog::new();
        let rc = ResourceCoordinator::new(4, log.clone());
        let kill = KillToken::new();
        rc.form_pool("bt", &[0, 1, 2], kill.clone());

        rc.fail_processor(1);

        // Application killed cooperatively.
        assert!(kill.is_killed());
        assert!(kill.reason().unwrap().contains("processor 1 failed"));
        // Healthy pool members returned; failed one is down.
        assert_eq!(rc.available(), vec![0, 2, 3]);
        assert_eq!(rc.state_of(1), ProcessorState::Failed);

        // Event ordering per the protocol.
        let lost = log.position(|e| matches!(e, Event::ConnectionLost { proc: 1 })).unwrap();
        let killed = log.position(|e| matches!(e, Event::ApplicationKilled { .. })).unwrap();
        let informed = log.position(|e| matches!(e, Event::UserInformed { .. })).unwrap();
        let restored = log.position(|e| matches!(e, Event::ProcessorRestored { .. })).unwrap();
        assert!(lost < killed && killed < informed && informed < restored);

        // Repair brings the processor back.
        rc.repair(1);
        assert_eq!(rc.available(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn failure_outside_any_pool_only_downs_processor() {
        let log = EventLog::new();
        let rc = ResourceCoordinator::new(3, log.clone());
        rc.fail_processor(2);
        assert_eq!(rc.available(), vec![0, 1]);
        assert!(!log.any(|e| matches!(e, Event::ApplicationKilled { .. })));
    }

    #[test]
    fn detect_is_idempotent() {
        let log = EventLog::new();
        let rc = ResourceCoordinator::new(2, log.clone());
        rc.fail_processor(0);
        let n = log.snapshot().len();
        rc.detect_and_recover();
        rc.detect_and_recover();
        assert_eq!(log.snapshot().len(), n, "no duplicate events");
    }
}
