//! Type-erased handles over distributed arrays of any element type, so one
//! checkpoint call can cover a heterogeneous set of arrays.

use drms_darray::{assign, stream, DistArray, Distribution, Element};
use drms_msg::Ctx;
use drms_piofs::Piofs;
use drms_slices::{Order, Slice};

use crate::{CoreError, Result};

/// A distributed array as seen by the checkpoint machinery.
pub trait CheckpointArray: Send {
    /// Array name (keys the stream file).
    fn array_name(&self) -> &str;

    /// Element type code (see [`Element::CODE`]).
    fn elem_code(&self) -> u8;

    /// Global domain.
    fn domain(&self) -> &Slice;

    /// Storage/stream order.
    fn order(&self) -> Order;

    /// Size of the distribution-independent stream in bytes.
    fn stream_bytes(&self) -> u64;

    /// Bytes of this task's local storage (mapped section, storage order).
    fn local_encoded(&self) -> Vec<u8>;

    /// Restores this task's local storage from [`Self::local_encoded`]
    /// bytes (same distribution required — this is the SPMD baseline path).
    fn restore_local(&mut self, bytes: &[u8]) -> Result<()>;

    /// Size of [`Self::local_encoded`] without materializing it.
    fn local_encoded_len(&self) -> usize;

    /// Monotone mutation counter (see [`DistArray::version`]); used by
    /// incremental checkpointing to skip unmodified arrays.
    fn version(&self) -> u64;

    /// Collective: writes the array's distribution-independent stream.
    fn write_stream(&self, ctx: &mut Ctx, fs: &Piofs, path: &str, io_tasks: usize) -> Result<()>;

    /// Collective: fills the array from its stream (any writer distribution).
    fn read_stream(&mut self, ctx: &mut Ctx, fs: &Piofs, path: &str, io_tasks: usize)
        -> Result<()>;

    /// Collective: collects this task's pieces of the array's canonical
    /// stream without touching the file system (the diskless tier path).
    fn stream_pieces(&self, ctx: &mut Ctx, io_tasks: usize) -> Result<Vec<stream::StreamPiece>>;

    /// Collective: fills the array from its canonical stream, fetching each
    /// piece's byte range through `fetch` instead of the file system.
    fn read_stream_via(
        &mut self,
        ctx: &mut Ctx,
        io_tasks: usize,
        fetch: &mut stream::PieceFetch<'_>,
    ) -> Result<()>;

    /// Collective: adjusts the distribution to the current region's task
    /// count and redistributes in place (`drms_adjust` + `drms_distribute`).
    fn adjust_redistribute(&mut self, ctx: &mut Ctx) -> Result<()>;

    /// Collective: re-partitions the array across the `active` subset of
    /// the region's tasks (block decomposition over the active set, empty
    /// sections elsewhere) through the live redistribution path — no
    /// storage I/O. This is the online shrink/grow operation and the
    /// membership-transition step of localized recovery.
    fn repartition(&mut self, ctx: &mut Ctx, active: &[usize]) -> Result<()>;

    /// Collective: localized section restore. Rebuilds the array under a
    /// block distribution over the `active` task subset from two sources:
    /// survivors' retained checkpoint-state local bytes (`retained`,
    /// encoded under the *current* distribution; ranks with
    /// `survivors[rank] == false` pass `None`), redistributed live; and the
    /// lost ranks' sections — the current distribution's assigned sections
    /// of every non-survivor — fetched from the array's canonical
    /// full-domain stream through `fetch` (memory-tier replicas or PIOFS).
    /// Returns the bytes fetched for the lost sections.
    fn restore_sections(
        &mut self,
        ctx: &mut Ctx,
        active: &[usize],
        survivors: &[bool],
        retained: Option<&[u8]>,
        io_tasks: usize,
        fetch: &mut stream::PieceFetch<'_>,
    ) -> Result<u64>;
}

impl<T: Element> CheckpointArray for DistArray<T> {
    fn array_name(&self) -> &str {
        self.name()
    }

    fn elem_code(&self) -> u8 {
        T::CODE
    }

    fn domain(&self) -> &Slice {
        DistArray::domain(self)
    }

    fn order(&self) -> Order {
        DistArray::order(self)
    }

    fn stream_bytes(&self) -> u64 {
        (DistArray::domain(self).size() * T::SIZE) as u64
    }

    fn local_encoded(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.local().len() * T::SIZE];
        for (v, chunk) in self.local().iter().zip(out.chunks_exact_mut(T::SIZE)) {
            v.write_le(chunk);
        }
        out
    }

    fn restore_local(&mut self, bytes: &[u8]) -> Result<()> {
        let expect = self.local().len() * T::SIZE;
        if bytes.len() != expect {
            return Err(CoreError::ManifestMismatch(format!(
                "array {:?}: local storage is {expect} bytes but checkpoint holds {}",
                self.name(),
                bytes.len()
            )));
        }
        for (v, chunk) in self.local_mut().iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
            *v = T::read_le(chunk);
        }
        Ok(())
    }

    fn local_encoded_len(&self) -> usize {
        self.local().len() * T::SIZE
    }

    fn version(&self) -> u64 {
        DistArray::version(self)
    }

    fn write_stream(&self, ctx: &mut Ctx, fs: &Piofs, path: &str, io_tasks: usize) -> Result<()> {
        stream::write_array(ctx, fs, self, path, io_tasks)?;
        Ok(())
    }

    fn read_stream(
        &mut self,
        ctx: &mut Ctx,
        fs: &Piofs,
        path: &str,
        io_tasks: usize,
    ) -> Result<()> {
        stream::read_array(ctx, fs, self, path, io_tasks)?;
        Ok(())
    }

    fn stream_pieces(&self, ctx: &mut Ctx, io_tasks: usize) -> Result<Vec<stream::StreamPiece>> {
        Ok(stream::collect_array_pieces(ctx, self, io_tasks)?)
    }

    fn read_stream_via(
        &mut self,
        ctx: &mut Ctx,
        io_tasks: usize,
        fetch: &mut stream::PieceFetch<'_>,
    ) -> Result<()> {
        stream::read_array_via(ctx, self, io_tasks, fetch)?;
        Ok(())
    }

    fn adjust_redistribute(&mut self, ctx: &mut Ctx) -> Result<()> {
        let new_dist = self.dist().adjust(ctx.ntasks())?;
        let replacement = assign::redistribute(ctx, self, new_dist)?;
        self.adopt(replacement)?;
        Ok(())
    }

    fn repartition(&mut self, ctx: &mut Ctx, active: &[usize]) -> Result<()> {
        let shadow = self.dist().shadow_widths().map(|s| s[0]).unwrap_or(0);
        let new_dist =
            Distribution::block_active(DistArray::domain(self), active, ctx.ntasks(), shadow)?;
        let replacement = assign::redistribute(ctx, self, new_dist)?;
        self.adopt(replacement)?;
        Ok(())
    }

    fn restore_sections(
        &mut self,
        ctx: &mut Ctx,
        active: &[usize],
        survivors: &[bool],
        retained: Option<&[u8]>,
        io_tasks: usize,
        fetch: &mut stream::PieceFetch<'_>,
    ) -> Result<u64> {
        // The lost sections are whatever the current distribution assigned
        // to the non-surviving ranks.
        let lost: Vec<Slice> = (0..ctx.ntasks())
            .filter(|&r| !survivors[r])
            .map(|r| self.dist().assigned(r).clone())
            .collect();
        let shadow = self.dist().shadow_widths().map(|s| s[0]).unwrap_or(0);
        let new_dist =
            Distribution::block_active(DistArray::domain(self), active, ctx.ntasks(), shadow)?;
        // Donor: the survivors' retained checkpoint bytes under the old
        // distribution, masked so the lost ranks contribute nothing.
        let donor_dist = self.dist().masked(survivors)?;
        let mut donor: DistArray<T> =
            DistArray::new(self.name(), DistArray::order(self), donor_dist, self.rank());
        if survivors[ctx.rank()] {
            let bytes = retained.ok_or_else(|| {
                CoreError::ManifestMismatch(format!(
                    "array {:?}: survivor rank {} has no retained state",
                    self.name(),
                    ctx.rank()
                ))
            })?;
            let expect = donor.local().len() * T::SIZE;
            if bytes.len() != expect {
                return Err(CoreError::ManifestMismatch(format!(
                    "array {:?}: retained state is {} bytes, local storage needs {expect}",
                    self.name(),
                    bytes.len()
                )));
            }
            for (v, chunk) in donor.local_mut().iter_mut().zip(bytes.chunks_exact(T::SIZE)) {
                *v = T::read_le(chunk);
            }
        }
        // Rebuild under the new distribution: survivor data moves through
        // the live redistribution path, lost sections stay holes...
        let mut next: DistArray<T> =
            DistArray::new(self.name(), DistArray::order(self), new_dist, self.rank());
        assign::assign(ctx, &mut next, &donor)?;
        // ...which the canonical-stream fetch then fills.
        let fetched = stream::read_overlapping_via(ctx, &mut next, &lost, io_tasks, fetch)?;
        self.adopt(next)?;
        Ok(fetched)
    }
}

/// Concatenates the local storage of several arrays, padded with zeros up to
/// `fixed_bytes` — the compile-time-fixed local-section reservation of the
/// paper's Fortran codes (storage does not shrink as tasks are added).
pub fn encode_locals(arrays: &[&dyn CheckpointArray], fixed_bytes: u64) -> Vec<u8> {
    let actual: usize = arrays.iter().map(|a| a.local_encoded_len()).sum();
    let target = (fixed_bytes as usize).max(actual);
    let mut out = Vec::with_capacity(target);
    for a in arrays {
        out.extend(a.local_encoded());
    }
    out.resize(target, 0);
    out
}

/// Restores array local storage from an [`encode_locals`] blob (same arrays,
/// same order, same distributions).
pub fn decode_locals(arrays: &mut [&mut dyn CheckpointArray], blob: &[u8]) -> Result<()> {
    let mut pos = 0usize;
    for a in arrays.iter_mut() {
        let n = a.local_encoded_len();
        if pos + n > blob.len() {
            return Err(CoreError::ManifestMismatch(format!(
                "local-sections blob too short for array {:?}",
                a.array_name()
            )));
        }
        a.restore_local(&blob[pos..pos + n])?;
        pos += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use drms_darray::Distribution;

    fn arr(rank: usize, p: usize) -> DistArray<f64> {
        let dom = Slice::boxed(&[(0, 7), (0, 7)]);
        let dist = Distribution::block_auto(&dom, p, 1).unwrap();
        DistArray::new("u", Order::ColumnMajor, dist, rank)
    }

    #[test]
    fn local_roundtrip() {
        let mut a = arr(0, 2);
        a.fill_mapped(|p| (p[0] * 8 + p[1]) as f64);
        let bytes = CheckpointArray::local_encoded(&a);
        assert_eq!(bytes.len(), CheckpointArray::local_encoded_len(&a));
        let mut b = arr(0, 2);
        b.restore_local(&bytes).unwrap();
        assert_eq!(a.local(), b.local());
    }

    #[test]
    fn restore_rejects_size_mismatch() {
        let mut a = arr(0, 2);
        assert!(a.restore_local(&[0u8; 3]).is_err());
    }

    #[test]
    fn encode_locals_pads_to_fixed() {
        let mut a = arr(0, 2);
        a.fill_mapped(|_| 1.0);
        let actual = CheckpointArray::local_encoded_len(&a);
        let blob = encode_locals(&[&a], (actual + 100) as u64);
        assert_eq!(blob.len(), actual + 100);
        assert!(blob[actual..].iter().all(|&b| b == 0));
        // Fixed smaller than actual: keeps actual.
        let blob = encode_locals(&[&a], 1);
        assert_eq!(blob.len(), actual);
    }

    #[test]
    fn decode_locals_restores_multiple_arrays() {
        let mut a = arr(0, 1);
        let mut b = arr(0, 1);
        a.fill_mapped(|p| p[0] as f64);
        b.fill_mapped(|p| p[1] as f64 * 3.0);
        let blob = encode_locals(&[&a, &b], 0);

        let mut a2 = arr(0, 1);
        let mut b2 = arr(0, 1);
        decode_locals(&mut [&mut a2, &mut b2], &blob).unwrap();
        assert_eq!(a2.local(), a.local());
        assert_eq!(b2.local(), b.local());

        // Truncated blob fails.
        assert!(decode_locals(&mut [&mut a2, &mut b2], &blob[..10]).is_err());
    }

    #[test]
    fn trait_metadata() {
        let a = arr(1, 2);
        let h: &dyn CheckpointArray = &a;
        assert_eq!(h.array_name(), "u");
        assert_eq!(h.elem_code(), 1);
        assert_eq!(h.stream_bytes(), 64 * 8);
        assert_eq!(h.order(), Order::ColumnMajor);
    }
}
