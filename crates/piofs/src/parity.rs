//! RAID-5-style rotating XOR parity geometry.
//!
//! Data placement is unchanged from plain striping: byte `b` lives in stripe
//! unit `u = b / stripe_unit` on server `u mod n`. Parity is layered on top
//! of that layout: **parity group** `g` covers the `n - 1` consecutive data
//! units `[g*(n-1), (g+1)*(n-1))`. Those units land on `n - 1` *distinct*
//! servers, and the one server the group's data skips —
//! `(n - 1 - (g mod n)) mod n` — holds the group's parity block: the
//! byte-wise XOR of the group's units (zero-padded past end-of-file). The
//! parity server rotates with `g` (left-symmetric RAID-5), so parity load
//! spreads evenly.
//!
//! Because every group touches each server at most once (data or parity),
//! the loss of any single server costs each group at most one block, and the
//! missing block is the XOR of the survivors. XOR is byte-positional, so
//! sub-unit ranges (e.g. one corrupt checksum chunk) reconstruct without
//! touching the rest of the group.

use std::ops::Range;

/// Parity geometry derived from the file-system configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityGeom {
    /// Stripe unit in bytes.
    pub stripe_unit: u64,
    /// Number of servers (>= 2).
    pub n_servers: usize,
}

impl ParityGeom {
    /// Logical data bytes covered by one parity group.
    pub fn group_span(&self) -> u64 {
        self.stripe_unit * (self.n_servers as u64 - 1)
    }

    /// Parity group holding logical byte `b`.
    pub fn group_of_byte(&self, b: u64) -> u64 {
        b / self.group_span()
    }

    /// Number of parity groups a file of `len` bytes needs.
    pub fn group_count(&self, len: u64) -> u64 {
        len.div_ceil(self.group_span())
    }

    /// Server holding data stripe unit `u`.
    pub fn unit_server(&self, u: u64) -> usize {
        (u % self.n_servers as u64) as usize
    }

    /// Server holding the parity block of group `g`: the one server the
    /// group's `n - 1` data units skip.
    pub fn parity_server(&self, g: u64) -> usize {
        let n = self.n_servers as u64;
        ((n - 1 - (g % n)) % n) as usize
    }

    /// Data stripe units belonging to group `g`.
    pub fn units_of_group(&self, g: u64) -> Range<u64> {
        let d = self.n_servers as u64 - 1;
        g * d..(g + 1) * d
    }

    /// Groups overlapping the logical byte range `[start, end)`.
    pub fn groups_overlapping(&self, start: u64, end: u64) -> Range<u64> {
        if end <= start {
            return 0..0;
        }
        self.group_of_byte(start)..self.group_of_byte(end - 1) + 1
    }

    /// Logical byte range `[start, end)` of stripe unit `u`, clipped to a
    /// file of `len` bytes.
    pub fn unit_range(&self, u: u64, len: u64) -> (u64, u64) {
        let start = u * self.stripe_unit;
        (start.min(len), ((u + 1) * self.stripe_unit).min(len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_server_is_the_one_server_without_group_data() {
        for n in 2..=9usize {
            let g = ParityGeom { stripe_unit: 4, n_servers: n };
            for grp in 0..40u64 {
                let data_servers: std::collections::BTreeSet<usize> =
                    g.units_of_group(grp).map(|u| g.unit_server(u)).collect();
                assert_eq!(data_servers.len(), n - 1, "n={n} g={grp}");
                let p = g.parity_server(grp);
                assert!(!data_servers.contains(&p), "n={n} g={grp} parity {p}");
            }
        }
    }

    #[test]
    fn parity_rotates_across_servers() {
        let g = ParityGeom { stripe_unit: 64, n_servers: 4 };
        let seen: std::collections::BTreeSet<usize> =
            (0..4u64).map(|grp| g.parity_server(grp)).collect();
        assert_eq!(seen.len(), 4, "every server takes a parity turn");
    }

    #[test]
    fn group_arithmetic() {
        let g = ParityGeom { stripe_unit: 10, n_servers: 3 }; // span 20
        assert_eq!(g.group_span(), 20);
        assert_eq!(g.group_of_byte(0), 0);
        assert_eq!(g.group_of_byte(19), 0);
        assert_eq!(g.group_of_byte(20), 1);
        assert_eq!(g.group_count(0), 0);
        assert_eq!(g.group_count(20), 1);
        assert_eq!(g.group_count(21), 2);
        assert_eq!(g.groups_overlapping(5, 5), 0..0);
        assert_eq!(g.groups_overlapping(0, 20), 0..1);
        assert_eq!(g.groups_overlapping(19, 21), 0..2);
        assert_eq!(g.units_of_group(2), 4..6);
        assert_eq!(g.unit_range(1, 15), (10, 15));
        assert_eq!(g.unit_range(2, 15), (15, 15));
    }
}
