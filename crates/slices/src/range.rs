use std::fmt;
use std::sync::Arc;

use crate::{Result, SliceError};

/// A monotonically increasing ordered set of integers.
///
/// Ranges generalize the regular `l:u:s` sections of Fortran 90: DRMS array
/// sections may also be described by arbitrary (strictly increasing) index
/// lists, which is what allows the runtime to handle sparse and unstructured
/// data distributions (paper, Section 3.1).
///
/// The representation is normalized so that structural equality coincides
/// with set equality:
/// * the empty set is always `Explicit([])`;
/// * a single element is `Contiguous { lo, hi: lo }`;
/// * stride 1 is always `Contiguous`;
/// * a `Strided` range always has at least two elements and `hi` is an exact
///   element (`(hi - lo) % step == 0`);
/// * an `Explicit` list never matches a contiguous or strided pattern.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Range {
    /// All integers in `lo..=hi` (`lo <= hi`).
    Contiguous {
        /// First element.
        lo: i64,
        /// Last element (inclusive).
        hi: i64,
    },
    /// The integers `lo, lo+step, ..., hi` with `step >= 2`.
    Strided {
        /// First element.
        lo: i64,
        /// Last element (inclusive, exactly `lo + k*step`).
        hi: i64,
        /// Distance between consecutive elements.
        step: i64,
    },
    /// An arbitrary strictly increasing list of integers (possibly empty).
    ///
    /// Shared via `Arc` so that cloning slices during partitioning stays
    /// cheap even for long index lists.
    Explicit(Arc<[i64]>),
}

impl Range {
    /// The empty range.
    pub fn empty() -> Range {
        Range::Explicit(Arc::from([]))
    }

    /// The contiguous range `lo..=hi`; empty when `lo > hi`.
    pub fn contiguous(lo: i64, hi: i64) -> Range {
        if lo > hi {
            Range::empty()
        } else {
            Range::Contiguous { lo, hi }
        }
    }

    /// A single-element range.
    pub fn single(v: i64) -> Range {
        Range::Contiguous { lo: v, hi: v }
    }

    /// The strided range `lo:hi:step` (Fortran triplet semantics).
    ///
    /// `hi` is clamped down to the last element actually reached.
    /// Empty when `lo > hi`. Fails if `step <= 0`.
    pub fn strided(lo: i64, hi: i64, step: i64) -> Result<Range> {
        if step <= 0 {
            return Err(SliceError::BadStride { step });
        }
        if lo > hi {
            return Ok(Range::empty());
        }
        let last = lo + ((hi - lo) / step) * step;
        if step == 1 {
            Ok(Range::Contiguous { lo, hi: last })
        } else if last == lo {
            Ok(Range::Contiguous { lo, hi: lo })
        } else {
            Ok(Range::Strided { lo, hi: last, step })
        }
    }

    /// A range from an explicit strictly increasing index list.
    ///
    /// The list is normalized: contiguous or strided patterns collapse to the
    /// corresponding compact representation.
    pub fn from_indices(indices: &[i64]) -> Result<Range> {
        for (i, w) in indices.windows(2).enumerate() {
            if w[1] <= w[0] {
                return Err(SliceError::NotIncreasing { at: i + 1, prev: w[0], next: w[1] });
            }
        }
        Ok(Self::from_sorted_unchecked(indices))
    }

    /// Normalizing constructor for a list already known to be strictly
    /// increasing.
    fn from_sorted_unchecked(indices: &[i64]) -> Range {
        match indices.len() {
            0 => Range::empty(),
            1 => Range::single(indices[0]),
            _ => {
                let step = indices[1] - indices[0];
                let uniform = indices.windows(2).all(|w| w[1] - w[0] == step);
                if uniform {
                    if step == 1 {
                        Range::Contiguous { lo: indices[0], hi: *indices.last().unwrap() }
                    } else {
                        Range::Strided { lo: indices[0], hi: *indices.last().unwrap(), step }
                    }
                } else {
                    Range::Explicit(Arc::from(indices))
                }
            }
        }
    }

    /// Number of elements in the range (`|r|` in the paper).
    pub fn len(&self) -> usize {
        match self {
            Range::Contiguous { lo, hi } => (hi - lo + 1) as usize,
            Range::Strided { lo, hi, step } => ((hi - lo) / step + 1) as usize,
            Range::Explicit(v) => v.len(),
        }
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Range::Explicit(v) if v.is_empty())
    }

    /// First (smallest) element, if any.
    pub fn first(&self) -> Option<i64> {
        match self {
            Range::Contiguous { lo, .. } | Range::Strided { lo, .. } => Some(*lo),
            Range::Explicit(v) => v.first().copied(),
        }
    }

    /// Last (largest) element, if any.
    pub fn last(&self) -> Option<i64> {
        match self {
            Range::Contiguous { hi, .. } | Range::Strided { hi, .. } => Some(*hi),
            Range::Explicit(v) => v.last().copied(),
        }
    }

    /// The `i`-th smallest element.
    pub fn get(&self, i: usize) -> Result<i64> {
        if i >= self.len() {
            return Err(SliceError::OutOfBounds { index: i, len: self.len() });
        }
        Ok(match self {
            Range::Contiguous { lo, .. } => lo + i as i64,
            Range::Strided { lo, step, .. } => lo + i as i64 * step,
            Range::Explicit(v) => v[i],
        })
    }

    /// Whether `v` is a member of the range.
    pub fn contains(&self, v: i64) -> bool {
        match self {
            Range::Contiguous { lo, hi } => *lo <= v && v <= *hi,
            Range::Strided { lo, hi, step } => *lo <= v && v <= *hi && (v - lo) % step == 0,
            Range::Explicit(vec) => vec.binary_search(&v).is_ok(),
        }
    }

    /// The rank of `v` within the range: the number of elements smaller
    /// than `v`, when `v` is a member.
    pub fn position(&self, v: i64) -> Option<usize> {
        match self {
            Range::Contiguous { lo, hi } => (*lo <= v && v <= *hi).then(|| (v - lo) as usize),
            Range::Strided { lo, hi, step } => {
                (*lo <= v && v <= *hi && (v - lo) % step == 0).then(|| ((v - lo) / step) as usize)
            }
            Range::Explicit(vec) => vec.binary_search(&v).ok(),
        }
    }

    /// Iterator over the elements, in increasing order.
    pub fn iter(&self) -> RangeIter<'_> {
        RangeIter { range: self, pos: 0, len: self.len() }
    }

    /// The elements as a freshly allocated vector.
    pub fn to_vec(&self) -> Vec<i64> {
        self.iter().collect()
    }

    /// The sub-range consisting of elements with rank `start..end`.
    pub fn subrange(&self, start: usize, end: usize) -> Result<Range> {
        let len = self.len();
        if start > end || end > len {
            return Err(SliceError::OutOfBounds { index: end, len });
        }
        if start == end {
            return Ok(Range::empty());
        }
        Ok(match self {
            Range::Contiguous { lo, .. } => {
                Range::Contiguous { lo: lo + start as i64, hi: lo + end as i64 - 1 }
            }
            Range::Strided { lo, step, .. } => {
                let new_lo = lo + start as i64 * step;
                let new_hi = lo + (end as i64 - 1) * step;
                if new_lo == new_hi {
                    Range::Contiguous { lo: new_lo, hi: new_lo }
                } else {
                    Range::Strided { lo: new_lo, hi: new_hi, step: *step }
                }
            }
            Range::Explicit(v) => Self::from_sorted_unchecked(&v[start..end]),
        })
    }

    /// Splits the range into its lower and upper halves: the first
    /// `ceil(len/2)` elements and the rest.
    ///
    /// This is the range-level `lo`/`hi` operation of Figure 5(a); the
    /// concatenation of the halves, in order, is the original range.
    pub fn split_half(&self) -> (Range, Range) {
        let len = self.len();
        let mid = len.div_ceil(2);
        (self.subrange(0, mid).expect("mid <= len"), self.subrange(mid, len).expect("mid <= len"))
    }

    /// Intersection of two ranges (`q * r` in the paper): the elements common
    /// to both.
    pub fn intersect(&self, other: &Range) -> Range {
        use Range::*;
        if self.is_empty() || other.is_empty() {
            return Range::empty();
        }
        // Bounding-box rejection first: cheap and common in distributions.
        let (alo, ahi) = (self.first().unwrap(), self.last().unwrap());
        let (blo, bhi) = (other.first().unwrap(), other.last().unwrap());
        if ahi < blo || bhi < alo {
            return Range::empty();
        }
        match (self, other) {
            (Contiguous { lo: a, hi: b }, Contiguous { lo: c, hi: d }) => {
                Range::contiguous((*a).max(*c), (*b).min(*d))
            }
            (Strided { lo, hi, step }, Contiguous { lo: c, hi: d })
            | (Contiguous { lo: c, hi: d }, Strided { lo, hi, step }) => {
                // Clamp the strided range to [c, d], keeping alignment to lo.
                let start = if c <= lo { *lo } else { lo + (c - lo + step - 1) / step * step };
                let end = (*hi).min(*d);
                Range::strided(start, end, *step).expect("step positive")
            }
            (Strided { lo: a, hi: b, step: s }, Strided { lo: c, hi: d, step: t })
                if s == t && (a - c) % s == 0 =>
            {
                // Same stride, compatible phase: intersect as intervals.
                let start = (*a).max(*c);
                let end = (*b).min(*d);
                Range::strided(start, end, *s).expect("step positive")
            }
            _ => {
                // General case: merge-walk the two element sequences.
                let mut out = Vec::new();
                let mut it_a = self.iter().peekable();
                let mut it_b = other.iter().peekable();
                while let (Some(&x), Some(&y)) = (it_a.peek(), it_b.peek()) {
                    match x.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            it_a.next();
                        }
                        std::cmp::Ordering::Greater => {
                            it_b.next();
                        }
                        std::cmp::Ordering::Equal => {
                            out.push(x);
                            it_a.next();
                            it_b.next();
                        }
                    }
                }
                Self::from_sorted_unchecked(&out)
            }
        }
    }

    /// Whether every element of `self` is also an element of `other`.
    pub fn is_subset_of(&self, other: &Range) -> bool {
        self.intersect(other) == *self
    }
}

impl fmt::Debug for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Range::Contiguous { lo, hi } => write!(f, "{lo}:{hi}"),
            Range::Strided { lo, hi, step } => write!(f, "{lo}:{hi}:{step}"),
            Range::Explicit(v) => write!(f, "{v:?}"),
        }
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over the elements of a [`Range`].
pub struct RangeIter<'a> {
    range: &'a Range,
    pos: usize,
    len: usize,
}

impl Iterator for RangeIter<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        if self.pos >= self.len {
            return None;
        }
        let v = match self.range {
            Range::Contiguous { lo, .. } => lo + self.pos as i64,
            Range::Strided { lo, step, .. } => lo + self.pos as i64 * step,
            Range::Explicit(vec) => vec[self.pos],
        };
        self.pos += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.len - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RangeIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_basics() {
        let r = Range::contiguous(3, 7);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(r.to_vec(), vec![3, 4, 5, 6, 7]);
        assert_eq!(r.first(), Some(3));
        assert_eq!(r.last(), Some(7));
        assert!(r.contains(5));
        assert!(!r.contains(8));
        assert_eq!(r.position(5), Some(2));
        assert_eq!(r.position(8), None);
    }

    #[test]
    fn empty_when_lo_gt_hi() {
        let r = Range::contiguous(5, 3);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.first(), None);
    }

    #[test]
    fn strided_normalizes_hi() {
        let r = Range::strided(2, 11, 3).unwrap();
        assert_eq!(r.to_vec(), vec![2, 5, 8, 11]);
        let r = Range::strided(2, 10, 3).unwrap();
        assert_eq!(r.to_vec(), vec![2, 5, 8]);
        assert_eq!(r.last(), Some(8));
    }

    #[test]
    fn strided_step_one_collapses_to_contiguous() {
        let r = Range::strided(1, 4, 1).unwrap();
        assert_eq!(r, Range::contiguous(1, 4));
    }

    #[test]
    fn strided_single_element_collapses() {
        let r = Range::strided(5, 7, 10).unwrap();
        assert_eq!(r, Range::single(5));
    }

    #[test]
    fn bad_stride_rejected() {
        assert!(matches!(Range::strided(0, 5, 0), Err(SliceError::BadStride { step: 0 })));
        assert!(Range::strided(0, 5, -2).is_err());
    }

    #[test]
    fn explicit_validation() {
        assert!(Range::from_indices(&[1, 3, 3]).is_err());
        assert!(Range::from_indices(&[5, 2]).is_err());
        let r = Range::from_indices(&[1, 4, 6]).unwrap();
        assert_eq!(r.to_vec(), vec![1, 4, 6]);
        assert_eq!(r.position(4), Some(1));
    }

    #[test]
    fn explicit_normalizes_to_compact_forms() {
        assert_eq!(Range::from_indices(&[4, 5, 6]).unwrap(), Range::contiguous(4, 6));
        assert_eq!(Range::from_indices(&[1, 3, 5]).unwrap(), Range::strided(1, 5, 2).unwrap());
        assert_eq!(Range::from_indices(&[]).unwrap(), Range::empty());
        assert_eq!(Range::from_indices(&[9]).unwrap(), Range::single(9));
    }

    #[test]
    fn paper_example_slice3_ranges() {
        // Figure 2 of the paper: rows (8,9,10,12), columns (16,18,19,20,22).
        let rows = Range::from_indices(&[8, 9, 10, 12]).unwrap();
        let cols = Range::from_indices(&[16, 18, 19, 20, 22]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(cols.len(), 5);
    }

    #[test]
    fn subrange_all_forms() {
        let c = Range::contiguous(10, 19);
        assert_eq!(c.subrange(2, 5).unwrap(), Range::contiguous(12, 14));
        let s = Range::strided(0, 20, 4).unwrap();
        assert_eq!(s.subrange(1, 4).unwrap().to_vec(), vec![4, 8, 12]);
        let e = Range::from_indices(&[1, 2, 50, 51, 90]).unwrap();
        assert_eq!(e.subrange(1, 4).unwrap().to_vec(), vec![2, 50, 51]);
        assert!(e.subrange(3, 2).is_err());
        assert!(e.subrange(0, 6).is_err());
        assert!(e.subrange(2, 2).unwrap().is_empty());
    }

    #[test]
    fn split_half_concatenates() {
        for r in [
            Range::contiguous(0, 9),
            Range::contiguous(0, 8),
            Range::strided(1, 31, 3).unwrap(),
            Range::from_indices(&[2, 7, 11, 12, 40]).unwrap(),
            Range::single(4),
            Range::empty(),
        ] {
            let (lo, hi) = r.split_half();
            let mut cat = lo.to_vec();
            cat.extend(hi.to_vec());
            assert_eq!(cat, r.to_vec(), "split of {r:?}");
            assert!(lo.len() >= hi.len());
            assert!(lo.len() - hi.len() <= 1);
        }
    }

    #[test]
    fn intersect_contiguous() {
        let a = Range::contiguous(0, 10);
        let b = Range::contiguous(5, 15);
        assert_eq!(a.intersect(&b), Range::contiguous(5, 10));
        assert_eq!(b.intersect(&a), Range::contiguous(5, 10));
        let c = Range::contiguous(11, 20);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_strided_with_contiguous() {
        let s = Range::strided(1, 21, 4).unwrap(); // 1,5,9,13,17,21
        let c = Range::contiguous(6, 18);
        assert_eq!(s.intersect(&c).to_vec(), vec![9, 13, 17]);
        assert_eq!(c.intersect(&s).to_vec(), vec![9, 13, 17]);
    }

    #[test]
    fn intersect_same_stride() {
        let a = Range::strided(0, 40, 5).unwrap();
        let b = Range::strided(10, 60, 5).unwrap();
        assert_eq!(a.intersect(&b).to_vec(), vec![10, 15, 20, 25, 30, 35, 40]);
        // Incompatible phase.
        let c = Range::strided(1, 41, 5).unwrap();
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_general_merge_walk() {
        let a = Range::strided(0, 30, 2).unwrap();
        let b = Range::strided(0, 30, 3).unwrap();
        assert_eq!(a.intersect(&b).to_vec(), vec![0, 6, 12, 18, 24, 30]);
        let e = Range::from_indices(&[1, 6, 7, 24, 29]).unwrap();
        assert_eq!(a.intersect(&e).to_vec(), vec![6, 24]);
    }

    #[test]
    fn intersect_with_empty() {
        let a = Range::contiguous(0, 5);
        assert!(a.intersect(&Range::empty()).is_empty());
        assert!(Range::empty().intersect(&a).is_empty());
    }

    #[test]
    fn subset_relation() {
        let a = Range::contiguous(2, 4);
        let b = Range::contiguous(0, 10);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(Range::empty().is_subset_of(&a));
    }

    #[test]
    fn iterator_is_exact_size() {
        let r = Range::strided(0, 100, 7).unwrap();
        let it = r.iter();
        assert_eq!(it.len(), r.len());
        assert_eq!(r.iter().count(), r.len());
    }

    #[test]
    fn get_bounds_checked() {
        let r = Range::contiguous(5, 7);
        assert_eq!(r.get(0).unwrap(), 5);
        assert_eq!(r.get(2).unwrap(), 7);
        assert!(r.get(3).is_err());
    }
}
