//! Asynchronous-checkpoint bench: checkpoint stall of the overlapped
//! pipeline versus blocking checkpoints at the same interval, as a
//! regression gate.
//!
//! ```text
//! cargo run --release -p drms-bench --bin async -- [--class T|S|W|A] \
//!     [--fault-seed N] [--json DIR] [--baseline PATH] \
//!     [--tolerance 0.05] [--bless]
//! ```
//!
//! For each application of the solver suite (BT, LU, SP) the same
//! calibrated workload runs three ways — no checkpoints, blocking
//! checkpoints, async checkpoints — at the same interval. The hard gates:
//!
//! * the async pipeline cuts the checkpoint stall by at least **3x**
//!   versus blocking at the same interval, per app;
//! * the last async commit's stream file is **bitwise identical** to the
//!   blocking checkpoint of the same state, and both restore to the same
//!   checksum on a different task count;
//! * the flusher timeline is well-formed (FIFO, no overlap);
//! * the whole campaign is **deterministic** per seed: a second run must
//!   reproduce every time and byte count exactly.
//!
//! With `--json DIR` the headline numbers land in `BENCH_async.json` and
//! the per-flight flusher timeline in `TIMELINE_async.txt` (the CI trace
//! artifact). `--baseline PATH` compares against a committed baseline
//! within `--tolerance` (relative); `--bless` rewrites the baseline. The
//! fault seed follows the repo-wide `FAULT_SEED` convention.

use std::fmt::Write as _;
use std::path::PathBuf;

use drms_apps::{bt, lu, sp, AppSpec};
use drms_bench::args::Options;
use drms_bench::asyncck::{run_campaign, AsyncCampaign, AsyncParams, CKPT_TASKS, RESTORE_TASKS};
use drms_bench::gate::{baseline_gate, run_gated, Gate};
use drms_bench::json::BenchResult;
use drms_bench::table::render;

const DEFAULT_SEED: u64 = 11;

struct Opts {
    bench: Options,
    seed: u64,
    baseline: Option<PathBuf>,
    tolerance: f64,
    bless: bool,
}

/// Splits the gate flags off and hands everything else to the shared
/// [`Options`] parser, so sweep scripts can pass one flag set to every
/// bench binary.
fn parse_args() -> Opts {
    let mut opts = Opts {
        bench: Options::default(),
        seed: drms_bench::seed::fault_seed_or(DEFAULT_SEED),
        baseline: None,
        tolerance: 0.05,
        bless: false,
    };
    let mut rest = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--fault-seed" => {
                let v = value("--fault-seed");
                opts.seed = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: bad seed {v:?}");
                    std::process::exit(2);
                });
            }
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline"))),
            "--tolerance" => {
                let v = value("--tolerance");
                opts.tolerance =
                    v.parse().ok().filter(|t: &f64| t.is_finite() && *t >= 0.0).unwrap_or_else(
                        || {
                            eprintln!("error: bad tolerance {v:?}");
                            std::process::exit(2);
                        },
                    );
            }
            "--bless" => opts.bless = true,
            other => rest.push(other.to_string()),
        }
    }
    opts.bench = Options::parse(rest.into_iter());
    opts
}

fn repro(opts: &Opts) -> String {
    format!("{} --class {}", drms_bench::seed::bin_repro("async", opts.seed), opts.bench.class)
}

fn main() {
    let opts = parse_args();
    let repro = repro(&opts);
    run_gated("async", &repro.clone(), move || body(&opts, &repro));
}

fn body(opts: &Opts, repro: &str) {
    let class = opts.bench.class;
    let params = AsyncParams { seed: opts.seed, ..AsyncParams::default() };
    println!("Async bench — overlapped vs blocking checkpointing, class {class}");
    println!(
        "checkpoint on {CKPT_TASKS} tasks, restore on {RESTORE_TASKS}; budget {}, \
         compute/interval {:.1}x the blocking checkpoint\n",
        params.budget, params.compute_factor
    );

    let specs: Vec<AppSpec> = vec![bt(class), lu(class), sp(class)];
    let mut gate = Gate::new("async gate", repro);
    let mut result = BenchResult::new("async");
    result.param("class", class);
    result.param("budget", params.budget);
    result.param("compute_factor", params.compute_factor);
    result.param("seed", params.seed);
    result.stamp_header(params.seed, CKPT_TASKS);

    let mut rows = Vec::new();
    let mut timeline = String::new();
    for spec in &specs {
        let c = run_campaign(spec, &params).expect("campaign run");
        let c2 = run_campaign(spec, &params).expect("campaign rerun");
        gate.check(
            c == c2,
            format!("{}: campaign is nondeterministic ({c:?} vs {c2:?})", spec.name),
        );
        checks(&mut gate, spec, &c);
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.4}", c.t_io),
            format!("{:.3}", c.wall_none),
            format!("{:.3}", c.wall_blocking),
            format!("{:.3}", c.wall_async),
            format!("{:.4}", c.stall_blocking()),
            format!("{:.4}", c.stall_async()),
            format!("{:.1}x", c.stall_reduction()),
            format!("{:.1}%", 100.0 * c.overlap_fraction()),
        ]);
        let n = spec.name;
        result.metric(&format!("{n}_t_io_s"), c.t_io);
        result.metric(&format!("{n}_wall_none_s"), c.wall_none);
        result.metric(&format!("{n}_wall_blocking_s"), c.wall_blocking);
        result.metric(&format!("{n}_wall_async_s"), c.wall_async);
        result.metric(&format!("{n}_stall_blocking_s"), c.stall_blocking());
        result.metric(&format!("{n}_stall_async_s"), c.stall_async());
        result.metric(&format!("{n}_stall_reduction"), c.stall_reduction());
        result.metric(&format!("{n}_overlap_fraction"), c.overlap_fraction());
        append_timeline(&mut timeline, spec, &c);
    }

    let header = vec![
        "app",
        "t_io s",
        "floor s",
        "blocking s",
        "async s",
        "stall blk s",
        "stall async s",
        "reduction",
        "overlap",
    ];
    println!("{}", render(&header, &rows));

    if let Some(dir) = &opts.bench.json {
        let path = result.write_to(dir).expect("write json result");
        println!("wrote {}", path.display());
        let tpath = dir.join("TIMELINE_async.txt");
        std::fs::write(&tpath, &timeline).expect("write flush timeline");
        println!("wrote {}", tpath.display());
    }
    gate.finish();
    if let Some(baseline) = &opts.baseline {
        baseline_gate(&result, baseline, opts.tolerance, opts.bless, repro);
    }
}

/// One flush-timeline block per app: prefix, SOP, and the arm/start/
/// finish virtual timestamps of every flight, in arming order.
fn append_timeline(out: &mut String, spec: &AppSpec, c: &AsyncCampaign) {
    writeln!(out, "# {} — flusher timeline (virtual seconds)", spec.name).unwrap();
    writeln!(out, "# prefix sop t_snap start finish bytes").unwrap();
    for f in &c.flights {
        writeln!(
            out,
            "{} {} {:.6} {:.6} {:.6} {}",
            f.prefix, f.sop, f.t_snap, f.start, f.finish, f.bytes
        )
        .unwrap();
    }
    out.push('\n');
}

/// Per-app hard gates (beyond determinism and the baseline comparison).
fn checks(gate: &mut Gate, spec: &AppSpec, c: &AsyncCampaign) {
    let n = spec.name;
    gate.check(
        c.stall_reduction() >= 3.0,
        format!(
            "{n}: stall reduction {:.2}x < 3x (blocking {:.4}s vs async {:.4}s)",
            c.stall_reduction(),
            c.stall_blocking(),
            c.stall_async()
        ),
    );
    gate.check(
        c.streams_bitwise_equal,
        format!("{n}: async commit's stream differs from the blocking checkpoint"),
    );
    gate.check(
        c.blocking_checksum == c.async_checksum,
        format!(
            "{n}: restore checksums diverge (blocking {} vs async {})",
            c.blocking_checksum, c.async_checksum
        ),
    );
    gate.check(
        c.stall_blocking() > 0.0 && c.stall_async() > 0.0,
        format!("{n}: stall measurements missing"),
    );
    let fifo = c.flights.windows(2).all(|w| w[1].start >= w[0].finish)
        && c.flights.iter().all(|f| f.start >= f.t_snap && f.finish > f.start);
    gate.check(fifo, format!("{n}: flusher timeline malformed: {:?}", c.flights));
}
