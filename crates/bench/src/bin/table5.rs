//! Table 5: time to checkpoint and restart DRMS and non-reconfigurable
//! SPMD applications (mean ± sd over seeded runs), on 8 and 16 processors.
//!
//! ```text
//! cargo run --release -p drms-bench --bin table5 [--class A] [--runs 10]
//! ```

use drms_apps::{bt, lu, sp, AppSpec, AppVariant};
use drms_bench::args::Options;
use drms_bench::experiment::run_pair;
use drms_bench::gate::run_gated;
use drms_bench::json::BenchResult;
use drms_bench::stats::Summary;
use drms_bench::table::render;

/// Paper values (class A): (mean, sd) seconds, or None where the source
/// text of the table is garbled (the SPMD columns of the SP row).
type Cell = Option<(f64, f64)>;

struct PaperRow {
    app: &'static str,
    ckpt: [[Cell; 2]; 2],    // [pes 8|16][drms|spmd]
    restart: [[Cell; 2]; 2], // [pes 8|16][drms|spmd]
}

const PAPER: &[PaperRow] = &[
    PaperRow {
        app: "bt",
        ckpt: [[Some((16.0, 2.0)), Some((41.0, 16.0))], [Some((20.0, 2.0)), Some((114.0, 16.0))]],
        restart: [[Some((42.0, 3.0)), Some((21.0, 1.0))], [Some((32.0, 5.0)), Some((109.0, 10.0))]],
    },
    PaperRow {
        app: "lu",
        ckpt: [[Some((19.0, 2.0)), Some((128.0, 18.0))], [Some((18.0, 4.0)), Some((185.0, 10.0))]],
        restart: [
            [Some((46.0, 20.0)), Some((125.0, 20.0))],
            [Some((31.0, 3.0)), Some((145.0, 27.0))],
        ],
    },
    PaperRow {
        app: "sp",
        ckpt: [[Some((13.0, 3.0)), None], [Some((16.0, 2.0)), None]],
        restart: [[Some((35.0, 2.0)), None], [Some((27.0, 2.0)), None]],
    },
];

fn paper_cell(app: &str, restart: bool, pes: usize, variant: AppVariant) -> String {
    let Some(row) = PAPER.iter().find(|r| r.app == app) else { return "-".into() };
    let pi = if pes == 8 {
        0
    } else if pes == 16 {
        1
    } else {
        return "-".into();
    };
    let vi = match variant {
        AppVariant::Drms => 0,
        AppVariant::Spmd => 1,
    };
    let table = if restart { &row.restart } else { &row.ckpt };
    match table[pi][vi] {
        Some((m, s)) => format!("{m:.0} ± {s:.0}"),
        None => "(garbled)".into(),
    }
}

fn main() {
    let opts = Options::from_env();
    let repro = format!(
        "cargo run --release -p drms-bench --bin table5 -- --class {} --runs {}",
        opts.class, opts.runs
    );
    run_gated("table5", &repro, || body(&opts));
}

fn body(opts: &Options) {
    println!(
        "Table 5 — checkpoint and restart times (simulated seconds, mean ± sd of {} runs)",
        opts.runs
    );
    println!(
        "class {} | 16-node PIOFS | checkpoint at mid-point | paper values are class A\n",
        opts.class
    );

    let specs: Vec<AppSpec> = vec![bt(opts.class), lu(opts.class), sp(opts.class)];
    let scale = opts.class.memory_scale();
    if (scale - 1.0).abs() > 1e-9 {
        println!(
            "note: class {} scales all sizes by {:.4}; compare SHAPE with paper, \
             not absolute seconds\n",
            opts.class, scale
        );
    }

    let header = vec![
        "app",
        "PEs",
        "op",
        "DRMS (measured)",
        "DRMS (paper)",
        "SPMD (measured)",
        "SPMD (paper)",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut result = BenchResult::new("table5");
    result.param("class", opts.class);
    result.param("runs", opts.runs);
    result.param("pes", opts.pes.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(","));
    result.stamp_header(
        drms_bench::seed::fault_seed_or(0),
        opts.pes.iter().copied().max().unwrap_or(0),
    );

    for spec in &specs {
        for &pes in &opts.pes {
            let mut measured: [[Option<Summary>; 2]; 2] = [[None, None], [None, None]];
            for (vi, variant) in [AppVariant::Drms, AppVariant::Spmd].into_iter().enumerate() {
                let mut ckpts = Vec::new();
                let mut restarts = Vec::new();
                for run in 0..opts.runs {
                    let seed = 1000 + run as u64 * 7919;
                    let pair = run_pair(spec, variant, pes, seed, 1).expect("experiment");
                    ckpts.push(pair.ckpt.total());
                    restarts.push(pair.restart.total());
                }
                measured[0][vi] = Some(Summary::of(&ckpts));
                measured[1][vi] = Some(Summary::of(&restarts));
            }
            for (oi, op) in ["checkpoint", "restart"].into_iter().enumerate() {
                for (vi, variant) in ["drms", "spmd"].into_iter().enumerate() {
                    let mean = measured[oi][vi].as_ref().unwrap().mean;
                    result.metric(&format!("{}.p{pes}.{variant}.{op}_s", spec.name), mean);
                }
                rows.push(vec![
                    spec.name.to_string(),
                    pes.to_string(),
                    op.to_string(),
                    measured[oi][0].as_ref().unwrap().pm(),
                    paper_cell(spec.name, oi == 1, pes, AppVariant::Drms),
                    measured[oi][1].as_ref().unwrap().pm(),
                    paper_cell(spec.name, oi == 1, pes, AppVariant::Spmd),
                ]);
            }
            eprintln!("... {} @ {} PEs done", spec.name, pes);
        }
    }
    println!("{}", render(&header, &rows));
    if let Some(dir) = &opts.json {
        let path = result.write_to(dir).expect("write BENCH_table5.json");
        println!("wrote {}", path.display());
    }
    println!(
        "Shapes to check against the paper: DRMS checkpoint always beats SPMD and the\n\
         gap widens with PEs; DRMS restart *improves* with PEs (client-limited reads);\n\
         SPMD restart beats DRMS below the buffer threshold (BT, SP at 8 PEs) and\n\
         collapses above it (BT at 16; LU already at 8)."
    );
}
