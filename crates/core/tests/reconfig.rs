//! End-to-end reconfigurable checkpoint/restart: the headline capability of
//! the paper. An application checkpoints with `t1` tasks on `p1` processors
//! and restarts from the archived state with `t2` tasks.

use std::sync::Arc;

use drms_core::manifest::CkptKind;
use drms_core::segment::DataSegment;
use drms_core::{find_checkpoints, CheckpointArray, Drms, DrmsConfig, EnableFlag, IoMode, Start};
use drms_darray::{DistArray, Distribution};
use drms_msg::{run_spmd, CostModel};
use drms_piofs::{Piofs, PiofsConfig};
use drms_slices::{Order, Slice};

fn fs() -> Arc<Piofs> {
    Piofs::new(PiofsConfig::test_tiny(8), 3)
}

fn cfg() -> DrmsConfig {
    let mut c = DrmsConfig::new("mini");
    c.text_bytes = 4096;
    c.io = IoMode::Parallel;
    c
}

fn domain() -> Slice {
    Slice::boxed(&[(1, 24), (1, 18)])
}

fn truth(p: &[i64], iter: i64) -> f64 {
    (p[0] * 100 + p[1]) as f64 + iter as f64 * 0.5
}

/// Runs `iters` steps starting at `start_iter` on `ntasks`, checkpointing at
/// `ckpt_at` (if any). Returns per-task final assigned sums.
fn run_app(
    fs: &Arc<Piofs>,
    ntasks: usize,
    restart_from: Option<&str>,
    ckpt_at: Option<(i64, &str)>,
    end_iter: i64,
) -> Vec<f64> {
    run_spmd(ntasks, CostModel::default(), |ctx| {
        let (mut drms, start) =
            Drms::initialize(ctx, fs, cfg(), EnableFlag::new(), restart_from).unwrap();

        let mut seg = DataSegment::new();
        let mut start_iter = 1i64;
        let dist = Distribution::block_auto(&domain(), ctx.ntasks(), 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());

        match start {
            Start::Fresh => {
                u.fill_assigned(|p| truth(p, 0));
            }
            Start::Restarted(info) => {
                seg = info.segment.clone();
                start_iter = seg.control("iter").unwrap() + 1;
                // delta != 0 exercises the reconfigured path; arrays were
                // created under the new distribution above, so just load.
                drms.restore_arrays(ctx, fs, restart_from.unwrap(), &info.manifest, &mut [&mut u])
                    .unwrap();
            }
        }

        for iter in start_iter..=end_iter {
            // A deterministic "solver step": everything shifts by 0.5.
            let region = u.assigned().clone();
            region.points(Order::ColumnMajor).for_each(|p| {
                let v = u.get(p).unwrap();
                u.set(p, v + 0.5).unwrap();
            });
            seg.set_control("iter", iter);
            if let Some((at, prefix)) = ckpt_at {
                if iter == at {
                    drms.reconfig_checkpoint(ctx, fs, prefix, &seg, &[&u]).unwrap();
                }
            }
        }
        u.fold_assigned(0.0, |acc, _, v| acc + v)
    })
    .unwrap()
}

#[test]
fn reconfigured_restart_is_bitwise_identical() {
    // Uninterrupted reference run on 4 tasks.
    let fs_ref = fs();
    let reference: f64 = run_app(&fs_ref, 4, None, None, 10).into_iter().sum();

    for restart_tasks in [2usize, 4, 6] {
        let fs = fs();
        // Run on 4 tasks, checkpoint at iteration 5.
        run_app(&fs, 4, None, Some((5, "ck/a")), 5);
        // Restart on a different task count, run to completion.
        let total: f64 = run_app(&fs, restart_tasks, Some("ck/a"), None, 10).into_iter().sum();
        assert_eq!(
            total, reference,
            "restart with {restart_tasks} tasks diverged from uninterrupted run"
        );
    }
}

#[test]
fn every_element_survives_reconfiguration() {
    let fs = fs();
    run_app(&fs, 6, None, Some((3, "ck/e")), 3);
    run_spmd(3, CostModel::default(), |ctx| {
        let (drms, start) =
            Drms::initialize(ctx, &fs, cfg(), EnableFlag::new(), Some("ck/e")).unwrap();
        let Start::Restarted(info) = start else { panic!("expected restart") };
        assert_eq!(info.delta, 3 - 6);
        assert_eq!(info.manifest.ntasks, 6);
        let dist = Distribution::block_auto(&domain(), 3, 2).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        drms.restore_arrays(ctx, &fs, "ck/e", &info.manifest, &mut [&mut u]).unwrap();
        u.mapped().clone().points(Order::ColumnMajor).for_each(|p| {
            assert_eq!(u.get(p).unwrap(), truth(p, 0) + 3.0 * 0.5, "point {p:?}");
        });
    })
    .unwrap();
}

#[test]
fn multiple_prefixes_coexist_and_restart_from_any() {
    let fs = fs();
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, _) = Drms::initialize(ctx, &fs, cfg(), EnableFlag::new(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), 2, 0).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        let mut seg = DataSegment::new();
        for (i, prefix) in [(1i64, "ck/one"), (2, "ck/two"), (3, "ck/three")] {
            u.fill_assigned(|p| truth(p, i));
            seg.set_control("iter", i);
            drms.reconfig_checkpoint(ctx, &fs, prefix, &seg, &[&u]).unwrap();
        }
    })
    .unwrap();

    let found = find_checkpoints(&fs, Some("mini"));
    assert_eq!(found.len(), 3);
    assert_eq!(found[0].1.sop, 3, "newest first");
    assert!(found.iter().all(|(_, m)| m.kind == CkptKind::Drms));

    // Restart from the middle checkpoint on a different task count.
    run_spmd(5, CostModel::default(), |ctx| {
        let (drms, start) =
            Drms::initialize(ctx, &fs, cfg(), EnableFlag::new(), Some("ck/two")).unwrap();
        let Start::Restarted(info) = start else { panic!() };
        assert_eq!(info.segment.control("iter"), Some(2));
        let dist = Distribution::block_auto(&domain(), 5, 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        drms.restore_arrays(ctx, &fs, "ck/two", &info.manifest, &mut [&mut u]).unwrap();
        u.fold_assigned((), |_, p, v| assert_eq!(v, truth(p, 2)));
    })
    .unwrap();
}

#[test]
fn chkenable_only_fires_when_raised() {
    let fs = fs();
    let flag = EnableFlag::new();
    let flag2 = flag.clone();
    run_spmd(2, CostModel::default(), |ctx| {
        let (mut drms, _) = Drms::initialize(ctx, &fs, cfg(), flag2.clone(), None).unwrap();
        let dist = Distribution::block_auto(&domain(), 2, 0).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| truth(p, 9));
        let seg = DataSegment::new();

        // Not raised: no checkpoint.
        let r = drms.reconfig_chkenable(ctx, &fs, "ck/en", &seg, &[&u]).unwrap();
        assert!(r.is_none());

        // Scheduler raises the signal (rank 0 simulates the TC delivery).
        if ctx.rank() == 0 {
            flag2.raise();
        }
        ctx.barrier();
        let r = drms.reconfig_chkenable(ctx, &fs, "ck/en", &seg, &[&u]).unwrap();
        assert!(r.is_some());
        // Flag cleared after the checkpoint.
        let r = drms.reconfig_chkenable(ctx, &fs, "ck/en2", &seg, &[&u]).unwrap();
        assert!(r.is_none());
    })
    .unwrap();
    assert!(fs.exists("ck/en/manifest"));
    assert!(!fs.exists("ck/en2/manifest"));
}

#[test]
fn restart_validates_manifest() {
    let fs = fs();
    run_app(&fs, 2, None, Some((1, "ck/v")), 1);
    run_spmd(2, CostModel::default(), |ctx| {
        let (drms, start) =
            Drms::initialize(ctx, &fs, cfg(), EnableFlag::new(), Some("ck/v")).unwrap();
        let Start::Restarted(info) = start else { panic!() };

        // Wrong element type.
        let dist = Distribution::block_auto(&domain(), 2, 0).unwrap();
        let mut wrong_t = DistArray::<f32>::new("u", Order::ColumnMajor, dist.clone(), ctx.rank());
        let err =
            drms.restore_arrays(ctx, &fs, "ck/v", &info.manifest, &mut [&mut wrong_t]).unwrap_err();
        assert!(err.to_string().contains("element code"));

        // Wrong domain.
        let other = Slice::boxed(&[(1, 10), (1, 10)]);
        let dist2 = Distribution::block_auto(&other, 2, 0).unwrap();
        let mut wrong_d = DistArray::<f64>::new("u", Order::ColumnMajor, dist2, ctx.rank());
        let err =
            drms.restore_arrays(ctx, &fs, "ck/v", &info.manifest, &mut [&mut wrong_d]).unwrap_err();
        assert!(err.to_string().contains("domain"));

        // Unknown array name.
        let dist3 = Distribution::block_auto(&domain(), 2, 0).unwrap();
        let mut unknown = DistArray::<f64>::new("zz", Order::ColumnMajor, dist3, ctx.rank());
        let err =
            drms.restore_arrays(ctx, &fs, "ck/v", &info.manifest, &mut [&mut unknown]).unwrap_err();
        assert!(err.to_string().contains("no array"));
    })
    .unwrap();
}

#[test]
fn initialize_without_checkpoint_errors() {
    let fs = fs();
    let out = run_spmd(2, CostModel::default(), |ctx| {
        Drms::initialize(ctx, &fs, cfg(), EnableFlag::new(), Some("ck/missing"))
            .err()
            .map(|e| e.to_string())
    })
    .unwrap();
    assert!(out[0].as_ref().unwrap().contains("no checkpoint"));
}

#[test]
fn adjust_redistribute_handle_path() {
    // Exercise the trait-object adjust path used for on-the-fly
    // reconfiguration.
    let fs = fs();
    let _ = &fs;
    run_spmd(4, CostModel::default(), |ctx| {
        let dist = Distribution::block_auto(&domain(), 4, 1).unwrap();
        let mut u = DistArray::<f64>::new("u", Order::ColumnMajor, dist, ctx.rank());
        u.fill_assigned(|p| truth(p, 1));
        drms_darray::assign::refresh_shadows(ctx, &mut u).unwrap();
        let h: &mut dyn CheckpointArray = &mut u;
        h.adjust_redistribute(ctx).unwrap();
        u.fold_assigned((), |_, p, v| assert_eq!(v, truth(p, 1)));
    })
    .unwrap();
}
